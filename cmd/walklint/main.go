// Command walklint is the repository's vettool: the internal/lint analyzer
// suite (lockorder, atomicfield, determinism, mutationlog, docanchor)
// behind `go vet`'s unit protocol.
//
// Usage:
//
//	go build -o walklint ./cmd/walklint
//	go vet -vettool=./walklint ./...
//
// Findings are vet failures; reviewed exceptions are recorded in source as
// `//lint:allow <analyzer> <reason>`. See docs/DESIGN.md#12-static-analysis.
package main

import "fastppr/internal/lint"

func main() { lint.Main() }
