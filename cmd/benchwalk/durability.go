package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fastppr/internal/graph"
	"fastppr/internal/pagerank"
	"fastppr/internal/persist"
	"fastppr/internal/socialstore"
)

// durabilityResult is one fsync-policy row of the durability sweep: the same
// serialized maintainer storm with the WAL journaling every mutation and a
// commit marker per edge, then a cold reopen timing recovery.
type durabilityResult struct {
	FsyncPolicy     string  `json:"fsync_policy"`
	Edges           int     `json:"edges"`
	StormSeconds    float64 `json:"storm_seconds"`
	EdgesPerSec     float64 `json:"edges_per_sec"`
	WALRecords      int64   `json:"wal_records"`
	WALBytes        int64   `json:"wal_bytes"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	ReplayedRecords int     `json:"replayed_records"`
}

// parsePolicy maps a -wal policy token to a persist config (Dir filled by
// the caller): "record", "batch:N", "interval:DUR", or "none".
func parsePolicy(s string) (persist.Config, error) {
	switch {
	case s == "record":
		return persist.Config{Policy: persist.SyncEveryRecord}, nil
	case s == "none":
		return persist.Config{Policy: persist.SyncNone}, nil
	case strings.HasPrefix(s, "batch:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "batch:"))
		if err != nil || n < 1 {
			return persist.Config{}, fmt.Errorf("bad batch size in %q", s)
		}
		return persist.Config{Policy: persist.SyncEveryN, SyncEveryN: n}, nil
	case strings.HasPrefix(s, "interval:"):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval:"))
		if err != nil || d <= 0 {
			return persist.Config{}, fmt.Errorf("bad interval in %q", s)
		}
		return persist.Config{Policy: persist.SyncInterval, SyncInterval: d}, nil
	}
	return persist.Config{}, fmt.Errorf("unknown WAL policy %q (want record, batch:N, interval:DUR, none, sweep, or off)", s)
}

// durabilityStormCap bounds the persisted storm: fsync-per-record rows are
// orders of magnitude slower than in-memory ones, and a few thousand edges
// already give stable per-edge figures.
const durabilityStormCap = 5_000

// benchDurability runs the policy sweep. Each policy gets its own directory
// under root: bootstrap the pagerank maintainer over a persisted store,
// checkpoint, storm serialized with one commit marker per edge, close, then
// reopen cold to measure recovery.
func benchDurability(base *graph.Graph, storm []graph.Edge, r int, eps float64, seed uint64, root string, policies []string) ([]durabilityResult, error) {
	if len(storm) > durabilityStormCap {
		fmt.Printf("durability storm capped at %d of %d edges\n", durabilityStormCap, len(storm))
		storm = storm[:durabilityStormCap]
	}
	var out []durabilityResult
	for _, pol := range policies {
		cfg, err := parsePolicy(pol)
		if err != nil {
			return nil, err
		}
		cfg.Dir = filepath.Join(root, strings.ReplaceAll(pol, ":", "-"))
		res, err := durabilityOne(base, storm, r, eps, seed, cfg)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", pol, err)
		}
		out = append(out, res)
		fmt.Printf("durability %-10s %7.3fs (%.0f edges/s)   wal %d recs / %d B, snapshot %d B, recovery %.3fs (%d replayed)\n",
			res.FsyncPolicy, res.StormSeconds, res.EdgesPerSec, res.WALRecords, res.WALBytes,
			res.SnapshotBytes, res.RecoverySeconds, res.ReplayedRecords)
	}
	return out, nil
}

func durabilityOne(base *graph.Graph, storm []graph.Edge, r int, eps float64, seed uint64, cfg persist.Config) (durabilityResult, error) {
	res := durabilityResult{FsyncPolicy: cfg.PolicyString(), Edges: len(storm)}
	pm, walks, _, err := persist.Open(cfg)
	if err != nil {
		return res, err
	}
	soc := socialstore.New(base.Clone())
	mt := pagerank.NewWithStore(soc, pagerank.Config{Eps: eps, R: r, Workers: 1, Seed: seed}, walks)
	mt.Bootstrap()
	if err := pm.Checkpoint(); err != nil {
		return res, err
	}

	t0 := time.Now()
	for i, ed := range storm {
		mt.ApplyEdge(ed)
		if err := pm.Commit(int64(i), mt.UpdateRNGState()); err != nil {
			return res, err
		}
		if i%128 == 0 {
			bailIfInterrupted(pm)
		}
	}
	el := time.Since(t0)
	res.StormSeconds = el.Seconds()
	if s := el.Seconds(); s > 0 {
		res.EdgesPerSec = float64(len(storm)) / s
	}
	st := pm.Stats()
	res.WALRecords, res.WALBytes = st.WALRecords, st.WALBytes
	// Close flushes the WAL but does not checkpoint, so the reopen below
	// still replays the whole storm's records — recovery_seconds measures
	// snapshot load + full WAL replay + the checkpoint-on-open.
	if err := pm.Close(); err != nil {
		return res, err
	}

	t1 := time.Now()
	pm2, _, info, err := persist.Open(persist.Config{Dir: cfg.Dir})
	if err != nil {
		return res, err
	}
	defer pm2.Close()
	res.RecoverySeconds = time.Since(t1).Seconds()
	res.ReplayedRecords = info.Replayed
	res.SnapshotBytes = pm2.SnapshotBytes()
	_ = os.RemoveAll(cfg.Dir) // artifacts served their purpose
	return res, nil
}
