package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"time"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/pagerank"
	"fastppr/internal/persist"
	"fastppr/internal/salsa"
	"fastppr/internal/socialstore"
	"fastppr/internal/walkstore"
)

// The crash harness proves the durability contract end to end, with a real
// kill -9 rather than an in-process simulation: a child process runs a
// persisted serialized churn storm (mixed arrivals and deletions), announcing
// each committed op on stdout; the parent SIGKILLs it at a seeded random op,
// re-runs it in resume mode (recover, rebuild the social graph by replaying
// the typed ops to the recovered cursor, restore the update RNG, apply the
// rest of the storm), and compares the resumed run's final walk store —
// bitwise — against an uninterrupted in-process reference. Each applied
// deletion is journaled as a remove-edge WAL marker; the resume phase
// cross-checks the recovered markers against the regenerated deletion
// sequence, so the log provably committed the same deletions the storm
// applied. pagerank runs under fsync-every-record (recovery lands exactly on
// the kill op); salsa runs under batch:16 (recovery lands on an earlier
// committed op and redoes the tail), covering both resume shapes.

// crashRun is one engine's kill/recover/resume result.
type crashRun struct {
	Engine          string  `json:"engine"`
	FsyncPolicy     string  `json:"fsync_policy"`
	StormEdges      int     `json:"storm_edges"`
	DeleteOps       int     `json:"delete_ops"`
	KillAtEdge      int     `json:"kill_at_edge"`
	RecoveredCursor int64   `json:"recovered_cursor"`
	ReplayedRecords int     `json:"replayed_records"`
	DiscardedRecs   int     `json:"discarded_records"`
	TornBytes       int64   `json:"torn_bytes"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	ValidateClean   bool    `json:"validate_clean"`
	EstimatesMatch  bool    `json:"estimates_match"`
	// WalDeletesMatch reports the remove-edge cross-check: the markers
	// recovered from the WAL must be exactly the tail of the deletions the
	// regenerated storm applied up to the recovered cursor.
	WalDeletesMatch bool `json:"wal_deletes_match"`
}

type crashReport struct {
	Runs []crashRun `json:"runs"`
}

// crashStormCap keeps the harness CI-sized; the kill lands mid-storm, so a
// longer storm only adds time, not coverage.
const crashStormCap = 900

// crashWorkload derives the base graph and churn storm both processes (and
// both phases) must agree on, purely from the flag values the parent forwards
// to the child. The storm interleaves hot-spot arrivals with shrink phases
// deleting a quarter of the stream's live edges, so the WAL carries
// remove-edge markers and reverse-reroute repair records alongside arrivals.
func crashWorkload(n, d int, seed uint64, updates int) (*graph.Graph, []graph.Event) {
	base := gen.PreferentialAttachment(n, d, rand.New(rand.NewPCG(seed, 0)))
	m := updates
	if m > crashStormCap {
		m = crashStormCap
	}
	arrivals := gen.HotSpotStream(n, m, rand.New(rand.NewPCG(seed, 0xc4a54)))
	storm := gen.ShrinkGrowStream(arrivals, 4, 0.25, rand.New(rand.NewPCG(seed, 0xde1)))
	return base, storm
}

func crashPolicy(engine string) string {
	if engine == "salsa" {
		return "batch:16"
	}
	return "record"
}

// storeFingerprint hashes everything an estimate is computed from: the total
// and per-node visit counts, plus the store epoch. Two stores with equal
// fingerprints serve bitwise-identical PageRank/SALSA estimates.
func storeFingerprint(s interface {
	VisitCounts() map[graph.NodeID]int64
	TotalVisits() int64
	Epoch() int64
}) uint64 {
	counts := s.VisitCounts()
	nodes := make([]graph.NodeID, 0, len(counts))
	for v := range counts {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	h := fnv.New64a()
	var b [8]byte
	w := func(x uint64) {
		for i := range b {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	}
	w(uint64(s.TotalVisits()))
	w(uint64(s.Epoch()))
	for _, v := range nodes {
		w(uint64(v))
		w(uint64(counts[v]))
	}
	return h.Sum64()
}

// crashMaintainer abstracts the two engines behind the handful of calls the
// harness needs.
type crashMaintainer interface {
	Bootstrap() int64
	ApplyEdge(graph.Edge)
	ApplyDeletion(graph.Edge)
	ApplyEvents([]graph.Event)
	UpdateRNGState() []byte
	RestoreUpdateRNGState([]byte) error
}

func newEngineMaintainer(engine string, soc *socialstore.Store, r int, eps float64, seed uint64, walks *walkstore.Store) crashMaintainer {
	if engine == "salsa" {
		return salsa.NewWithStore(soc, salsa.Config{Eps: eps, R: r, Workers: 1, Seed: seed}, walks)
	}
	return pagerank.NewWithStore(soc, pagerank.Config{Eps: eps, R: r, Workers: 1, Seed: seed}, walks)
}

func recoverEngineMaintainer(engine string, soc *socialstore.Store, r int, eps float64, seed uint64, walks *walkstore.Store) crashMaintainer {
	if engine == "salsa" {
		return salsa.Recover(soc, salsa.Config{Eps: eps, R: r, Workers: 1, Seed: seed}, walks)
	}
	return pagerank.Recover(soc, pagerank.Config{Eps: eps, R: r, Workers: 1, Seed: seed}, walks)
}

// crashResult is what the resume-phase child hands back to the parent.
type crashResult struct {
	Cursor          int64   `json:"cursor"`
	Replayed        int     `json:"replayed"`
	Discarded       int     `json:"discarded"`
	TornBytes       int64   `json:"torn_bytes"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	ValidateClean   bool    `json:"validate_clean"`
	ValidateError   string  `json:"validate_error,omitempty"`
	Fingerprint     uint64  `json:"fingerprint"`
	WalDeletesMatch bool    `json:"wal_deletes_match"`
}

// runCrashHarness is the parent side: for each engine, compute the
// uninterrupted reference fingerprint in-process, kill a storm child at a
// seeded edge, then run a resume child and compare.
func runCrashHarness(n, d, r int, eps float64, seed uint64, updates int, root string) (*crashReport, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	rep := &crashReport{}
	for _, engine := range []string{"pagerank", "salsa"} {
		bailIfInterrupted(nil)
		base, storm := crashWorkload(n, d, seed, updates)
		run := crashRun{Engine: engine, FsyncPolicy: crashPolicy(engine), StormEdges: len(storm)}
		for _, ev := range storm {
			if ev.Del {
				run.DeleteOps++
			}
		}

		// Uninterrupted reference, fully in-process and serialized.
		want := crashReference(engine, base, storm, r, eps, seed)

		// Kill target: strictly inside the storm's middle half, seeded.
		killRNG := rand.New(rand.NewPCG(seed, 0x717))
		run.KillAtEdge = len(storm)/4 + killRNG.IntN(len(storm)/2)

		dir := filepath.Join(root, "crash-"+engine)
		if err := os.RemoveAll(dir); err != nil {
			return nil, err
		}
		forward := []string{
			"-crashchild", engine, "-crashdir", dir,
			"-n", fmt.Sprint(n), "-d", fmt.Sprint(d), "-r", fmt.Sprint(r),
			"-eps", fmt.Sprint(eps), "-seed", fmt.Sprint(seed), "-updates", fmt.Sprint(updates),
		}

		fmt.Printf("crash %-8s churn storm of %d ops (%d deletions), kill -9 at op %d (%s)\n",
			engine, len(storm), run.DeleteOps, run.KillAtEdge, run.FsyncPolicy)
		if err := runStormChildAndKill(exe, forward, run.KillAtEdge); err != nil {
			return nil, fmt.Errorf("%s storm child: %w", engine, err)
		}

		resume := exec.Command(exe, append(forward, "-crashphase", "resume")...)
		resume.Stderr = os.Stderr
		if err := resume.Run(); err != nil {
			return nil, fmt.Errorf("%s resume child: %w", engine, err)
		}
		buf, err := os.ReadFile(filepath.Join(dir, "crash_result.json"))
		if err != nil {
			return nil, fmt.Errorf("%s resume child left no result: %w", engine, err)
		}
		var cr crashResult
		if err := json.Unmarshal(buf, &cr); err != nil {
			return nil, fmt.Errorf("%s crash result: %w", engine, err)
		}
		run.RecoveredCursor = cr.Cursor
		run.ReplayedRecords = cr.Replayed
		run.DiscardedRecs = cr.Discarded
		run.TornBytes = cr.TornBytes
		run.RecoverySeconds = cr.RecoverySeconds
		run.ValidateClean = cr.ValidateClean
		run.EstimatesMatch = cr.Fingerprint == want
		run.WalDeletesMatch = cr.WalDeletesMatch
		rep.Runs = append(rep.Runs, run)
		status := "estimates MATCH reference bitwise"
		if !run.EstimatesMatch {
			status = "estimates DIVERGE from reference"
		}
		fmt.Printf("crash %-8s recovered cursor %d (torn %d B, %d replayed, %d discarded) in %.3fs; validate clean=%v; wal deletes match=%v; %s\n",
			engine, run.RecoveredCursor, run.TornBytes, run.ReplayedRecords, run.DiscardedRecs,
			run.RecoverySeconds, run.ValidateClean, run.WalDeletesMatch, status)
		if cr.ValidateError != "" {
			fmt.Printf("crash %-8s validate error: %s\n", engine, cr.ValidateError)
		}
		os.RemoveAll(dir)
	}
	return rep, nil
}

// runStormChildAndKill starts the storm-phase child, watches its stdout for
// committed-edge announcements, and SIGKILLs it the moment the target edge
// is committed — a real unclean death at a deterministic point.
func runStormChildAndKill(exe string, forward []string, killAt int) error {
	child := exec.Command(exe, append(forward, "-crashphase", "storm")...)
	child.Stderr = os.Stderr
	outPipe, err := child.StdoutPipe()
	if err != nil {
		return err
	}
	if err := child.Start(); err != nil {
		return err
	}
	killed := false
	sc := bufio.NewScanner(outPipe)
	for sc.Scan() {
		var edge int
		if _, err := fmt.Sscanf(sc.Text(), "EDGE %d", &edge); err != nil {
			continue
		}
		if edge >= killAt {
			if err := child.Process.Kill(); err != nil {
				return err
			}
			killed = true
			break
		}
	}
	err = child.Wait()
	if !killed {
		return fmt.Errorf("child finished its storm before the kill target (err=%v)", err)
	}
	return nil
}

// crashReference runs the churn storm uninterrupted, serialized, in-process.
func crashReference(engine string, base *graph.Graph, storm []graph.Event, r int, eps float64, seed uint64) uint64 {
	soc := socialstore.New(base.Clone())
	switch engine {
	case "salsa":
		mt := salsa.New(soc, salsa.Config{Eps: eps, R: r, Workers: 1, Seed: seed})
		mt.Bootstrap()
		mt.ApplyEvents(storm)
		return storeFingerprint(mt.Store())
	default:
		mt := pagerank.New(soc, pagerank.Config{Eps: eps, R: r, Workers: 1, Seed: seed})
		mt.Bootstrap()
		mt.ApplyEvents(storm)
		return storeFingerprint(mt.Store())
	}
}

// runCrashChild is the child-process entry point (hidden -crashchild flag):
// phase "storm" runs the persisted storm until killed, phase "resume"
// recovers and finishes it.
func runCrashChild(engine, phase, dir string, n, d, r int, eps float64, seed uint64, updates int) error {
	base, storm := crashWorkload(n, d, seed, updates)
	pcfg, err := parsePolicy(crashPolicy(engine))
	if err != nil {
		return err
	}
	pcfg.Dir = dir

	switch phase {
	case "storm":
		pm, walks, _, err := persist.Open(pcfg)
		if err != nil {
			return err
		}
		soc := socialstore.New(base.Clone())
		mt := newEngineMaintainer(engine, soc, r, eps, seed, walks)
		mt.Bootstrap()
		// Commit cursor -1 (nothing applied yet) before the first real edge:
		// this declares the run transactional, so a kill before the first
		// per-edge marker becomes durable still discards the uncommitted WAL
		// suffix instead of replaying it under plain-persistence rules.
		if err := pm.Commit(-1, mt.UpdateRNGState()); err != nil {
			return err
		}
		if err := pm.Checkpoint(); err != nil {
			return err
		}
		for i, ev := range storm {
			if ev.Del {
				mt.ApplyDeletion(ev.Edge)
				// Journal the graph-level deletion before its covering commit
				// marker, so recovery can prove which deletions were durable.
				if err := pm.LogRemoveEdge(ev.Edge.From, ev.Edge.To); err != nil {
					return err
				}
			} else {
				mt.ApplyEdge(ev.Edge)
			}
			if err := pm.Commit(int64(i), mt.UpdateRNGState()); err != nil {
				return err
			}
			if i == len(storm)/3 {
				// Mid-storm checkpoint: the kill may land in any of the
				// snapshot/WAL handshake windows.
				if err := pm.Checkpoint(); err != nil {
					return err
				}
			}
			fmt.Printf("EDGE %d\n", i)
		}
		fmt.Println("DONE")
		return pm.Close()

	case "resume":
		t0 := time.Now()
		pm, walks, info, err := persist.Open(persist.Config{Dir: dir})
		if err != nil {
			return err
		}
		defer pm.Close()
		if !info.Committed {
			return fmt.Errorf("recovered directory has no commit marker (cursor %d)", info.Cursor)
		}
		soc := socialstore.New(base.Clone())
		for _, ev := range storm[:info.Cursor+1] {
			if ev.Del {
				// Same swap-delete the live run performed: the rebuilt
				// adjacency rows end up in the identical order, so fresh
				// tails sample identically in the redo below.
				soc.RemoveEdge(ev.Edge.From, ev.Edge.To)
			} else {
				soc.AddEdge(ev.Edge.From, ev.Edge.To)
			}
		}
		// Cross-check the WAL's remove-edge markers against the regenerated
		// deletions: the recovered markers cover the window since the last
		// checkpoint, so they must be exactly the tail of the deletion
		// sequence up to the recovered cursor.
		var dels []graph.Edge
		for _, ev := range storm[:info.Cursor+1] {
			if ev.Del {
				dels = append(dels, ev.Edge)
			}
		}
		walDeletesMatch := len(info.RemovedEdges) <= len(dels)
		if walDeletesMatch {
			tail := dels[len(dels)-len(info.RemovedEdges):]
			for i, ed := range info.RemovedEdges {
				if tail[i] != ed {
					walDeletesMatch = false
					break
				}
			}
		}
		mt := recoverEngineMaintainer(engine, soc, r, eps, seed, walks)
		if err := mt.RestoreUpdateRNGState(info.State); err != nil {
			return err
		}
		// Redo the tail per-op, re-journaling each deletion like the storm
		// phase would have.
		for _, ev := range storm[info.Cursor+1:] {
			if ev.Del {
				mt.ApplyDeletion(ev.Edge)
				if err := pm.LogRemoveEdge(ev.Edge.From, ev.Edge.To); err != nil {
					return err
				}
			} else {
				mt.ApplyEdge(ev.Edge)
			}
		}
		res := crashResult{
			Cursor:          info.Cursor,
			Replayed:        info.Replayed,
			Discarded:       info.Discarded,
			TornBytes:       info.TornBytes,
			RecoverySeconds: time.Since(t0).Seconds(),
			Fingerprint:     storeFingerprint(walks),
			WalDeletesMatch: walDeletesMatch,
		}
		if verr := walks.Validate(); verr != nil {
			res.ValidateError = verr.Error()
		} else {
			res.ValidateClean = true
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		return writeFileAtomic(filepath.Join(dir, "crash_result.json"), append(buf, '\n'))
	}
	return fmt.Errorf("unknown crash phase %q", phase)
}
