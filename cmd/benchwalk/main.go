// Command benchwalk is the reproducible walk-engine benchmark: it builds a
// preferential-attachment graph, times full walk-store construction (n·R
// segments) and an edge-arrival update storm at several worker counts, and
// writes the results to a JSON file (BENCH_walkgen.json at the repo root by
// convention) so the performance trajectory is tracked across PRs. The
// report records num_cpu and gomaxprocs, so a committed result is
// self-describing about how much parallel speedup the host could even show.
//
// The maintainer storms replay the same arrivals through the incremental
// pagerank.Maintainer and salsa.Maintainer at each -updateworkers count
// (1 = the serialized exact path, >1 = the striped parallel path) and
// report, next to throughput, the fast-path skip rate and the social-store
// call counts the paper's cost analysis is stated in. The concurrent-query
// profile runs personalized SALSA queries *while* a parallel storm is
// consuming arrivals — the read-mostly path that used to serialize against
// updates.
//
// The churn profile (-churn, on by default) folds the storm into a
// shrink-grow event stream — arrivals interleaved with deletions of live
// edges — and replays it through both maintainers (delete throughput of the
// reverse reroute rule), then streams the storm through the engine's
// sliding window at a capacity below the stream length so expiring edges
// exercise the deletion path continuously.
//
// The arrival stream's shape is selectable with -workload: uniform (the
// default random-pair mix), poisson-burst (temporally clumped arrivals
// sharing a source), bipartite (follower-graph hub->authority arrivals with
// a Zipf popularity law), or power-law (Zipf-skewed endpoints on both
// sides). The adversarial section (-adversarial, on by default) additionally
// replays all three adversarial shapes through the serialized SALSA
// maintainer so one report carries columns for every workload. -compactevery N
// triggers walk-arena compaction every N updates inside the maintainers and
// the window driver; the arena live/total/garbage columns record what it
// reclaimed, and -verify bounds the post-storm garbage ratio whenever the
// report was taken with compaction on.
//
// The durability sweep (-wal) replays a serialized pagerank storm with every
// walk-store mutation journaled through internal/persist at each fsync
// policy, commits a marker per edge, and times a cold recovery. The crash
// harness (-crash) re-execs this binary as a child, kill -9s it mid-storm at
// a seeded edge, recovers in a fresh child, and asserts the resumed estimates
// are bitwise-identical to an uninterrupted run.
//
// Usage:
//
//	go run ./cmd/benchwalk                    # full run: n=100k, d=10
//	go run ./cmd/benchwalk -smoke             # small CI-sized run
//	go run ./cmd/benchwalk -workers 1,4,8     # explicit build worker counts
//	go run ./cmd/benchwalk -updateworkers 1,4 # maintainer storm worker counts
//	go run ./cmd/benchwalk -maintstorm=false  # engine-only runs
//	go run ./cmd/benchwalk -wal batch:64      # one durability policy, not the sweep
//	go run ./cmd/benchwalk -crash -smoke      # kill -9 crash-recovery harness only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fastppr/internal/engine"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/lint"
	"fastppr/internal/pagerank"
	"fastppr/internal/persist"
	"fastppr/internal/salsa"
	"fastppr/internal/serve"
	"fastppr/internal/socialstore"
	"fastppr/internal/walkstore"
)

type runResult struct {
	Workers       int     `json:"workers"`
	BuildSeconds  float64 `json:"build_seconds"`
	Segments      int     `json:"segments"`
	BuildSteps    int64   `json:"build_steps"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	UpdateSeconds float64 `json:"update_seconds"`
	UpdateEdges   int     `json:"update_edges"`
	Rerouted      int64   `json:"rerouted_segments"`
	EdgesPerSec   float64 `json:"update_edges_per_sec"`
}

// maintainerResult reports one incremental-maintainer storm replay: the same
// arrivals consumed through pagerank.Maintainer at one update-worker count,
// with the fast-path skip rate and the call accounting against the social
// store.
type maintainerResult struct {
	UpdateWorkers int     `json:"update_workers"`
	Seconds       float64 `json:"seconds"`
	Edges         int     `json:"edges"`
	EdgesPerSec   float64 `json:"edges_per_sec"`
	FastSkips     int64   `json:"fast_skips"`
	EmptySkips    int64   `json:"empty_skips"`
	SlowPaths     int64   `json:"slow_paths"`
	SlowNoops     int64   `json:"slow_noops"`
	SkipRate      float64 `json:"skip_rate"`
	Rerouted      int64   `json:"rerouted_segments"`
	Revived       int64   `json:"revived_segments"`
	StoreReads    int64   `json:"store_reads"`
	StoreWrites   int64   `json:"store_writes"`
	ArenaLive     int64   `json:"arena_live_slots"`
	ArenaTotal    int64   `json:"arena_total_slots"`
	ArenaGarbage  float64 `json:"arena_garbage_ratio"`
}

// salsaResult reports one SALSA maintainer storm replay and (on the last
// worker count) the personalized-query latency/cost profile: mean store
// calls per query next to the Theorem 8 accounting ceiling those calls are
// measured against.
type salsaResult struct {
	UpdateWorkers int `json:"update_workers"`
	// LegacyScan marks the comparison replay that enumerates repair
	// candidates by walking every visitor's full path (the pre-index scan)
	// instead of the pending-position index.
	LegacyScan       bool    `json:"legacy_scan,omitempty"`
	BootstrapSeconds float64 `json:"bootstrap_seconds"`
	StormSeconds     float64 `json:"storm_seconds"`
	Edges            int     `json:"edges"`
	EdgesPerSec      float64 `json:"edges_per_sec"`
	SkipRate         float64 `json:"skip_rate"`
	SlowNoops        int64   `json:"slow_noops"`
	Rerouted         int64   `json:"rerouted_segments"`
	Revived          int64   `json:"revived_segments"`
	Queries          int     `json:"queries,omitempty"`
	QueryWalks       int     `json:"query_walks,omitempty"`
	MeanQueryMillis  float64 `json:"mean_query_millis,omitempty"`
	P50QueryMillis   float64 `json:"p50_query_millis,omitempty"`
	P99QueryMillis   float64 `json:"p99_query_millis,omitempty"`
	MeanStoreCalls   float64 `json:"mean_store_calls_per_query,omitempty"`
	MaxStoreCalls    int64   `json:"max_store_calls_per_query,omitempty"`
	Theorem8Bound    float64 `json:"theorem8_bound_per_query,omitempty"`
	MeanStitched     float64 `json:"mean_stitched_segments_per_query,omitempty"`
	ArenaLive        int64   `json:"arena_live_slots"`
	ArenaTotal       int64   `json:"arena_total_slots"`
	ArenaGarbage     float64 `json:"arena_garbage_ratio"`
}

// adversarialResult reports one adversarial-workload replay: the named
// arrival stream consumed through the serialized SALSA maintainer, with the
// arena columns showing what the stream's churn left behind (or what
// -compactevery reclaimed).
type adversarialResult struct {
	Workload     string  `json:"workload"`
	Seconds      float64 `json:"seconds"`
	Edges        int     `json:"edges"`
	EdgesPerSec  float64 `json:"edges_per_sec"`
	SkipRate     float64 `json:"skip_rate"`
	SlowNoops    int64   `json:"slow_noops"`
	Rerouted     int64   `json:"rerouted_segments"`
	Revived      int64   `json:"revived_segments"`
	ArenaLive    int64   `json:"arena_live_slots"`
	ArenaTotal   int64   `json:"arena_total_slots"`
	ArenaGarbage float64 `json:"arena_garbage_ratio"`
}

// concurrentQueryResult profiles personalized queries racing a parallel
// SALSA storm: the storm's throughput while queries were in flight, the
// query latency under write load (mean plus nearest-rank p50/p99 tail), and
// the mean walk-store epoch drift each query observed (how many segment
// mutations landed mid-query). Queries is the measured total across all
// querier goroutines: the -queries flag caps that shared total (the same
// semantics as the serial profile), and the storm draining first ends the
// profile early.
type concurrentQueryResult struct {
	StormWorkers     int     `json:"storm_workers"`
	Queriers         int     `json:"queriers"`
	Queries          int     `json:"queries"`
	QueryWalks       int     `json:"query_walks"`
	StormSeconds     float64 `json:"storm_seconds"`
	StormEdgesPerSec float64 `json:"storm_edges_per_sec"`
	MeanQueryMillis  float64 `json:"mean_query_millis"`
	P50QueryMillis   float64 `json:"p50_query_millis"`
	P99QueryMillis   float64 `json:"p99_query_millis"`
	MeanStoreCalls   float64 `json:"mean_store_calls_per_query"`
	MaxStoreCalls    int64   `json:"max_store_calls_per_query"`
	Theorem8Bound    float64 `json:"theorem8_bound_per_query"`
	MeanEpochDrift   float64 `json:"mean_epoch_drift_per_query"`
}

// serveResult profiles the internal/serve tier. The racing phase hammers a
// hot-spot source mix from concurrent queriers while a parallel storm
// consumes arrivals (sustained serving under write load: p50/p99 latency,
// cache-hit rate, worst-case store calls). The quiescent phase then times
// cold computes against cache-hit repeats on the settled store and
// cross-checks every hit bitwise against a fresh recompute on the hit's
// recorded RNG stream.
type serveResult struct {
	StormWorkers     int     `json:"storm_workers"`
	Queriers         int     `json:"queriers"`
	QueryWalks       int     `json:"query_walks"`
	HotSources       int     `json:"hot_sources"`
	Queries          int     `json:"queries"`
	Hits             int64   `json:"hits"`
	Misses           int64   `json:"misses"`
	Coalesced        int64   `json:"coalesced"`
	Raced            int64   `json:"raced"`
	Invalidated      int64   `json:"invalidated"`
	HitRate          float64 `json:"hit_rate"`
	MeanQueryMillis  float64 `json:"mean_query_millis"`
	P50QueryMillis   float64 `json:"p50_query_millis"`
	P99QueryMillis   float64 `json:"p99_query_millis"`
	MaxStoreCalls    int64   `json:"max_store_calls_per_query"`
	Theorem8Bound    float64 `json:"theorem8_bound_per_query"`
	StormSeconds     float64 `json:"storm_seconds"`
	StormEdgesPerSec float64 `json:"storm_edges_per_sec"`
	SlowNoops        int64   `json:"slow_noops"`
	ValidateClean    bool    `json:"validate_clean"`
	// Quiescent-phase columns: mean cold (miss) latency vs mean cached-hit
	// latency over the same sources, their ratio, and whether every hit was
	// bitwise identical to a fresh recompute at the same epoch.
	ColdMillis        float64 `json:"quiescent_cold_millis"`
	HitMillis         float64 `json:"quiescent_hit_millis"`
	HitSpeedup        float64 `json:"hit_speedup"`
	HitRecomputeMatch bool    `json:"hit_recompute_match"`
}

// churnResult reports one maintainer churn-storm replay: the update storm
// folded into a shrink-grow event stream (arrivals and deletions
// interleaved) and consumed through one incremental maintainer, with the
// deletion throughput the reverse reroute rule sustains next to the event
// throughput.
type churnResult struct {
	Engine        string  `json:"engine"` // "pagerank" or "salsa"
	UpdateWorkers int     `json:"update_workers"`
	Seconds       float64 `json:"seconds"`
	Events        int     `json:"events"`
	Arrivals      int     `json:"arrivals"`
	Deletions     int     `json:"deletions"`
	EventsPerSec  float64 `json:"events_per_sec"`
	DeletesPerSec float64 `json:"deletes_per_sec"`
	DelMisses     int64   `json:"del_misses"`
	DelRerouted   int64   `json:"del_rerouted_segments"`
	DelTruncated  int64   `json:"del_truncated_segments"`
	SlowNoops     int64   `json:"slow_noops"`
}

// windowResult reports the sliding-window driver: the storm streamed
// through engine.ApplyWindow at a capacity below the stream length, so
// every arrival past the fill phase expires the oldest windowed edge
// through the deletion path.
type windowResult struct {
	Capacity     int     `json:"capacity"`
	Streamed     int     `json:"streamed"`
	Expired      int     `json:"expired"`
	Turnover     float64 `json:"turnover"`
	Seconds      float64 `json:"seconds"`
	EdgesPerSec  float64 `json:"edges_per_sec"`
	Rerouted     int64   `json:"expiry_rerouted_segments"`
	Truncated    int64   `json:"expiry_truncated_segments"`
	DeleteMissed int     `json:"delete_missed"`
	ArenaLive    int64   `json:"arena_live_slots"`
	ArenaTotal   int64   `json:"arena_total_slots"`
	ArenaGarbage float64 `json:"arena_garbage_ratio"`
}

// churnReport groups the -churn profile: maintainer churn storms per
// engine and update-worker count, plus the sliding-window turnover run.
type churnReport struct {
	Storms []churnResult `json:"storms"`
	Window *windowResult `json:"window,omitempty"`
}

type report struct {
	Timestamp    string  `json:"timestamp"`
	GoVersion    string  `json:"go_version"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	GOGC         int     `json:"gogc,omitempty"`
	Nodes        int     `json:"nodes"`
	EdgesPerNode int     `json:"edges_per_node"`
	GraphEdges   int     `json:"graph_edges"`
	R            int     `json:"segments_per_node"`
	Eps          float64 `json:"eps"`
	Seed         uint64  `json:"seed"`
	// Workload names the arrival-stream shape of the main storm (-workload);
	// CompactEvery is the maintainers' arena-compaction period (0 = off).
	Workload     string `json:"workload,omitempty"`
	CompactEvery int    `json:"compact_every,omitempty"`
	// LintClean records the walklint verdict on the measured tree
	// (-lintclean; absent when the caller did not record one), and
	// LintVersion the compiled-in analyzer-suite revision that judged it —
	// so a committed report also attests the tree it measured was
	// invariant-clean. -verify rejects a report claiming lint_clean=false.
	LintClean   *bool       `json:"lint_clean,omitempty"`
	LintVersion string      `json:"lint_version,omitempty"`
	Runs        []runResult `json:"runs"`
	// SpeedupBuild is max-worker build throughput over the 1-worker run —
	// only meaningful when num_cpu > 1; the recorded core count makes a
	// committed single-core ~1x self-explanatory.
	SpeedupBuild float64 `json:"speedup_build"`
	// MaintainerStorms holds one entry per -updateworkers count (absent
	// with -maintstorm=false).
	MaintainerStorms []maintainerResult `json:"maintainer_storms,omitempty"`
	// SpeedupMaintainerStorm is max-worker storm throughput over the
	// 1-worker (serialized) run.
	SpeedupMaintainerStorm float64 `json:"speedup_maintainer_storm,omitempty"`
	// SalsaStorms holds one entry per -updateworkers count plus one
	// legacy-scan comparison replay at the serialized worker count (absent
	// with -salsa=false).
	SalsaStorms       []salsaResult `json:"salsa_storms,omitempty"`
	SpeedupSalsaStorm float64       `json:"speedup_salsa_storm,omitempty"`
	// SpeedupIndexVsScan is serialized indexed-storm throughput over the
	// legacy full-path-scan replay of the same arrivals — the pending-position
	// index's headline win.
	SpeedupIndexVsScan float64 `json:"speedup_index_vs_scan,omitempty"`
	// ConcurrentQueries is the queries-racing-arrivals profile (absent with
	// -salsa=false or -queries 0).
	ConcurrentQueries *concurrentQueryResult `json:"concurrent_queries,omitempty"`
	// ServeQueries is the serving-tier profile: cached queries racing a
	// storm, then cold-vs-hit timing on the settled store (absent with
	// -salsa=false or -queries 0).
	ServeQueries *serveResult `json:"serve_queries,omitempty"`
	// AdversarialStorms replays the three adversarial arrival workloads
	// through the serialized SALSA maintainer (absent with -adversarial=false
	// or -salsa=false).
	AdversarialStorms []adversarialResult `json:"adversarial_storms,omitempty"`
	// Churn is the -churn profile: shrink-grow deletion storms through both
	// maintainers plus the sliding-window driver (absent with -churn=false).
	Churn *churnReport `json:"churn,omitempty"`
	// Durability is the fsync-policy sweep: the serialized pagerank storm
	// with WAL journaling and one commit marker per edge, plus cold-recovery
	// timing (absent with -wal off).
	Durability []durabilityResult `json:"durability,omitempty"`
	// Crash is the kill -9 crash-recovery harness report (only with -crash;
	// a crash report carries no engine runs).
	Crash *crashReport `json:"crash,omitempty"`
}

func main() {
	var (
		n        = flag.Int("n", 100_000, "graph nodes")
		d        = flag.Int("d", 10, "out-edges per node (preferential attachment)")
		r        = flag.Int("r", 8, "walk segments per node (the paper's R)")
		eps      = flag.Float64("eps", 0.2, "walk reset probability")
		updates  = flag.Int("updates", 20_000, "edge arrivals in the update storm")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		out      = flag.String("out", "BENCH_walkgen.json", "output JSON path ('' to skip)")
		workers  = flag.String("workers", "", "comma-separated build worker counts (default 1,P/2,P)")
		uworkers = flag.String("updateworkers", "", "comma-separated maintainer storm worker counts (default 1,max(4,P))")
		smoke    = flag.Bool("smoke", false, "tiny CI run (overrides -n/-d/-r/-updates)")
		mstorm   = flag.Bool("maintstorm", true, "replay the storm through the incremental maintainer (skip rate + store calls)")
		dosalsa  = flag.Bool("salsa", true, "replay the storm through the SALSA maintainer and profile personalized queries")
		dochurn  = flag.Bool("churn", true, "replay a shrink-grow churn stream (arrivals + deletions) through both maintainers and the sliding-window driver")
		workload = flag.String("workload", "uniform", "arrival stream shape: uniform, poisson-burst, bipartite, power-law")
		doadv    = flag.Bool("adversarial", true, "replay the three adversarial arrival workloads through the serialized SALSA maintainer")
		compactN = flag.Int("compactevery", 0, "trigger walk-arena compaction every N updates in the maintainers and window driver (0 disables)")
		queries  = flag.Int("queries", 20, "personalized SALSA queries to profile (0 skips the query profiles)")
		qwalks   = flag.Int("querywalks", 2_000, "Monte Carlo walks per personalized query")
		verify   = flag.String("verify", "", "validate an existing report JSON (parses, non-zero throughputs) and exit")
		lintok   = flag.String("lintclean", "", "record the walklint verdict (true or false) as lint_clean/lint_version provenance; empty omits the fields")
		gogc     = flag.Int("gogc", 300, "GOGC during the benchmark (walk stores churn arena garbage; recorded in the report)")
		walpol   = flag.String("wal", "sweep", "durability sweep policy: sweep, off, record, batch:N, or interval:DUR")
		snapdir  = flag.String("snapshot", "", "directory for WAL/snapshot artifacts (default: a temp dir, removed afterwards)")
		crash    = flag.Bool("crash", false, "run only the kill -9 crash-recovery harness and write its report")

		// Internal flags for the crash harness's re-exec protocol; not for
		// direct use.
		crashchild = flag.String("crashchild", "", "internal: run as a crash-harness child for this engine (pagerank or salsa)")
		crashphase = flag.String("crashphase", "storm", "internal: crash-child phase (storm or resume)")
		crashdir   = flag.String("crashdir", "", "internal: crash-child persistence directory")
	)
	flag.Parse()
	if *verify != "" {
		if err := verifyReport(*verify); err != nil {
			fmt.Fprintln(os.Stderr, "benchwalk:", err)
			os.Exit(1)
		}
		fmt.Printf("benchwalk: %s OK\n", *verify)
		return
	}
	if *smoke {
		*n, *d, *r, *updates = 2_000, 5, 4, 500
		*queries, *qwalks = 5, 200
	}
	// Reject nonsense up front: an out-of-range parameter would not fail
	// loudly here, it would hang the storm generator (-n < 2, -updates < 0)
	// or write a silently corrupt BENCH_walkgen.json.
	if *eps <= 0 || *eps >= 1 {
		fmt.Fprintf(os.Stderr, "benchwalk: -eps must be in (0, 1), got %g\n", *eps)
		os.Exit(2)
	}
	if *n < 2 || *d < 1 || *r < 1 {
		fmt.Fprintln(os.Stderr, "benchwalk: need -n >= 2, -d >= 1, -r >= 1")
		os.Exit(2)
	}
	if *updates < 1 {
		fmt.Fprintf(os.Stderr, "benchwalk: -updates must be >= 1, got %d\n", *updates)
		os.Exit(2)
	}
	if *queries < 0 {
		fmt.Fprintf(os.Stderr, "benchwalk: -queries must be >= 0, got %d\n", *queries)
		os.Exit(2)
	}
	if *qwalks < 1 {
		fmt.Fprintf(os.Stderr, "benchwalk: -querywalks must be >= 1, got %d\n", *qwalks)
		os.Exit(2)
	}
	if *gogc < 0 {
		fmt.Fprintf(os.Stderr, "benchwalk: -gogc must be >= 0 (0 leaves the runtime default), got %d\n", *gogc)
		os.Exit(2)
	}
	if *compactN < 0 {
		fmt.Fprintf(os.Stderr, "benchwalk: -compactevery must be >= 0, got %d\n", *compactN)
		os.Exit(2)
	}
	if !slices.Contains(workloadNames, *workload) {
		fmt.Fprintf(os.Stderr, "benchwalk: unknown -workload %q (want one of %s)\n", *workload, strings.Join(workloadNames, ", "))
		os.Exit(2)
	}
	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}
	if *walpol != "sweep" && *walpol != "off" {
		if _, err := parsePolicy(*walpol); err != nil {
			fmt.Fprintln(os.Stderr, "benchwalk:", err)
			os.Exit(2)
		}
	}
	var lintClean *bool
	lintVersion := ""
	if *lintok != "" {
		v, err := strconv.ParseBool(*lintok)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchwalk: -lintclean must be true or false, got %q\n", *lintok)
			os.Exit(2)
		}
		lintClean = &v
		lintVersion = lint.Version
	}

	if *crashchild != "" {
		// Re-exec'd by runCrashHarness; no signal handling — the parent kills
		// the storm phase with SIGKILL on purpose.
		if err := runCrashChild(*crashchild, *crashphase, *crashdir, *n, *d, *r, *eps, *seed, *updates); err != nil {
			fmt.Fprintln(os.Stderr, "benchwalk crash child:", err)
			os.Exit(1)
		}
		return
	}
	watchSignals()

	p := runtime.GOMAXPROCS(0)
	counts := workerCounts(*workers, []int{1, p / 2, p})
	ucounts := workerCounts(*uworkers, []int{1, max(4, p)})

	if *crash {
		root, cleanup := artifactRoot(*snapdir, "benchwalk-crash-")
		defer cleanup()
		cr, err := runCrashHarness(*n, *d, *r, *eps, *seed, *updates, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchwalk:", err)
			os.Exit(1)
		}
		rep := report{
			Timestamp:    time.Now().UTC().Format(time.RFC3339),
			GoVersion:    runtime.Version(),
			GOMAXPROCS:   p,
			NumCPU:       runtime.NumCPU(),
			GOGC:         *gogc,
			Nodes:        *n,
			EdgesPerNode: *d,
			R:            *r,
			Eps:          *eps,
			Seed:         *seed,
			LintClean:    lintClean,
			LintVersion:  lintVersion,
			Crash:        cr,
		}
		writeReport(*out, rep)
		for _, run := range cr.Runs {
			if !run.ValidateClean || !run.EstimatesMatch || !run.WalDeletesMatch {
				fmt.Fprintf(os.Stderr, "benchwalk: crash run %s failed (validate_clean=%v estimates_match=%v wal_deletes_match=%v)\n",
					run.Engine, run.ValidateClean, run.EstimatesMatch, run.WalDeletesMatch)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("benchwalk: building preferential-attachment graph n=%d d=%d (GOMAXPROCS=%d, NumCPU=%d)\n",
		*n, *d, p, runtime.NumCPU())
	rng := rand.New(rand.NewPCG(*seed, 0))
	base := gen.PreferentialAttachment(*n, *d, rng)
	nodes := base.Nodes()
	storm := makeStorm(*workload, *n, *updates, rng)

	rep := report{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   p,
		NumCPU:       runtime.NumCPU(),
		GOGC:         *gogc,
		Nodes:        *n,
		EdgesPerNode: *d,
		GraphEdges:   base.NumEdges(),
		R:            *r,
		Eps:          *eps,
		Seed:         *seed,
		Workload:     *workload,
		CompactEvery: *compactN,
		LintClean:    lintClean,
		LintVersion:  lintVersion,
	}

	for _, w := range counts {
		bailIfInterrupted(nil)
		res := benchOne(base, nodes, storm, *r, *eps, *seed, w)
		rep.Runs = append(rep.Runs, res)
		fmt.Printf("workers=%-3d build %7.3fs (%.2fM steps/s)   storm %7.3fs (%.0f edges/s, %d rerouted)\n",
			w, res.BuildSeconds, res.StepsPerSec/1e6, res.UpdateSeconds, res.EdgesPerSec, res.Rerouted)
	}

	if len(rep.Runs) > 1 {
		first, last := rep.Runs[0], rep.Runs[len(rep.Runs)-1]
		if first.StepsPerSec > 0 {
			rep.SpeedupBuild = last.StepsPerSec / first.StepsPerSec
		}
		fmt.Printf("build speedup %dw vs %dw: %.2fx\n", last.Workers, first.Workers, rep.SpeedupBuild)
	}

	if *mstorm {
		for _, uw := range ucounts {
			bailIfInterrupted(nil)
			res := benchMaintainer(base, storm, *r, *eps, *seed, uw, *compactN)
			rep.MaintainerStorms = append(rep.MaintainerStorms, res)
			fmt.Printf("maintainer storm uw=%-2d %7.3fs (%.0f edges/s)   skip %.1f%% (fast %d, empty %d, slow %d, noop %d)   store reads %d writes %d\n",
				uw, res.Seconds, res.EdgesPerSec, 100*res.SkipRate, res.FastSkips, res.EmptySkips, res.SlowPaths,
				res.SlowNoops, res.StoreReads, res.StoreWrites)
		}
		if s := rep.MaintainerStorms; len(s) > 1 && s[0].EdgesPerSec > 0 {
			rep.SpeedupMaintainerStorm = s[len(s)-1].EdgesPerSec / s[0].EdgesPerSec
			fmt.Printf("maintainer storm speedup %dw vs %dw: %.2fx\n",
				s[len(s)-1].UpdateWorkers, s[0].UpdateWorkers, rep.SpeedupMaintainerStorm)
		}
	}

	if *dosalsa {
		for i, uw := range ucounts {
			bailIfInterrupted(nil)
			profile := 0
			if i == len(ucounts)-1 {
				profile = *queries // query profile once, on the final store
			}
			res := benchSalsa(base, storm, *r, *eps, *seed, profile, *qwalks, uw, false, *compactN)
			rep.SalsaStorms = append(rep.SalsaStorms, res)
			fmt.Printf("salsa storm uw=%-2d      %7.3fs (%.0f edges/s)   skip %.1f%% (%d rerouted, %d revived, %d noop)\n",
				uw, res.StormSeconds, res.EdgesPerSec, 100*res.SkipRate, res.Rerouted, res.Revived, res.SlowNoops)
			if profile > 0 {
				fmt.Printf("salsa queries    %d x %d walks: %.2fms/query, store calls mean %.0f max %d (Theorem 8 ceiling %.0f), %.0f segments stitched/query\n",
					res.Queries, res.QueryWalks, res.MeanQueryMillis, res.MeanStoreCalls, res.MaxStoreCalls,
					res.Theorem8Bound, res.MeanStitched)
			}
		}
		if s := rep.SalsaStorms; len(s) > 1 && s[0].EdgesPerSec > 0 {
			rep.SpeedupSalsaStorm = s[len(s)-1].EdgesPerSec / s[0].EdgesPerSec
			fmt.Printf("salsa storm speedup %dw vs %dw: %.2fx\n",
				s[len(s)-1].UpdateWorkers, s[0].UpdateWorkers, rep.SpeedupSalsaStorm)
		}
		// Indexed-vs-scan comparison: the same serialized storm with the
		// pending-position index bypassed (full-path candidate enumeration).
		legacy := benchSalsa(base, storm, *r, *eps, *seed, 0, *qwalks, ucounts[0], true, *compactN)
		legacy.LegacyScan = true
		rep.SalsaStorms = append(rep.SalsaStorms, legacy)
		fmt.Printf("salsa storm uw=%-2d scan %7.3fs (%.0f edges/s)   [legacy full-path scan]\n",
			legacy.UpdateWorkers, legacy.StormSeconds, legacy.EdgesPerSec)
		if legacy.EdgesPerSec > 0 {
			rep.SpeedupIndexVsScan = rep.SalsaStorms[0].EdgesPerSec / legacy.EdgesPerSec
			fmt.Printf("salsa index vs full scan (uw=%d): %.2fx\n", ucounts[0], rep.SpeedupIndexVsScan)
		}
		if *queries > 0 {
			cq := benchConcurrentQueries(base, storm, *r, *eps, *seed, *queries, *qwalks, ucounts[len(ucounts)-1])
			rep.ConcurrentQueries = &cq
			fmt.Printf("concurrent queries (storm uw=%d): %d queries in flight, %.2fms/query (p50 %.2f, p99 %.2f), %.0f calls/query (max %d), %.0f epoch drift/query; storm %.0f edges/s\n",
				cq.StormWorkers, cq.Queries, cq.MeanQueryMillis, cq.P50QueryMillis, cq.P99QueryMillis,
				cq.MeanStoreCalls, cq.MaxStoreCalls, cq.MeanEpochDrift, cq.StormEdgesPerSec)
			sv := benchServe(base, storm, *r, *eps, *seed, *queries, *qwalks, ucounts[len(ucounts)-1])
			rep.ServeQueries = &sv
			fmt.Printf("serve tier (storm uw=%d): %d served, hit rate %.0f%% (%d hits, %d misses, %d coalesced, %d raced), %.2fms/query (p50 %.2f, p99 %.2f), max calls %d\n",
				sv.StormWorkers, sv.Queries, 100*sv.HitRate, sv.Hits, sv.Misses, sv.Coalesced, sv.Raced,
				sv.MeanQueryMillis, sv.P50QueryMillis, sv.P99QueryMillis, sv.MaxStoreCalls)
			fmt.Printf("serve quiescent: cold %.3fms vs hit %.5fms = %.0fx, recompute match %v, validate clean %v\n",
				sv.ColdMillis, sv.HitMillis, sv.HitSpeedup, sv.HitRecomputeMatch, sv.ValidateClean)
		}
	}

	if *doadv && *dosalsa {
		for _, name := range workloadNames[1:] { // skip uniform: that is the main storm
			bailIfInterrupted(nil)
			res := benchAdversarial(base, name, *n, *updates, *r, *eps, *seed, *compactN)
			rep.AdversarialStorms = append(rep.AdversarialStorms, res)
			fmt.Printf("adversarial %-13s %7.3fs (%.0f edges/s)   skip %.1f%% (%d rerouted, %d revived, %d noop)   arena %d/%d (%.0f%% garbage)\n",
				res.Workload, res.Seconds, res.EdgesPerSec, 100*res.SkipRate, res.Rerouted, res.Revived, res.SlowNoops,
				res.ArenaLive, res.ArenaTotal, 100*res.ArenaGarbage)
		}
	}

	if *dochurn {
		bailIfInterrupted(nil)
		ch := benchChurn(base, storm, *r, *eps, *seed, ucounts, *compactN)
		rep.Churn = &ch
		for _, cs := range ch.Storms {
			fmt.Printf("churn storm %-8s uw=%-2d %7.3fs (%.0f events/s, %.0f deletes/s; %d deletions, %d missed, %d rerouted, %d truncated)\n",
				cs.Engine, cs.UpdateWorkers, cs.Seconds, cs.EventsPerSec, cs.DeletesPerSec,
				cs.Deletions, cs.DelMisses, cs.DelRerouted, cs.DelTruncated)
		}
		if w := ch.Window; w != nil {
			fmt.Printf("window capacity %d: %d streamed, %d expired (turnover %.2f), %.0f edges/s (%d rerouted, %d truncated on expiry)\n",
				w.Capacity, w.Streamed, w.Expired, w.Turnover, w.EdgesPerSec, w.Rerouted, w.Truncated)
		}
	}

	if *walpol != "off" {
		bailIfInterrupted(nil)
		policies := []string{"record", "batch:64", "none"}
		if *walpol != "sweep" {
			policies = []string{*walpol}
		}
		root, cleanup := artifactRoot(*snapdir, "benchwalk-wal-")
		dur, err := benchDurability(base, storm, *r, *eps, *seed, root, policies)
		cleanup()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchwalk:", err)
			os.Exit(1)
		}
		rep.Durability = dur
	}

	writeReport(*out, rep)
}

// writeReport marshals and atomically writes the report (no-op when path is
// empty), exiting loudly on failure.
func writeReport(path string, rep report) {
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchwalk:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := writeFileAtomic(path, buf); err != nil {
		fmt.Fprintln(os.Stderr, "benchwalk:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// writeFileAtomic writes data via a temp file + rename so an interrupt or
// crash mid-write never leaves a truncated file under the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// artifactRoot resolves where durability artifacts (WALs, snapshots) live: the
// -snapshot directory when given (kept afterwards), else a temp dir with a
// cleanup that removes it.
func artifactRoot(flagDir, tmpPrefix string) (string, func()) {
	if flagDir != "" {
		return flagDir, func() {}
	}
	root, err := os.MkdirTemp("", tmpPrefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchwalk:", err)
		os.Exit(1)
	}
	return root, func() { os.RemoveAll(root) }
}

// interrupted flips when SIGINT/SIGTERM arrives; the benchmark loops poll it
// at safe points instead of dying mid-write.
var interrupted atomic.Bool

func watchSignals() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		fmt.Fprintf(os.Stderr, "benchwalk: caught %v, stopping at the next safe point (repeat to kill)\n", s)
		interrupted.Store(true)
		signal.Stop(ch) // a second signal gets default handling: immediate death
	}()
}

// bailIfInterrupted exits with a non-zero status at a safe point once a
// signal has arrived. When a live persistence manager is passed, it flushes a
// final snapshot first so the artifact directory holds a clean resume point
// rather than a mid-storm WAL.
func bailIfInterrupted(pm *persist.Manager) {
	if !interrupted.Load() {
		return
	}
	if pm != nil {
		if err := pm.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "benchwalk: final checkpoint:", err)
		} else if err := pm.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchwalk: final close:", err)
		} else {
			fmt.Fprintln(os.Stderr, "benchwalk: flushed final snapshot")
		}
	}
	fmt.Fprintln(os.Stderr, "benchwalk: interrupted, no report written")
	os.Exit(130)
}

// verifyReport loads a previously written report and checks it is sane: it
// parses, every run is present, and every recorded throughput is positive.
// CI runs it on the smoke report so a harness regression (bad flags, a
// storm that silently did nothing) fails the build instead of committing a
// corrupt BENCH_walkgen.json shape.
func verifyReport(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s does not parse as a benchwalk report: %w", path, err)
	}
	// Lint provenance, when recorded, must attest a clean tree and name the
	// analyzer-suite revision that judged it.
	if rep.LintClean != nil {
		if !*rep.LintClean {
			return fmt.Errorf("%s records lint_clean=false: the measured tree failed walklint", path)
		}
		if rep.LintVersion == "" {
			return fmt.Errorf("%s records a walklint verdict without lint_version provenance", path)
		}
	}
	if rep.Crash != nil {
		if len(rep.Crash.Runs) == 0 {
			return fmt.Errorf("%s has a crash section with no runs", path)
		}
		for _, c := range rep.Crash.Runs {
			if !c.ValidateClean {
				return fmt.Errorf("%s: crash run %s recovered into an invalid store", path, c.Engine)
			}
			if !c.EstimatesMatch {
				return fmt.Errorf("%s: crash run %s resumed to estimates that differ from the uninterrupted run", path, c.Engine)
			}
			if c.DeleteOps <= 0 {
				return fmt.Errorf("%s: crash run %s stormed without deletions (the harness is a churn storm)", path, c.Engine)
			}
			if !c.WalDeletesMatch {
				return fmt.Errorf("%s: crash run %s recovered remove-edge markers that disagree with the regenerated deletions", path, c.Engine)
			}
			if c.KillAtEdge < 0 || c.RecoveredCursor >= int64(c.StormEdges) {
				return fmt.Errorf("%s: crash run %s has incoherent kill/cursor positions (%d, %d of %d)",
					path, c.Engine, c.KillAtEdge, c.RecoveredCursor, c.StormEdges)
			}
		}
	}
	if len(rep.Runs) == 0 {
		if rep.Crash != nil {
			return nil // crash-only report: no engine runs by design
		}
		return fmt.Errorf("%s has no engine runs", path)
	}
	if rep.Nodes < 2 || rep.GraphEdges <= 0 {
		return fmt.Errorf("%s records a degenerate graph (n=%d, edges=%d)", path, rep.Nodes, rep.GraphEdges)
	}
	for _, r := range rep.Runs {
		if r.StepsPerSec <= 0 || r.EdgesPerSec <= 0 {
			return fmt.Errorf("%s: engine run at %d workers has non-positive throughput (%v steps/s, %v edges/s)",
				path, r.Workers, r.StepsPerSec, r.EdgesPerSec)
		}
	}
	for _, m := range rep.MaintainerStorms {
		if m.EdgesPerSec <= 0 {
			return fmt.Errorf("%s: maintainer storm at uw=%d has non-positive throughput", path, m.UpdateWorkers)
		}
		if m.SlowNoops != 0 {
			return fmt.Errorf("%s: maintainer storm at uw=%d broke the SlowNoops == 0 invariant (%d)", path, m.UpdateWorkers, m.SlowNoops)
		}
	}
	// The garbage-ratio bound -compactevery promises: every arena column in a
	// compacting report must show the maintainers actually reclaiming
	// ReplaceTail churn rather than accumulating it.
	const maxGarbage = 0.5
	checkArena := func(where string, live, total int64, garbage float64) error {
		if live < 0 || total < live {
			return fmt.Errorf("%s: %s has incoherent arena stats (live=%d total=%d)", path, where, live, total)
		}
		if rep.CompactEvery > 0 && garbage > maxGarbage {
			return fmt.Errorf("%s: %s ended with %.0f%% arena garbage despite compact_every=%d (bound %.0f%%)",
				path, where, 100*garbage, rep.CompactEvery, 100*maxGarbage)
		}
		return nil
	}
	for _, m := range rep.MaintainerStorms {
		if err := checkArena(fmt.Sprintf("maintainer storm at uw=%d", m.UpdateWorkers), m.ArenaLive, m.ArenaTotal, m.ArenaGarbage); err != nil {
			return err
		}
	}
	for _, s := range rep.SalsaStorms {
		if s.EdgesPerSec <= 0 {
			return fmt.Errorf("%s: salsa storm at uw=%d has non-positive throughput", path, s.UpdateWorkers)
		}
		if s.SlowNoops != 0 {
			return fmt.Errorf("%s: salsa storm at uw=%d broke the SlowNoops == 0 invariant (%d)", path, s.UpdateWorkers, s.SlowNoops)
		}
		if err := checkArena(fmt.Sprintf("salsa storm at uw=%d", s.UpdateWorkers), s.ArenaLive, s.ArenaTotal, s.ArenaGarbage); err != nil {
			return err
		}
		// The paper's headline cost bound, asserted on the measured report:
		// no profiled query may exceed its Theorem 8 ceiling.
		if s.Queries > 0 && float64(s.MaxStoreCalls) > s.Theorem8Bound {
			return fmt.Errorf("%s: salsa query profile at uw=%d exceeds the Theorem 8 ceiling (%d calls > %.0f)",
				path, s.UpdateWorkers, s.MaxStoreCalls, s.Theorem8Bound)
		}
	}
	// The index's headline win is a regression guard: a report that records
	// the indexed-vs-scan comparison at all must show the index ahead.
	if rep.SpeedupIndexVsScan > 0 && rep.SpeedupIndexVsScan < 1 {
		return fmt.Errorf("%s: pending-position index is SLOWER than the legacy full-path scan (%.2fx, want >= 1x)",
			path, rep.SpeedupIndexVsScan)
	}
	for _, a := range rep.AdversarialStorms {
		if a.EdgesPerSec <= 0 {
			return fmt.Errorf("%s: adversarial storm %q has non-positive throughput", path, a.Workload)
		}
		if a.SlowNoops != 0 {
			return fmt.Errorf("%s: adversarial storm %q broke the SlowNoops == 0 invariant (%d)", path, a.Workload, a.SlowNoops)
		}
		if err := checkArena(fmt.Sprintf("adversarial storm %q", a.Workload), a.ArenaLive, a.ArenaTotal, a.ArenaGarbage); err != nil {
			return err
		}
	}
	if cq := rep.ConcurrentQueries; cq != nil && cq.Queries > 0 {
		if float64(cq.MaxStoreCalls) > cq.Theorem8Bound {
			return fmt.Errorf("%s: concurrent query profile exceeds the Theorem 8 ceiling (%d calls > %.0f)",
				path, cq.MaxStoreCalls, cq.Theorem8Bound)
		}
		if cq.P50QueryMillis <= 0 || cq.P99QueryMillis < cq.P50QueryMillis {
			return fmt.Errorf("%s: concurrent query profile has incoherent percentiles (p50 %.3f, p99 %.3f)",
				path, cq.P50QueryMillis, cq.P99QueryMillis)
		}
	}
	if sv := rep.ServeQueries; sv != nil {
		if sv.SlowNoops != 0 {
			return fmt.Errorf("%s: serve profile broke the SlowNoops == 0 invariant (%d)", path, sv.SlowNoops)
		}
		if !sv.ValidateClean {
			return fmt.Errorf("%s: serve profile left the walk store invalid", path)
		}
		if !sv.HitRecomputeMatch {
			return fmt.Errorf("%s: serve profile served a cache hit that differs from a fresh recompute at the same epoch", path)
		}
		if sv.Hits <= 0 {
			return fmt.Errorf("%s: serve profile never hit its cache", path)
		}
		if sv.HitSpeedup < 3 {
			return fmt.Errorf("%s: serve cache hits are only %.1fx faster than cold computes, want >= 3x", path, sv.HitSpeedup)
		}
		if float64(sv.MaxStoreCalls) > sv.Theorem8Bound {
			return fmt.Errorf("%s: serve profile exceeds the Theorem 8 ceiling (%d calls > %.0f)",
				path, sv.MaxStoreCalls, sv.Theorem8Bound)
		}
		if sv.Queries <= 0 || sv.P50QueryMillis <= 0 || sv.P99QueryMillis < sv.P50QueryMillis {
			return fmt.Errorf("%s: serve profile has incoherent latency columns (%d queries, p50 %.3f, p99 %.3f)",
				path, sv.Queries, sv.P50QueryMillis, sv.P99QueryMillis)
		}
	}
	if ch := rep.Churn; ch != nil {
		if len(ch.Storms) == 0 {
			return fmt.Errorf("%s has a churn section with no storms", path)
		}
		for _, cs := range ch.Storms {
			if cs.Deletions <= 0 || cs.DeletesPerSec <= 0 || cs.EventsPerSec <= 0 {
				return fmt.Errorf("%s: churn storm %s uw=%d recorded no deletion throughput (%d deletions, %.0f del/s)",
					path, cs.Engine, cs.UpdateWorkers, cs.Deletions, cs.DeletesPerSec)
			}
			if cs.SlowNoops != 0 {
				return fmt.Errorf("%s: churn storm %s uw=%d broke the SlowNoops == 0 invariant (%d)",
					path, cs.Engine, cs.UpdateWorkers, cs.SlowNoops)
			}
			// Serialized, a shrink-grow stream only ever deletes live edges;
			// a miss means the reroute rule and the stream disagree about the
			// graph. (Parallel replays may legitimately miss on races.)
			if cs.UpdateWorkers == 1 && cs.DelMisses != 0 {
				return fmt.Errorf("%s: serialized churn storm %s missed %d deletions of live edges",
					path, cs.Engine, cs.DelMisses)
			}
		}
		if w := ch.Window; w != nil {
			if w.EdgesPerSec <= 0 || w.Turnover <= 0 {
				return fmt.Errorf("%s: window profile recorded no turnover (%.2f at %.0f edges/s)",
					path, w.Turnover, w.EdgesPerSec)
			}
			if w.Streamed > w.Capacity && w.Expired != w.Streamed-w.Capacity {
				return fmt.Errorf("%s: window profile held %d edges too many/few (%d streamed, %d expired, capacity %d)",
					path, w.Streamed-w.Capacity-w.Expired, w.Streamed, w.Expired, w.Capacity)
			}
			if w.DeleteMissed != 0 {
				return fmt.Errorf("%s: window profile lost track of %d windowed edges", path, w.DeleteMissed)
			}
			if err := checkArena("window profile", w.ArenaLive, w.ArenaTotal, w.ArenaGarbage); err != nil {
				return err
			}
		}
	}
	for _, dr := range rep.Durability {
		if dr.EdgesPerSec <= 0 {
			return fmt.Errorf("%s: durability row %s has non-positive throughput", path, dr.FsyncPolicy)
		}
		if dr.RecoverySeconds <= 0 || dr.ReplayedRecords <= 0 {
			return fmt.Errorf("%s: durability row %s recorded no recovery work (%.3fs, %d replayed)",
				path, dr.FsyncPolicy, dr.RecoverySeconds, dr.ReplayedRecords)
		}
	}
	return nil
}

// benchOne times store construction and the update storm at one worker
// count, on a private clone of the graph so runs do not contaminate each
// other.
func benchOne(base *graph.Graph, nodes []graph.NodeID, storm []graph.Edge, r int, eps float64, seed uint64, w int) runResult {
	g := base.Clone()
	store := walkstore.New()
	eng := engine.New(g, store, engine.Config{Eps: eps, R: r, Workers: w, Seed: seed})

	t0 := time.Now()
	steps := eng.BuildStore(nodes)
	build := time.Since(t0)

	t1 := time.Now()
	stats := eng.ApplyEdges(storm, seed+1)
	storming := time.Since(t1)

	res := runResult{
		Workers:       w,
		BuildSeconds:  build.Seconds(),
		Segments:      store.NumSegments(),
		BuildSteps:    steps,
		UpdateSeconds: storming.Seconds(),
		UpdateEdges:   stats.Edges,
		Rerouted:      stats.Rerouted,
	}
	if s := build.Seconds(); s > 0 {
		res.StepsPerSec = float64(steps) / s
	}
	if s := storming.Seconds(); s > 0 {
		res.EdgesPerSec = float64(stats.Edges) / s
	}
	return res
}

// benchMaintainer replays the storm through the incremental maintainer on a
// private clone of the graph, timing only the arrival loop. The metrics are
// reset after bootstrap so the report isolates the incremental phase the
// paper's cost analysis is about.
func benchMaintainer(base *graph.Graph, storm []graph.Edge, r int, eps float64, seed uint64, uw, compactEvery int) maintainerResult {
	soc := socialstore.New(base.Clone())
	mt := pagerank.New(soc, pagerank.Config{Eps: eps, R: r, Seed: seed, UpdateWorkers: uw, CompactEvery: compactEvery})
	mt.Bootstrap()
	soc.ResetMetrics()

	t0 := time.Now()
	mt.ApplyEdges(storm)
	el := time.Since(t0)

	c := mt.Counters()
	met := soc.Metrics()
	res := maintainerResult{
		UpdateWorkers: uw,
		Seconds:       el.Seconds(),
		Edges:         len(storm),
		FastSkips:     c.FastSkips,
		EmptySkips:    c.EmptySkips,
		SlowPaths:     c.SlowPaths,
		SlowNoops:     c.SlowNoops,
		SkipRate:      c.SkipRate(),
		Rerouted:      c.Rerouted,
		Revived:       c.Revived,
		StoreReads:    met.Reads,
		StoreWrites:   met.Writes,
	}
	res.ArenaLive, res.ArenaTotal, res.ArenaGarbage = arenaColumns(mt.Store())
	if s := el.Seconds(); s > 0 {
		res.EdgesPerSec = float64(len(storm)) / s
	}
	return res
}

// arenaColumns snapshots the walk store's arena occupancy for a report row:
// live slots, total slots, and the garbage fraction ReplaceTail churn left
// behind (or compaction reclaimed).
func arenaColumns(s *walkstore.Store) (live, total int64, garbage float64) {
	live, total = s.ArenaStats()
	if total > 0 {
		garbage = float64(total-live) / float64(total)
	}
	return live, total, garbage
}

// benchSalsa replays the storm through the SALSA maintainer on a private
// clone, then (when queries > 0) profiles personalized queries from random
// sources: wall-clock latency and the measured Social Store calls per query
// against the Theorem 8 accounting ceiling.
func benchSalsa(base *graph.Graph, storm []graph.Edge, r int, eps float64, seed uint64, queries, qwalks, uw int, legacyScan bool, compactEvery int) salsaResult {
	soc := socialstore.New(base.Clone())
	mt := salsa.New(soc, salsa.Config{Eps: eps, R: r, Seed: seed, QueryWalks: qwalks, UpdateWorkers: uw, LegacyScan: legacyScan, CompactEvery: compactEvery})
	t0 := time.Now()
	mt.Bootstrap()
	boot := time.Since(t0)
	soc.ResetMetrics()

	t1 := time.Now()
	mt.ApplyEdges(storm)
	storming := time.Since(t1)

	c := mt.Counters()
	res := salsaResult{
		UpdateWorkers:    uw,
		BootstrapSeconds: boot.Seconds(),
		StormSeconds:     storming.Seconds(),
		Edges:            len(storm),
		SkipRate:         c.SkipRate(),
		SlowNoops:        c.SlowNoops,
		Rerouted:         c.Rerouted,
		Revived:          c.Revived,
		Queries:          queries,
		QueryWalks:       qwalks,
	}
	res.ArenaLive, res.ArenaTotal, res.ArenaGarbage = arenaColumns(mt.Store())
	if s := storming.Seconds(); s > 0 {
		res.EdgesPerSec = float64(len(storm)) / s
	}
	if queries == 0 {
		return res
	}

	rng := rand.New(rand.NewPCG(seed, 77))
	nodes := soc.Graph().Nodes()
	var totalCalls, totalStitched int64
	var totalSec float64
	samples := make([]float64, 0, queries)
	for i := 0; i < queries; i++ {
		src := nodes[rng.IntN(len(nodes))]
		tq := time.Now()
		q := mt.Personalized(src)
		el := time.Since(tq).Seconds()
		totalSec += el
		samples = append(samples, el)
		st := q.Stats()
		totalCalls += st.StoreCalls
		totalStitched += st.StitchedSegments
		if st.StoreCalls > res.MaxStoreCalls {
			res.MaxStoreCalls = st.StoreCalls
		}
		res.Theorem8Bound = st.Theorem8Bound
	}
	res.MeanQueryMillis = totalSec / float64(queries) * 1e3
	res.P50QueryMillis = percentileMillis(samples, 50)
	res.P99QueryMillis = percentileMillis(samples, 99)
	res.MeanStoreCalls = float64(totalCalls) / float64(queries)
	res.MeanStitched = float64(totalStitched) / float64(queries)
	return res
}

// percentileMillis returns the nearest-rank p-th percentile of the
// second-valued latency samples, in milliseconds. The slice is sorted in
// place; a sorted slice is the whole implementation — tail latency needs no
// dependency.
func percentileMillis(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	slices.Sort(samples)
	rank := int(math.Ceil(p / 100 * float64(len(samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(samples) {
		rank = len(samples)
	}
	return samples[rank-1] * 1e3
}

// benchConcurrentQueries profiles the read-mostly query path under write
// load: a parallel SALSA storm consumes arrivals while two query goroutines
// issue personalized queries until the storm drains.
func benchConcurrentQueries(base *graph.Graph, storm []graph.Edge, r int, eps float64, seed uint64, queries, qwalks, uw int) concurrentQueryResult {
	soc := socialstore.New(base.Clone())
	mt := salsa.New(soc, salsa.Config{Eps: eps, R: r, Seed: seed, QueryWalks: qwalks, UpdateWorkers: uw})
	mt.Bootstrap()

	const queriers = 2
	res := concurrentQueryResult{StormWorkers: uw, Queriers: queriers, QueryWalks: qwalks}
	nodes := soc.Graph().Nodes()
	var mu sync.Mutex
	var totalSec float64
	var totalCalls, totalDrift int64
	var samples []float64
	// issued is the shared query budget: -queries caps the TOTAL across all
	// queriers, matching the serial profile's semantics. (It used to be
	// checked against each goroutine's private loop counter, silently
	// meaning "queries per querier".)
	var issued atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for qr := 0; qr < queriers; qr++ {
		wg.Add(1)
		go func(qr int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 88+uint64(qr)))
			for {
				select {
				case <-done:
					return
				default:
				}
				if queries > 0 && issued.Add(1) > int64(queries) {
					return
				}
				src := nodes[rng.IntN(len(nodes))]
				tq := time.Now()
				st := mt.Personalized(src).Stats()
				el := time.Since(tq).Seconds()
				mu.Lock()
				res.Queries++
				totalSec += el
				samples = append(samples, el)
				totalCalls += st.StoreCalls
				totalDrift += st.EndEpoch - st.StartEpoch
				if st.StoreCalls > res.MaxStoreCalls {
					res.MaxStoreCalls = st.StoreCalls
				}
				res.Theorem8Bound = st.Theorem8Bound
				mu.Unlock()
			}
		}(qr)
	}

	t0 := time.Now()
	mt.ApplyEdges(storm)
	el := time.Since(t0)
	close(done)
	wg.Wait()

	res.StormSeconds = el.Seconds()
	if s := el.Seconds(); s > 0 {
		res.StormEdgesPerSec = float64(len(storm)) / s
	}
	if res.Queries > 0 {
		res.MeanQueryMillis = totalSec / float64(res.Queries) * 1e3
		res.P50QueryMillis = percentileMillis(samples, 50)
		res.P99QueryMillis = percentileMillis(samples, 99)
		res.MeanStoreCalls = float64(totalCalls) / float64(res.Queries)
		res.MeanEpochDrift = float64(totalDrift) / float64(res.Queries)
	}
	return res
}

// sameServed reports whether a served query and a fresh recompute on the
// same RNG stream are bitwise identical: full authority distribution plus
// the step/call accounting. This is the serving tier's correctness bar,
// checked here on the live benchmark rather than only in unit tests.
func sameServed(a, b *salsa.Query) bool {
	as, bs := a.Stats(), b.Stats()
	if as.Steps != bs.Steps || as.BareSteps != bs.BareSteps ||
		as.StitchedSegments != bs.StitchedSegments || as.StitchedSteps != bs.StitchedSteps ||
		as.StoreCalls != bs.StoreCalls || as.Stream != bs.Stream || as.StripeMask != bs.StripeMask {
		return false
	}
	am, bm := a.AuthorityAll(), b.AuthorityAll()
	if len(am) != len(bm) {
		return false
	}
	for v, x := range am {
		if bm[v] != x {
			return false
		}
	}
	return true
}

// benchServe profiles the internal/serve tier. Racing phase: queriers
// hammer a hot-spot source mix through the cache while a parallel storm
// consumes arrivals — sustained serving under write load. Quiescent phase:
// on the settled store, time cold computes against cache-hit repeats per
// source and cross-check every hit bitwise against a fresh recompute on the
// hit's recorded stream.
func benchServe(base *graph.Graph, storm []graph.Edge, r int, eps float64, seed uint64, queries, qwalks, uw int) serveResult {
	soc := socialstore.New(base.Clone())
	mt := salsa.New(soc, salsa.Config{Eps: eps, R: r, Seed: seed, QueryWalks: qwalks, UpdateWorkers: uw})
	srv := serve.New(mt, serve.Config{})
	mt.Bootstrap()

	const queriers = 2
	hot := min(16, base.NumNodes())
	res := serveResult{StormWorkers: uw, Queriers: queriers, QueryWalks: qwalks, HotSources: hot}
	nodes := soc.Graph().Nodes()
	var mu sync.Mutex
	var totalSec float64
	var samples []float64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for qr := 0; qr < queriers; qr++ {
		wg.Add(1)
		go func(qr int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99+uint64(qr)))
			for {
				// The hot-spot mix a busy hub sees: mostly repeats over a few
				// sources (cacheable), a sprinkle of cold tails.
				src := nodes[rng.IntN(hot)]
				if rng.IntN(8) == 0 {
					src = nodes[rng.IntN(len(nodes))]
				}
				tq := time.Now()
				out := srv.Personalized(src)
				el := time.Since(tq).Seconds()
				mu.Lock()
				res.Queries++
				totalSec += el
				samples = append(samples, el)
				if out.StoreCalls > res.MaxStoreCalls {
					res.MaxStoreCalls = out.StoreCalls
				}
				res.Theorem8Bound = out.Query.Stats().Theorem8Bound
				mu.Unlock()
				// Issue at least one query per querier even if the storm
				// drains instantly, so the latency columns are never empty.
				select {
				case <-done:
					return
				default:
				}
			}
		}(qr)
	}

	t0 := time.Now()
	srv.ApplyEdges(storm)
	el := time.Since(t0)
	close(done)
	wg.Wait()

	res.StormSeconds = el.Seconds()
	if s := el.Seconds(); s > 0 {
		res.StormEdgesPerSec = float64(len(storm)) / s
	}
	res.MeanQueryMillis = totalSec / float64(res.Queries) * 1e3
	res.P50QueryMillis = percentileMillis(samples, 50)
	res.P99QueryMillis = percentileMillis(samples, 99)

	// Snapshot cache accounting here so the hit-rate columns describe the
	// racing phase alone — the quiescent phase below deliberately skews the
	// mix (forced misses, guaranteed hit repeats).
	st := srv.Stats()
	res.Hits, res.Misses, res.Coalesced = st.Hits, st.Misses, st.Coalesced
	res.Raced, res.Invalidated = st.Raced, st.Invalidated
	if n := st.Hits + st.Misses; n > 0 {
		res.HitRate = float64(st.Hits) / float64(n)
	}

	// Quiescent phase: cold computes vs cached hits on the settled store.
	// Invalidate first so "cold" really recomputes, then repeat each source;
	// every hit must replay bitwise through PersonalizedStream.
	const hitRepeats = 3
	res.HitRecomputeMatch = true
	pairs := max(queries, 5)
	var coldSec, hitSec float64
	var hits int
	for i := 0; i < pairs; i++ {
		src := nodes[i%hot]
		srv.Invalidate(src)
		tq := time.Now()
		cold := srv.Personalized(src)
		coldSec += time.Since(tq).Seconds()
		if cold.Hit {
			res.HitRecomputeMatch = false // cold after Invalidate cannot hit
		}
		for j := 0; j < hitRepeats; j++ {
			tq = time.Now()
			out := srv.Personalized(src)
			hitSec += time.Since(tq).Seconds()
			hits++
			if !out.Hit || !sameServed(out.Query, mt.PersonalizedStream(src, out.Stream)) {
				res.HitRecomputeMatch = false
			}
		}
	}
	res.ColdMillis = coldSec / float64(pairs) * 1e3
	res.HitMillis = hitSec / float64(hits) * 1e3
	if res.HitMillis > 0 {
		res.HitSpeedup = res.ColdMillis / res.HitMillis
	}

	res.SlowNoops = mt.Counters().SlowNoops
	res.ValidateClean = mt.Store().Validate() == nil
	return res
}

// benchAdversarial replays one named adversarial arrival workload through
// the serialized SALSA maintainer on a private clone — the apples-to-apples
// throughput columns across stream shapes that the batching work is judged
// on. A fresh stream is drawn per workload from a name-salted seed so the
// shapes do not share arrival sequences.
func benchAdversarial(base *graph.Graph, name string, n, m, r int, eps float64, seed uint64, compactEvery int) adversarialResult {
	var salt uint64
	for i, ch := range []byte(name) {
		salt += uint64(ch) << (i % 8)
	}
	rng := rand.New(rand.NewPCG(seed, 0xadd+salt))
	storm := makeStorm(name, n, m, rng)

	soc := socialstore.New(base.Clone())
	mt := salsa.New(soc, salsa.Config{Eps: eps, R: r, Seed: seed, UpdateWorkers: 1, CompactEvery: compactEvery})
	mt.Bootstrap()

	t0 := time.Now()
	mt.ApplyEdges(storm)
	el := time.Since(t0)

	c := mt.Counters()
	res := adversarialResult{
		Workload:  name,
		Seconds:   el.Seconds(),
		Edges:     len(storm),
		SkipRate:  c.SkipRate(),
		SlowNoops: c.SlowNoops,
		Rerouted:  c.Rerouted,
		Revived:   c.Revived,
	}
	res.ArenaLive, res.ArenaTotal, res.ArenaGarbage = arenaColumns(mt.Store())
	if s := el.Seconds(); s > 0 {
		res.EdgesPerSec = float64(len(storm)) / s
	}
	return res
}

// benchChurn folds the update storm into a shrink-grow churn stream and
// replays it through both incremental maintainers at each update-worker
// count — the deletion-throughput profile of the reverse reroute rule —
// then streams the raw storm through the engine's sliding window at a
// capacity of a quarter of the stream, so three quarters of the arrivals
// expire back out through the deletion path. Every replay runs on a
// private clone so the profiles do not contaminate each other.
func benchChurn(base *graph.Graph, storm []graph.Edge, r int, eps float64, seed uint64, ucounts []int, compactEvery int) churnReport {
	events := gen.ShrinkGrowStream(storm, 4, 0.3, rand.New(rand.NewPCG(seed, 0xc1124)))
	arrivals, deletions := 0, 0
	for _, ev := range events {
		if ev.Del {
			deletions++
		} else {
			arrivals++
		}
	}

	var chr churnReport
	row := func(engine string, uw int, el time.Duration, misses, rerouted, truncated, slowNoops int64) churnResult {
		res := churnResult{
			Engine: engine, UpdateWorkers: uw, Seconds: el.Seconds(),
			Events: len(events), Arrivals: arrivals, Deletions: deletions,
			DelMisses: misses, DelRerouted: rerouted, DelTruncated: truncated, SlowNoops: slowNoops,
		}
		if s := el.Seconds(); s > 0 {
			res.EventsPerSec = float64(len(events)) / s
			res.DeletesPerSec = float64(deletions) / s
		}
		return res
	}
	for _, uw := range ucounts {
		mt := pagerank.New(socialstore.New(base.Clone()), pagerank.Config{Eps: eps, R: r, Seed: seed, UpdateWorkers: uw, CompactEvery: compactEvery})
		mt.Bootstrap()
		t0 := time.Now()
		mt.ApplyEvents(events)
		c := mt.Counters()
		chr.Storms = append(chr.Storms, row("pagerank", uw, time.Since(t0), c.DelMisses, c.DelRerouted, c.DelTruncated, c.SlowNoops))
	}
	for _, uw := range ucounts {
		mt := salsa.New(socialstore.New(base.Clone()), salsa.Config{Eps: eps, R: r, Seed: seed, UpdateWorkers: uw, CompactEvery: compactEvery})
		mt.Bootstrap()
		t0 := time.Now()
		mt.ApplyEvents(events)
		c := mt.Counters()
		chr.Storms = append(chr.Storms, row("salsa", uw, time.Since(t0), c.DelMisses, c.DelRerouted, c.DelTruncated, c.SlowNoops))
	}

	g := base.Clone()
	store := walkstore.New()
	eng := engine.New(g, store, engine.Config{Eps: eps, R: r, Workers: 1, Seed: seed, CompactEvery: compactEvery})
	eng.BuildStore(g.Nodes())
	capacity := max(1, len(storm)/4)
	t0 := time.Now()
	ws := eng.ApplyWindow(storm, capacity, seed+3)
	el := time.Since(t0)
	w := windowResult{
		Capacity: capacity, Streamed: ws.Arrived, Expired: ws.Expired,
		Turnover: ws.Turnover(), Seconds: el.Seconds(),
		Rerouted: ws.Delete.Rerouted, Truncated: ws.Delete.Truncated, DeleteMissed: ws.Delete.Missed,
	}
	w.ArenaLive, w.ArenaTotal, w.ArenaGarbage = arenaColumns(store)
	if s := el.Seconds(); s > 0 {
		w.EdgesPerSec = float64(ws.Arrived) / s
	}
	chr.Window = &w
	return chr
}

// workloadNames are the selectable -workload arrival-stream shapes; the
// first entry is the default and the tail is what -adversarial replays.
var workloadNames = []string{"uniform", "poisson-burst", "bipartite", "power-law"}

// makeStorm builds the main update storm in the requested shape. "uniform"
// delegates to updateStorm so default runs consume the RNG exactly as every
// previously committed report did.
func makeStorm(name string, n, m int, rng *rand.Rand) []graph.Edge {
	switch name {
	case "uniform":
		return updateStorm(n, m, rng)
	case "poisson-burst":
		return gen.PoissonBurstStream(n, m, 3.0, rng)
	case "bipartite":
		return gen.BipartiteStream(n/2, n-n/2, m, 0.8, rng)
	case "power-law":
		return gen.PowerLawStream(n, m, 0.9, 0.7, rng)
	}
	panic("benchwalk: unknown workload " + name)
}

// updateStorm draws random new edges over the node ID space, the arrival
// mix a live social graph would see.
func updateStorm(n, m int, rng *rand.Rand) []graph.Edge {
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u := graph.NodeID(rng.IntN(n))
		v := graph.NodeID(rng.IntN(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{From: u, To: v})
	}
	return edges
}

// workerCounts parses a comma-separated list, falling back to def,
// deduplicated and ascending.
func workerCounts(s string, def []int) []int {
	var counts []int
	if s != "" {
		for _, part := range strings.Split(s, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "benchwalk: bad worker-count entry %q\n", part)
				os.Exit(2)
			}
			counts = append(counts, w)
		}
	} else {
		counts = append(counts, def...)
	}
	slices.Sort(counts)
	counts = slices.Compact(counts)
	for len(counts) > 0 && counts[0] < 1 {
		counts = counts[1:]
	}
	return counts
}
