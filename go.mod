module fastppr

go 1.22
