package topk

import (
	"container/heap"
	"slices"

	"fastppr/internal/graph"
)

// Item is a scored node.
type Item struct {
	Node  graph.NodeID
	Score float64
}

// Collector keeps the k highest-scoring items seen so far. Ties are broken
// toward lower node IDs so results are deterministic. The zero value is not
// usable; use New.
type Collector struct {
	k int
	h itemHeap
}

// New returns a collector holding at most k items. k must be positive.
func New(k int) *Collector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Collector{k: k, h: make(itemHeap, 0, k)}
}

// Offer considers one item.
func (c *Collector) Offer(node graph.NodeID, score float64) {
	if len(c.h) < c.k {
		heap.Push(&c.h, Item{node, score})
		return
	}
	if less(Item{node, score}, c.h[0]) {
		return
	}
	c.h[0] = Item{node, score}
	heap.Fix(&c.h, 0)
}

// Len returns the number of items currently held.
func (c *Collector) Len() int { return len(c.h) }

// Items returns the held items in descending score order (ties by ascending
// node ID). The collector remains usable afterwards.
func (c *Collector) Items() []Item {
	out := append([]Item(nil), c.h...)
	// Derived from less so eviction order and ranking order cannot diverge.
	slices.SortFunc(out, func(a, b Item) int {
		switch {
		case less(b, a):
			return -1
		case less(a, b):
			return 1
		default:
			return 0
		}
	})
	return out
}

// TopK returns the k highest-scoring entries of scores, descending.
func TopK(scores map[graph.NodeID]float64, k int) []Item {
	c := New(k)
	for v, s := range scores {
		c.Offer(v, s)
	}
	return c.Items()
}

// Stream yields scored items in descending order (ties by ascending node
// ID) one at a time, so a caller wanting "results until the score drops
// below x" or "the first k that satisfy a filter" stops without paying for a
// full sort. Construction heapifies in O(n); each Next is O(log n). The
// input map is read once at construction; later map writes do not affect the
// stream.
type Stream struct {
	h maxHeap
}

// NewStream returns a descending iterator over scores.
func NewStream(scores map[graph.NodeID]float64) *Stream {
	h := make(maxHeap, 0, len(scores))
	for v, s := range scores {
		h = append(h, Item{v, s})
	}
	heap.Init(&h)
	return &Stream{h: h}
}

// Next returns the highest-scoring remaining item. ok is false when the
// stream is exhausted.
func (s *Stream) Next() (it Item, ok bool) {
	if len(s.h) == 0 {
		return Item{}, false
	}
	return heap.Pop(&s.h).(Item), true
}

// Len returns the number of items not yet yielded.
func (s *Stream) Len() int { return len(s.h) }

// maxHeap is itemHeap with the order reversed: the root is the best
// remaining item under the same tie rule the Collector ranks by.
type maxHeap []Item

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return less(h[j], h[i]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// less orders items ascending by score, with higher node IDs treated as
// smaller on ties (so the min-heap evicts the larger ID first and the
// returned ranking prefers lower IDs).
func less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

type itemHeap []Item

func (h itemHeap) Len() int            { return len(h) }
func (h itemHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
