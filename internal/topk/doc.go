// Package topk provides bounded top-k selection over (id, score) pairs
// using a min-heap — the standard tool for extracting the highest
// personalized scores without materializing a full sort, as the paper's
// Section 5 top-k personalized SALSA/PageRank queries require. Ties break
// toward lower node IDs so rankings are deterministic and directly
// comparable with exact.Ranking. Both maintainers' reader layers
// (docs/DESIGN.md#1-data-flow) serve their top-k endpoints through it.
package topk
