package topk

import (
	"math/rand/v2"
	"testing"

	"fastppr/internal/graph"
)

func TestDescendingOrderAndTieBreak(t *testing.T) {
	c := New(4)
	c.Offer(5, 1.0)
	c.Offer(3, 2.0)
	c.Offer(9, 2.0) // tie with node 3 — lower ID must rank first
	c.Offer(1, 0.5)
	c.Offer(7, 3.0)
	items := c.Items()
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	wantNodes := []graph.NodeID{7, 3, 9, 5}
	wantScores := []float64{3.0, 2.0, 2.0, 1.0}
	for i := range items {
		if items[i].Node != wantNodes[i] || items[i].Score != wantScores[i] {
			t.Fatalf("items[%d]=%+v, want node=%d score=%g (all: %+v)",
				i, items[i], wantNodes[i], wantScores[i], items)
		}
	}
	// Node 1 (score 0.5) must have been evicted.
	for _, it := range items {
		if it.Node == 1 {
			t.Fatal("lowest score survived a full collector")
		}
	}
}

func TestTieEvictionPrefersLowerIDs(t *testing.T) {
	// All scores equal: the k kept entries must be the k lowest IDs.
	c := New(3)
	for _, n := range []graph.NodeID{10, 2, 7, 4, 9, 1} {
		c.Offer(n, 1.0)
	}
	items := c.Items()
	want := []graph.NodeID{1, 2, 4}
	for i := range want {
		if items[i].Node != want[i] {
			t.Fatalf("items=%+v, want nodes %v", items, want)
		}
	}
}

func TestStreamMatchesTopKPrefix(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 0))
	scores := make(map[graph.NodeID]float64, 300)
	for i := 0; i < 300; i++ {
		scores[graph.NodeID(i)] = float64(rng.IntN(40)) // many ties
	}
	// Draining the stream must reproduce the full sorted ranking: every
	// prefix of the drain equals TopK at that k.
	full := TopK(scores, len(scores))
	st := NewStream(scores)
	if st.Len() != len(scores) {
		t.Fatalf("fresh stream Len=%d want %d", st.Len(), len(scores))
	}
	for i, want := range full {
		it, ok := st.Next()
		if !ok {
			t.Fatalf("stream dried up at %d of %d", i, len(full))
		}
		if it != want {
			t.Fatalf("stream[%d]=%+v, TopK says %+v", i, it, want)
		}
	}
	if _, ok := st.Next(); ok || st.Len() != 0 {
		t.Fatal("stream yielded past exhaustion")
	}

	// Early termination: taking only three items must not have required the
	// rest — pinned by Len after construction plus Next count.
	st2 := NewStream(scores)
	for i := 0; i < 3; i++ {
		st2.Next()
	}
	if st2.Len() != len(scores)-3 {
		t.Fatalf("after 3 Next calls Len=%d want %d", st2.Len(), len(scores)-3)
	}
}

func TestStreamEmpty(t *testing.T) {
	st := NewStream(nil)
	if it, ok := st.Next(); ok {
		t.Fatalf("empty stream yielded %+v", it)
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 0))
	scores := make(map[graph.NodeID]float64, 200)
	for i := 0; i < 200; i++ {
		scores[graph.NodeID(i)] = float64(rng.IntN(50)) // many ties
	}
	got := TopK(scores, 10)
	if len(got) != 10 {
		t.Fatalf("TopK returned %d items", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Score < b.Score {
			t.Fatalf("not descending at %d: %+v", i, got)
		}
		if a.Score == b.Score && a.Node > b.Node {
			t.Fatalf("tie not broken toward lower IDs at %d: %+v", i, got)
		}
	}
	// Nothing outside the result may beat the last kept item.
	last := got[len(got)-1]
	kept := map[graph.NodeID]bool{}
	for _, it := range got {
		kept[it.Node] = true
	}
	for v, s := range scores {
		if kept[v] {
			continue
		}
		if s > last.Score || (s == last.Score && v < last.Node) {
			t.Fatalf("node %d (score %g) should have displaced %+v", v, s, last)
		}
	}
}
