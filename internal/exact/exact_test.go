package exact

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"fastppr/internal/engine"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

const tol = 1e-12

func TestTwoNodeCycleIsUniform(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	pi := PageRank(g, 0.2, tol)
	for _, v := range []graph.NodeID{1, 2} {
		if math.Abs(pi[v]-0.5) > 1e-9 {
			t.Fatalf("pi[%d]=%v want 0.5", v, pi[v])
		}
	}
}

func TestCycleIsUniform(t *testing.T) {
	g := graph.New(0)
	const n = 7
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	pi := PageRank(g, 0.15, tol)
	for v, x := range pi {
		if math.Abs(x-1.0/n) > 1e-9 {
			t.Fatalf("pi[%d]=%v want %v", v, x, 1.0/n)
		}
	}
}

// TestSingleEdgeClosedForm pins the dangling semantics against a hand
// computation. Graph a->b with b dangling: a walk from a visits a, then b
// with probability 1-eps and dies there; a walk from b visits b and dies.
// Unnormalized visits: x_a = 1, x_b = (1-eps) + 1, so
// pi_a = 1/(3-eps), pi_b = (2-eps)/(3-eps).
func TestSingleEdgeClosedForm(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(10, 20)
	const eps = 0.3
	pi := PageRank(g, eps, tol)
	wantA := 1 / (3 - eps)
	wantB := (2 - eps) / (3 - eps)
	if math.Abs(pi[10]-wantA) > 1e-9 || math.Abs(pi[20]-wantB) > 1e-9 {
		t.Fatalf("pi=%v want a=%v b=%v", pi, wantA, wantB)
	}
}

// TestFixedPointOnDanglingFreeGraph verifies the solver against the PageRank
// recursion it never iterates directly: on a dangling-free graph the
// normalized scores must satisfy pi_v = eps/n + (1-eps) * sum over in-edges
// (u,v) of pi_u / d_u.
func TestFixedPointOnDanglingFreeGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 0))
	g := gen.PreferentialAttachment(150, 4, rng)
	// Make it dangling-free: give every sink an out-edge back to node 0.
	for _, v := range g.Nodes() {
		if g.OutDegree(v) == 0 {
			g.AddEdge(v, 0)
		}
	}
	const eps = 0.2
	pi := PageRank(g, eps, tol)
	nodes := g.Nodes()
	n := float64(len(nodes))
	for _, v := range nodes {
		want := eps / n
		for _, u := range g.InNeighbors(v) {
			want += (1 - eps) * pi[u] / float64(g.OutDegree(u))
		}
		if math.Abs(pi[v]-want) > 1e-8 {
			t.Fatalf("fixed-point residual at node %d: pi=%v recursion=%v", v, pi[v], want)
		}
	}
}

// TestMonteCarloAgreement checks the oracle against the walk engine it
// exists to judge: fresh R-per-node walk segments must produce visit
// fractions within Monte Carlo tolerance of the exact vector.
func TestMonteCarloAgreement(t *testing.T) {
	n, r := 300, 60
	if testing.Short() {
		n, r = 150, 30
	}
	rng := rand.New(rand.NewPCG(4, 0))
	g := gen.PreferentialAttachment(n, 4, rng)
	const eps = 0.2
	store := walkstore.New()
	eng := engine.New(g, store, engine.Config{Eps: eps, R: r, Workers: 4, Seed: 17})
	eng.BuildStore(g.Nodes())

	mc := make(map[graph.NodeID]float64)
	total := float64(store.TotalVisits())
	for v, x := range store.VisitCounts() {
		mc[v] = float64(x) / total
	}
	pi := PageRank(g, eps, tol)
	// The observed distance at these fixed seeds is ~0.02; the bound leaves
	// 3x headroom for the smaller -short configuration.
	if d := L1(mc, pi); d > 0.06 {
		t.Fatalf("L1(monte carlo, exact)=%v exceeds tolerance", d)
	}
}

func TestRankingOrderAndTies(t *testing.T) {
	scores := map[graph.NodeID]float64{4: 0.1, 2: 0.5, 9: 0.1, 1: 0.3}
	got := Ranking(scores)
	want := []graph.NodeID{2, 1, 4, 9} // descending score, ties by ascending ID
	if !slices.Equal(got, want) {
		t.Fatalf("Ranking=%v want %v", got, want)
	}
}

func TestL1HandlesMissingKeys(t *testing.T) {
	a := map[graph.NodeID]float64{1: 0.5, 2: 0.5}
	b := map[graph.NodeID]float64{1: 0.25, 3: 0.25}
	if d := L1(a, b); math.Abs(d-1.0) > 1e-12 {
		t.Fatalf("L1=%v want 1.0", d)
	}
	if d := L1(a, a); d != 0 {
		t.Fatalf("L1(a,a)=%v want 0", d)
	}
}

func TestPageRankPanicsOnBadInput(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(1, 2)
	for name, f := range map[string]func(){
		"eps=0":       func() { PageRank(g, 0, tol) },
		"eps>1":       func() { PageRank(g, 1.5, tol) },
		"tol=0":       func() { PageRank(g, 0.2, 0) },
		"empty graph": func() { PageRank(graph.New(0), 0.2, tol) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
