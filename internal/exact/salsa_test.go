package exact

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/walk"
)

// TestSalsaPersonalizedHandComputed pins the chain on the one-edge graph
// {1 -> 2}: a forward-first walk from 1 alternates 1 -> 2 -> 1 -> 2 ...,
// so every authority visit is at 2 and every hub visit at 1, for any eps.
func TestSalsaPersonalizedHandComputed(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(1, 2)
	for _, eps := range []float64{0.2, 0.5, 0.9} {
		auth, hub := SalsaPersonalized(g, 1, eps, 1e-12)
		if math.Abs(auth[2]-1) > 1e-9 || auth[1] != 0 {
			t.Fatalf("eps=%v auth=%v want all mass on 2", eps, auth)
		}
		if math.Abs(hub[1]-1) > 1e-9 || hub[2] != 0 {
			t.Fatalf("eps=%v hub=%v want all mass on 1", eps, hub)
		}
	}
}

// TestSalsaOracleMatchesMonteCarlo cross-checks the power-iteration chain
// against direct walk.Salsa sampling on a power-law graph — the two
// implementations share no code beyond the graph.
func TestSalsaOracleMatchesMonteCarlo(t *testing.T) {
	const n = 30
	const eps = 0.3
	samples := 200_000
	if testing.Short() {
		samples = 50_000
	}
	rng := rand.New(rand.NewPCG(3, 0))
	g := gen.PreferentialAttachment(n, 3, rng)

	authCounts := make(map[graph.NodeID]float64)
	hubCounts := make(map[graph.NodeID]float64)
	var authTotal, hubTotal float64
	record := func(seg walk.SalsaSegment) {
		for i := 0; i < seg.Len(); i++ {
			if seg.DirectionAt(i) == walk.Backward {
				authCounts[seg.Path[i]]++
				authTotal++
			} else {
				hubCounts[seg.Path[i]]++
				hubTotal++
			}
		}
	}
	for i := 0; i < samples; i++ {
		src := graph.NodeID(i % n)
		record(walk.Salsa(g, src, walk.Forward, eps, rng))
		record(walk.Salsa(g, src, walk.Backward, eps, rng))
	}
	empAuth := make(map[graph.NodeID]float64, len(authCounts))
	for v, c := range authCounts {
		empAuth[v] = c / authTotal
	}
	empHub := make(map[graph.NodeID]float64, len(hubCounts))
	for v, c := range hubCounts {
		empHub[v] = c / hubTotal
	}

	auth, hub := Salsa(g, eps, 1e-12)
	if d := L1(empAuth, auth); d > 0.05 {
		t.Fatalf("authority L1(monte carlo, oracle)=%v", d)
	}
	if d := L1(empHub, hub); d > 0.05 {
		t.Fatalf("hub L1(monte carlo, oracle)=%v", d)
	}
}

// TestSalsaPersonalizedMatchesMonteCarlo does the same cross-check for the
// source-seeded chain.
func TestSalsaPersonalizedMatchesMonteCarlo(t *testing.T) {
	const n = 30
	const eps = 0.3
	samples := 150_000
	if testing.Short() {
		samples = 40_000
	}
	rng := rand.New(rand.NewPCG(7, 0))
	g := gen.PreferentialAttachment(n, 3, rng)
	src := graph.NodeID(n - 1)

	authCounts := make(map[graph.NodeID]float64)
	var authTotal float64
	for i := 0; i < samples; i++ {
		seg := walk.Salsa(g, src, walk.Forward, eps, rng)
		for j := 0; j < seg.Len(); j++ {
			if seg.DirectionAt(j) == walk.Backward {
				authCounts[seg.Path[j]]++
				authTotal++
			}
		}
	}
	empAuth := make(map[graph.NodeID]float64, len(authCounts))
	for v, c := range authCounts {
		empAuth[v] = c / authTotal
	}
	auth, _ := SalsaPersonalized(g, src, eps, 1e-12)
	if d := L1(empAuth, auth); d > 0.05 {
		t.Fatalf("personalized authority L1(monte carlo, oracle)=%v", d)
	}
}

// TestSalsaScoresAreDistributions checks normalization and support.
func TestSalsaScoresAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 0))
	g := gen.PreferentialAttachment(50, 4, rng)
	auth, hub := Salsa(g, 0.2, 1e-12)
	for name, scores := range map[string]map[graph.NodeID]float64{"auth": auth, "hub": hub} {
		var sum float64
		for v, s := range scores {
			if s < 0 {
				t.Fatalf("%s[%d]=%v negative", name, v, s)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s sums to %v", name, sum)
		}
	}
}
