package exact

import (
	"math"
	"slices"

	"fastppr/internal/graph"
)

// PageRank returns the normalized dangling-absorbing visit distribution of
// eps-reset walks on g started uniformly at random, computed by power
// iteration. Iteration stops when the in-flight walk mass drops below tol
// (the residual tail sums to less than tol, so entries carry at most tol
// absolute error before normalization). eps must be in (0, 1]; tol must be
// positive. The graph must be non-empty.
func PageRank(g *graph.Graph, eps, tol float64) map[graph.NodeID]float64 {
	if eps <= 0 || eps > 1 {
		panic("exact: eps must be in (0, 1]")
	}
	if tol <= 0 {
		panic("exact: tol must be positive")
	}
	nodes := g.Nodes()
	n := len(nodes)
	if n == 0 {
		panic("exact: empty graph")
	}
	idx := make(map[graph.NodeID]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	// Snapshot adjacency as index lists once; the iteration then never
	// touches the (locked, sharded) graph again.
	out := make([][]int32, n)
	for i, v := range nodes {
		ns := g.OutNeighbors(v)
		row := make([]int32, len(ns))
		for j, w := range ns {
			row[j] = int32(idx[w])
		}
		out[i] = row
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	acc := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n) // every walk visits its source at t=0
		acc[i] = cur[i]
	}
	// Mass decays at least as fast as (1-eps)^t, so this terminates in
	// O(log(1/tol)/eps) rounds.
	for mass := 1.0; mass*(1-eps)/eps > tol; {
		for i := range next {
			next[i] = 0
		}
		mass = 0
		for i, row := range out {
			if cur[i] == 0 || len(row) == 0 {
				continue
			}
			w := (1 - eps) * cur[i] / float64(len(row))
			for _, j := range row {
				next[j] += w
			}
			mass += (1 - eps) * cur[i]
		}
		for i := range acc {
			acc[i] += next[i]
		}
		cur, next = next, cur
		if mass == 0 {
			break
		}
	}

	var total float64
	for _, x := range acc {
		total += x
	}
	scores := make(map[graph.NodeID]float64, n)
	for i, v := range nodes {
		scores[v] = acc[i] / total
	}
	return scores
}

// Ranking returns the nodes of scores in descending score order, ties broken
// toward lower IDs — the same order internal/topk produces, so oracle and
// Monte Carlo rankings are directly comparable.
func Ranking(scores map[graph.NodeID]float64) []graph.NodeID {
	nodes := make([]graph.NodeID, 0, len(scores))
	for v := range scores {
		nodes = append(nodes, v)
	}
	slices.SortFunc(nodes, func(a, b graph.NodeID) int {
		if scores[a] != scores[b] {
			if scores[a] > scores[b] {
				return -1
			}
			return 1
		}
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
		return 0
	})
	return nodes
}

// L1 returns the L1 distance between two score vectors, treating missing
// nodes as zero.
func L1(a, b map[graph.NodeID]float64) float64 {
	var d float64
	for v, x := range a {
		d += math.Abs(x - b[v])
	}
	for v, x := range b {
		if _, ok := a[v]; !ok {
			d += math.Abs(x)
		}
	}
	return d
}
