// Package exact computes reference score vectors by deterministic power
// iteration — the statistical ground truth every Monte Carlo component in
// this repository is tested against. It has no counterpart in the paper's
// system (the paper compares against exact PageRank computed offline, e.g.
// Figure 2); here it is the oracle for the convergence tests
// (docs/DESIGN.md#5-workload-substitution-no-twitter-data explains why the
// tests converge against these solvers instead of published Twitter
// numbers).
//
// PageRank is dangling-aware in the same sense as the walk semantics used
// everywhere else in this repository: a reset-walk that reaches a node with
// no out-edges dies there (internal/walk truncates the segment). The visit
// counts X_v the walk store accumulates therefore converge, after
// normalization, to the *absorbing* visit distribution
//
//	pi ∝ sum_{t>=0} (1-eps)^t · u0 · P^t
//
// where u0 is uniform over the n walk sources and P is the row-substochastic
// transition matrix (rows of dangling nodes are zero). On dangling-free
// graphs this is the classical reset-walk PageRank of the paper's Section
// 2.1: the unnormalized sum has total mass 1/eps and eps·sum recovers the
// textbook vector.
//
// Salsa and SalsaPersonalized are the bipartite analogues (Sections 2.3 and
// 5): they iterate the alternating forward/backward chain with the
// asymmetric reset law (reset only before forward steps) and return the
// authority- and hub-side visit distributions that walk.Salsa sampling, the
// salsa.Maintainer's global counters, and the personalized query layer all
// converge to.
package exact
