package exact

import (
	"fastppr/internal/graph"
)

// salsaOracle snapshots the graph as index-based forward and backward
// adjacency once, so the chain iteration never touches the sharded graph.
type salsaOracle struct {
	nodes []graph.NodeID
	out   [][]int32
	in    [][]int32
}

func newSalsaOracle(g *graph.Graph) *salsaOracle {
	nodes := g.Nodes()
	n := len(nodes)
	if n == 0 {
		panic("exact: empty graph")
	}
	idx := make(map[graph.NodeID]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	o := &salsaOracle{nodes: nodes, out: make([][]int32, n), in: make([][]int32, n)}
	for i, v := range nodes {
		outs := g.OutNeighbors(v)
		row := make([]int32, len(outs))
		for j, w := range outs {
			row[j] = int32(idx[w])
		}
		o.out[i] = row
		ins := g.InNeighbors(v)
		row = make([]int32, len(ins))
		for j, w := range ins {
			row[j] = int32(idx[w])
		}
		o.in[i] = row
	}
	return o
}

// run propagates an alternating eps-reset walk distribution started at init
// with the given first step direction, accumulating expected visit counts
// into authAcc (visits pending a backward step: the authority side) and
// hubAcc (visits pending a forward step: the hub side). The walk resets with
// probability eps before every forward step and dies at nodes lacking an
// edge in the pending direction, exactly the law of walk.Salsa. Iteration
// stops once the remaining expected visit mass drops below tol.
func (o *salsaOracle) run(init []float64, firstForward bool, eps, tol float64, authAcc, hubAcc []float64) {
	n := len(o.nodes)
	cur := make([]float64, n)
	next := make([]float64, n)
	mass := 0.0
	for i, x := range init {
		cur[i] = x
		mass += x
	}
	// Position 0: the source is hub-side when the pending step is forward,
	// authority-side otherwise.
	acc0 := hubAcc
	if !firstForward {
		acc0 = authAcc
	}
	for i := range cur {
		acc0[i] += cur[i]
	}
	forward := firstForward
	for mass > 0 {
		// Future visits decay by (1-eps) per forward step: from a
		// pending-forward state at most 2*mass*(1-eps)/eps visits remain;
		// a pending-backward state adds at most mass visits first.
		remaining := 2 * mass * (1 - eps) / eps
		if !forward {
			remaining += mass
		}
		if remaining <= tol {
			break
		}
		for i := range next {
			next[i] = 0
		}
		mass = 0
		if forward {
			for i, row := range o.out {
				if cur[i] == 0 || len(row) == 0 {
					continue
				}
				w := (1 - eps) * cur[i] / float64(len(row))
				for _, j := range row {
					next[j] += w
				}
				mass += (1 - eps) * cur[i]
			}
			for i := range authAcc {
				authAcc[i] += next[i]
			}
		} else {
			for i, row := range o.in {
				if cur[i] == 0 || len(row) == 0 {
					continue
				}
				w := cur[i] / float64(len(row))
				for _, j := range row {
					next[j] += w
				}
				mass += cur[i]
			}
			for i := range hubAcc {
				hubAcc[i] += next[i]
			}
		}
		cur, next = next, cur
		forward = !forward
	}
}

// normalizeAcc turns a raw visit accumulator into a distribution over node
// IDs. A zero accumulator (no visits on that side) yields all-zero scores.
func (o *salsaOracle) normalizeAcc(acc []float64) map[graph.NodeID]float64 {
	var total float64
	for _, x := range acc {
		total += x
	}
	scores := make(map[graph.NodeID]float64, len(o.nodes))
	for i, v := range o.nodes {
		if total > 0 {
			scores[v] = acc[i] / total
		} else {
			scores[v] = 0
		}
	}
	return scores
}

func checkSalsaArgs(eps, tol float64) {
	if eps <= 0 || eps > 1 {
		panic("exact: eps must be in (0, 1]")
	}
	if tol <= 0 {
		panic("exact: tol must be positive")
	}
}

// Salsa returns the global authority and hub visit distributions of
// eps-reset alternating (SALSA) walks on g: every node starts equally many
// hub-side (forward-first) and authority-side (backward-first) walks, the
// mix the SALSA maintainer stores with R segments per node per side. auth is
// the normalized distribution of visits pending a backward step, hub of
// visits pending a forward step — the exact laws the maintainer's
// AuthorityAll and HubAll estimates converge to.
func Salsa(g *graph.Graph, eps, tol float64) (auth, hub map[graph.NodeID]float64) {
	checkSalsaArgs(eps, tol)
	o := newSalsaOracle(g)
	n := len(o.nodes)
	init := make([]float64, n)
	for i := range init {
		init[i] = 1 / float64(n)
	}
	authAcc := make([]float64, n)
	hubAcc := make([]float64, n)
	o.run(init, true, eps, tol, authAcc, hubAcc)
	o.run(init, false, eps, tol, authAcc, hubAcc)
	return o.normalizeAcc(authAcc), o.normalizeAcc(hubAcc)
}

// SalsaPersonalized returns the authority and hub visit distributions of
// eps-reset alternating walks started at source (forward-first, the
// personalized SALSA query law): the ground truth for
// salsa.Maintainer.Personalized.
func SalsaPersonalized(g *graph.Graph, source graph.NodeID, eps, tol float64) (auth, hub map[graph.NodeID]float64) {
	checkSalsaArgs(eps, tol)
	o := newSalsaOracle(g)
	n := len(o.nodes)
	init := make([]float64, n)
	found := false
	for i, v := range o.nodes {
		if v == source {
			init[i] = 1
			found = true
			break
		}
	}
	if !found {
		panic("exact: source not in graph")
	}
	authAcc := make([]float64, n)
	hubAcc := make([]float64, n)
	o.run(init, true, eps, tol, authAcc, hubAcc)
	return o.normalizeAcc(authAcc), o.normalizeAcc(hubAcc)
}
