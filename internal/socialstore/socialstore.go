package socialstore

import (
	"math/rand/v2"
	"sync/atomic"
	"time"

	"fastppr/internal/graph"
)

// Metrics is a snapshot of the store's access counters.
type Metrics struct {
	Reads            int64         // adjacency/degree read calls
	Writes           int64         // edge mutations
	Fetches          int64         // full "fetch" operations (Section 3)
	SimulatedLatency time.Duration // accumulated simulated round-trip time
	PerShardReads    []int64       // reads by shard
}

// Store is a sharded, call-counted facade over the social graph. All methods
// are safe for concurrent use.
type Store struct {
	g          *graph.Graph
	shards     int
	perCall    time.Duration
	reads      atomic.Int64
	writes     atomic.Int64
	fetches    atomic.Int64
	latency    atomic.Int64 // nanoseconds
	shardReads []atomic.Int64
}

// Option configures a Store.
type Option func(*Store)

// WithShards sets the number of simulated shards (default 16).
func WithShards(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.shards = n
		}
	}
}

// WithSimulatedLatency accrues d of simulated latency per store call. No
// actual sleeping happens; the total is reported in Metrics.
func WithSimulatedLatency(d time.Duration) Option {
	return func(s *Store) { s.perCall = d }
}

// New wraps g. The graph remains owned by the caller; mutations must go
// through the store so write counters stay meaningful.
func New(g *graph.Graph, opts ...Option) *Store {
	s := &Store{g: g, shards: 16}
	for _, o := range opts {
		o(s)
	}
	s.shardReads = make([]atomic.Int64, s.shards)
	return s
}

// Graph exposes the underlying graph for components that are colocated with
// the store (the paper's PageRank Store is "emulated on top of FlockDB" and
// does not pay a round trip per walk step during local maintenance).
func (s *Store) Graph() *graph.Graph { return s.g }

func (s *Store) shardOf(v graph.NodeID) int {
	h := uint64(v) * 0x9e3779b97f4a7c15 // Fibonacci hashing for spread
	return int(h % uint64(s.shards))
}

func (s *Store) countRead(v graph.NodeID) {
	s.reads.Add(1)
	s.shardReads[s.shardOf(v)].Add(1)
	if s.perCall > 0 {
		s.latency.Add(int64(s.perCall))
	}
}

// AddEdge writes the edge u -> v.
func (s *Store) AddEdge(u, v graph.NodeID) {
	s.writes.Add(1)
	if s.perCall > 0 {
		s.latency.Add(int64(s.perCall))
	}
	s.g.AddEdge(u, v)
}

// RemoveEdge deletes one occurrence of u -> v, reporting whether it existed.
func (s *Store) RemoveEdge(u, v graph.NodeID) bool {
	s.writes.Add(1)
	if s.perCall > 0 {
		s.latency.Add(int64(s.perCall))
	}
	return s.g.RemoveEdge(u, v)
}

// CountEdges reads the multiplicity of u -> v (one store call, charged to
// u's shard). The deletion repair rule reads it right after RemoveEdge to
// recover the pre-removal copy count.
func (s *Store) CountEdges(u, v graph.NodeID) int {
	s.countRead(u)
	return s.g.CountEdges(u, v)
}

// OutNeighbors reads v's out-adjacency list (one store call).
func (s *Store) OutNeighbors(v graph.NodeID) []graph.NodeID {
	s.countRead(v)
	return s.g.OutNeighbors(v)
}

// InNeighbors reads v's in-adjacency list (one store call).
func (s *Store) InNeighbors(v graph.NodeID) []graph.NodeID {
	s.countRead(v)
	return s.g.InNeighbors(v)
}

// OutDegree reads v's out-degree (one store call).
func (s *Store) OutDegree(v graph.NodeID) int {
	s.countRead(v)
	return s.g.OutDegree(v)
}

// InDegree reads v's in-degree (one store call). The SALSA maintainer needs
// it on every arrival: the backward half of the bipartite reroute rule is
// driven by the target's in-degree the way the forward half is driven by the
// source's out-degree.
func (s *Store) InDegree(v graph.NodeID) int {
	s.countRead(v)
	return s.g.InDegree(v)
}

// RandomOutNeighbor samples a uniformly random out-neighbor of v (one store
// call). ok is false when v is dangling. With the matching In variant this
// makes the store a walk.Neighborer, so walk regeneration inside the
// incremental maintainers is call-accounted per step.
func (s *Store) RandomOutNeighbor(v graph.NodeID, rng *rand.Rand) (graph.NodeID, bool) {
	s.countRead(v)
	return s.g.RandomOutNeighbor(v, rng)
}

// RandomInNeighbor samples a uniformly random in-neighbor of v (one store
// call). ok is false when v has no incoming edges.
func (s *Store) RandomInNeighbor(v graph.NodeID, rng *rand.Rand) (graph.NodeID, bool) {
	s.countRead(v)
	return s.g.RandomInNeighbor(v, rng)
}

// CountFetch records one fetch operation against the store. The fetch
// payload itself (neighbors + walk segments) is assembled by the
// personalized-query layer, which colocates the walk-segment store; this
// counter is the quantity Theorem 8 bounds.
func (s *Store) CountFetch() {
	s.fetches.Add(1)
	if s.perCall > 0 {
		s.latency.Add(int64(s.perCall))
	}
}

// CallSnapshot is a cheap point-in-time copy of the scalar call counters,
// without the per-shard breakdown Metrics materializes. The personalized
// query layer takes one before and one after each query; the difference is
// the query's round-trip count, the quantity Theorem 8 bounds.
type CallSnapshot struct {
	Reads   int64
	Writes  int64
	Fetches int64
}

// Calls returns the total store round trips in the snapshot.
func (c CallSnapshot) Calls() int64 { return c.Reads + c.Writes + c.Fetches }

// Sub returns the counter deltas c - prev.
func (c CallSnapshot) Sub(prev CallSnapshot) CallSnapshot {
	return CallSnapshot{
		Reads:   c.Reads - prev.Reads,
		Writes:  c.Writes - prev.Writes,
		Fetches: c.Fetches - prev.Fetches,
	}
}

// Snapshot returns the current scalar call counters. With concurrent callers
// the three loads are not a single atomic unit; per-query accounting should
// bracket a serialized query.
func (s *Store) Snapshot() CallSnapshot {
	return CallSnapshot{
		Reads:   s.reads.Load(),
		Writes:  s.writes.Load(),
		Fetches: s.fetches.Load(),
	}
}

// ResetMetrics zeroes all counters.
func (s *Store) ResetMetrics() {
	s.reads.Store(0)
	s.writes.Store(0)
	s.fetches.Store(0)
	s.latency.Store(0)
	for i := range s.shardReads {
		s.shardReads[i].Store(0)
	}
}

// Session is a per-caller accounting view of the store: every read made
// through it counts against both the store's global counters and the
// session's own tally. A concurrent personalized query owns one session, so
// its Theorem 8 round-trip count stays exact even while maintainer arrivals
// and other queries hammer the same store — global snapshot deltas stop
// being attributable the moment there is more than one caller. A Session is
// owned by a single goroutine and is not safe for concurrent use; it
// implements walk.Neighborer like the store itself.
type Session struct {
	s       *Store
	reads   int64
	fetches int64
}

// NewSession returns a fresh per-caller accounting view.
func (s *Store) NewSession() *Session { return &Session{s: s} }

// RandomOutNeighbor samples through the store, tallying the read locally.
func (c *Session) RandomOutNeighbor(v graph.NodeID, rng *rand.Rand) (graph.NodeID, bool) {
	c.reads++
	return c.s.RandomOutNeighbor(v, rng)
}

// RandomInNeighbor samples through the store, tallying the read locally.
func (c *Session) RandomInNeighbor(v graph.NodeID, rng *rand.Rand) (graph.NodeID, bool) {
	c.reads++
	return c.s.RandomInNeighbor(v, rng)
}

// OutDegree reads through the store, tallying locally.
func (c *Session) OutDegree(v graph.NodeID) int {
	c.reads++
	return c.s.OutDegree(v)
}

// InDegree reads through the store, tallying locally.
func (c *Session) InDegree(v graph.NodeID) int {
	c.reads++
	return c.s.InDegree(v)
}

// CountFetch records one fetch operation against both layers.
func (c *Session) CountFetch() {
	c.fetches++
	c.s.CountFetch()
}

// Snapshot returns the session's own call tally (not the store's globals).
func (c *Session) Snapshot() CallSnapshot {
	return CallSnapshot{Reads: c.reads, Fetches: c.fetches}
}

// Metrics returns a snapshot of the counters.
func (s *Store) Metrics() Metrics {
	m := Metrics{
		Reads:            s.reads.Load(),
		Writes:           s.writes.Load(),
		Fetches:          s.fetches.Load(),
		SimulatedLatency: time.Duration(s.latency.Load()),
		PerShardReads:    make([]int64, s.shards),
	}
	for i := range s.shardReads {
		m.PerShardReads[i] = s.shardReads[i].Load()
	}
	return m
}
