package socialstore

import (
	"math/rand/v2"
	"slices"
	"sync"
	"testing"
	"time"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
)

func TestCallAccountingExactCounts(t *testing.T) {
	g := graph.New(0)
	s := New(g, WithShards(4))
	rng := rand.New(rand.NewPCG(1, 0))

	s.AddEdge(1, 2)
	s.AddEdge(1, 3)
	s.AddEdge(2, 3)
	if !s.RemoveEdge(2, 3) {
		t.Fatal("RemoveEdge of existing edge reported false")
	}
	if s.RemoveEdge(9, 9) {
		t.Fatal("RemoveEdge of absent edge reported true")
	}

	s.OutNeighbors(1)
	s.InNeighbors(3)
	s.OutDegree(1)
	s.RandomOutNeighbor(1, rng)
	s.RandomInNeighbor(3, rng)
	s.CountFetch()
	s.CountFetch()

	m := s.Metrics()
	if m.Writes != 5 {
		t.Fatalf("Writes=%d want 5", m.Writes)
	}
	if m.Reads != 5 {
		t.Fatalf("Reads=%d want 5", m.Reads)
	}
	if m.Fetches != 2 {
		t.Fatalf("Fetches=%d want 2", m.Fetches)
	}
	if len(m.PerShardReads) != 4 {
		t.Fatalf("PerShardReads has %d shards, want 4", len(m.PerShardReads))
	}
	var sum int64
	for _, r := range m.PerShardReads {
		sum += r
	}
	if sum != m.Reads {
		t.Fatalf("PerShardReads sum=%d, Reads=%d", sum, m.Reads)
	}

	s.ResetMetrics()
	m = s.Metrics()
	if m.Reads != 0 || m.Writes != 0 || m.Fetches != 0 || m.SimulatedLatency != 0 {
		t.Fatalf("metrics after reset: %+v", m)
	}
	for _, r := range m.PerShardReads {
		if r != 0 {
			t.Fatalf("per-shard reads after reset: %v", m.PerShardReads)
		}
	}
}

// TestConcurrentAccounting hammers the counters from many goroutines (run
// under -race): totals must be exact and the shard breakdown must sum to the
// global read counter.
func TestConcurrentAccounting(t *testing.T) {
	g := graph.New(0)
	for i := 0; i < 64; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%64))
	}
	s := New(g, WithShards(8))
	const workers = 8
	const readsPer = 500
	const writesPer = 50
	const fetchesPer = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0))
			for i := 0; i < readsPer; i++ {
				v := graph.NodeID(rng.IntN(64))
				switch i % 3 {
				case 0:
					s.OutDegree(v)
				case 1:
					s.OutNeighbors(v)
				default:
					s.RandomOutNeighbor(v, rng)
				}
			}
			for i := 0; i < writesPer; i++ {
				s.AddEdge(graph.NodeID(rng.IntN(64)), graph.NodeID(64+rng.IntN(64)))
			}
			for i := 0; i < fetchesPer; i++ {
				s.CountFetch()
			}
		}(w)
	}
	wg.Wait()

	m := s.Metrics()
	if m.Reads != workers*readsPer {
		t.Fatalf("Reads=%d want %d", m.Reads, workers*readsPer)
	}
	if m.Writes != workers*writesPer {
		t.Fatalf("Writes=%d want %d", m.Writes, workers*writesPer)
	}
	if m.Fetches != workers*fetchesPer {
		t.Fatalf("Fetches=%d want %d", m.Fetches, workers*fetchesPer)
	}
	var sum int64
	for _, r := range m.PerShardReads {
		sum += r
	}
	if sum != m.Reads {
		t.Fatalf("PerShardReads sum=%d, Reads=%d", sum, m.Reads)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedLatencyAccrual(t *testing.T) {
	g := graph.New(0)
	const perCall = 3 * time.Millisecond
	s := New(g, WithSimulatedLatency(perCall))
	s.AddEdge(1, 2)   // 1 write
	s.OutDegree(1)    // 1 read
	s.OutNeighbors(1) // 1 read
	s.CountFetch()    // 1 fetch
	if !s.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge failed")
	} // 1 write
	want := 5 * perCall
	if got := s.Metrics().SimulatedLatency; got != want {
		t.Fatalf("SimulatedLatency=%v want %v", got, want)
	}
	// No latency configured: stays zero.
	s2 := New(g)
	s2.OutDegree(1)
	if got := s2.Metrics().SimulatedLatency; got != 0 {
		t.Fatalf("latency accrued without option: %v", got)
	}
}

// TestZeroDriftAgainstGraph checks that every read the store serves is
// byte-identical to asking the wrapped graph directly.
func TestZeroDriftAgainstGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	g := gen.PreferentialAttachment(200, 4, rng)
	s := New(g)
	for _, v := range g.Nodes() {
		if got, want := s.OutDegree(v), g.OutDegree(v); got != want {
			t.Fatalf("OutDegree(%d)=%d graph says %d", v, got, want)
		}
		if got, want := s.OutNeighbors(v), g.OutNeighbors(v); !slices.Equal(got, want) {
			t.Fatalf("OutNeighbors(%d)=%v graph says %v", v, got, want)
		}
		if got, want := s.InNeighbors(v), g.InNeighbors(v); !slices.Equal(got, want) {
			t.Fatalf("InNeighbors(%d)=%v graph says %v", v, got, want)
		}
		if outs := g.OutNeighbors(v); len(outs) > 0 {
			w, ok := s.RandomOutNeighbor(v, rng)
			if !ok || !slices.Contains(outs, w) {
				t.Fatalf("RandomOutNeighbor(%d)=%d ok=%v not in %v", v, w, ok, outs)
			}
		} else {
			if _, ok := s.RandomOutNeighbor(v, rng); ok {
				t.Fatalf("RandomOutNeighbor(%d) ok on dangling node", v)
			}
		}
	}
	// Mutations through the store land in the graph.
	s.AddEdge(1000, 1001)
	if !g.HasEdge(1000, 1001) {
		t.Fatal("AddEdge through store did not reach the graph")
	}
}

func TestGraphAccessor(t *testing.T) {
	g := graph.New(0)
	if s := New(g); s.Graph() != g {
		t.Fatal("Graph() does not return the wrapped graph")
	}
}

// TestSnapshotDeltas checks the per-query accounting primitive: snapshot
// differences must count exactly the calls made between them, the way the
// personalized query layer brackets each query.
func TestSnapshotDeltas(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(1, 2)
	g.AddEdge(3, 2)
	s := New(g)
	rng := rand.New(rand.NewPCG(11, 0))

	pre := s.Snapshot()
	s.OutDegree(1)              // read
	s.InDegree(2)               // read
	s.RandomInNeighbor(2, rng)  // read
	s.RandomOutNeighbor(1, rng) // read
	s.AddEdge(2, 4)             // write
	s.CountFetch()              // fetch
	d := s.Snapshot().Sub(pre)
	if d.Reads != 4 || d.Writes != 1 || d.Fetches != 1 {
		t.Fatalf("delta=%+v want reads=4 writes=1 fetches=1", d)
	}
	if d.Calls() != 6 {
		t.Fatalf("Calls()=%d want 6", d.Calls())
	}
	// Snapshot agrees with the full Metrics view.
	m := s.Metrics()
	cur := s.Snapshot()
	if m.Reads != cur.Reads || m.Writes != cur.Writes || m.Fetches != cur.Fetches {
		t.Fatalf("Snapshot %+v disagrees with Metrics %+v", cur, m)
	}
}

// TestInDegreeReadThrough checks the in-degree read the SALSA maintainer's
// backward phase relies on.
func TestInDegreeReadThrough(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	s := New(g)
	pre := s.Snapshot()
	if got := s.InDegree(3); got != 2 {
		t.Fatalf("InDegree(3)=%d want 2", got)
	}
	if got := s.InDegree(1); got != 0 {
		t.Fatalf("InDegree(1)=%d want 0", got)
	}
	if d := s.Snapshot().Sub(pre); d.Reads != 2 {
		t.Fatalf("2 in-degree lookups recorded %d reads", d.Reads)
	}
}

// TestSessionAccounting pins the per-caller accounting view: a session's
// tally must count exactly its own calls while still flowing into the
// store's global counters — the property that keeps per-query Theorem 8
// accounting exact when multiple callers share one store.
func TestSessionAccounting(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	s := New(g)
	rng := rand.New(rand.NewPCG(5, 0))

	pre := s.Snapshot()
	sess := s.NewSession()
	sess.RandomOutNeighbor(1, rng)
	sess.RandomInNeighbor(2, rng)
	sess.OutDegree(2)
	sess.InDegree(3)
	sess.CountFetch()
	// Interleaved calls from another caller must not leak into the session.
	s.OutDegree(1)
	s.RandomOutNeighbor(2, rng)

	local := sess.Snapshot()
	if local.Reads != 4 || local.Fetches != 1 || local.Writes != 0 {
		t.Fatalf("session tally=%+v want reads=4 fetches=1 writes=0", local)
	}
	global := s.Snapshot().Sub(pre)
	if global.Reads != 6 || global.Fetches != 1 {
		t.Fatalf("global delta=%+v want reads=6 fetches=1", global)
	}
}

// TestSessionsConcurrent runs many sessions against one store under -race:
// each session's tally must equal its own call count exactly, and the
// global counters must equal the sum.
func TestSessionsConcurrent(t *testing.T) {
	g := graph.New(0)
	for i := 0; i < 32; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%32))
	}
	s := New(g)
	const sessions = 8
	const calls = 500
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(i), 9))
			sess := s.NewSession()
			for k := 0; k < calls; k++ {
				sess.RandomOutNeighbor(graph.NodeID(rng.IntN(32)), rng)
			}
			if got := sess.Snapshot().Reads; got != calls {
				t.Errorf("session %d tallied %d reads, want %d", i, got, calls)
			}
		}(i)
	}
	wg.Wait()
	if got := s.Snapshot().Reads; got != sessions*calls {
		t.Fatalf("global reads=%d want %d", got, sessions*calls)
	}
}
