// Package socialstore simulates the paper's "Social Store" (Section 3) —
// the distributed shared-memory database (FlockDB at Twitter) that holds
// the social graph and serves random-access adjacency queries.
//
// The store wraps a dynamic graph with (a) sharding, so per-shard access
// counts can be inspected the way an operator of a distributed store would,
// and (b) call accounting, because the paper's personalized-query analysis
// (Theorem 8, Figure 6) is entirely about the number of calls made to this
// database: a personalized PageRank or SALSA query's cost is its Social
// Store round trips, and the walk-segment store exists to keep that count
// small. Snapshot/Sub give global counter deltas; a per-caller Session
// tallies its own calls as well as the globals, which is what keeps each
// personalized query's measured round trips exactly attributable while
// concurrent arrivals and other queries share the store (the accounting
// model is docs/DESIGN.md#4-the-theorem-8-accounting-model). Optionally
// every call accrues simulated network latency so experiments can report
// wall-clock-like costs without sleeping.
//
// The in-memory sharded implementation preserves the behaviour that matters
// to the paper: uniform random access to adjacency lists and an exact count
// of round trips. Nothing in the analysis depends on the store actually
// being remote.
package socialstore
