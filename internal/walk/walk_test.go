package walk

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/graph"
)

// cycle builds a directed n-cycle, where every node has exactly one
// out-edge, so segment length is governed purely by the reset coin.
func cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return g
}

// TestSegmentLengthGeometric checks that PageRank segment lengths follow the
// geometric law: mean number of nodes = 1/eps (1 + mean steps, steps
// geometric with mean (1-eps)/eps).
func TestSegmentLengthGeometric(t *testing.T) {
	const eps = 0.2
	const samples = 20000
	g := cycle(64)
	rng := rand.New(rand.NewPCG(11, 0))
	var sum float64
	for i := 0; i < samples; i++ {
		seg := PageRank(g, graph.NodeID(i%64), eps, rng)
		if seg.Len() < 1 || seg.Source() != graph.NodeID(i%64) {
			t.Fatalf("bad segment %v", seg)
		}
		sum += float64(seg.Len())
	}
	mean := sum / samples
	want := 1 / eps
	// Std of the sample mean is sqrt((1-eps)/eps^2)/sqrt(samples) ~ 0.032;
	// 0.15 is ~5 sigma.
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("mean segment length %.3f, want %.3f +- 0.15", mean, want)
	}
}

func TestDanglingNodeTerminates(t *testing.T) {
	g := graph.New(0)
	g.AddNode(1)
	rng := rand.New(rand.NewPCG(5, 0))
	for i := 0; i < 100; i++ {
		seg := PageRank(g, 1, 0.01, rng)
		if seg.Len() != 1 || seg.Path[0] != 1 {
			t.Fatalf("dangling walk should stay put, got %v", seg.Path)
		}
	}
	// A chain into a dangling sink always ends at the sink.
	g2 := graph.New(0)
	g2.AddEdge(1, 2)
	g2.AddEdge(2, 3)
	for i := 0; i < 100; i++ {
		seg := PageRank(g2, 1, 0.0, rng) // eps=0: only dangling can stop it
		if seg.Path[seg.Len()-1] != 3 {
			t.Fatalf("walk should end at sink 3, got %v", seg.Path)
		}
	}
}

func TestContinueMatchesAppendContinue(t *testing.T) {
	g := cycle(16)
	// Same seed -> identical RNG stream -> identical tails.
	a := Continue(g, 0, 0.3, rand.New(rand.NewPCG(9, 9)))
	b := AppendContinue(g, 0, 0.3, rand.New(rand.NewPCG(9, 9)), nil)
	if len(a) != len(b) {
		t.Fatalf("Continue/AppendContinue disagree: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Continue/AppendContinue disagree at %d: %v vs %v", i, a, b)
		}
	}
	// Buffer reuse appends after the existing prefix.
	buf := []graph.NodeID{42}
	out := AppendContinue(g, 0, 0.3, rand.New(rand.NewPCG(9, 9)), buf)
	if out[0] != 42 || len(out) != 1+len(a) {
		t.Fatalf("AppendContinue ignored prefix: %v", out)
	}
}

func TestSalsaAlternatesDirections(t *testing.T) {
	// 1 -> 2, 3 -> 2: from 1 a forward step reaches 2, a backward step from
	// 2 reaches 1 or 3, and so on.
	g := graph.New(0)
	g.AddEdge(1, 2)
	g.AddEdge(3, 2)
	rng := rand.New(rand.NewPCG(21, 0))
	for i := 0; i < 200; i++ {
		seg := Salsa(g, 1, Forward, 0.3, rng)
		for j := 1; j < seg.Len(); j++ {
			dir := seg.StepDirection(j)
			from, to := seg.Path[j-1], seg.Path[j]
			if dir == Forward && !g.HasEdge(from, to) {
				t.Fatalf("forward step %d->%d is not an edge", from, to)
			}
			if dir == Backward && !g.HasEdge(to, from) {
				t.Fatalf("backward step %d->%d has no reverse edge", from, to)
			}
		}
	}
}
