package walk

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/graph"
)

// cycle builds a directed n-cycle, where every node has exactly one
// out-edge, so segment length is governed purely by the reset coin.
func cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return g
}

// TestSegmentLengthGeometric checks that PageRank segment lengths follow the
// geometric law: mean number of nodes = 1/eps (1 + mean steps, steps
// geometric with mean (1-eps)/eps).
func TestSegmentLengthGeometric(t *testing.T) {
	const eps = 0.2
	const samples = 20000
	g := cycle(64)
	rng := rand.New(rand.NewPCG(11, 0))
	var sum float64
	for i := 0; i < samples; i++ {
		seg := PageRank(g, graph.NodeID(i%64), eps, rng)
		if seg.Len() < 1 || seg.Source() != graph.NodeID(i%64) {
			t.Fatalf("bad segment %v", seg)
		}
		sum += float64(seg.Len())
	}
	mean := sum / samples
	want := 1 / eps
	// Std of the sample mean is sqrt((1-eps)/eps^2)/sqrt(samples) ~ 0.032;
	// 0.15 is ~5 sigma.
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("mean segment length %.3f, want %.3f +- 0.15", mean, want)
	}
}

func TestDanglingNodeTerminates(t *testing.T) {
	g := graph.New(0)
	g.AddNode(1)
	rng := rand.New(rand.NewPCG(5, 0))
	for i := 0; i < 100; i++ {
		seg := PageRank(g, 1, 0.01, rng)
		if seg.Len() != 1 || seg.Path[0] != 1 {
			t.Fatalf("dangling walk should stay put, got %v", seg.Path)
		}
	}
	// A chain into a dangling sink always ends at the sink.
	g2 := graph.New(0)
	g2.AddEdge(1, 2)
	g2.AddEdge(2, 3)
	for i := 0; i < 100; i++ {
		seg := PageRank(g2, 1, 0.0, rng) // eps=0: only dangling can stop it
		if seg.Path[seg.Len()-1] != 3 {
			t.Fatalf("walk should end at sink 3, got %v", seg.Path)
		}
	}
}

func TestContinueMatchesAppendContinue(t *testing.T) {
	g := cycle(16)
	// Same seed -> identical RNG stream -> identical tails.
	a := Continue(g, 0, 0.3, rand.New(rand.NewPCG(9, 9)))
	b := AppendContinue(g, 0, 0.3, rand.New(rand.NewPCG(9, 9)), nil)
	if len(a) != len(b) {
		t.Fatalf("Continue/AppendContinue disagree: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Continue/AppendContinue disagree at %d: %v vs %v", i, a, b)
		}
	}
	// Buffer reuse appends after the existing prefix.
	buf := []graph.NodeID{42}
	out := AppendContinue(g, 0, 0.3, rand.New(rand.NewPCG(9, 9)), buf)
	if out[0] != 42 || len(out) != 1+len(a) {
		t.Fatalf("AppendContinue ignored prefix: %v", out)
	}
}

// TestDirectionParityLaws pins the parity algebra the sided walk store and
// the SALSA maintainer both rely on: the step taken from position i has
// direction first XOR (i&1), and the segment accessors agree with the
// package-level DirectionFrom.
func TestDirectionParityLaws(t *testing.T) {
	for _, first := range []Direction{Forward, Backward} {
		if DirectionFrom(first, 0) != first {
			t.Fatalf("DirectionFrom(%v, 0) != %v", first, first)
		}
		for i := 0; i < 8; i++ {
			if DirectionFrom(first, i) == DirectionFrom(first, i+1) {
				t.Fatalf("directions fail to alternate at %d", i)
			}
			if DirectionFrom(first, i).Opposite() != DirectionFrom(first, i+1) {
				t.Fatalf("Opposite disagrees with alternation at %d", i)
			}
		}
		seg := SalsaSegment{Path: make([]graph.NodeID, 9), First: first}
		for i := 1; i < seg.Len(); i++ {
			if seg.StepDirection(i) != DirectionFrom(first, i-1) {
				t.Fatalf("StepDirection(%d) != DirectionFrom(first, %d)", i, i-1)
			}
		}
		for i := 0; i < seg.Len(); i++ {
			if seg.DirectionAt(i) != DirectionFrom(first, i) {
				t.Fatalf("DirectionAt(%d) != DirectionFrom(first, %d)", i, i)
			}
		}
	}
}

// TestSalsaResetLaw checks the asymmetric reset rule on a cycle (every node
// has one in- and one out-edge, so only the coin can stop a walk): the walk
// resets exclusively before forward steps, which forces the terminal's
// pending direction to be Forward — odd path lengths for forward-first
// segments, even for backward-first — and fixes the mean lengths at
// 1 + 2(1-eps)/eps and 2 + 2(1-eps)/eps respectively.
func TestSalsaResetLaw(t *testing.T) {
	const eps = 0.25
	const samples = 20000
	g := cycle(64)
	rng := rand.New(rand.NewPCG(23, 0))
	for _, first := range []Direction{Forward, Backward} {
		var sum float64
		for i := 0; i < samples; i++ {
			seg := Salsa(g, graph.NodeID(i%64), first, eps, rng)
			last := seg.Len() - 1
			if seg.DirectionAt(last) != Forward {
				t.Fatalf("%v-first segment ended pending %v; resets only precede forward steps",
					first, seg.DirectionAt(last))
			}
			sum += float64(seg.Len())
		}
		mean := sum / samples
		want := 1 + 2*(1-eps)/eps
		if first == Backward {
			want++ // the unconditional first backward step
		}
		// Per-sample std is sqrt(4(1-eps)/eps^2) ~ 7; 0.25 is ~5 sigma on
		// the sample mean.
		if math.Abs(mean-want) > 0.25 {
			t.Fatalf("%v-first mean length %.3f, want %.3f +- 0.25", first, mean, want)
		}
	}
}

// TestContinueSalsaMatchesSalsa pins the stitching law: with an identical
// RNG stream, continuing a walk paused at its source equals sampling the
// walk fresh — the memorylessness the maintainer's reroutes and the query
// layer's segment splicing both assume.
func TestContinueSalsaMatchesSalsa(t *testing.T) {
	g := cycle(16)
	for _, first := range []Direction{Forward, Backward} {
		full := Salsa(g, 3, first, 0.3, rand.New(rand.NewPCG(29, 1)))
		tail := ContinueSalsa(g, 3, first, 0.3, rand.New(rand.NewPCG(29, 1)))
		if len(tail) != full.Len()-1 {
			t.Fatalf("%v-first tail length %d, walk length %d", first, len(tail), full.Len())
		}
		for i, v := range tail {
			if v != full.Path[i+1] {
				t.Fatalf("%v-first tails diverge at %d: %v vs %v", first, i, tail, full.Path[1:])
			}
		}
		buf := []graph.NodeID{99}
		out := AppendContinueSalsa(g, 3, first, 0.3, rand.New(rand.NewPCG(29, 1)), buf)
		if out[0] != 99 || len(out) != 1+len(tail) {
			t.Fatalf("AppendContinueSalsa ignored prefix: %v", out)
		}
	}
}

func TestSalsaAlternatesDirections(t *testing.T) {
	// 1 -> 2, 3 -> 2: from 1 a forward step reaches 2, a backward step from
	// 2 reaches 1 or 3, and so on.
	g := graph.New(0)
	g.AddEdge(1, 2)
	g.AddEdge(3, 2)
	rng := rand.New(rand.NewPCG(21, 0))
	check := func(seg SalsaSegment) {
		t.Helper()
		for j := 1; j < seg.Len(); j++ {
			dir := seg.StepDirection(j)
			from, to := seg.Path[j-1], seg.Path[j]
			if dir == Forward && !g.HasEdge(from, to) {
				t.Fatalf("forward step %d->%d is not an edge", from, to)
			}
			if dir == Backward && !g.HasEdge(to, from) {
				t.Fatalf("backward step %d->%d has no reverse edge", from, to)
			}
		}
	}
	for i := 0; i < 200; i++ {
		check(Salsa(g, 1, Forward, 0.3, rng))
		check(Salsa(g, 2, Backward, 0.3, rng))
	}
}
