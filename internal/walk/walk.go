package walk

import (
	"math/rand/v2"

	"fastppr/internal/graph"
)

// Direction tags a SALSA step.
type Direction int8

const (
	// Forward follows an out-edge (hub -> authority).
	Forward Direction = iota
	// Backward follows an in-edge (authority -> hub).
	Backward
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Opposite returns the other direction.
func (d Direction) Opposite() Direction { return 1 - d }

// DirectionFrom returns the direction of the step an alternating walk takes
// *from* path position i, given the direction of its first step: first at
// even positions, its opposite at odd ones. This parity law is what lets the
// walk store index SALSA visits by pending direction without storing a bit
// per visit.
func DirectionFrom(first Direction, i int) Direction {
	if i%2 == 0 {
		return first
	}
	return 1 - first
}

// Segment is the recorded path of one reset-terminated walk. Path[0] is the
// walk's source; Path[len-1] is where the reset occurred. A segment of
// length 1 means the very first step reset (or the source is dangling).
type Segment struct {
	Path []graph.NodeID
}

// Source returns the segment's starting node.
func (s *Segment) Source() graph.NodeID { return s.Path[0] }

// Len returns the number of visited nodes.
func (s *Segment) Len() int { return len(s.Path) }

// Neighborer is the adjacency access the walkers need. *graph.Graph
// implements it; the social store wraps it with call accounting.
type Neighborer interface {
	RandomOutNeighbor(v graph.NodeID, rng *rand.Rand) (graph.NodeID, bool)
	RandomInNeighbor(v graph.NodeID, rng *rand.Rand) (graph.NodeID, bool)
}

// PageRank generates one PageRank walk segment from source: before each
// step, with probability eps the walk resets and the segment ends; otherwise
// it moves to a uniformly random out-neighbor. A dangling node ends the
// segment. The returned path always contains at least the source.
func PageRank(g Neighborer, source graph.NodeID, eps float64, rng *rand.Rand) Segment {
	path := []graph.NodeID{source}
	cur := source
	for {
		if rng.Float64() < eps {
			break
		}
		next, ok := g.RandomOutNeighbor(cur, rng)
		if !ok {
			break
		}
		path = append(path, next)
		cur = next
	}
	return Segment{Path: path}
}

// Continue extends an existing partial path from cur with fresh geometric
// continuation: the same loop as PageRank but without re-emitting cur.
// It returns the freshly visited nodes (possibly empty). Used when an edge
// arrival reroutes a stored segment mid-path: the truncated prefix keeps its
// visits and Continue supplies the new tail.
func Continue(g Neighborer, cur graph.NodeID, eps float64, rng *rand.Rand) []graph.NodeID {
	return AppendContinue(g, cur, eps, rng, nil)
}

// AppendContinue is Continue with a caller-supplied buffer: the freshly
// visited nodes are appended to buf and the extended slice returned. Hot
// update paths reuse one buffer per worker to avoid a per-reroute
// allocation.
func AppendContinue(g Neighborer, cur graph.NodeID, eps float64, rng *rand.Rand, buf []graph.NodeID) []graph.NodeID {
	for {
		if rng.Float64() < eps {
			break
		}
		next, ok := g.RandomOutNeighbor(cur, rng)
		if !ok {
			break
		}
		buf = append(buf, next)
		cur = next
	}
	return buf
}

// SalsaSegment is the recorded path of one SALSA walk together with the
// direction of its first step. Steps alternate direction; position i of the
// path was reached by a step of direction StepDirection(i).
type SalsaSegment struct {
	Path  []graph.NodeID
	First Direction
}

// Source returns the segment's starting node.
func (s *SalsaSegment) Source() graph.NodeID { return s.Path[0] }

// Len returns the number of visited nodes.
func (s *SalsaSegment) Len() int { return len(s.Path) }

// StepDirection returns the direction of the step that arrived at Path[i]
// (i >= 1). Steps alternate starting from First.
func (s *SalsaSegment) StepDirection(i int) Direction {
	return DirectionFrom(s.First, i-1)
}

// DirectionAt returns the direction of the step taken *from* Path[i], i.e.
// the direction of step i+1. For i == len-1 no step was taken.
func (s *SalsaSegment) DirectionAt(i int) Direction {
	return DirectionFrom(s.First, i)
}

// Salsa generates one SALSA walk segment from source. Steps alternate
// between the first direction and its opposite; the walk may reset only
// before a Forward step (with probability eps), matching Section 2.3, so a
// forward-first walk takes 2(1-eps)/eps steps in expectation. A node without
// edges in the required direction ends the segment.
func Salsa(g Neighborer, source graph.NodeID, first Direction, eps float64, rng *rand.Rand) SalsaSegment {
	path := []graph.NodeID{source}
	cur := source
	dir := first
	for {
		if dir == Forward && rng.Float64() < eps {
			break
		}
		var next graph.NodeID
		var ok bool
		if dir == Forward {
			next, ok = g.RandomOutNeighbor(cur, rng)
		} else {
			next, ok = g.RandomInNeighbor(cur, rng)
		}
		if !ok {
			break
		}
		path = append(path, next)
		cur = next
		dir = 1 - dir
	}
	return SalsaSegment{Path: path, First: first}
}

// ContinueSalsa extends a SALSA walk from cur where the next step has
// direction dir. It returns the freshly visited nodes. By the memorylessness
// of the reset coin, the remainder of any alternating walk paused at cur
// with pending direction dir is distributed exactly as this continuation —
// the property the maintainer's reroutes and the query layer's segment
// stitching both rely on.
func ContinueSalsa(g Neighborer, cur graph.NodeID, dir Direction, eps float64, rng *rand.Rand) []graph.NodeID {
	return AppendContinueSalsa(g, cur, dir, eps, rng, nil)
}

// AppendContinueSalsa is ContinueSalsa with a caller-supplied buffer: the
// freshly visited nodes are appended to buf and the extended slice returned.
// The SALSA maintainer reuses one buffer across reroutes to avoid a
// per-arrival allocation, mirroring AppendContinue.
func AppendContinueSalsa(g Neighborer, cur graph.NodeID, dir Direction, eps float64, rng *rand.Rand, buf []graph.NodeID) []graph.NodeID {
	for {
		if dir == Forward && rng.Float64() < eps {
			break
		}
		var next graph.NodeID
		var ok bool
		if dir == Forward {
			next, ok = g.RandomOutNeighbor(cur, rng)
		} else {
			next, ok = g.RandomInNeighbor(cur, rng)
		}
		if !ok {
			break
		}
		buf = append(buf, next)
		cur = next
		dir = 1 - dir
	}
	return buf
}
