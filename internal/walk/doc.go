// Package walk implements the random-walk primitives shared by the global
// and personalized components of the paper: geometric-length "reset" walks
// (Section 2.1, the Monte Carlo PageRank estimator) and the alternating
// forward/backward walks used by SALSA (Section 2.3 / Section 5's
// personalized SALSA).
//
// A PageRank walk segment simulates one continuous surfer session: starting
// at a source node it repeatedly follows a uniformly random out-edge, and
// before every step it resets (terminates the segment) with probability eps.
// Segment lengths are therefore geometric with mean 1/eps steps. Dangling
// nodes (out-degree zero) force a reset, the standard Monte Carlo
// convention, which matches the paper's walk semantics where every visit
// ends a session if no edge can be followed.
//
// A SALSA walk alternates: a forward step (hub -> authority, along an
// out-edge) then a backward step (authority -> hub, against an in-edge), and
// so on, resetting with probability eps only before forward steps, so the
// expected length is 2(1-eps)/eps steps. The parity law DirectionFrom(first,
// i) — the step from position i has direction first XOR (i&1) — is what
// lets the walk store index alternating visits by pending direction without
// storing a direction bit per visit.
//
// Continue/ContinueSalsa exploit the memorylessness of the reset coin: the
// remainder of a walk paused at node v is distributed exactly as a fresh
// continuation from v. The incremental maintainers (Section 2.2's update
// rule) regrow rerouted tails with it, and the personalized query layer
// (Section 4-5) splices stored segments onto live walks with it — the
// zero-round-trip stitch of
// docs/DESIGN.md#4-the-theorem-8-accounting-model.
package walk
