package stats

import (
	"math"
	"testing"

	"fastppr/internal/graph"
)

func prpEq(a, b PrecisionRecallPoint) bool {
	return math.Abs(a.Recall-b.Recall) < 1e-12 && math.Abs(a.Precision-b.Precision) < 1e-12
}

// TestPrecisionRecallCurveFixture hand-computes the curve for a ranking with
// a duplicate retrieved entry: retrieved (a, b, a, c) against relevant
// {a, c}; the second a must not consume a rank.
func TestPrecisionRecallCurveFixture(t *testing.T) {
	retrieved := []graph.NodeID{1, 2, 1, 3}
	relevant := map[graph.NodeID]bool{1: true, 3: true}
	got := PrecisionRecallCurve(retrieved, relevant)
	want := []PrecisionRecallPoint{
		{Recall: 0.5, Precision: 1.0},     // rank 1: a, hit
		{Recall: 0.5, Precision: 0.5},     // rank 2: b, miss
		{Recall: 1.0, Precision: 2.0 / 3}, // rank 3: c, hit (dup a skipped)
	}
	if len(got) != len(want) {
		t.Fatalf("curve has %d points, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !prpEq(got[i], want[i]) {
			t.Fatalf("point %d = %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestPrecisionRecallCurveEdgeCases(t *testing.T) {
	if got := PrecisionRecallCurve([]graph.NodeID{1, 2}, nil); got != nil {
		t.Fatalf("empty relevant set: got %v want nil", got)
	}
	if got := PrecisionRecallCurve(nil, map[graph.NodeID]bool{1: true}); len(got) != 0 {
		t.Fatalf("empty retrieved: got %v want empty", got)
	}
	// Nothing relevant ever retrieved: recall stays 0, precision decays.
	got := PrecisionRecallCurve([]graph.NodeID{5, 6}, map[graph.NodeID]bool{1: true})
	want := []PrecisionRecallPoint{{Recall: 0, Precision: 0}, {Recall: 0, Precision: 0}}
	for i := range want {
		if !prpEq(got[i], want[i]) {
			t.Fatalf("point %d = %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestInterpolatedPrecision11Fixture checks the 11-point interpolation on a
// hand-computed curve: max precision over all points with recall >= level.
func TestInterpolatedPrecision11Fixture(t *testing.T) {
	curve := []PrecisionRecallPoint{
		{Recall: 0.5, Precision: 1.0},
		{Recall: 0.5, Precision: 0.5},
		{Recall: 1.0, Precision: 2.0 / 3},
	}
	got := InterpolatedPrecision11(curve)
	for i := 0; i <= 10; i++ {
		want := 2.0 / 3 // only the last point reaches recall > 0.5
		if float64(i)/10 <= 0.5 {
			want = 1.0 // the first point (recall 0.5, precision 1) qualifies
		}
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("level %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestInterpolatedPrecision11Empty(t *testing.T) {
	got := InterpolatedPrecision11(nil)
	for i, x := range got {
		if x != 0 {
			t.Fatalf("level %d of empty curve = %v, want 0", i, x)
		}
	}
	// A curve that never reaches recall 1 must report 0 at the top levels.
	partial := InterpolatedPrecision11([]PrecisionRecallPoint{{Recall: 0.3, Precision: 0.8}})
	if partial[0] != 0.8 || partial[3] != 0.8 {
		t.Fatalf("levels <= 0.3 should be 0.8: %v", partial)
	}
	if partial[4] != 0 || partial[10] != 0 {
		t.Fatalf("levels > 0.3 should be 0: %v", partial)
	}
}

func TestMeanCurves(t *testing.T) {
	a := [11]float64{}
	b := [11]float64{}
	for i := range a {
		a[i] = 1
		b[i] = 0.5
	}
	got := MeanCurves([][11]float64{a, b})
	for i := range got {
		if math.Abs(got[i]-0.75) > 1e-12 {
			t.Fatalf("mean[%d]=%v want 0.75", i, got[i])
		}
	}
	if got := MeanCurves(nil); got != [11]float64{} {
		t.Fatalf("mean of no curves = %v, want zeros", got)
	}
}
