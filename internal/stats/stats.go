package stats

import (
	"errors"
	"math"
	"slices"
)

// Summary holds basic descriptive statistics.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Sum       float64
}

// Summarize computes descriptive statistics of xs. It panics on empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty slice")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	return s
}

// Harmonic returns the m-th harmonic number H_m = sum_{t=1..m} 1/t.
func Harmonic(m int) float64 {
	h := 0.0
	for t := 1; t <= m; t++ {
		h += 1.0 / float64(t)
	}
	return h
}

// PowerLawFit is the result of a rank–size log–log regression: values are
// modeled as value(rank) ∝ rank^(-Alpha).
type PowerLawFit struct {
	Alpha float64 // power-law exponent (positive for a decaying law)
	C     float64 // log of the proportionality constant (natural log)
	R2    float64 // coefficient of determination of the log–log fit
}

// ErrDegenerate indicates the fit had fewer than two usable points.
var ErrDegenerate = errors.New("stats: fewer than two positive points to fit")

// FitPowerLaw fits value(rank) = e^C * rank^(-Alpha) over the 1-based rank
// window [lo, hi] of values, which must be sorted in descending order.
// Non-positive values inside the window are skipped (they carry no log
// information). Pass lo=1, hi=len(values) to fit the whole vector; the
// paper's Figure 4 fits the window [2f, 20f] around a user's friend count f.
func FitPowerLaw(values []float64, lo, hi int) (PowerLawFit, error) {
	if lo < 1 {
		lo = 1
	}
	if hi > len(values) {
		hi = len(values)
	}
	var xs, ys []float64
	for r := lo; r <= hi; r++ {
		v := values[r-1]
		if v <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(r)))
		ys = append(ys, math.Log(v))
	}
	if len(xs) < 2 {
		return PowerLawFit{}, ErrDegenerate
	}
	slope, intercept, r2 := linreg(xs, ys)
	return PowerLawFit{Alpha: -slope, C: intercept, R2: r2}, nil
}

// linreg is ordinary least squares of y on x, returning slope, intercept and
// the coefficient of determination.
func linreg(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// CDFPoint is a point of a cumulative distribution over degrees: the
// fraction of mass at degree <= Degree.
type CDFPoint struct {
	Degree   int
	Fraction float64
}

// WeightedCDF builds a CDF over the integer-valued observations in counts:
// counts maps a degree d to a non-negative weight. The returned points are
// sorted by degree and Fraction is the normalized cumulative weight. Used by
// Figure 1 for both the "arrival degree" cdf (weight = number of arriving
// edges whose source had degree d) and the "existing degree" cdf (weight =
// d * number of nodes with degree d).
func WeightedCDF(counts map[int]float64) []CDFPoint {
	if len(counts) == 0 {
		return nil
	}
	degrees := make([]int, 0, len(counts))
	var total float64
	for d, w := range counts {
		degrees = append(degrees, d)
		total += w
	}
	slices.Sort(degrees)
	out := make([]CDFPoint, 0, len(degrees))
	var cum float64
	for _, d := range degrees {
		cum += counts[d]
		frac := 0.0
		if total > 0 {
			frac = cum / total
		}
		out = append(out, CDFPoint{Degree: d, Fraction: frac})
	}
	return out
}

// CDFAt evaluates a CDF (as returned by WeightedCDF) at degree d.
func CDFAt(cdf []CDFPoint, d int) float64 {
	// Find the first point with Degree > d; the comparator never returns 0
	// so the insertion point is exactly that boundary.
	i, _ := slices.BinarySearchFunc(cdf, d, func(p CDFPoint, t int) int {
		if p.Degree <= t {
			return -1
		}
		return 1
	})
	if i == 0 {
		return 0
	}
	return cdf[i-1].Fraction
}

// MaxCDFDistance returns the Kolmogorov–Smirnov style maximum vertical
// distance between two CDFs, evaluated at the union of their degree points.
// Figure 1's "the two cdfs track each other" claim is quantified by this
// statistic being small.
func MaxCDFDistance(a, b []CDFPoint) float64 {
	points := make(map[int]struct{}, len(a)+len(b))
	for _, p := range a {
		points[p.Degree] = struct{}{}
	}
	for _, p := range b {
		points[p.Degree] = struct{}{}
	}
	var maxd float64
	for d := range points {
		diff := math.Abs(CDFAt(a, d) - CDFAt(b, d))
		if diff > maxd {
			maxd = diff
		}
	}
	return maxd
}
