package stats

import (
	"math"
	"math/rand/v2"
)

// TruncatedGeometric samples the index of the first success among k
// independent Bernoulli(p) trials, conditioned on at least one success:
//
//	P(J = j) = (1-p)^j p / (1 - (1-p)^k)   for j in [0, k).
//
// Both incremental maintainers use it to make the W(v) fast path
// distribution-lossless: when the skip coin decides an arrival does perturb
// the store, the position of the first perturbed step is drawn from exactly
// the conditional law the skipped naive coin flips would have produced.
func TruncatedGeometric(rng *rand.Rand, p float64, k int64) int64 {
	q := 1 - p
	u := rng.Float64()
	j := int64(math.Log(1-u*(1-math.Pow(q, float64(k)))) / math.Log(q))
	if j < 0 {
		j = 0
	}
	if j >= k {
		j = k - 1
	}
	return j
}
