package stats

import (
	"math"
	"math/rand/v2"
)

// TruncatedGeometric samples the index of the first success among k
// independent Bernoulli(p) trials, conditioned on at least one success:
//
//	P(J = j) = (1-p)^j p / (1 - (1-p)^k)   for j in [0, k).
//
// Both incremental maintainers use it to make the W(v) fast path
// distribution-lossless: when the skip coin decides an arrival does perturb
// the store, the position of the first perturbed step is drawn from exactly
// the conditional law the skipped naive coin flips would have produced.
func TruncatedGeometric(rng *rand.Rand, p float64, k int64) int64 {
	q := 1 - p
	u := rng.Float64()
	j := int64(math.Log(1-u*(1-math.Pow(q, float64(k)))) / math.Log(q))
	if j < 0 {
		j = 0
	}
	if j >= k {
		j = k - 1
	}
	return j
}

// FirstSuccessHit decides whether the idx-th enumerated Bernoulli(p) trial
// succeeds, given a pre-sampled first-success index from TruncatedGeometric
// (or first < 0 for unconditional flips with the fast path disabled): trials
// before first fail by construction, trial first succeeds, and later trials
// flip independent coins. Shared by both maintainers' repair scans.
func FirstSuccessHit(rng *rand.Rand, first, idx int64, p float64) bool {
	switch {
	case first < 0:
		return rng.Float64() < p
	case idx < first:
		return false
	case idx == first:
		return true
	default:
		return rng.Float64() < p
	}
}
