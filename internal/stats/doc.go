// Package stats implements the statistical toolkit the paper's evaluation
// relies on: rank–size power-law fitting (the Figure 4 regression),
// cumulative degree distributions (Figure 1's arrival-vs-existing degree
// CDFs), 11-point interpolated average precision (the metric of Figure 5),
// and small numeric helpers (harmonic numbers, summaries, and the
// truncated-geometric sampler plus first-success-hit rule behind the
// maintainers' lossless fast path —
// docs/DESIGN.md#3-the-lossless-wv-fast-path).
package stats
