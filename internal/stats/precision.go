package stats

import "fastppr/internal/graph"

// PrecisionRecallPoint is one point on a precision–recall curve.
type PrecisionRecallPoint struct {
	Recall    float64
	Precision float64
}

// PrecisionRecallCurve computes precision and recall after each rank of
// retrieved against the relevant set. retrieved is an ordered ranking;
// relevant is the ground-truth set. Duplicate retrieved entries count once.
func PrecisionRecallCurve(retrieved []graph.NodeID, relevant map[graph.NodeID]bool) []PrecisionRecallPoint {
	if len(relevant) == 0 {
		return nil
	}
	seen := make(map[graph.NodeID]bool, len(retrieved))
	hits := 0
	out := make([]PrecisionRecallPoint, 0, len(retrieved))
	rank := 0
	for _, v := range retrieved {
		if seen[v] {
			continue
		}
		seen[v] = true
		rank++
		if relevant[v] {
			hits++
		}
		out = append(out, PrecisionRecallPoint{
			Recall:    float64(hits) / float64(len(relevant)),
			Precision: float64(hits) / float64(rank),
		})
	}
	return out
}

// InterpolatedPrecision11 computes the 11-point interpolated average
// precision curve (Manning–Raghavan–Schütze, the metric of the paper's
// Figure 5): for each recall level r in {0.0, 0.1, ..., 1.0} it reports the
// maximum precision achieved at any point with recall >= r (0 if recall r is
// never reached).
func InterpolatedPrecision11(curve []PrecisionRecallPoint) [11]float64 {
	var out [11]float64
	for i := 0; i <= 10; i++ {
		level := float64(i) / 10
		best := 0.0
		for _, p := range curve {
			if p.Recall >= level-1e-12 && p.Precision > best {
				best = p.Precision
			}
		}
		out[i] = best
	}
	return out
}

// MeanCurves averages several 11-point curves elementwise.
func MeanCurves(curves [][11]float64) [11]float64 {
	var out [11]float64
	if len(curves) == 0 {
		return out
	}
	for _, c := range curves {
		for i := range out {
			out[i] += c[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(curves))
	}
	return out
}
