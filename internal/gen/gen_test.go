package gen

import (
	"math/rand/v2"
	"reflect"
	"slices"
	"testing"

	"fastppr/internal/graph"
)

// TestDirichletStreamSourceLaw verifies the arrival sources against the
// Pólya-urn law they are defined by: the t-th arrival has source u with
// probability (d_u(t-1)+1)/(t-1+n). With n=3 nodes and m=3 arrivals the
// source sequence space has 27 outcomes with closed-form probabilities, so a
// chi-squared test over many independently seeded streams checks the full
// joint law, not just a marginal.
func TestDirichletStreamSourceLaw(t *testing.T) {
	const n, m = 3, 3
	trials := 30_000
	if testing.Short() {
		trials = 6_000
	}
	counts := make(map[[m]int]int, 27)
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewPCG(uint64(i), 99))
		stream := DirichletStream(n, m, rng)
		var key [m]int
		for j, e := range stream {
			key[j] = int(e.From)
		}
		counts[key]++
	}

	chi2 := 0.0
	outcomes := 0
	for u1 := 0; u1 < n; u1++ {
		for u2 := 0; u2 < n; u2++ {
			for u3 := 0; u3 < n; u3++ {
				// Urn sizes are n, n+1, n+2; each node starts with one
				// ticket and gains one per emitted edge.
				p := 1.0 / 3
				d2 := 1
				if u2 == u1 {
					d2 = 2
				}
				p *= float64(d2) / 4
				d3 := 1
				if u3 == u1 {
					d3++
				}
				if u3 == u2 {
					d3++
				}
				p *= float64(d3) / 5
				exp := p * float64(trials)
				obs := float64(counts[[m]int{u1, u2, u3}])
				chi2 += (obs - exp) * (obs - exp) / exp
				outcomes++
			}
		}
	}
	if outcomes != 27 {
		t.Fatalf("enumerated %d outcomes, want 27", outcomes)
	}
	// 26 degrees of freedom; P(chi2 > 60) ~ 2e-4, and the seeds are fixed so
	// the draw is deterministic.
	if chi2 > 60 {
		t.Fatalf("chi-squared=%.1f rejects the Pólya-urn source law", chi2)
	}
}

func TestDirichletStreamShape(t *testing.T) {
	const n, m = 50, 1000
	rng := rand.New(rand.NewPCG(3, 0))
	stream := DirichletStream(n, m, rng)
	if len(stream) != m {
		t.Fatalf("stream has %d edges, want %d", len(stream), m)
	}
	for _, e := range stream {
		if e.From == e.To {
			t.Fatalf("self-loop %v in stream", e)
		}
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			t.Fatalf("edge %v outside node range [0,%d)", e, n)
		}
	}
	// Replaying the stream must yield exactly n nodes and m edges once every
	// node has appeared (with m >> n ln n all nodes are hit w.h.p.; at these
	// fixed seeds this is deterministic).
	g := BuildFromStream(stream)
	if got := g.NumEdges(); got != m {
		t.Fatalf("replayed graph has %d edges, want %d", got, m)
	}
	if got := g.NumNodes(); got != n {
		t.Fatalf("replayed graph has %d nodes, want %d", got, n)
	}
}

func TestDirichletStreamPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	DirichletStream(1, 5, rand.New(rand.NewPCG(1, 0)))
}

func sortedEdges(edges []graph.Edge) []graph.Edge {
	out := append([]graph.Edge(nil), edges...)
	slices.SortFunc(out, func(a, b graph.Edge) int {
		if a.From != b.From {
			return int(a.From - b.From)
		}
		return int(a.To - b.To)
	})
	return out
}

// TestRandomPermutationStreamIsPermutation checks the stream is exactly the
// graph's edge multiset, duplicates included, in some order.
func TestRandomPermutationStreamIsPermutation(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // parallel edge: multiset semantics matter
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	for i := 3; i < 20; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	rng := rand.New(rand.NewPCG(5, 0))
	stream := RandomPermutationStream(g, rng)
	if !slices.Equal(sortedEdges(stream), sortedEdges(g.Edges())) {
		t.Fatalf("stream %v is not a permutation of edges %v", stream, g.Edges())
	}
	// Across seeds the order must actually vary (it is a shuffle, not the
	// identity); with 21 edges two fixed seeds agreeing is astronomically
	// unlikely and deterministic here.
	other := RandomPermutationStream(g, rand.New(rand.NewPCG(6, 0)))
	if slices.Equal(stream, other) {
		t.Fatal("two seeds produced identical permutations")
	}
}

func TestSplitStreamBounds(t *testing.T) {
	stream := []graph.Edge{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5}}
	pre, suf := SplitStream(stream, 0.5)
	if len(pre) != 2 || len(suf) != 2 {
		t.Fatalf("split 0.5: %d/%d want 2/2", len(pre), len(suf))
	}
	pre, suf = SplitStream(stream, -1)
	if len(pre) != 0 || len(suf) != 4 {
		t.Fatalf("split -1: %d/%d want 0/4", len(pre), len(suf))
	}
	pre, suf = SplitStream(stream, 2)
	if len(pre) != 4 || len(suf) != 0 {
		t.Fatalf("split 2: %d/%d want 4/0", len(pre), len(suf))
	}
}

func TestHotSpotStreamFixedSeed(t *testing.T) {
	a := HotSpotStream(40, 200, rand.New(rand.NewPCG(5, 0)))
	b := HotSpotStream(40, 200, rand.New(rand.NewPCG(5, 0)))
	if len(a) != 200 || !reflect.DeepEqual(a, b) {
		t.Fatal("HotSpotStream is not deterministic under a fixed seed")
	}
	for i, ed := range a {
		if ed.From != 0 && ed.To != 0 {
			t.Fatalf("edge %d (%v) misses the hub", i, ed)
		}
		if ed.From == ed.To {
			t.Fatalf("edge %d is a self-loop", i)
		}
		if onHub := ed.To == 0; onHub != (i%2 == 0) {
			t.Fatalf("edge %d breaks the in/out alternation", i)
		}
	}
}
