package gen

import (
	"math/rand/v2"
	"testing"

	"fastppr/internal/graph"
)

// replayLive replays a churn stream against a live-edge multiset, failing if
// any deletion targets an edge that is not currently live — the contract both
// generators promise — and returns the surviving multiset.
func replayLive(t *testing.T, events []graph.Event) map[graph.Edge]int {
	t.Helper()
	live := map[graph.Edge]int{}
	for i, ev := range events {
		if ev.Del {
			if live[ev.Edge] == 0 {
				t.Fatalf("event %d deletes %v which is not live", i, ev.Edge)
			}
			live[ev.Edge]--
		} else {
			live[ev.Edge]++
		}
	}
	return live
}

func TestShrinkGrowStreamOnlyDeletesLive(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 0))
	arrivals := DirichletStream(50, 800, rng)
	events := ShrinkGrowStream(arrivals, 4, 0.3, rng)

	adds, dels := SplitEvents(events)
	if len(adds) != len(arrivals) {
		t.Fatalf("stream carries %d arrivals, want all %d", len(adds), len(arrivals))
	}
	if len(dels) == 0 {
		t.Fatal("shrink phases produced no deletions")
	}
	live := replayLive(t, events)
	n := 0
	for _, k := range live {
		n += k
	}
	if n != len(adds)-len(dels) {
		t.Fatalf("%d live edges after replay, want %d", n, len(adds)-len(dels))
	}
	// Arrival order is preserved within chunks.
	j := 0
	for _, ev := range events {
		if !ev.Del {
			if ev.Edge != arrivals[j] {
				t.Fatalf("arrival %d reordered: %v vs %v", j, ev.Edge, arrivals[j])
			}
			j++
		}
	}
}

func TestShrinkGrowStreamReproducible(t *testing.T) {
	arrivals := DirichletStream(30, 300, rand.New(rand.NewPCG(202, 0)))
	a := ShrinkGrowStream(arrivals, 3, 0.25, rand.New(rand.NewPCG(203, 0)))
	b := ShrinkGrowStream(arrivals, 3, 0.25, rand.New(rand.NewPCG(203, 0)))
	if len(a) != len(b) {
		t.Fatalf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPowerLawChurnStreamOnlyDeletesLive(t *testing.T) {
	rng := rand.New(rand.NewPCG(204, 0))
	events := PowerLawChurnStream(60, 1000, 0.9, 0.4, rng)
	if len(events) != 1000 {
		t.Fatalf("generated %d events, want 1000", len(events))
	}
	_, dels := SplitEvents(events)
	if len(dels) == 0 {
		t.Fatal("delFrac=0.4 produced no deletions")
	}
	for i, ev := range events {
		if !ev.Del && ev.Edge.From == ev.Edge.To {
			t.Fatalf("event %d is a self-loop arrival: %v", i, ev.Edge)
		}
	}
	replayLive(t, events)
}

func TestChurnStreamPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	rng := rand.New(rand.NewPCG(205, 0))
	mustPanic("phases=0", func() { ShrinkGrowStream(nil, 0, 0.1, rng) })
	mustPanic("shrinkFrac=1", func() { ShrinkGrowStream(nil, 1, 1, rng) })
	mustPanic("n=1", func() { PowerLawChurnStream(1, 10, 0.9, 0.1, rng) })
	mustPanic("delFrac=-0.1", func() { PowerLawChurnStream(5, 10, 0.9, -0.1, rng) })
}
