package gen

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

func TestPoissonBurstStreamFixedSeed(t *testing.T) {
	a := PoissonBurstStream(100, 500, 3, rand.New(rand.NewPCG(9, 0)))
	b := PoissonBurstStream(100, 500, 3, rand.New(rand.NewPCG(9, 0)))
	if len(a) != 500 || !reflect.DeepEqual(a, b) {
		t.Fatal("PoissonBurstStream is not deterministic under a fixed seed")
	}
	c := PoissonBurstStream(100, 500, 3, rand.New(rand.NewPCG(10, 0)))
	if reflect.DeepEqual(a, c) {
		t.Fatal("two seeds produced identical streams")
	}
	for i, ed := range a {
		if ed.From == ed.To {
			t.Fatalf("edge %d is a self-loop", i)
		}
		if ed.From < 0 || ed.From >= 100 || ed.To < 0 || ed.To >= 100 {
			t.Fatalf("edge %d (%v) outside node range", i, ed)
		}
	}
}

// TestPoissonBurstStreamClumpLaw decomposes the stream into runs of equal
// sources and chi-squared-tests the run lengths against the 1+Poisson(lambda)
// law the generator promises. n is huge relative to the clump count so two
// consecutive clumps sharing a source (which would merge runs) is vanishingly
// unlikely; the last run is dropped because m truncates it.
func TestPoissonBurstStreamClumpLaw(t *testing.T) {
	const n, lambda = 1_000_000, 3.0
	m := 60_000
	if testing.Short() {
		m = 12_000
	}
	stream := PoissonBurstStream(n, m, lambda, rand.New(rand.NewPCG(11, 0)))
	var runs []int
	runLen := 1
	for i := 1; i < len(stream); i++ {
		if stream[i].From == stream[i-1].From {
			runLen++
			continue
		}
		runs = append(runs, runLen)
		runLen = 1
	}
	// runLen now holds the final, possibly truncated run; discard it.

	// Bin run lengths 1..K with the upper tail lumped into bin K.
	const K = 9
	obs := make([]float64, K)
	for _, r := range runs {
		if r > K {
			r = K
		}
		obs[r-1]++
	}
	total := float64(len(runs))
	chi2 := 0.0
	tail := 1.0
	for k := 1; k < K; k++ {
		// P(1+Poisson = k) = e^-lambda lambda^(k-1) / (k-1)!
		p := math.Exp(-lambda) * math.Pow(lambda, float64(k-1)) / float64(factorial(k-1))
		tail -= p
		exp := p * total
		chi2 += (obs[k-1] - exp) * (obs[k-1] - exp) / exp
	}
	exp := tail * total
	chi2 += (obs[K-1] - exp) * (obs[K-1] - exp) / exp
	// 8 degrees of freedom; P(chi2 > 30) ~ 2e-4, and the seed is fixed so the
	// draw is deterministic.
	if chi2 > 30 {
		t.Fatalf("chi-squared=%.1f rejects the 1+Poisson(%v) clump law", chi2, lambda)
	}
}

func factorial(k int) int {
	f := 1
	for i := 2; i <= k; i++ {
		f *= i
	}
	return f
}

func TestBipartiteStreamShape(t *testing.T) {
	const hubs, auths, m = 40, 60, 2000
	a := BipartiteStream(hubs, auths, m, 0.8, rand.New(rand.NewPCG(12, 0)))
	b := BipartiteStream(hubs, auths, m, 0.8, rand.New(rand.NewPCG(12, 0)))
	if len(a) != m || !reflect.DeepEqual(a, b) {
		t.Fatal("BipartiteStream is not deterministic under a fixed seed")
	}
	for i, ed := range a {
		if ed.From < 0 || ed.From >= hubs {
			t.Fatalf("edge %d source %d outside the hub side", i, ed.From)
		}
		if ed.To < hubs || ed.To >= hubs+auths {
			t.Fatalf("edge %d target %d outside the authority side", i, ed.To)
		}
	}
}

// TestBipartiteStreamLaws chi-squared-tests both marginals: uniform sources
// over the hub side and Zipf(alpha)-ranked targets over the authority side.
func TestBipartiteStreamLaws(t *testing.T) {
	const hubs, auths, alpha = 20, 30, 0.8
	m := 120_000
	if testing.Short() {
		m = 24_000
	}
	stream := BipartiteStream(hubs, auths, m, alpha, rand.New(rand.NewPCG(13, 0)))

	srcObs := make([]float64, hubs)
	tgtObs := make([]float64, auths)
	for _, ed := range stream {
		srcObs[ed.From]++
		tgtObs[int(ed.To)-hubs]++
	}

	chi2 := 0.0
	for _, o := range srcObs {
		exp := float64(m) / hubs
		chi2 += (o - exp) * (o - exp) / exp
	}
	// 19 degrees of freedom; P(chi2 > 50) ~ 1e-4.
	if chi2 > 50 {
		t.Fatalf("chi-squared=%.1f rejects uniform hub sources", chi2)
	}

	// Zipf pmf over authority ranks: p_r ∝ (r+1)^-alpha.
	pmf := make([]float64, auths)
	sum := 0.0
	for r := range pmf {
		pmf[r] = math.Pow(float64(r+1), -alpha)
		sum += pmf[r]
	}
	chi2 = 0.0
	for r, o := range tgtObs {
		exp := pmf[r] / sum * float64(m)
		chi2 += (o - exp) * (o - exp) / exp
	}
	// 29 degrees of freedom; P(chi2 > 65) ~ 2e-4.
	if chi2 > 65 {
		t.Fatalf("chi-squared=%.1f rejects the Zipf(%v) authority law", chi2, alpha)
	}
}

// TestPowerLawStreamLaws chi-squared-tests both endpoint marginals. The
// source marginal is exactly Zipf(alphaOut) over node IDs; the target
// marginal is the reversed Zipf(alphaIn) law conditioned on the self-loop
// resampling, computed exactly from the generator's definition.
func TestPowerLawStreamLaws(t *testing.T) {
	const n = 40
	const alphaOut, alphaIn = 0.9, 0.7
	m := 120_000
	if testing.Short() {
		m = 24_000
	}
	stream := PowerLawStream(n, m, alphaOut, alphaIn, rand.New(rand.NewPCG(14, 0)))
	if len(stream) != m {
		t.Fatalf("stream has %d edges, want %d", len(stream), m)
	}

	srcObs := make([]float64, n)
	tgtObs := make([]float64, n)
	for i, ed := range stream {
		if ed.From == ed.To {
			t.Fatalf("edge %d is a self-loop", i)
		}
		srcObs[ed.From]++
		tgtObs[ed.To]++
	}

	// pOut[u]: P(source = u) = Zipf(alphaOut) at rank u.
	// pIn[v]: unconditional P(target = v) = Zipf(alphaIn) at rank n-1-v.
	pOut := zipfPMF(n, alphaOut)
	pIn := make([]float64, n)
	rev := zipfPMF(n, alphaIn)
	for v := range pIn {
		pIn[v] = rev[n-1-v]
	}

	chi2 := 0.0
	for u, o := range srcObs {
		exp := pOut[u] * float64(m)
		chi2 += (o - exp) * (o - exp) / exp
	}
	// 39 degrees of freedom; P(chi2 > 80) ~ 1e-4.
	if chi2 > 80 {
		t.Fatalf("chi-squared=%.1f rejects the Zipf(%v) source law", chi2, alphaOut)
	}

	// Target marginal under resampling: P(v) = sum_{u != v} pOut[u] * pIn[v]/(1-pIn[u]).
	chi2 = 0.0
	for v, o := range tgtObs {
		p := 0.0
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			p += pOut[u] * pIn[v] / (1 - pIn[u])
		}
		exp := p * float64(m)
		chi2 += (o - exp) * (o - exp) / exp
	}
	if chi2 > 80 {
		t.Fatalf("chi-squared=%.1f rejects the reversed Zipf(%v) target law", chi2, alphaIn)
	}
}

func zipfPMF(n int, alpha float64) []float64 {
	pmf := make([]float64, n)
	sum := 0.0
	for r := range pmf {
		pmf[r] = math.Pow(float64(r+1), -alpha)
		sum += pmf[r]
	}
	for r := range pmf {
		pmf[r] /= sum
	}
	return pmf
}

func TestAdversarialStreamPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	rng := rand.New(rand.NewPCG(1, 0))
	expectPanic("PoissonBurstStream n", func() { PoissonBurstStream(1, 5, 1, rng) })
	expectPanic("PoissonBurstStream lambda", func() { PoissonBurstStream(5, 5, -1, rng) })
	expectPanic("BipartiteStream", func() { BipartiteStream(0, 5, 5, 0.5, rng) })
	expectPanic("PowerLawStream", func() { PowerLawStream(1, 5, 0.5, 0.5, rng) })
}

// TestPoissonBurstStreamReplays sanity-checks that a burst stream replays
// cleanly into a graph (no panics, every edge present).
func TestPoissonBurstStreamReplays(t *testing.T) {
	stream := PoissonBurstStream(50, 400, 2, rand.New(rand.NewPCG(15, 0)))
	g := BuildFromStream(stream)
	if got := g.NumEdges(); got != 400 {
		t.Fatalf("replayed graph has %d edges, want 400", got)
	}
	if got := g.NumNodes(); got > 50 {
		t.Fatalf("replayed graph has %d nodes, want <= 50", got)
	}
}
