package gen

import (
	"cmp"
	"math/rand/v2"
	"slices"

	"fastppr/internal/graph"
)

// RandomPermutationStream returns g's edge set in uniformly random order —
// the paper's arrival model (m adversarially chosen edges, random order).
// The edge set is put in canonical (From, To) order before the seeded
// shuffle: graph.Edges enumerates shard maps in unspecified order, and
// shuffling a nondeterministic base order with a fixed-seed RNG silently
// broke the fixed-seed reproducibility every statistical test relies on.
func RandomPermutationStream(g *graph.Graph, rng *rand.Rand) []graph.Edge {
	edges := g.Edges()
	slices.SortFunc(edges, func(a, b graph.Edge) int {
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(a.To, b.To)
	})
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// DirichletStream generates m edge arrivals under the paper's Dirichlet
// model: the source of the t-th edge is node u with probability
// (d_u(t-1) + 1) / (t - 1 + n), where d_u is the out-degree accumulated so
// far; the target is uniform over the other nodes. n fixed nodes 0..n-1.
func DirichletStream(n, m int, rng *rand.Rand) []graph.Edge {
	if n < 2 {
		panic("gen: DirichletStream needs n >= 2")
	}
	// sources realizes the Dirichlet (Pólya urn) law: each node once, plus
	// once per edge already emitted from it.
	sources := make([]graph.NodeID, 0, n+m)
	for i := 0; i < n; i++ {
		sources = append(sources, graph.NodeID(i))
	}
	edges := make([]graph.Edge, 0, m)
	for t := 0; t < m; t++ {
		u := sources[rng.IntN(len(sources))]
		var v graph.NodeID
		for {
			v = graph.NodeID(rng.IntN(n))
			if v != u {
				break
			}
		}
		edges = append(edges, graph.Edge{From: u, To: v})
		sources = append(sources, u)
	}
	return edges
}

// AdversarialExample1Stream returns the Example 1 gadget's edges in an order
// chosen by the adversary: the whole gadget first (any order), then the
// single killer edge u -> v_1 last. The caller replays this through the
// incremental maintainer to observe the Omega(n) update burst.
func AdversarialExample1Stream(n int, rng *rand.Rand) (stream []graph.Edge, killer graph.Edge, nodes ExampleNodes) {
	g, nd := Example1(n)
	stream = RandomPermutationStream(g, rng)
	return stream, graph.Edge{From: nd.U, To: nd.V1}, nd
}

// SplitStream cuts an arrival stream at fraction f (0 < f < 1), returning
// the prefix ("snapshot one") and suffix ("future edges"). Used by the link
// prediction harness to emulate the paper's two dated Twitter snapshots.
func SplitStream(stream []graph.Edge, f float64) (prefix, suffix []graph.Edge) {
	cut := int(float64(len(stream)) * f)
	if cut < 0 {
		cut = 0
	}
	if cut > len(stream) {
		cut = len(stream)
	}
	return stream[:cut], stream[cut:]
}

// BuildFromStream constructs a graph by replaying a stream of edges.
func BuildFromStream(stream []graph.Edge) *graph.Graph {
	g := graph.New(0)
	for _, e := range stream {
		g.AddEdge(e.From, e.To)
	}
	return g
}

// HotSpotStream generates m edge arrivals that all touch one hub (node 0),
// alternating u -> hub and hub -> v with u, v uniform over the other nodes.
// Every arrival lands on the same pending-position neighborhood, which is
// the worst case for the incremental repair path — and for the WAL behind
// it, since each repair re-journals segments through the hub. The crash
// harness uses it to maximize mutation density around the kill point.
func HotSpotStream(n, m int, rng *rand.Rand) []graph.Edge {
	if n < 2 {
		panic("gen: HotSpotStream needs n >= 2")
	}
	const hub = graph.NodeID(0)
	edges := make([]graph.Edge, 0, m)
	for t := 0; t < m; t++ {
		other := graph.NodeID(1 + rng.IntN(n-1))
		if t%2 == 0 {
			edges = append(edges, graph.Edge{From: other, To: hub})
		} else {
			edges = append(edges, graph.Edge{From: hub, To: other})
		}
	}
	return edges
}
