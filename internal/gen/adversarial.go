package gen

import (
	"math"
	"math/rand/v2"

	"fastppr/internal/graph"
)

// Adversarial arrival streams: the workload suite the ROADMAP's open item
// names. Each generator targets a specific weakness of the incremental
// repair path — temporal clustering (bursts re-enter the same repair
// neighborhood before its cache lines cool), follower-graph topology
// (maximal hub/authority asymmetry for the sided SALSA phases), and
// power-law degree skew (hot nodes carry the most stored walk hits, so
// their arrivals trigger the largest reroute batches). All are fixed-seed
// deterministic, like every generator in this package.

// PoissonBurstStream generates m edge arrivals in bursts: clump sizes are
// 1 + Poisson(lambda) (shifted so every clump is non-empty), each clump
// shares one uniformly drawn source, and targets are uniform over the other
// nodes. Consecutive arrivals therefore hammer the same source's repair
// neighborhood — out-degree moves by the clump size while the stored walks
// through it are rerouted over and over, the temporal-clustering adversary
// for the redirect-maintenance path. The final clump is truncated at m.
func PoissonBurstStream(n, m int, lambda float64, rng *rand.Rand) []graph.Edge {
	if n < 2 {
		panic("gen: PoissonBurstStream needs n >= 2")
	}
	if lambda < 0 || math.IsNaN(lambda) {
		panic("gen: PoissonBurstStream needs lambda >= 0")
	}
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		burst := 1 + poisson(rng, lambda)
		u := graph.NodeID(rng.IntN(n))
		for b := 0; b < burst && len(edges) < m; b++ {
			var v graph.NodeID
			for {
				v = graph.NodeID(rng.IntN(n))
				if v != u {
					break
				}
			}
			edges = append(edges, graph.Edge{From: u, To: v})
		}
	}
	return edges
}

// poisson draws Poisson(lambda) by Knuth's product-of-uniforms method —
// exact and fast for the small burst means the workload suite uses.
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// BipartiteStream generates m arrivals on a follower-graph topology: every
// edge goes from the hub side (nodes 0..hubs-1) to the authority side
// (nodes hubs..hubs+auths-1). Sources are uniform over the hubs; targets
// follow a Zipf(alpha) popularity law over the authorities (rank 0 = node
// hubs is the celebrity). The two SALSA sides are maximally asymmetric
// here: no authority ever gains an out-edge, so forward repairs land only
// on hubs, backward repairs only on authorities, and the hot authorities
// accumulate the deepest backward-pending hit lists.
func BipartiteStream(hubs, auths, m int, alpha float64, rng *rand.Rand) []graph.Edge {
	if hubs < 1 || auths < 1 {
		panic("gen: BipartiteStream needs hubs >= 1 and auths >= 1")
	}
	z := NewZipf(auths, alpha)
	edges := make([]graph.Edge, 0, m)
	for t := 0; t < m; t++ {
		u := graph.NodeID(rng.IntN(hubs))
		v := graph.NodeID(hubs + z.Sample(rng))
		edges = append(edges, graph.Edge{From: u, To: v})
	}
	return edges
}

// PowerLawStream generates m arrivals over n nodes with independently
// power-law endpoints: sources follow Zipf(alphaOut) with rank r mapped to
// node r (low IDs are the out-hubs), targets follow Zipf(alphaIn) with rank
// r mapped to node n-1-r (high IDs are the in-hubs), so the two hub sets
// are disjoint and both marginal degree laws are realized simultaneously.
// Self-loops are skipped by resampling the target.
func PowerLawStream(n, m int, alphaOut, alphaIn float64, rng *rand.Rand) []graph.Edge {
	if n < 2 {
		panic("gen: PowerLawStream needs n >= 2")
	}
	zo := NewZipf(n, alphaOut)
	zi := NewZipf(n, alphaIn)
	edges := make([]graph.Edge, 0, m)
	for t := 0; t < m; t++ {
		u := graph.NodeID(zo.Sample(rng))
		var v graph.NodeID
		for {
			v = graph.NodeID(n - 1 - zi.Sample(rng))
			if v != u {
				break
			}
		}
		edges = append(edges, graph.Edge{From: u, To: v})
	}
	return edges
}
