package gen

import (
	"math/rand/v2"

	"fastppr/internal/graph"
)

// Churn streams: mixed arrival/deletion event sequences for exercising the
// deletion repair path. Both generators track the live edge multiset and
// only ever delete edges that are currently present, so every deletion in a
// generated stream hits (no DelMisses) when the stream is replayed in order
// onto the graph it assumes — empty for PowerLawChurnStream, the stream's
// own arrivals for ShrinkGrowStream.

// ShrinkGrowStream turns an arrival stream into alternating grow and shrink
// phases: the arrivals are split into `phases` contiguous chunks, and after
// each chunk a shrinkFrac fraction of the currently live edges (uniformly
// chosen, multiset semantics) is deleted. shrinkFrac must be in [0, 1);
// phases >= 1. The input order is preserved within chunks, so a fixed-seed
// caller gets a reproducible stream.
func ShrinkGrowStream(arrivals []graph.Edge, phases int, shrinkFrac float64, rng *rand.Rand) []graph.Event {
	if phases < 1 {
		panic("gen: ShrinkGrowStream needs phases >= 1")
	}
	if shrinkFrac < 0 || shrinkFrac >= 1 {
		panic("gen: ShrinkGrowStream needs shrinkFrac in [0, 1)")
	}
	events := make([]graph.Event, 0, len(arrivals)*2)
	live := make([]graph.Edge, 0, len(arrivals))
	chunk := (len(arrivals) + phases - 1) / phases
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < len(arrivals); lo += chunk {
		hi := min(lo+chunk, len(arrivals))
		for _, ed := range arrivals[lo:hi] {
			events = append(events, graph.Event{Edge: ed})
			live = append(live, ed)
		}
		kill := int(shrinkFrac * float64(len(live)))
		for k := 0; k < kill; k++ {
			i := rng.IntN(len(live))
			events = append(events, graph.Event{Edge: live[i], Del: true})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return events
}

// PowerLawChurnStream generates m events over n nodes: each event is a
// deletion of a uniformly random live edge with probability delFrac (when
// any edge is live), otherwise an arrival whose endpoints are drawn from a
// Zipf(alpha) rank distribution — hubs gain and lose edges constantly, the
// adversarial regime for the deletion repair path since hot nodes carry the
// most stored walk hits. Self-loops are skipped at sampling time. delFrac
// must be in [0, 1); n >= 2.
func PowerLawChurnStream(n, m int, alpha, delFrac float64, rng *rand.Rand) []graph.Event {
	if n < 2 {
		panic("gen: PowerLawChurnStream needs n >= 2")
	}
	if delFrac < 0 || delFrac >= 1 {
		panic("gen: PowerLawChurnStream needs delFrac in [0, 1)")
	}
	z := NewZipf(n, alpha)
	events := make([]graph.Event, 0, m)
	live := make([]graph.Edge, 0, m)
	for t := 0; t < m; t++ {
		if len(live) > 0 && rng.Float64() < delFrac {
			i := rng.IntN(len(live))
			events = append(events, graph.Event{Edge: live[i], Del: true})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		u := graph.NodeID(z.Sample(rng))
		var v graph.NodeID
		for {
			v = graph.NodeID(z.Sample(rng))
			if v != u {
				break
			}
		}
		ed := graph.Edge{From: u, To: v}
		events = append(events, graph.Event{Edge: ed})
		live = append(live, ed)
	}
	return events
}

// SplitEvents partitions a churn stream into its arrivals and deletions,
// preserving order within each class. Used by drivers that feed the two
// classes through separate batch calls.
func SplitEvents(events []graph.Event) (adds, dels []graph.Edge) {
	for _, ev := range events {
		if ev.Del {
			dels = append(dels, ev.Edge)
		} else {
			adds = append(adds, ev.Edge)
		}
	}
	return adds, dels
}
