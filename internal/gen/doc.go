// Package gen generates the synthetic workloads that stand in for the
// paper's Twitter data: power-law directed graphs, edge-arrival streams
// under the random-permutation and Dirichlet models (the arrival models of
// the paper's Theorems 2-5 and Section 6's simulations), and the
// adversarial gadget of the paper's Example 1 (the Omega(n) worst case for
// a single edge arrival).
//
// The paper's analysis needs only the random-permutation arrival model (m
// adversarially chosen edges arriving in random order) and, for the
// personalized results, power-law score vectors. Preferential-attachment and
// Chung–Lu graphs replayed in random order satisfy both, so every code path
// the Twitter experiments exercised is exercised here;
// docs/DESIGN.md#5-workload-substitution-no-twitter-data records the
// substitution.
//
// Churn streams extend the arrival models with deletions
// (docs/DESIGN.md#10-deletions--windows): ShrinkGrowStream folds an
// arrival stream into alternating grow/shrink phases, and
// PowerLawChurnStream interleaves preferential-attachment arrivals with
// uniform deletions. Both only ever delete edges live at that point in the
// stream — a serialized replay must record zero deletion misses — and
// SplitEvents recovers the plain arrival slice when a consumer wants the
// growth-only prefix semantics.
//
// The adversarial arrival suite
// (docs/DESIGN.md#11-batching--compaction) stresses the maintainers with
// the stream shapes uniform arrivals never produce: PoissonBurstStream
// (temporally clumped arrivals sharing a source), BipartiteStream
// (hub-to-authority arrivals under a Zipf popularity law) and
// PowerLawStream (Zipf-skewed endpoints on both sides). All three are
// fixed-seed, panic on degenerate parameters, and are shape-checked by
// chi-squared tests; cmd/benchwalk exposes them as -workload profiles and
// replays them in its -adversarial section.
package gen
