package gen

import (
	"math"
	"math/rand/v2"

	"fastppr/internal/graph"
)

// PreferentialAttachment builds a directed graph with n nodes where each new
// node issues outPerNode edges whose targets are chosen by preferential
// attachment on in-degree (with add-one smoothing so early nodes can be
// reached). The resulting in-degree sequence is power-law distributed, the
// regime the paper's Figures 2–4 live in. Self-loops and duplicate targets
// from one source are avoided when possible.
func PreferentialAttachment(n, outPerNode int, rng *rand.Rand) *graph.Graph {
	if n <= 0 {
		panic("gen: n must be positive")
	}
	g := graph.New(n)
	// targets is a multiset realizing "probability proportional to
	// in-degree + 1": every node appears once (the +1 smoothing) plus once
	// per incoming edge.
	targets := make([]graph.NodeID, 0, n*(outPerNode+1))
	for i := 0; i < n; i++ {
		v := graph.NodeID(i)
		g.AddNode(v)
		targets = append(targets, v)
		if i == 0 {
			continue
		}
		deg := outPerNode
		if deg > i {
			deg = i
		}
		chosen := make(map[graph.NodeID]bool, deg)
		for len(chosen) < deg {
			t := targets[rng.IntN(len(targets))]
			if t == v || chosen[t] {
				// Resample; duplicates are common early, rare later.
				// Guard against pathological loops on tiny prefixes.
				if len(chosen) >= i {
					break
				}
				continue
			}
			chosen[t] = true
			g.AddEdge(v, t)
			targets = append(targets, t)
		}
	}
	return g
}

// ChungLu builds a directed graph whose expected in-degrees follow a
// power-law with the given exponent (rank–size exponent alpha in (0,1), the
// paper's parameterization where the j-th largest value is ∝ j^-alpha).
// Every node issues approximately avgOut out-edges with targets drawn from a
// Zipf(alpha) distribution over nodes.
func ChungLu(n, avgOut int, alpha float64, rng *rand.Rand) *graph.Graph {
	if n <= 0 {
		panic("gen: n must be positive")
	}
	z := NewZipf(n, alpha)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	for i := 0; i < n; i++ {
		u := graph.NodeID(i)
		for e := 0; e < avgOut; e++ {
			t := graph.NodeID(z.Sample(rng))
			if t == u {
				continue
			}
			g.AddEdge(u, t)
		}
	}
	return g
}

// Zipf samples ranks 0..n-1 with probability proportional to (rank+1)^-alpha
// by inverting the (integrated) CDF; alpha may be any value in (0, 1).
// math/rand's Zipf requires s > 1, hence this bespoke sampler.
type Zipf struct {
	cdf []float64 // cumulative normalized weights
}

// NewZipf precomputes the sampler for n ranks and exponent alpha.
func NewZipf(n int, alpha float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for j := 0; j < n; j++ {
		sum += math.Pow(float64(j+1), -alpha)
		cdf[j] = sum
	}
	for j := range cdf {
		cdf[j] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one rank in [0, n).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Example1 constructs the adversarial gadget of the paper's Example 1: a
// directed N-cycle v_1..v_N, a hub u, spokes x_1..x_N (u <-> x_j), and
// satellites y_1..y_N (v_1 <-> y_j). Every v_j points at u. Total nodes
// n = 3N+1. Adding the single edge u -> v_1 afterwards forces Omega(n)
// stored walk segments to be updated. Node numbering: v_j = j (1..N),
// u = N+1, x_j = N+1+j, y_j = 2N+1+j.
func Example1(n int) (*graph.Graph, ExampleNodes) {
	if n < 1 {
		panic("gen: Example1 needs N >= 1")
	}
	g := graph.New(3*n + 1)
	v := func(j int) graph.NodeID { return graph.NodeID(j) }         // 1..N
	u := graph.NodeID(n + 1)                                         //
	x := func(j int) graph.NodeID { return graph.NodeID(n + 1 + j) } // 1..N
	y := func(j int) graph.NodeID { return graph.NodeID(2*n + 1 + j) }
	for j := 1; j <= n; j++ {
		g.AddEdge(v(j), v(j%n+1)) // the cycle
		g.AddEdge(v(j), u)        // every v_j -> u
		g.AddEdge(u, x(j))        // u -> x_j
		g.AddEdge(x(j), u)        // x_j -> u
		g.AddEdge(v(1), y(j))     // v_1 -> y_j
		g.AddEdge(y(j), v(1))     // y_j -> v_1
	}
	return g, ExampleNodes{U: u, V1: v(1), N: n}
}

// ExampleNodes names the distinguished nodes of the Example 1 gadget.
type ExampleNodes struct {
	U  graph.NodeID // the hub whose new edge triggers the blow-up
	V1 graph.NodeID // target of the adversarial edge
	N  int          // cycle length (total nodes = 3N+1)
}
