package serve

import (
	"math/rand/v2"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/salsa"
)

// TestStalenessFuzzUnderCompaction extends the staleness fuzz with arena
// compactions firing mid-storm — both the maintainer's CompactEvery trigger
// and explicit Compact calls between queries. Compaction bumps no epoch and
// no stripe stamp, so it must be invisible to the serving tier: cached
// entries survive it (a hit immediately after a compaction is required, not
// just tolerated) and every served result — hit or miss — stays bitwise
// identical to a fresh recompute on its stream.
func TestStalenessFuzzUnderCompaction(t *testing.T) {
	n, m, iters := 150, 2000, 400
	if testing.Short() {
		n, m, iters = 80, 800, 120
	}
	cfg := salsa.Config{Eps: 0.2, R: 5, Workers: 1, Seed: 67, QueryWalks: 64, CompactEvery: 9}
	s, storm := newServer(t, n, m, cfg, Config{})
	mt := s.Maintainer()
	events := gen.ShrinkGrowStream(storm, 5, 0.3, rand.New(rand.NewPCG(69, 0)))
	rng := rand.New(rand.NewPCG(68, 0))
	next := 0
	hitsAfterCompact := 0
	for it := 0; it < iters; it++ {
		switch {
		case rng.IntN(4) == 0 && next < len(events):
			k := min(1+rng.IntN(8), len(events)-next)
			s.ApplyEvents(events[next : next+k])
			next += k
			continue
		case rng.IntN(5) == 0:
			// Warm a source, compact, and demand the entry survived: the
			// arena rewrite moved every live path, but epochs are untouched,
			// so the cache must still serve it — bitwise equal to recompute.
			src := graph.NodeID(rng.IntN(10))
			s.Personalized(src)
			mt.Store().Compact()
			res := s.Personalized(src)
			if !res.Hit {
				t.Fatalf("iter %d: compaction invalidated the cache entry for %d", it, src)
			}
			if !sameQuery(res.Query, mt.PersonalizedStream(src, res.Stream)) {
				t.Fatalf("iter %d: post-compaction hit for %d diverges from recompute", it, src)
			}
			hitsAfterCompact++
			continue
		}
		src := graph.NodeID(rng.IntN(10))
		if rng.IntN(4) == 0 {
			src = graph.NodeID(rng.IntN(n))
		}
		res := s.Personalized(src)
		if !sameQuery(res.Query, mt.PersonalizedStream(src, res.Stream)) {
			t.Fatalf("iter %d: served result for %d (hit=%v) diverges from recompute", it, src, res.Hit)
		}
	}
	if hitsAfterCompact == 0 {
		t.Fatal("fuzz run never served a hit across a compaction")
	}
	st := s.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Invalidated == 0 {
		t.Fatalf("fuzz run did not exercise the cache: %+v", st)
	}
	cnt := mt.Counters()
	if cnt.Deletions == 0 {
		t.Fatalf("fuzz run applied no deletions: %+v", cnt)
	}
	live, total := mt.Store().ArenaStats()
	if live > total {
		t.Fatalf("ArenaStats live=%d > total=%d", live, total)
	}
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mt.Store().ValidateSteps(mt.Social().Graph().HasEdge); err != nil {
		t.Fatal(err)
	}
}
