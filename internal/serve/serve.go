package serve

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"fastppr/internal/graph"
	"fastppr/internal/salsa"
	"fastppr/internal/topk"
	"fastppr/internal/walkstore"
)

// Config tunes the serving tier.
type Config struct {
	// MaxEntries caps the result cache; 0 means 4096. When full, the least
	// recently used entry is evicted on insert.
	MaxEntries int
}

func (c Config) maxEntries() int {
	if c.MaxEntries <= 0 {
		return 4096
	}
	return c.MaxEntries
}

// Result is the outcome of one served personalized query.
type Result struct {
	// Query is the personalized result being served. On a hit it is the
	// cached query object — still valid for its masked stripes at lookup
	// time, and bitwise what PersonalizedStream(Source, Stream) recomputes
	// against the unchanged store.
	Query *salsa.Query
	// Hit reports whether the result came out of the cache.
	Hit bool
	// Coalesced reports whether this call piggybacked on a concurrent
	// identical-source compute (sharing its store snapshot and store
	// session) instead of running its own.
	Coalesced bool
	// StoreCalls is what THIS serve call cost the Social Store: the
	// underlying query's measured calls when this call ran the compute,
	// and exactly 0 on a hit or a coalesced ride-along — the whole point
	// of the tier. The Theorem 8 ceiling therefore bounds every served
	// result: misses by the query layer's own accounting, hits trivially.
	StoreCalls int64
	// Stream is the PCG stream the result was computed on; feed it to
	// Maintainer.PersonalizedStream to recompute the identical result.
	Stream uint64
}

// Stats is a snapshot of the tier's serving counters.
type Stats struct {
	Hits        int64 // lookups served from a valid cached entry
	Misses      int64 // lookups that ran the query (singleflight leaders)
	Coalesced   int64 // lookups that shared a concurrent leader's compute
	Raced       int64 // computes not cached because a mutation landed mid-query
	Invalidated int64 // cached entries dropped after an epoch/rev mismatch
	Evicted     int64 // cached entries dropped by the LRU cap
	Entries     int   // live cache entries
}

// HitRate returns the fraction of non-coalesced lookups served from cache.
func (s Stats) HitRate() float64 {
	n := s.Hits + s.Misses
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// entry is one cached query result. All fields are immutable after insert
// except lastUse (guarded by Server.mu). Validity is checked lazily at
// lookup: the entry survives while every stripe in its mask still carries
// the walk-store epoch and edge revision stamped before its compute began.
type entry struct {
	q          *salsa.Query
	stream     uint64
	mask       uint64
	walkEpochs [walkstore.StripeCount]int64
	edgeRevs   [walkstore.StripeCount]int64
	lastUse    int64
}

// flight is one in-progress compute that same-source lookups coalesce onto.
type flight struct {
	done chan struct{}
	res  *Result
}

// Server is the query-serving tier in front of a salsa.Maintainer: an
// epoch-keyed result cache plus same-source singleflight batching. Route
// arrivals and deletions through ApplyEdge/ApplyEdges/ApplyDeletion/
// ApplyDeletions/ApplyEvents (or install the arrival observer by
// constructing the Server before the first mutation) so graph changes
// invalidate cached results even when the repair fast path leaves the walk
// store untouched.
type Server struct {
	m     *salsa.Maintainer
	walks *walkstore.Store
	cfg   Config

	// edgeRevs[i] counts completed arrivals and deletions touching an
	// endpoint in stripe i. The walk store's per-stripe epochs miss
	// mutations whose repair phases fast-skip or miss (a degree change
	// with no stored step to perturb mutates nothing), so the cache key
	// needs this second, graph-side stamp; the maintainer's arrival
	// observer bumps it after the mutation's effects are visible.
	edgeRevs [walkstore.StripeCount]atomic.Int64

	mu     sync.Mutex
	cache  map[graph.NodeID]*entry
	flight map[graph.NodeID]*flight
	clock  int64 // logical LRU clock, guarded by mu

	hits, misses, coalesced, raced, invalidated, evicted atomic.Int64
}

// New builds a serving tier over m and installs its arrival observer on the
// maintainer. Construct the Server before streaming arrivals; arrivals
// applied before the observer is installed are invisible to the cache keys.
func New(m *salsa.Maintainer, cfg Config) *Server {
	s := &Server{
		m:      m,
		walks:  m.Store(),
		cfg:    cfg,
		cache:  make(map[graph.NodeID]*entry),
		flight: make(map[graph.NodeID]*flight),
	}
	m.SetArrivalObserver(s.observeArrival)
	return s
}

// Maintainer returns the wrapped maintainer.
func (s *Server) Maintainer() *salsa.Maintainer { return s.m }

func (s *Server) observeArrival(ed graph.Edge) {
	s.edgeRevs[walkstore.StripeOf(ed.From)].Add(1)
	s.edgeRevs[walkstore.StripeOf(ed.To)].Add(1)
}

// ApplyEdge routes one arrival through the maintainer.
func (s *Server) ApplyEdge(ed graph.Edge) { s.m.ApplyEdge(ed) }

// ApplyEdges routes a batch of arrivals through the maintainer.
func (s *Server) ApplyEdges(edges []graph.Edge) { s.m.ApplyEdges(edges) }

// ApplyDeletion routes one edge deletion through the maintainer. The
// maintainer fires the arrival observer for deletions exactly as for
// arrivals, so cached results whose stripe masks cover either endpoint
// invalidate even when the repair perturbs no stored step (a degree
// change alone reshapes future queries). A DelMiss — deleting an edge
// not in the graph — mutates nothing and leaves the cache intact.
func (s *Server) ApplyDeletion(ed graph.Edge) { s.m.ApplyDeletion(ed) }

// ApplyDeletions routes a batch of edge deletions through the maintainer.
func (s *Server) ApplyDeletions(edges []graph.Edge) { s.m.ApplyDeletions(edges) }

// ApplyEvents routes a mixed arrival/deletion stream through the
// maintainer, preserving stream order.
func (s *Server) ApplyEvents(events []graph.Event) { s.m.ApplyEvents(events) }

// valid reports whether e may still be served: no masked stripe has moved
// its walk-store epoch or its edge revision since e's compute was stamped.
func (s *Server) valid(e *entry) bool {
	m := e.mask
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &^= 1 << uint(i)
		if s.walks.StripeEpoch(i) != e.walkEpochs[i] {
			return false
		}
		if s.edgeRevs[i].Load() != e.edgeRevs[i] {
			return false
		}
	}
	return true
}

// Personalized serves a personalized SALSA query for source. A valid cached
// result is returned as-is (0 store calls); concurrent lookups for the same
// source coalesce onto one compute sharing its store snapshot and store
// session; otherwise the query runs through the maintainer and, if no
// mutation raced it, the result is cached keyed on its stripe mask.
//
// Serialized (no concurrent arrivals), a served result is bitwise identical
// to a fresh recompute on its recorded stream. Racing a storm, a hit is the
// result of a query whose masked stripes have not moved since it ran —
// equivalent to recomputing it at the validation instant — and a miss has
// the query layer's usual snapshot semantics; see DESIGN.md §9.
func (s *Server) Personalized(source graph.NodeID) *Result {
	for {
		s.mu.Lock()
		if e, ok := s.cache[source]; ok {
			if s.valid(e) {
				s.clock++
				e.lastUse = s.clock
				s.mu.Unlock()
				s.hits.Add(1)
				return &Result{Query: e.q, Hit: true, Stream: e.stream}
			}
			delete(s.cache, source)
			s.invalidated.Add(1)
		}
		if fl, ok := s.flight[source]; ok {
			s.mu.Unlock()
			<-fl.done
			if fl.res != nil {
				s.coalesced.Add(1)
				r := *fl.res
				r.Coalesced = true
				r.StoreCalls = 0
				return &r
			}
			continue // leader vanished without a result; retry
		}
		fl := &flight{done: make(chan struct{})}
		s.flight[source] = fl
		s.mu.Unlock()
		return s.compute(source, fl)
	}
}

// compute runs the query as singleflight leader: pre-stamp every stripe's
// epoch and edge revision, run the query, and cache the result only if the
// stamps of every masked stripe held — otherwise a mutation raced the
// compute and caching it could pin a torn snapshot.
func (s *Server) compute(source graph.NodeID, fl *flight) *Result {
	var walkEpochs, edgeRevs [walkstore.StripeCount]int64
	for i := 0; i < walkstore.StripeCount; i++ {
		walkEpochs[i] = s.walks.StripeEpoch(i)
		edgeRevs[i] = s.edgeRevs[i].Load()
	}
	q := s.m.Personalized(source)
	st := q.Stats()
	res := &Result{Query: q, StoreCalls: st.StoreCalls, Stream: st.Stream}

	e := &entry{q: q, stream: st.Stream, mask: st.StripeMask, walkEpochs: walkEpochs, edgeRevs: edgeRevs}
	stable := s.valid(e)

	s.mu.Lock()
	if stable {
		s.clock++
		e.lastUse = s.clock
		s.insertLocked(source, e)
	} else {
		s.raced.Add(1)
	}
	fl.res = res
	delete(s.flight, source)
	s.mu.Unlock()
	close(fl.done)
	s.misses.Add(1)
	return res
}

// insertLocked adds e under s.mu, evicting the least recently used entry if
// the cache is at cap. The linear eviction scan is fine at the default cap:
// it only runs on insert, and an insert just paid for a full query compute.
func (s *Server) insertLocked(source graph.NodeID, e *entry) {
	if _, ok := s.cache[source]; !ok && len(s.cache) >= s.cfg.maxEntries() {
		var victim graph.NodeID
		oldest := int64(1<<63 - 1)
		for v, old := range s.cache {
			if old.lastUse < oldest {
				oldest, victim = old.lastUse, v
			}
		}
		delete(s.cache, victim)
		s.evicted.Add(1)
	}
	s.cache[source] = e
}

// PersonalizedTopK serves the k best personalized authorities for source.
func (s *Server) PersonalizedTopK(source graph.NodeID, k int) ([]topk.Item, *Result) {
	res := s.Personalized(source)
	return res.Query.TopK(k), res
}

// TopKStream serves a lazy descending iterator over source's personalized
// authority scores, so a caller can early-terminate ("items until the score
// drops below x") without paying for a full sort.
func (s *Server) TopKStream(source graph.NodeID) (*topk.Stream, *Result) {
	res := s.Personalized(source)
	return topk.NewStream(res.Query.AuthorityAll()), res
}

// PersonalizedMany serves a burst of queries, one result per source in
// order. Duplicate sources in the burst are computed once (the cache and
// singleflight already guarantee that for concurrent bursts; this is the
// convenience form for a caller holding a whole batch).
func (s *Server) PersonalizedMany(sources []graph.NodeID) []*Result {
	out := make([]*Result, len(sources))
	for i, src := range sources {
		out[i] = s.Personalized(src)
	}
	return out
}

// Invalidate drops any cached entry for source.
func (s *Server) Invalidate(source graph.NodeID) {
	s.mu.Lock()
	if _, ok := s.cache[source]; ok {
		delete(s.cache, source)
		s.invalidated.Add(1)
	}
	s.mu.Unlock()
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := len(s.cache)
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Coalesced:   s.coalesced.Load(),
		Raced:       s.raced.Load(),
		Invalidated: s.invalidated.Load(),
		Evicted:     s.evicted.Load(),
		Entries:     n,
	}
}
