package serve

import (
	"math/rand/v2"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/salsa"
	"fastppr/internal/socialstore"
)

func newServer(t *testing.T, n, m int, cfg salsa.Config, scfg Config) (*Server, []graph.Edge) {
	t.Helper()
	rng := rand.New(rand.NewPCG(cfg.Seed, 99))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	mt := salsa.New(socialstore.New(g), cfg)
	s := New(mt, scfg)
	storm := gen.DirichletStream(n, m, rng)
	mt.Bootstrap()
	s.ApplyEdges(storm[:m/2])
	return s, storm[m/2:]
}

// sameQuery compares two served query results bitwise: full authority and
// hub distributions plus the cost accounting that is a function of (store
// state, source, stream).
func sameQuery(a, b *salsa.Query) bool {
	as, bs := a.Stats(), b.Stats()
	return reflect.DeepEqual(a.AuthorityAll(), b.AuthorityAll()) &&
		as.Steps == bs.Steps && as.BareSteps == bs.BareSteps &&
		as.StitchedSegments == bs.StitchedSegments &&
		as.StitchedSteps == bs.StitchedSteps &&
		as.StoreCalls == bs.StoreCalls &&
		as.Stream == bs.Stream && as.StripeMask == bs.StripeMask
}

// TestHitIsBitwiseRecompute is the tentpole's serialized correctness bar:
// with the store quiet, a cache hit must be byte-identical to a fresh
// recompute at the same epoch (same stream), cost exactly 0 store calls,
// and survive arrivals that miss its stripe mask while dying on ones that
// hit it. Table-driven over fast path on/off and legacy scan.
func TestHitIsBitwiseRecompute(t *testing.T) {
	cases := []struct {
		name string
		cfg  salsa.Config
	}{
		{"fastpath", salsa.Config{Eps: 0.2, R: 6, Workers: 1, Seed: 41, QueryWalks: 128}},
		{"slowpath", salsa.Config{Eps: 0.2, R: 6, Workers: 1, Seed: 42, QueryWalks: 128, DisableFastPath: true}},
		{"legacyscan", salsa.Config{Eps: 0.25, R: 4, Workers: 1, Seed: 43, QueryWalks: 96, LegacyScan: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, storm := newServer(t, 200, 1200, tc.cfg, Config{})
			mt := s.Maintainer()
			for _, src := range []graph.NodeID{0, 7, 100, 199} {
				cold := s.Personalized(src)
				if cold.Hit {
					t.Fatalf("source %d: first lookup hit", src)
				}
				hit := s.Personalized(src)
				if !hit.Hit {
					t.Fatalf("source %d: second lookup missed a quiet store", src)
				}
				if hit.StoreCalls != 0 {
					t.Fatalf("source %d: hit cost %d store calls, want 0", src, hit.StoreCalls)
				}
				if hit.Query != cold.Query {
					t.Fatalf("source %d: hit returned a different query object", src)
				}
				// The recompute contract: same stream, same store, same bytes.
				fresh := mt.PersonalizedStream(src, hit.Stream)
				if !sameQuery(hit.Query, fresh) {
					t.Fatalf("source %d: hit diverges from recompute on stream %#x", src, hit.Stream)
				}
			}
			// A storm invalidates what it touches; served results afterwards
			// must again match fresh recomputes.
			s.ApplyEdges(storm)
			for _, src := range []graph.NodeID{0, 7, 100, 199} {
				res := s.Personalized(src)
				fresh := mt.PersonalizedStream(src, res.Stream)
				if !sameQuery(res.Query, fresh) {
					t.Fatalf("source %d post-storm: served result diverges from recompute", src)
				}
			}
			if err := mt.Store().Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStalenessFuzz randomly interleaves churn — arrivals AND deletions —
// with served queries (serialized, so the check can be exact): every served
// result — hit or miss — must be bitwise identical to a fresh recompute on
// its stream at the moment it was served, and the run must actually
// exercise hits, invalidations, and deletions.
func TestStalenessFuzz(t *testing.T) {
	n, m, iters := 150, 2000, 400
	if testing.Short() {
		n, m, iters = 80, 800, 120
	}
	cfg := salsa.Config{Eps: 0.2, R: 5, Workers: 1, Seed: 57, QueryWalks: 64}
	s, storm := newServer(t, n, m, cfg, Config{})
	mt := s.Maintainer()
	// Fold the remaining arrivals into a shrink-grow churn stream so the
	// racing mutations include edge deletions, not just growth.
	events := gen.ShrinkGrowStream(storm, 5, 0.3, rand.New(rand.NewPCG(59, 0)))
	rng := rand.New(rand.NewPCG(58, 0))
	next := 0
	for it := 0; it < iters; it++ {
		if rng.IntN(3) == 0 && next < len(events) {
			// A small burst of churn.
			k := min(1+rng.IntN(8), len(events)-next)
			s.ApplyEvents(events[next : next+k])
			next += k
			continue
		}
		// Hot-spot query mix so repeats are common enough to hit.
		src := graph.NodeID(rng.IntN(10))
		if rng.IntN(4) == 0 {
			src = graph.NodeID(rng.IntN(n))
		}
		res := s.Personalized(src)
		if !sameQuery(res.Query, mt.PersonalizedStream(src, res.Stream)) {
			t.Fatalf("iter %d: served result for %d (hit=%v) diverges from recompute", it, src, res.Hit)
		}
	}
	st := s.Stats()
	if st.Hits == 0 {
		t.Fatalf("fuzz run never hit the cache: %+v", st)
	}
	if st.Misses == 0 || st.Invalidated == 0 {
		t.Fatalf("fuzz run did not exercise invalidation: %+v", st)
	}
	cnt := mt.Counters()
	if cnt.Deletions == 0 {
		t.Fatalf("fuzz run applied no deletions: %+v", cnt)
	}
	if cnt.DelMisses != 0 {
		t.Fatalf("serialized shrink-grow stream missed %d deletions", cnt.DelMisses)
	}
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDeletionInvalidatesOverlappingCache is the deterministic deletion
// staleness law: a cached result whose stripe mask overlaps a deletion's
// endpoints must miss, while deletions whose endpoints land wholly outside
// the mask — and DelMiss no-ops — must leave the hit intact. Two disjoint
// 3-cycles on node IDs chosen so one lives entirely in stripe 0 and the
// other entirely in stripe 1 (stripes key on the ID's low six bits).
func TestDeletionInvalidatesOverlappingCache(t *testing.T) {
	g := graph.New(130)
	compA := []graph.NodeID{0, 64, 128} // all stripe 0
	compB := []graph.NodeID{1, 65, 129} // all stripe 1
	for _, v := range append(append([]graph.NodeID{}, compA...), compB...) {
		g.AddNode(v)
	}
	cfg := salsa.Config{Eps: 0.2, R: 8, Workers: 1, Seed: 101, QueryWalks: 64}
	mt := salsa.New(socialstore.New(g), cfg)
	s := New(mt, Config{})
	mt.Bootstrap()
	for _, comp := range [][]graph.NodeID{compA, compB} {
		for i, u := range comp {
			v := comp[(i+1)%len(comp)]
			s.ApplyEdge(graph.Edge{From: u, To: v})
			s.ApplyEdge(graph.Edge{From: v, To: u})
		}
	}

	cold := s.Personalized(0)
	if cold.Hit {
		t.Fatal("cold lookup hit")
	}
	mask := cold.Query.Stats().StripeMask
	if mask&1 == 0 || mask&2 != 0 {
		t.Fatalf("component-A query mask %#x should cover stripe 0 and not stripe 1", mask)
	}

	// A deletion entirely outside the mask must not invalidate.
	s.ApplyDeletion(graph.Edge{From: 1, To: 65})
	if res := s.Personalized(0); !res.Hit {
		t.Fatal("deletion outside the stripe mask invalidated the cache")
	}
	// A DelMiss touching a masked stripe mutates nothing: still a hit.
	s.ApplyDeletion(graph.Edge{From: 0, To: 3})
	if res := s.Personalized(0); !res.Hit {
		t.Fatal("DelMiss no-op invalidated the cache")
	}
	// A live deletion overlapping the mask must kill the entry.
	s.ApplyDeletion(graph.Edge{From: 0, To: 64})
	res := s.Personalized(0)
	if res.Hit {
		t.Fatal("cached result survived a deletion inside its stripe mask")
	}
	if !sameQuery(res.Query, mt.PersonalizedStream(0, res.Stream)) {
		t.Fatal("post-deletion recompute diverges from fresh recompute on its stream")
	}
	st := s.Stats()
	if st.Invalidated == 0 {
		t.Fatalf("overlapping deletion not accounted as invalidation: %+v", st)
	}
	cnt := mt.Counters()
	if cnt.Deletions != 3 || cnt.DelMisses != 1 {
		t.Fatalf("deletion accounting: %+v, want 3 deletions / 1 miss", cnt)
	}
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestServeRacingStorm is the -race stress: queriers hammer a hot-spot
// source mix while a churn storm applies arrivals and deletions
// concurrently. Asserted: clean Validate at the end, hit accounting
// consistent, every hit's query object still internally coherent
// (scores sum to ~1).
func TestServeRacingStorm(t *testing.T) {
	n, m := 150, 3000
	queriers, perQ := 3, 60
	if testing.Short() {
		m, perQ = 1200, 25
	}
	cfg := salsa.Config{Eps: 0.2, R: 5, Workers: 1, Seed: 61, QueryWalks: 64}
	s, storm := newServer(t, n, m, cfg, Config{})
	events := gen.ShrinkGrowStream(storm, 4, 0.25, rand.New(rand.NewPCG(62, 0)))
	var wg sync.WaitGroup
	var served atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.ApplyEvents(events)
	}()
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 7))
			for i := 0; i < perQ; i++ {
				src := graph.NodeID(rng.IntN(12))
				res := s.Personalized(src)
				if res.Query == nil {
					t.Error("nil query served")
					return
				}
				if res.Hit && res.StoreCalls != 0 {
					t.Errorf("hit charged %d store calls", res.StoreCalls)
					return
				}
				st, items := res.Query.Stats(), res.Query.TopK(5)
				if st.Source != src || (len(items) > 0 && items[0].Score <= 0) {
					t.Errorf("incoherent served query for %d: %+v", src, st)
					return
				}
				served.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if served.Load() != int64(queriers*perQ) {
		t.Fatalf("served %d of %d", served.Load(), queriers*perQ)
	}
	stats := s.Stats()
	if stats.Hits+stats.Misses+stats.Coalesced != served.Load() {
		t.Fatalf("serving accounting leaks: %+v vs %d served", stats, served.Load())
	}
	if err := s.Maintainer().Store().Validate(); err != nil {
		t.Fatal(err)
	}
	if cnt := s.Maintainer().Counters(); cnt.Deletions == 0 {
		t.Fatalf("racing storm applied no deletions: %+v", cnt)
	}
	// Quiet now: every source must be servable and bitwise-checkable again.
	res := s.Personalized(3)
	if !sameQuery(res.Query, s.Maintainer().PersonalizedStream(3, res.Stream)) {
		t.Fatal("post-storm served result diverges from recompute")
	}
}

// TestSingleflightCoalesces pins the batching semantics: concurrent
// same-source lookups on a cold cache share one compute — exactly one
// miss, everyone else coalesced onto the leader's snapshot and session —
// and all receive the identical query object.
func TestSingleflightCoalesces(t *testing.T) {
	cfg := salsa.Config{Eps: 0.2, R: 5, Workers: 1, Seed: 71, QueryWalks: 256}
	s, _ := newServer(t, 100, 600, cfg, Config{})
	const callers = 8
	var wg sync.WaitGroup
	results := make([]*Result, callers)
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			results[i] = s.Personalized(42)
		}(i)
	}
	start.Done()
	wg.Wait()
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d misses for one cold source, want 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Coalesced != callers-1 {
		t.Fatalf("followers = %d hits + %d coalesced, want %d total", st.Hits, st.Coalesced, callers-1)
	}
	var totalCalls int64
	for i, r := range results {
		if r.Query != results[0].Query {
			t.Fatalf("caller %d got a different query object", i)
		}
		totalCalls += r.StoreCalls
	}
	if want := results[0].Query.Stats().StoreCalls; totalCalls != want {
		t.Fatalf("burst charged %d store calls, want the one compute's %d", totalCalls, want)
	}
}

// TestEvictionLRU pins the cap: filling the cache past MaxEntries evicts
// the least recently used source, and touching an entry protects it.
func TestEvictionLRU(t *testing.T) {
	cfg := salsa.Config{Eps: 0.2, R: 4, Workers: 1, Seed: 77, QueryWalks: 32}
	s, _ := newServer(t, 100, 600, cfg, Config{MaxEntries: 3})
	s.Personalized(1)
	s.Personalized(2)
	s.Personalized(3)
	s.Personalized(1) // refresh 1: now 2 is the LRU
	s.Personalized(4) // evicts 2
	st := s.Stats()
	if st.Entries != 3 || st.Evicted != 1 {
		t.Fatalf("after overflow: %+v, want 3 entries / 1 evicted", st)
	}
	if res := s.Personalized(1); !res.Hit {
		t.Fatal("recently used entry was evicted")
	}
	if res := s.Personalized(2); res.Hit {
		t.Fatal("LRU entry survived the cap")
	}
}

// TestTopKStreamAndMany covers the streaming iterator (descending, equal to
// the eager TopK prefix) and the batch entry point (duplicates hit).
func TestTopKStreamAndMany(t *testing.T) {
	cfg := salsa.Config{Eps: 0.2, R: 5, Workers: 1, Seed: 83, QueryWalks: 128}
	s, _ := newServer(t, 100, 800, cfg, Config{})
	items, res := s.PersonalizedTopK(9, 5)
	stream, res2 := s.TopKStream(9)
	if !res2.Hit {
		t.Fatal("TopKStream after PersonalizedTopK should hit")
	}
	_ = res
	for i, want := range items {
		got, ok := stream.Next()
		if !ok || got != want {
			t.Fatalf("stream[%d]=%+v ok=%v, eager TopK says %+v", i, got, ok, want)
		}
	}
	burst := []graph.NodeID{5, 6, 5, 5, 6}
	out := s.PersonalizedMany(burst)
	if len(out) != len(burst) {
		t.Fatalf("PersonalizedMany returned %d results for %d sources", len(out), len(burst))
	}
	if !out[2].Hit || !out[3].Hit || !out[4].Hit {
		t.Fatal("duplicate sources in a burst did not hit")
	}
	if out[2].Query != out[0].Query {
		t.Fatal("duplicate sources served different query objects")
	}
}

// TestInvalidateDrops pins the manual invalidation hook.
func TestInvalidateDrops(t *testing.T) {
	cfg := salsa.Config{Eps: 0.2, R: 4, Workers: 1, Seed: 87, QueryWalks: 32}
	s, _ := newServer(t, 50, 300, cfg, Config{})
	s.Personalized(5)
	s.Invalidate(5)
	if res := s.Personalized(5); res.Hit {
		t.Fatal("lookup hit an invalidated entry")
	}
	if st := s.Stats(); st.Invalidated != 1 {
		t.Fatalf("Invalidated=%d want 1", st.Invalidated)
	}
}
