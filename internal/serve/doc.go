// Package serve is the query-serving tier in front of the personalized
// SALSA maintainer: an epoch-keyed result cache, same-source singleflight
// batching (one store snapshot and one call-accounted store session per
// concurrent burst), and streaming top-K so callers can early-terminate.
//
// A cached result is keyed on the query's read footprint — the
// QueryStats.StripeMask bitmap over the walk store's counter stripes — and
// stays valid while every masked stripe holds both its per-stripe
// walk-store epoch (walkstore.StripeEpoch) and the tier's per-stripe edge
// revision, bumped by the maintainer's arrival observer — which fires for
// deletions exactly as for arrivals
// (docs/DESIGN.md#10-deletions--windows). The two stamps together cover
// every way a result can change: walk-store mutations and graph arrivals
// or deletions whose repair never touched the store. A hit costs zero
// Social Store calls, so the paper's Theorem 8 ceiling bounds every served
// query: misses by the query layer's own session accounting, hits
// trivially.
//
// Arena compaction (docs/DESIGN.md#11-batching--compaction) bumps no
// epoch and no stripe stamp — logically nothing changed — so cached
// results stay valid across it by construction; the staleness fuzz
// demands a hit immediately after a compaction, bitwise equal to a fresh
// recompute.
//
// See docs/DESIGN.md#9-the-serving-tier for the invalidation-key soundness
// argument, the ordering of the stamps against the lock order of
// docs/DESIGN.md#6-concurrency-model, and the snapshot semantics of
// serving while a storm runs.
package serve
