package pagerank

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/exact"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/socialstore"
	"fastppr/internal/stats"
)

const oracleTol = 1e-11

// newMaintainer wires a fresh graph holding nodes 0..n-1 behind a social
// store and a maintainer, the setup every streaming test starts from.
func newMaintainer(n int, cfg Config) (*Maintainer, *socialstore.Store) {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	soc := socialstore.New(g)
	return New(soc, cfg), soc
}

// TestConvergesToOracleOnDirichletStream is the statistical ground-truth
// test: bootstrap on an edgeless node set, stream a Dirichlet edge arrival
// sequence through the incremental maintainer, and require the resulting
// estimates to match exact power iteration on the final graph within Monte
// Carlo tolerance.
func TestConvergesToOracleOnDirichletStream(t *testing.T) {
	n, m, r := 100, 3000, 100
	if testing.Short() {
		n, m, r = 60, 1200, 60
	}
	const eps = 0.2
	mt, soc := newMaintainer(n, Config{Eps: eps, R: r, Workers: 4, Seed: 101})
	mt.Bootstrap()

	rng := rand.New(rand.NewPCG(202, 0))
	stream := gen.DirichletStream(n, m, rng)
	mt.ApplyEdges(stream)

	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	pi := exact.PageRank(soc.Graph(), eps, oracleTol)
	got := mt.ApproxAll()
	// Observed ~0.05 at these fixed seeds; 3x headroom.
	if d := exact.L1(got, pi); d > 0.15 {
		t.Fatalf("L1(maintainer, oracle)=%v exceeds tolerance", d)
	}

	// TopK precision@k against the oracle ranking, through the repo's own
	// precision-recall machinery.
	const k = 10
	relevant := make(map[graph.NodeID]bool, k)
	for _, v := range exact.Ranking(pi)[:k] {
		relevant[v] = true
	}
	var retrieved []graph.NodeID
	for _, it := range mt.TopK(k) {
		retrieved = append(retrieved, it.Node)
	}
	curve := stats.PrecisionRecallCurve(retrieved, relevant)
	if len(curve) != k {
		t.Fatalf("curve has %d points, want %d", len(curve), k)
	}
	if p := curve[k-1].Precision; p < 0.5 {
		t.Fatalf("precision@%d=%v below floor 0.5", k, p)
	}

	// The update path must have gone through the call-accounted store.
	met := soc.Metrics()
	if met.Writes != int64(m) {
		t.Fatalf("store writes=%d want %d (one per arrival)", met.Writes, m)
	}
	if met.Reads == 0 {
		t.Fatal("update path performed no store reads")
	}
	c := mt.Counters()
	if c.Arrivals != int64(m) {
		t.Fatalf("arrivals=%d want %d", c.Arrivals, m)
	}
	if c.Rerouted+c.Revived == 0 {
		t.Fatal("stream perturbed no stored walks")
	}
}

// TestFastPathEquivalence runs the same hub-heavy stream with the W(v) skip
// enabled and disabled. The two estimate vectors must agree statistically,
// the skip must actually fire (Dirichlet arrivals concentrate on
// high-out-degree sources, where (1-1/d)^K is large), and the fast path's
// conditional sampling must never pair a skip with sampled work: every
// non-skipped arrival reroutes at least one segment, so SlowNoops stays 0.
func TestFastPathEquivalence(t *testing.T) {
	n, m, r := 100, 3000, 40
	if testing.Short() {
		n, m, r = 60, 1200, 30
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(77, 0))
	stream := gen.DirichletStream(n, m, rng)

	run := func(disable bool) (*Maintainer, Counters) {
		mt, _ := newMaintainer(n, Config{Eps: eps, R: r, Workers: 4, Seed: 303, DisableFastPath: disable})
		mt.Bootstrap()
		mt.ApplyEdges(stream)
		if err := mt.Store().Validate(); err != nil {
			t.Fatal(err)
		}
		return mt, mt.Counters()
	}
	fast, fc := run(false)
	slow, sc := run(true)

	// Accounting identities: every arrival is exactly one of skip / empty /
	// slow path.
	if fc.FastSkips+fc.EmptySkips+fc.SlowPaths != fc.Arrivals {
		t.Fatalf("fast-path counters do not partition arrivals: %+v", fc)
	}
	if fc.FastSkips == 0 {
		t.Fatal("fast path never skipped on a hub-heavy stream")
	}
	if rate := fc.SkipRate(); rate < 0.02 {
		t.Fatalf("skip rate %v below floor on hub-heavy stream", rate)
	}
	// The skip coin IS the (at least one reroute) indicator, so a skip can
	// never coincide with sampled work and a slow path can never be empty.
	if fc.SlowNoops != 0 {
		t.Fatalf("fast path took %d slow paths that sampled no reroute", fc.SlowNoops)
	}
	if fc.Rerouted+fc.Revived < fc.SlowPaths {
		t.Fatalf("slow paths=%d but only %d reroutes+revivals", fc.SlowPaths, fc.Rerouted+fc.Revived)
	}
	// The naive path flips every coin itself: no skips, and plenty of
	// arrivals where nothing reroutes.
	if sc.FastSkips != 0 {
		t.Fatalf("disabled fast path recorded %d skips", sc.FastSkips)
	}
	if sc.SlowNoops == 0 {
		t.Fatal("naive path never sampled an all-miss arrival; test graph degenerate")
	}

	// Both modes must land on the oracle, and on each other. Observed
	// ~0.07 at these fixed seeds; 3x headroom.
	pi := exact.PageRank(fast.Social().Graph(), eps, oracleTol)
	if d := exact.L1(fast.ApproxAll(), pi); d > 0.2 {
		t.Fatalf("fast-path L1 vs oracle=%v", d)
	}
	if d := exact.L1(slow.ApproxAll(), pi); d > 0.2 {
		t.Fatalf("naive-path L1 vs oracle=%v", d)
	}
	if d := exact.L1(fast.ApproxAll(), slow.ApproxAll()); d > 0.25 {
		t.Fatalf("fast vs naive L1=%v — fast path shifted the distribution", d)
	}
}

// TestSeedsNewNodesMidStream replays a preferential-attachment graph edge by
// edge into a maintainer that starts completely empty: every endpoint is
// first seen mid-stream, must get its R owned segments, and the final
// estimates must still track the oracle, including top-k ranking on the
// power-law in-degree skew.
func TestSeedsNewNodesMidStream(t *testing.T) {
	n, r := 250, 60
	if testing.Short() {
		n, r = 120, 40
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(55, 0))
	base := gen.PreferentialAttachment(n, 5, rng)
	stream := gen.RandomPermutationStream(base, rng)

	g := graph.New(0)
	soc := socialstore.New(g)
	mt := New(soc, Config{Eps: eps, R: r, Workers: 2, Seed: 404})
	mt.Bootstrap() // no nodes yet: a no-op that marks nothing known
	mt.ApplyEdges(stream)

	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	if len(nodes) != n {
		t.Fatalf("replayed graph has %d nodes, want %d", len(nodes), n)
	}
	for _, v := range nodes {
		if got := len(mt.Store().OwnedBy(v)); got != r {
			t.Fatalf("node %d owns %d segments, want %d", v, got, r)
		}
	}
	c := mt.Counters()
	if c.Seeded != int64(n*r) {
		t.Fatalf("seeded %d segments, want %d", c.Seeded, n*r)
	}

	pi := exact.PageRank(g, eps, oracleTol)
	if d := exact.L1(mt.ApproxAll(), pi); d > 0.15 {
		t.Fatalf("L1 vs oracle=%v", d)
	}
	const k = 10
	relevant := make(map[graph.NodeID]bool, k)
	for _, v := range exact.Ranking(pi)[:k] {
		relevant[v] = true
	}
	var retrieved []graph.NodeID
	for _, it := range mt.TopK(k) {
		retrieved = append(retrieved, it.Node)
	}
	curve := stats.PrecisionRecallCurve(retrieved, relevant)
	if p := curve[len(curve)-1].Precision; p < 0.6 {
		t.Fatalf("precision@%d=%v below floor on power-law skew", k, p)
	}
}

// TestDanglingRevivalThroughMaintainer pins the d==1 arrival rule end to
// end: walks stored before a dangling node's first out-edge must continue
// through it at rate ~(1-eps).
func TestDanglingRevivalThroughMaintainer(t *testing.T) {
	const spokes = 300
	const eps = 0.2
	g := graph.New(0)
	for i := 1; i <= spokes; i++ {
		g.AddEdge(graph.NodeID(i), 0) // node 0 is a dangling sink
	}
	soc := socialstore.New(g)
	mt := New(soc, Config{Eps: eps, R: 4, Workers: 2, Seed: 606})
	mt.Bootstrap()
	terminal := mt.Store().Terminals(0)
	if terminal == 0 {
		t.Fatal("no walks terminate at the sink; setup broken")
	}

	mt.ApplyEdge(graph.Edge{From: 0, To: 1})
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	c := mt.Counters()
	want := (1 - eps) * float64(terminal)
	sigma := math.Sqrt(float64(terminal) * eps * (1 - eps))
	if math.Abs(float64(c.Revived)-want) > 5*sigma+1 {
		t.Fatalf("revived %d walks, want ~%.0f (+-%.0f)", c.Revived, want, 5*sigma)
	}
	// Revived walks must leave the sink through the only edge it has.
	for _, id := range mt.Store().Visitors(0) {
		p := mt.Store().Path(id)
		for i, v := range p[:len(p)-1] {
			if v == 0 && p[i+1] != 1 {
				t.Fatalf("segment %d leaves the sink via non-edge 0->%d", id, p[i+1])
			}
		}
	}
}

// TestEstimateAccessors checks the read-side API against each other and the
// fetch accounting.
func TestEstimateAccessors(t *testing.T) {
	const n = 50
	mt, soc := newMaintainer(n, Config{Eps: 0.2, R: 20, Seed: 707})
	mt.Bootstrap()
	rng := rand.New(rand.NewPCG(808, 0))
	mt.ApplyEdges(gen.DirichletStream(n, 400, rng))

	all := mt.ApproxAll()
	var sum float64
	for v, x := range all {
		sum += x
		if got := mt.Estimate(v); math.Abs(got-x) > 1e-12 {
			t.Fatalf("Estimate(%d)=%v disagrees with ApproxAll %v", v, got, x)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("estimates sum to %v, want 1", sum)
	}
	if got := mt.Estimate(graph.NodeID(10 * n)); got != 0 {
		t.Fatalf("Estimate of unknown node=%v want 0", got)
	}

	items := mt.TopK(5)
	if len(items) != 5 {
		t.Fatalf("TopK returned %d items", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Score > items[i-1].Score {
			t.Fatalf("TopK not descending: %v", items)
		}
	}
	ranked := exact.Ranking(all)
	for i, it := range items {
		if ranked[i] != it.Node {
			t.Fatalf("TopK rank %d=%d, full ranking says %d", i, it.Node, ranked[i])
		}
	}

	fetchesBefore := soc.Metrics().Fetches
	estBefore := mt.Counters().Estimates
	mt.Estimate(1)
	mt.ApproxAll()
	mt.TopK(3)
	if got := soc.Metrics().Fetches - fetchesBefore; got != 3 {
		t.Fatalf("3 estimate calls recorded %d fetches", got)
	}
	if got := mt.Counters().Estimates - estBefore; got != 3 {
		t.Fatalf("3 estimate calls recorded %d in counters", got)
	}
}

// TestConcurrentEstimatesDuringUpdates serves reads while a stream is being
// consumed (run under -race). Every estimate must be a valid probability:
// numerator and denominator are read under one store lock, so a reader can
// never observe a torn ratio even while seeding lands large visit batches.
func TestConcurrentEstimatesDuringUpdates(t *testing.T) {
	const n = 60
	rng := rand.New(rand.NewPCG(111, 0))
	stream := gen.DirichletStream(n, 800, rng)
	mt, _ := newMaintainer(0, Config{Eps: 0.2, R: 30, Seed: 112})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, ed := range stream {
			mt.ApplyEdge(ed)
		}
	}()
	reads := rand.New(rand.NewPCG(113, 0))
	for i := 0; i < 4000; i++ {
		if e := mt.Estimate(graph.NodeID(reads.IntN(n))); e < 0 || e > 1 {
			t.Errorf("Estimate returned %v outside [0,1]", e)
			break
		}
		if i%500 == 0 {
			mt.ApproxAll()
			mt.TopK(5)
		}
	}
	<-done
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyMaintainer covers the before-any-data edge cases.
func TestEmptyMaintainer(t *testing.T) {
	mt, _ := newMaintainer(0, Config{Eps: 0.5, R: 3})
	if got := mt.Estimate(1); got != 0 {
		t.Fatalf("Estimate on empty store=%v", got)
	}
	if got := mt.ApproxAll(); len(got) != 0 {
		t.Fatalf("ApproxAll on empty store=%v", got)
	}
	if got := mt.TopK(4); len(got) != 0 {
		t.Fatalf("TopK on empty store=%v", got)
	}
}

// TestTruncatedGeometricLaw checks the conditional first-success sampler the
// fast path relies on against its closed-form distribution.
func TestTruncatedGeometricLaw(t *testing.T) {
	rng := rand.New(rand.NewPCG(909, 0))
	const p = 0.3
	const k = int64(5)
	trials := 200_000
	if testing.Short() {
		trials = 40_000
	}
	counts := make([]int, k)
	for i := 0; i < trials; i++ {
		counts[stats.TruncatedGeometric(rng, p, k)]++
	}
	norm := 1 - math.Pow(1-p, float64(k))
	for j := int64(0); j < k; j++ {
		want := math.Pow(1-p, float64(j)) * p / norm
		got := float64(counts[j]) / float64(trials)
		sigma := math.Sqrt(want * (1 - want) / float64(trials))
		if math.Abs(got-want) > 5*sigma {
			t.Fatalf("P(J=%d)=%v want %v (+-%v)", j, got, want, 5*sigma)
		}
	}
}
