package pagerank

import (
	"math/rand/v2"
	"sync"
	"testing"

	"fastppr/internal/exact"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/socialstore"
)

// TestParallelStormConvergesToOracle is the parallel analogue of the
// incremental correctness test: the same half-graph stream consumed with
// UpdateWorkers=4 must converge to the exact power-iteration oracle on the
// final graph, keep the lossless-fast-path invariant (SlowNoops == 0), and
// leave the striped store internally consistent.
func TestParallelStormConvergesToOracle(t *testing.T) {
	n, r := 150, 50
	if testing.Short() {
		n, r = 90, 30
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(141, 0))
	full := gen.PreferentialAttachment(n, 4, rng)
	stream := gen.RandomPermutationStream(full, rng)
	prefix, suffix := gen.SplitStream(stream, 0.5)

	g := gen.BuildFromStream(prefix)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	soc := socialstore.New(g)
	mt := New(soc, Config{Eps: eps, R: r, Workers: 2, UpdateWorkers: 4, Seed: 142})
	mt.Bootstrap()
	mt.ApplyEdges(suffix)
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}

	c := mt.Counters()
	if c.Arrivals != int64(len(suffix)) {
		t.Fatalf("arrivals=%d want %d", c.Arrivals, len(suffix))
	}
	if c.FastSkips+c.EmptySkips+c.SlowPaths != c.Arrivals {
		t.Fatalf("phase counters do not partition arrivals: %+v", c)
	}
	if c.SlowNoops != 0 {
		t.Fatalf("parallel storm recorded %d no-op slow paths", c.SlowNoops)
	}
	if c.Rerouted+c.Revived == 0 {
		t.Fatal("parallel storm perturbed no stored walks")
	}

	pi := exact.PageRank(soc.Graph(), eps, 1e-11)
	if d := exact.L1(mt.ApproxAll(), pi); d > 0.2 {
		t.Fatalf("parallel-storm L1 vs oracle=%v", d)
	}
}

// TestParallelSeedsNewNodes replays a full graph edge by edge into an empty
// maintainer with 4 update workers: the knownMu claim must seed every node
// exactly once even when both endpoints of many edges race.
func TestParallelSeedsNewNodes(t *testing.T) {
	n, r := 120, 20
	if testing.Short() {
		n, r = 80, 12
	}
	rng := rand.New(rand.NewPCG(151, 0))
	base := gen.PreferentialAttachment(n, 4, rng)
	stream := gen.RandomPermutationStream(base, rng)

	soc := socialstore.New(graph.New(0))
	mt := New(soc, Config{Eps: 0.2, R: r, UpdateWorkers: 4, Seed: 152})
	mt.Bootstrap()
	mt.ApplyEdges(stream)
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := soc.Graph().Nodes()
	if len(nodes) != n {
		t.Fatalf("replayed graph has %d nodes, want %d", len(nodes), n)
	}
	for _, v := range nodes {
		if got := len(mt.Store().OwnedBy(v)); got != r {
			t.Fatalf("node %d owns %d segments, want %d", v, got, r)
		}
	}
	if c := mt.Counters(); c.Seeded != int64(n*r) {
		t.Fatalf("seeded %d segments, want %d", c.Seeded, n*r)
	}
}

// TestEstimatesDuringParallelStorm races Estimate/TopK readers against a
// parallel storm under -race: reads must stay well-formed (finite, in
// [0, 1]) while arrivals land.
func TestEstimatesDuringParallelStorm(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 200
	}
	rng := rand.New(rand.NewPCG(161, 0))
	base := gen.PreferentialAttachment(n, 5, rng)
	soc := socialstore.New(base)
	mt := New(soc, Config{Eps: 0.2, R: 4, UpdateWorkers: 4, Seed: 162})
	mt.Bootstrap()

	storm := make([]graph.Edge, 0, 3000)
	for len(storm) < cap(storm) {
		u := graph.NodeID(rng.IntN(n))
		v := graph.NodeID(rng.IntN(n))
		if u != v {
			storm = append(storm, graph.Edge{From: u, To: v})
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(163, uint64(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := graph.NodeID(r.IntN(n))
				if e := mt.Estimate(v); e < 0 || e > 1 {
					t.Errorf("Estimate(%d)=%v out of range", v, e)
					return
				}
				mt.TopK(5)
			}
		}(i)
	}
	mt.ApplyEdges(storm)
	close(stop)
	wg.Wait()
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	if c := mt.Counters(); c.SlowNoops != 0 {
		t.Fatalf("storm with concurrent reads recorded %d no-op slow paths", c.SlowNoops)
	}
}
