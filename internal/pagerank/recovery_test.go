package pagerank

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/persist"
	"fastppr/internal/socialstore"
)

// TestRecoveryResumesBitwise is the in-process half of the crash contract
// (cmd/benchwalk -crash is the kill -9 half): persist a serialized storm
// with per-edge commit markers, abandon the manager mid-storm without Close
// — everything past the WAL's durable prefix is simply gone, as after a
// crash — then recover, rebuild the social graph to the committed cursor,
// restore the update RNG, and resume. The resumed run must land on visit
// counts bitwise equal to an uninterrupted run of the same seed.
func TestRecoveryResumesBitwise(t *testing.T) {
	const n, m, cut = 60, 400, 137
	cfg := Config{Eps: 0.2, R: 20, Workers: 1, Seed: 11}
	storm := gen.DirichletStream(n, m, rand.New(rand.NewPCG(7, 0)))

	nodes := func() *socialstore.Store {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		return socialstore.New(g)
	}

	ref := New(nodes(), cfg)
	ref.Bootstrap()
	ref.ApplyEdges(storm)
	want := ref.Store().VisitCounts()

	dir := t.TempDir()
	pm, walks, _, err := persist.Open(persist.Config{Dir: dir, Policy: persist.SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	mt := NewWithStore(nodes(), cfg, walks)
	mt.Bootstrap()
	if err := pm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= cut; i++ {
		mt.ApplyEdge(storm[i])
		if err := pm.Commit(int64(i), mt.UpdateRNGState()); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon pm without Close.

	pm2, walks2, info, err := persist.Open(persist.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	if info.Cursor != cut {
		t.Fatalf("recovered cursor %d, want %d (every record was fsynced)", info.Cursor, cut)
	}
	soc2 := nodes()
	for _, ed := range storm[:info.Cursor+1] {
		soc2.AddEdge(ed.From, ed.To)
	}
	mt2 := Recover(soc2, cfg, walks2)
	if err := mt2.RestoreUpdateRNGState(info.State); err != nil {
		t.Fatal(err)
	}
	mt2.ApplyEdges(storm[info.Cursor+1:])

	if err := mt2.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := mt2.Store().VisitCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed visit counts diverge from the uninterrupted run (%d vs %d nodes counted)", len(got), len(want))
	}
	if g, w := mt2.Store().Epoch(), ref.Store().Epoch(); g != w {
		t.Fatalf("resumed epoch %d, want %d", g, w)
	}
}
