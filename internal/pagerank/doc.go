// Package pagerank turns the walk machinery into the paper's actual system:
// an incremental PageRank maintainer that owns a walk store of R reset-walk
// segments per node, serves estimates out of the store's visit counters
// (Section 2.1's ~pi_v = eps X_v / (nR) estimator), and consumes an edge
// stream while keeping the stored walks distributed exactly as if they had
// been freshly sampled on the current graph (Section 2.2's maintenance
// loop; the expected-update-cost analysis is the paper's Theorems 2-5 under
// the random-permutation and Dirichlet arrival models).
//
// The headline cost saving is the W(v)-probability fast path. An arriving
// edge (u, v) raises u's out-degree to d, and a stored walk step leaving u
// must be redirected through the new edge with probability 1/d. With K
// stored outgoing steps at u, *some* redirection is needed only with
// probability 1-(1-1/d)^K — so the maintainer flips one coin against cheap
// store counters and, on tails, skips the arrival without fetching a single
// segment. The paper states the bound with W(u), the number of distinct
// segments through u; this implementation uses the exact candidate count
// K = X_u - T(u) (walkstore.Candidates). On heads, the reroute positions
// are sampled *conditioned on at least one reroute* (truncated-geometric
// first success, independent flips after), so estimates with the fast path
// enabled are drawn from exactly the same distribution as with it disabled,
// and every non-skipped arrival performs real work — the argument is
// docs/DESIGN.md#3-the-lossless-wv-fast-path.
//
// On heads, the repair scan enumerates its candidates from the walk
// store's pending-position index — the exact (segment, position) pairs of
// stored visits at the source, in the same ascending order the pre-index
// full-path scan produced — so a slow path costs O(hits) rather than
// O(visitors × path length); Config.LegacyScan keeps the old enumeration
// alive for the bitwise-equivalence test and benchmarks
// (docs/DESIGN.md#7-the-pending-position-index).
//
// Updates run serialized by default (bitwise reproducible per seed) or
// concurrently with Config.UpdateWorkers > 1: arrivals are serialized per
// source stripe (out-degree only moves on arrivals from that source, so the
// degree read stays exact), the affected segments are frozen under
// SegmentID stripe locks before each repair scan (the index re-read under
// the freeze keeps every hit position exact), and the scan retries against
// the frozen enumeration if cross-stripe interference moved the candidate
// count — so SlowNoops == 0 survives parallelism, at the documented price
// of per-seed reproducibility relaxing to distributional equivalence. Lock
// order, stripe-consistency argument, and that relaxation are
// docs/DESIGN.md#6-concurrency-model.
//
// The maintainer also consumes deletions (ApplyDeletion/ApplyEvents): the
// reverse reroute rule captures each stored step through the removed copy
// with probability 1/c (deterministically when it was the only copy),
// keeps the captured step's prefix, re-steps through a uniform surviving
// out-edge with no reset coin, and regrows the tail on the post-removal
// graph — or truncates when the last out-edge vanished, the revival law
// run in reverse. Deletions carry no skip coin, enumerate their candidates
// O(hits) from the pending-position index (LegacyScan keeps the full-path
// flavor bitwise coin-identical), and leave the arrival-path invariants
// (SlowNoops == 0) untouched — see docs/DESIGN.md#10-deletions--windows.
//
// All graph access on the update path — the edge write, the degree lookup,
// and every step of regenerated walk tails — is routed through
// socialstore.Store, so the call accounting the paper's cost analysis is
// stated in falls out of Metrics(); per-arrival work beyond that is visible
// in Counters().
//
// Index writes are phase-batched (docs/DESIGN.md#11-batching--compaction):
// reroute and revival tails are sampled inline — preserving the bitwise
// coin sequence — and their mutations flushed through one
// walkstore.ReplaceTailBatch per repair phase, with the parallel path
// pre-grouping arrivals by source stripe. Config.UnbatchedWrites keeps the
// per-call path as the equivalence oracle; Config.CompactEvery checks the
// arena between batches and compacts when at least a quarter of it is
// garbage (walkstore.Store.MaybeCompact). Both knobs are proven bitwise
// invisible by the fixed-seed batch tests.
package pagerank
