package pagerank

import (
	"math"
	"math/rand/v2"
	"slices"
	"sync"
	"sync/atomic"

	"fastppr/internal/engine"
	"fastppr/internal/graph"
	"fastppr/internal/socialstore"
	"fastppr/internal/stats"
	"fastppr/internal/topk"
	"fastppr/internal/walk"
	"fastppr/internal/walkstore"
)

// Config parameterizes a Maintainer.
type Config struct {
	// Eps is the walk reset probability, in (0, 1].
	Eps float64
	// R is the number of stored segments per node (the paper's R).
	R int
	// Workers sizes the engine worker pool used by Bootstrap; 0 means
	// GOMAXPROCS. The incremental update path itself is serialized.
	Workers int
	// Seed seeds both the bootstrap walk generation and the update RNG, so a
	// fixed-seed run is fully reproducible.
	Seed uint64
	// DisableFastPath turns the skip coin off: every arrival fetches the
	// affected segments and flips per-step coins unconditionally. Estimates
	// are drawn from the same distribution either way; the flag exists so
	// tests and benchmarks can demonstrate that.
	DisableFastPath bool
}

// Counters is a snapshot of the maintainer's update-path accounting.
type Counters struct {
	Arrivals   int64 // edges consumed
	FastSkips  int64 // arrivals dismissed by the skip coin alone
	EmptySkips int64 // arrivals whose source had no stored walk to perturb
	SlowPaths  int64 // arrivals that fetched segments from the store
	SlowNoops  int64 // slow paths that sampled no reroute (0 while the fast path is on)
	Rerouted   int64 // segments redirected through a new edge mid-path
	Revived    int64 // segments extended past a formerly dangling terminal
	Seeded     int64 // segments generated for nodes first seen mid-stream
	StepsIn    int64 // visits added by reroutes, revivals, and seeding
	StepsOut   int64 // visits removed by reroutes
	Estimates  int64 // Estimate/ApproxAll/TopK calls served
}

// SkipRate returns the fraction of arrivals the fast path skipped outright.
func (c Counters) SkipRate() float64 {
	if c.Arrivals == 0 {
		return 0
	}
	return float64(c.FastSkips) / float64(c.Arrivals)
}

// Maintainer serves PageRank estimates over a dynamic graph. Estimates may
// be read concurrently with updates; updates themselves are serialized.
type Maintainer struct {
	soc   *socialstore.Store
	walks *walkstore.Store
	eng   *engine.Engine
	cfg   Config

	mu        sync.Mutex // serializes the update path and guards rng, known, c
	rng       *rand.Rand
	known     map[graph.NodeID]bool // nodes owning R segments
	c         Counters
	estimates atomic.Int64
	tailBuf   []graph.NodeID
}

// New returns a maintainer over the social store's graph with an empty walk
// store. Call Bootstrap once to seed R segments per existing node before
// streaming edges.
func New(soc *socialstore.Store, cfg Config) *Maintainer {
	if cfg.R <= 0 {
		cfg.R = 1
	}
	walks := walkstore.New()
	eng := engine.New(soc.Graph(), walks, engine.Config{
		Eps: cfg.Eps, R: cfg.R, Workers: cfg.Workers, Seed: cfg.Seed,
	})
	return &Maintainer{
		soc:   soc,
		walks: walks,
		eng:   eng,
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, 0x9a6e)),
		known: make(map[graph.NodeID]bool),
	}
}

// Store returns the maintainer's walk store (the paper's PageRank Store).
func (m *Maintainer) Store() *walkstore.Store { return m.walks }

// Social returns the call-accounted graph store.
func (m *Maintainer) Social() *socialstore.Store { return m.soc }

// Bootstrap generates cfg.R segments for every node currently in the graph
// using the parallel engine and marks those nodes as owned. It returns the
// number of walk steps stored. Bootstrap is the paper's offline
// preprocessing pass; it walks the graph directly and is not call-accounted.
// Call it exactly once, before the first ApplyEdge.
func (m *Maintainer) Bootstrap() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	nodes := m.soc.Graph().Nodes()
	steps := m.eng.BuildStore(nodes)
	for _, v := range nodes {
		m.known[v] = true
	}
	return steps
}

// ApplyEdge consumes one edge arrival: it writes the edge through the social
// store, repairs the affected stored walks (taking the fast path when the
// skip coin allows), and seeds R fresh segments for any endpoint seen for
// the first time.
func (m *Maintainer) ApplyEdge(ed graph.Edge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applyLocked(ed)
}

// ApplyEdges consumes a stream of arrivals in order.
func (m *Maintainer) ApplyEdges(edges []graph.Edge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ed := range edges {
		m.applyLocked(ed)
	}
}

func (m *Maintainer) applyLocked(ed graph.Edge) {
	m.c.Arrivals++
	u, v := ed.From, ed.To
	m.soc.AddEdge(u, v)
	d := m.soc.OutDegree(u)
	// Repair walks sampled before this edge existed, then seed new
	// endpoints: freshly seeded walks already sample the new edge, so
	// rerouting them too would over-weight it.
	if d == 1 {
		m.reviveLocked(u, v)
	} else {
		m.rerouteLocked(u, v, d)
	}
	m.ensureNodeLocked(u)
	m.ensureNodeLocked(v)
}

// rerouteLocked repairs stored walks after u's out-degree rose to d >= 2:
// every stored outgoing step from u independently switches to the new edge
// with probability 1/d, and a switched segment keeps its prefix, steps to v,
// and continues with a fresh geometric tail.
func (m *Maintainer) rerouteLocked(u, v graph.NodeID, d int) {
	k := m.walks.Candidates(u)
	if k == 0 {
		m.c.EmptySkips++
		return
	}
	inv := 1.0 / float64(d)
	// first is the global index (over the fixed enumeration of all k
	// candidate steps) of the first switch, pre-sampled when the fast path's
	// skip coin came up heads; -1 means flip every candidate unconditionally.
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if m.rng.Float64() < math.Pow(1-inv, float64(k)) {
			m.c.FastSkips++
			return
		}
		first = stats.TruncatedGeometric(m.rng, inv, k)
	}
	m.c.SlowPaths++
	rerouted := int64(0)
	idx := int64(0)
	for _, id := range m.sortedVisitorsLocked(u) {
		p := m.walks.Path(id) // stable: ReplaceTail relocates, never mutates
		pos := -1
		for i := 0; i < len(p)-1 && pos < 0; i++ {
			if p[i] != u {
				continue
			}
			var hit bool
			switch {
			case first < 0:
				hit = m.rng.Float64() < inv
			case idx < first:
				hit = false
			case idx == first:
				hit = true
			default:
				hit = m.rng.Float64() < inv
			}
			idx++
			if hit {
				pos = i
			}
		}
		if pos < 0 {
			continue
		}
		// The segment's remaining candidates are superseded by the reroute,
		// but they still occupy slots in the enumeration `first` was drawn
		// over.
		for i := pos + 1; i < len(p)-1; i++ {
			if p[i] == u {
				idx++
			}
		}
		m.redirectLocked(id, pos+1, v)
		rerouted++
	}
	m.c.Rerouted += rerouted
	if rerouted == 0 {
		m.c.SlowNoops++
	}
}

// reviveLocked repairs stored walks after u gained its very first out-edge.
// While u was dangling every walk reaching it died there, so all stored
// visits to u are terminal; each such walk now continues with probability
// 1-eps, necessarily through the new (only) edge.
func (m *Maintainer) reviveLocked(u, v graph.NodeID) {
	t := m.walks.Terminals(u)
	if t == 0 {
		m.c.EmptySkips++
		return
	}
	eps := m.cfg.Eps
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if m.rng.Float64() < math.Pow(eps, float64(t)) {
			m.c.FastSkips++
			return
		}
		first = stats.TruncatedGeometric(m.rng, 1-eps, t)
	}
	m.c.SlowPaths++
	revived := int64(0)
	idx := int64(0)
	for _, id := range m.sortedVisitorsLocked(u) {
		p := m.walks.Path(id)
		if p[len(p)-1] != u {
			continue // not a terminal visit; impossible while u was dangling
		}
		var cont bool
		switch {
		case first < 0:
			cont = m.rng.Float64() >= eps
		case idx < first:
			cont = false
		case idx == first:
			cont = true
		default:
			cont = m.rng.Float64() >= eps
		}
		idx++
		if !cont {
			continue
		}
		m.redirectLocked(id, len(p), v)
		revived++
	}
	m.c.Revived += revived
	if revived == 0 {
		m.c.SlowNoops++
	}
}

// redirectLocked truncates segment id to keep nodes, steps it to v, and
// extends it with a fresh geometric tail sampled through the social store.
func (m *Maintainer) redirectLocked(id walkstore.SegmentID, keep int, v graph.NodeID) {
	m.tailBuf = append(m.tailBuf[:0], v)
	m.tailBuf = walk.AppendContinue(m.soc, v, m.cfg.Eps, m.rng, m.tailBuf)
	removed, added := m.walks.ReplaceTail(id, keep, m.tailBuf)
	m.c.StepsOut += int64(removed)
	m.c.StepsIn += int64(added)
}

// ensureNodeLocked seeds R fresh segments for a node first seen mid-stream,
// preserving the invariant that every known node owns R walks.
func (m *Maintainer) ensureNodeLocked(v graph.NodeID) {
	if m.known[v] {
		return
	}
	m.known[v] = true
	paths := make([][]graph.NodeID, m.cfg.R)
	for i := range paths {
		seg := walk.PageRank(m.soc, v, m.cfg.Eps, m.rng)
		paths[i] = seg.Path
		m.c.StepsIn += int64(len(seg.Path))
	}
	m.walks.AddBatch(paths)
	m.c.Seeded += int64(len(paths))
}

// sortedVisitorsLocked returns the segments visiting u in ascending ID
// order, making a fixed-seed run reproducible regardless of the visitor
// set's internal representation.
func (m *Maintainer) sortedVisitorsLocked(u graph.NodeID) []walkstore.SegmentID {
	ids := m.walks.Visitors(u)
	slices.Sort(ids)
	return ids
}

// Estimate returns the PageRank estimate of v: X_v / TotalVisits, the
// dangling-robust normalization of the paper's eps·X_v/(nR) (identical on
// dangling-free graphs, where E[TotalVisits] = nR/eps). Safe to call
// concurrently with updates: numerator and denominator are read under one
// store lock, so the ratio always reflects a real store state.
func (m *Maintainer) Estimate(v graph.NodeID) float64 {
	m.estimates.Add(1)
	m.soc.CountFetch()
	visits, total := m.walks.VisitFraction(v)
	if total == 0 {
		return 0
	}
	return float64(visits) / float64(total)
}

// snapshot fetches the visit-count table once (a single store lock) and its
// sum, recording the serve against both accounting layers.
func (m *Maintainer) snapshot() (map[graph.NodeID]int64, int64) {
	m.estimates.Add(1)
	m.soc.CountFetch()
	counts := m.walks.VisitCounts()
	var total int64
	for _, x := range counts {
		total += x
	}
	return counts, total
}

// ApproxAll returns the full estimate vector as one consistent snapshot.
// Nodes never visited by any stored walk are absent.
func (m *Maintainer) ApproxAll() map[graph.NodeID]float64 {
	counts, total := m.snapshot()
	scores := make(map[graph.NodeID]float64, len(counts))
	if total == 0 {
		return scores
	}
	for v, x := range counts {
		scores[v] = float64(x) / float64(total)
	}
	return scores
}

// TopK returns the k highest-estimate nodes, descending, ties toward lower
// IDs.
func (m *Maintainer) TopK(k int) []topk.Item {
	counts, total := m.snapshot()
	c := topk.New(k)
	if total == 0 {
		return c.Items()
	}
	for v, x := range counts {
		c.Offer(v, float64(x)/float64(total))
	}
	return c.Items()
}

// Counters returns a snapshot of the update-path accounting.
func (m *Maintainer) Counters() Counters {
	m.mu.Lock()
	c := m.c
	m.mu.Unlock()
	c.Estimates = m.estimates.Load()
	return c
}
