package pagerank

import (
	"math"
	"math/rand/v2"
	"slices"
	"sync"
	"sync/atomic"

	"fastppr/internal/engine"
	"fastppr/internal/graph"
	"fastppr/internal/socialstore"
	"fastppr/internal/stats"
	"fastppr/internal/stripes"
	"fastppr/internal/topk"
	"fastppr/internal/walk"
	"fastppr/internal/walkstore"
)

// Config parameterizes a Maintainer.
type Config struct {
	// Eps is the walk reset probability, in (0, 1].
	Eps float64
	// R is the number of stored segments per node (the paper's R).
	R int
	// Workers sizes the engine worker pool used by Bootstrap; 0 means
	// GOMAXPROCS.
	Workers int
	// UpdateWorkers sizes the pool ApplyEdges uses to consume a batch of
	// arrivals concurrently under source- and segment-striped locks; 0 or 1
	// keeps the fully serialized, per-seed-reproducible path. With more
	// workers a fixed-seed run is reproducible only in distribution (see
	// docs/DESIGN.md#6-concurrency-model); the skip coin stays lossless and
	// SlowNoops == 0 either way.
	UpdateWorkers int
	// Seed seeds both the bootstrap walk generation and the update RNG, so a
	// fixed-seed serialized run is fully reproducible.
	Seed uint64
	// DisableFastPath turns the skip coin off: every arrival fetches the
	// affected segments and flips per-step coins unconditionally. Estimates
	// are drawn from the same distribution either way; the flag exists so
	// tests and benchmarks can demonstrate that.
	DisableFastPath bool
	// LegacyScan makes repair phases enumerate candidates the pre-index way:
	// fetch every visitor of the arrival's source and walk its full path.
	// The default consumes the store's pending-position index instead —
	// O(hits) per phase rather than O(visitors × path length). Both paths
	// enumerate candidates in the identical (segment, position) order and
	// consume the RNG identically, so a fixed-seed serialized run is bitwise
	// the same either way; the flag exists for benchmarks and the
	// equivalence test, not for production use.
	LegacyScan bool
	// CompactEvery, when positive, checks the arena every CompactEvery-th
	// completed mutation (arrival or deletion) and runs Store.Compact when
	// at least a quarter of it is garbage (Store.MaybeCompact), without
	// repeatedly copying a mostly-live arena. Compaction changes no
	// logical state, so fixed-seed runs are bitwise identical with it on
	// or off. See docs/DESIGN.md#11-batching--compaction.
	CompactEvery int
	// UnbatchedWrites routes every repair tail write through an immediate
	// per-segment ReplaceTail instead of the phase-batched ReplaceTailBatch
	// flush. The batched path samples each fresh tail inline (consuming the
	// RNG exactly where the unbatched path would) and only coalesces the
	// store writes, so fixed-seed serialized runs are bitwise identical
	// either way; the flag exists for benchmarks and the equivalence tests.
	UnbatchedWrites bool
}

// Counters is a snapshot of the maintainer's update-path accounting.
type Counters struct {
	Arrivals   int64 // edges consumed
	FastSkips  int64 // arrivals dismissed by the skip coin alone
	EmptySkips int64 // arrivals whose source had no stored walk to perturb
	SlowPaths  int64 // arrivals that fetched segments from the store
	SlowNoops  int64 // slow paths that sampled no reroute (0 while the fast path is on)
	Rerouted   int64 // segments redirected through a new edge mid-path
	Revived    int64 // segments extended past a formerly dangling terminal
	Seeded     int64 // segments generated for nodes first seen mid-stream
	StepsIn    int64 // visits added by reroutes, revivals, and seeding
	StepsOut   int64 // visits removed by reroutes
	Estimates  int64 // Estimate/ApproxAll/TopK calls served

	// Deletion-path accounting. Deletions have no skip coin (no counter
	// tracks steps through one specific edge), so they never touch the
	// arrival counters above and cannot produce SlowNoops.
	Deletions    int64 // edge deletions consumed
	DelMisses    int64 // deletions of edges not present in the graph
	DelRerouted  int64 // segments re-sampled through a surviving out-edge
	DelTruncated int64 // segments cut short by the reverse revival (source went dangling)
}

// SkipRate returns the fraction of arrivals the fast path skipped outright.
func (c Counters) SkipRate() float64 {
	if c.Arrivals == 0 {
		return 0
	}
	return float64(c.FastSkips) / float64(c.Arrivals)
}

// counters is the maintainer's live accounting: atomics, so serialized and
// parallel update paths share one implementation.
type counters struct {
	arrivals, fastSkips, emptySkips, slowPaths, slowNoops atomic.Int64
	rerouted, revived, seeded, stepsIn, stepsOut          atomic.Int64
	estimates                                             atomic.Int64
	deletions, delMisses, delRerouted, delTruncated       atomic.Int64
}

func (c *counters) snapshot() Counters {
	return Counters{
		Arrivals:     c.arrivals.Load(),
		FastSkips:    c.fastSkips.Load(),
		EmptySkips:   c.emptySkips.Load(),
		SlowPaths:    c.slowPaths.Load(),
		SlowNoops:    c.slowNoops.Load(),
		Rerouted:     c.rerouted.Load(),
		Revived:      c.revived.Load(),
		Seeded:       c.seeded.Load(),
		StepsIn:      c.stepsIn.Load(),
		StepsOut:     c.stepsOut.Load(),
		Estimates:    c.estimates.Load(),
		Deletions:    c.deletions.Load(),
		DelMisses:    c.delMisses.Load(),
		DelRerouted:  c.delRerouted.Load(),
		DelTruncated: c.delTruncated.Load(),
	}
}

const (
	// sourceStripes serializes arrivals by source: a node's out-degree only
	// moves on arrivals from that node, so one stripe lock makes the
	// (AddEdge, OutDegree, repair) triple atomic per source.
	sourceStripes = 256
	// segmentStripes freezes the segments a repair scans, so the scan's
	// candidate enumeration cannot shift underneath the pre-sampled
	// first-switch index.
	segmentStripes = 512
)

// updater is one update goroutine's private state: its RNG and reusable
// buffers. The serialized path owns one; each parallel worker gets its own.
type updater struct {
	rng   *rand.Rand
	tail  []graph.NodeID
	keys  []uint64
	idx   []int
	hits  []walkstore.PosHit
	segs  []walkstore.SegmentID
	paths [][]graph.NodeID

	// Deferred-write state: redirect samples fresh tails into tailBuf and
	// records a pendingMut per mutation; flushMuts applies the whole
	// phase's mutations through one stripe-grouped ReplaceTailBatch pass.
	tailBuf []graph.NodeID
	muts    []pendingMut
	tms     []walkstore.TailMutation
}

func newUpdater(rng *rand.Rand) *updater { return &updater{rng: rng} }

// pendingMut is one deferred ReplaceTail: the repair phase samples the fresh
// tail inline (preserving the exact RNG consumption order) into w.tailBuf and
// defers the store write until the phase's flush. start == end records a pure
// truncation (deletion-path revival in reverse).
type pendingMut struct {
	id         walkstore.SegmentID
	keep       int
	start, end int // w.tailBuf[start:end] is the fresh tail
}

// lockSegments freezes the given segments under the maintainer's
// SegmentID-stripe locks, acquiring stripe indices in ascending order
// (deadlock-free across workers). Returns the held index set for unlock.
func (w *updater) lockSegments(set *stripes.MutexSet, ids []walkstore.SegmentID) []int {
	w.keys = w.keys[:0]
	for _, id := range ids {
		w.keys = append(w.keys, uint64(id))
	}
	w.idx = set.LockKeys(w.keys, w.idx)
	return w.idx
}

// Maintainer serves PageRank estimates over a dynamic graph. Estimates may
// be read concurrently with updates; updates run serialized by default and
// concurrently under striped locks with Config.UpdateWorkers > 1.
type Maintainer struct {
	soc   *socialstore.Store
	walks *walkstore.Store
	eng   *engine.Engine
	cfg   Config

	mu        sync.Mutex // serializes ApplyEdge and the serialized ApplyEdges path
	serial    *updater   // guarded by mu
	serialPCG *rand.PCG  // source behind serial's RNG, retained for state capture

	knownMu sync.Mutex
	known   map[graph.NodeID]bool // nodes owning R segments

	srcMu *stripes.MutexSet
	segMu *stripes.MutexSet
	cnt   counters

	// compactTick counts completed mutations toward Config.CompactEvery.
	compactTick atomic.Int64
}

// New returns a maintainer over the social store's graph with an empty walk
// store. Call Bootstrap once to seed R segments per existing node before
// streaming edges.
func New(soc *socialstore.Store, cfg Config) *Maintainer {
	return NewWithStore(soc, cfg, walkstore.New())
}

// NewWithStore is New over a caller-supplied walk store — typically one
// recovered by internal/persist, so the maintainer journals into (and
// resumes from) durable state. The store must have been populated by a
// maintainer with the same Config, or be empty.
func NewWithStore(soc *socialstore.Store, cfg Config, walks *walkstore.Store) *Maintainer {
	if cfg.R <= 0 {
		cfg.R = 1
	}
	eng := engine.New(soc.Graph(), walks, engine.Config{
		Eps: cfg.Eps, R: cfg.R, Workers: cfg.Workers, Seed: cfg.Seed,
	})
	pcg := rand.NewPCG(cfg.Seed, 0x9a6e)
	return &Maintainer{
		soc:       soc,
		walks:     walks,
		eng:       eng,
		cfg:       cfg,
		serial:    newUpdater(rand.New(pcg)),
		serialPCG: pcg,
		known:     make(map[graph.NodeID]bool),
		srcMu:     stripes.NewMutexSet(sourceStripes),
		segMu:     stripes.NewMutexSet(segmentStripes),
	}
}

// Recover returns a maintainer resuming over a recovered walk store: every
// node already in the graph is marked known (they owned their R segments
// when the store was persisted), so no Bootstrap runs and no arrival re-seeds
// them. Restore the update RNG with RestoreUpdateRNGState before applying
// edges to continue the persisted run bitwise.
func Recover(soc *socialstore.Store, cfg Config, walks *walkstore.Store) *Maintainer {
	m := NewWithStore(soc, cfg, walks)
	m.knownMu.Lock()
	for _, v := range soc.Graph().Nodes() {
		m.known[v] = true
	}
	m.knownMu.Unlock()
	return m
}

// UpdateRNGState serializes the serialized-path update RNG. Persisted in a
// commit marker alongside the edge cursor, it is the missing half of an
// exact resume: the walk store fixes the segments, this fixes the coin
// flips the next repair will draw.
func (m *Maintainer) UpdateRNGState() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.serialPCG.MarshalBinary()
	if err != nil { // the PCG marshaler cannot fail
		panic(err)
	}
	return b
}

// RestoreUpdateRNGState rewinds the serialized-path update RNG to a state
// captured by UpdateRNGState.
func (m *Maintainer) RestoreUpdateRNGState(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.serialPCG.UnmarshalBinary(b)
}

// Store returns the maintainer's walk store (the paper's PageRank Store).
func (m *Maintainer) Store() *walkstore.Store { return m.walks }

// Social returns the call-accounted graph store.
func (m *Maintainer) Social() *socialstore.Store { return m.soc }

// Bootstrap generates cfg.R segments for every node currently in the graph
// using the parallel engine and marks those nodes as owned. It returns the
// number of walk steps stored. Bootstrap is the paper's offline
// preprocessing pass; it walks the graph directly and is not call-accounted.
// Call it exactly once, before the first ApplyEdge.
func (m *Maintainer) Bootstrap() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	nodes := m.soc.Graph().Nodes()
	steps := m.eng.BuildStore(nodes)
	m.knownMu.Lock()
	for _, v := range nodes {
		m.known[v] = true
	}
	m.knownMu.Unlock()
	return steps
}

// ApplyEdge consumes one edge arrival: it writes the edge through the social
// store, repairs the affected stored walks (taking the fast path when the
// skip coin allows), and seeds R fresh segments for any endpoint seen for
// the first time. Always serialized; use ApplyEdges with UpdateWorkers for
// concurrent consumption.
func (m *Maintainer) ApplyEdge(ed graph.Edge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applyOne(ed, m.serial)
}

// ApplyEdges consumes a batch of arrivals. With Config.UpdateWorkers <= 1
// the arrivals are applied in order by one goroutine (fully reproducible per
// seed); with more workers they are claimed from a shared cursor and applied
// concurrently — arrivals from the same source stripe stay mutually ordered
// by the stripe lock, everything else interleaves, and the result is
// reproducible in distribution rather than per seed.
func (m *Maintainer) ApplyEdges(edges []graph.Edge) {
	if m.cfg.UpdateWorkers > 1 {
		m.applyParallel(edges, m.cfg.UpdateWorkers)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ed := range edges {
		m.applyOne(ed, m.serial)
	}
}

func (m *Maintainer) applyParallel(edges []graph.Edge, workers int) {
	// Pre-group the storm by source stripe: consecutive claims then hit the
	// same counter stripe and source lock, so each worker's cache lines
	// stay warm. Same-stripe arrivals keep their relative stream order (the
	// grouping is a stable permutation); cross-stripe order was never
	// guaranteed on the parallel path.
	order := walkstore.GroupByStripe(len(edges), func(i int) graph.NodeID { return edges[i].From })
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			w := newUpdater(rand.New(rand.NewPCG(m.cfg.Seed, 0x9a6e0000+uint64(wk))))
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(edges) {
					break
				}
				m.applyOne(edges[order[i]], w)
			}
		}(wk)
	}
	wg.Wait()
}

func (m *Maintainer) applyOne(ed graph.Edge, w *updater) {
	m.cnt.arrivals.Add(1)
	u, v := ed.From, ed.To
	lk := m.srcMu.Of(uint64(u))
	lk.Lock()
	m.soc.AddEdge(u, v)
	d := m.soc.OutDegree(u)
	// Repair walks sampled before this edge existed, then seed new
	// endpoints: freshly seeded walks already sample the new edge, so
	// rerouting them too would over-weight it.
	if d == 1 {
		m.revive(u, v, w)
	} else {
		m.reroute(u, v, d, w)
	}
	lk.Unlock()
	m.ensureNode(u, w)
	m.ensureNode(v, w)
	m.maybeCompact()
}

// reroute repairs stored walks after u's out-degree rose to d >= 2: every
// stored outgoing step from u independently switches to the new edge with
// probability 1/d, and a switched segment keeps its prefix, steps to v, and
// continues with a fresh geometric tail.
//
// The skip coin flips against the stripe-consistent candidate counter; on
// heads the first-switch index is pre-sampled (truncated geometric) and the
// affected segments are frozen under SegmentID stripe locks before the scan.
// Serialized, counter and frozen scan agree exactly. Under parallel
// arrivals, a cross-stripe reroute can shift the candidate count between the
// counter read and the freeze; the scan then retries against the frozen
// enumeration, so a non-skipped arrival still always performs work
// (SlowNoops == 0) and an emptied candidate set downgrades to EmptySkips.
func (m *Maintainer) reroute(u, v graph.NodeID, d int, w *updater) {
	k := m.walks.Candidates(u)
	// <= 0: under parallel arrivals a cross-stripe mutation mid-index can
	// transiently read the counter pair as negative; classify as empty.
	if k <= 0 {
		m.cnt.emptySkips.Add(1)
		return
	}
	inv := 1.0 / float64(d)
	// first is the global index (over the fixed enumeration of all k
	// candidate steps) of the first switch, pre-sampled when the fast path's
	// skip coin came up heads; -1 means flip every candidate unconditionally.
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if w.rng.Float64() < math.Pow(1-inv, float64(k)) {
			m.cnt.fastSkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, inv, k)
	}
	ids, hits, held := m.freeze(u, w)
	defer m.segMu.UnlockSet(held)
	defer m.flushMuts(w)
	for {
		var rerouted, seen int64
		if m.cfg.LegacyScan {
			rerouted, seen = m.rerouteScan(ids, u, v, inv, first, w)
		} else {
			rerouted, seen = m.rerouteScanIndexed(hits, v, inv, first, w)
		}
		switch {
		case rerouted > 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.rerouted.Add(rerouted)
			return
		case first < 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.slowNoops.Add(1)
			return
		case seen == 0:
			m.cnt.emptySkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, inv, seen)
	}
}

// freeze prepares one repair phase's enumeration over u's stored visits: it
// reads the candidate source (the pending-position index by default, the
// full visitor set with LegacyScan), locks the involved segments under the
// SegmentID stripes, and — on the parallel path — re-reads the index under
// those locks so every hit position is exact, dropping hits of segments
// another worker rerouted into u after the probe (they are simply not part
// of this arrival's frozen enumeration, exactly like a segment missing from
// the pre-index frozen visitor set). Exactly one of ids/hits is non-nil.
func (m *Maintainer) freeze(u graph.NodeID, w *updater) (ids []walkstore.SegmentID, hits []walkstore.PosHit, held []int) {
	if m.cfg.LegacyScan {
		ids = sortedVisitors(m.walks, u)
		return ids, nil, w.lockSegments(m.segMu, ids)
	}
	w.hits = m.walks.AppendPendingPositions(w.hits[:0], u, walkstore.Unsided)
	w.segs = walkstore.DistinctSegments(w.segs, w.hits)
	held = w.lockSegments(m.segMu, w.segs)
	if m.cfg.UpdateWorkers > 1 {
		// Another worker may have mutated a probed segment between the probe
		// and the freeze; re-read now that the segments cannot move.
		w.hits = m.walks.AppendPendingPositions(w.hits[:0], u, walkstore.Unsided)
		w.hits = walkstore.KeepSegments(w.hits, w.segs)
	}
	// Bulk-fetch the frozen segments' paths under one segment-lock
	// acquisition; the scans walk them via a cursor over w.segs.
	w.paths = m.walks.AppendPaths(w.paths, w.segs)
	return nil, w.hits, held
}

// groupPath returns the frozen path of segment id, advancing the scan's
// cursor over the (sorted) frozen segment set. Hit groups arrive in
// ascending segment order, so the cursor only ever moves forward.
func groupPath(w *updater, g *int, id walkstore.SegmentID) []graph.NodeID {
	for w.segs[*g] != id {
		*g++
	}
	return w.paths[*g]
}

// rerouteScan runs one coin-flip pass over the frozen segments, returning
// the number of reroutes performed and candidates enumerated.
func (m *Maintainer) rerouteScan(ids []walkstore.SegmentID, u, v graph.NodeID, inv float64, first int64, w *updater) (rerouted, seen int64) {
	idx := int64(0)
	for _, id := range ids {
		p := m.walks.Path(id) // stable: ReplaceTail relocates, never mutates
		pos := -1
		for i := 0; i < len(p)-1 && pos < 0; i++ {
			if p[i] != u {
				continue
			}
			if stats.FirstSuccessHit(w.rng, first, idx, inv) {
				pos = i
			}
			idx++
		}
		if pos < 0 {
			continue
		}
		// The segment's remaining candidates are superseded by the reroute,
		// but they still occupy slots in the enumeration `first` was drawn
		// over.
		for i := pos + 1; i < len(p)-1; i++ {
			if p[i] == u {
				idx++
			}
		}
		m.redirect(id, pos+1, v, w)
		rerouted++
	}
	return rerouted, idx
}

// rerouteScanIndexed runs one coin-flip pass over the frozen pending-position
// hits of the arrival's source. Hits arrive sorted by (segment, position) —
// the same enumeration order the legacy full-path scan produces — so the
// pre-sampled first-switch index means the same candidate under either scan.
// Only the non-terminal hits are candidates; a segment's hits after its own
// reroute this pass are superseded but keep their enumeration slots.
func (m *Maintainer) rerouteScanIndexed(hits []walkstore.PosHit, v graph.NodeID, inv float64, first int64, w *updater) (rerouted, seen int64) {
	idx := int64(0)
	g := 0
	for i := 0; i < len(hits); {
		id := hits[i].Seg
		j := i
		for j < len(hits) && hits[j].Seg == id {
			j++
		}
		p := groupPath(w, &g, id) // stable: ReplaceTail relocates, never mutates
		pos := -1
		for _, h := range hits[i:j] {
			hp := int(h.Pos)
			if hp >= len(p)-1 {
				continue // terminal visit: no outgoing step to capture
			}
			if pos >= 0 {
				idx++ // superseded by this segment's reroute; slot still counts
				continue
			}
			if stats.FirstSuccessHit(w.rng, first, idx, inv) {
				pos = hp
			}
			idx++
		}
		i = j
		if pos < 0 {
			continue
		}
		m.redirect(id, pos+1, v, w)
		rerouted++
	}
	return rerouted, idx
}

// revive repairs stored walks after u gained its very first out-edge. While
// u was dangling every walk reaching it died there, so all stored visits to
// u are terminal; each such walk now continues with probability 1-eps,
// necessarily through the new (only) edge. Same freeze-and-retry scheme as
// reroute.
func (m *Maintainer) revive(u, v graph.NodeID, w *updater) {
	t := m.walks.Terminals(u)
	if t <= 0 {
		m.cnt.emptySkips.Add(1)
		return
	}
	eps := m.cfg.Eps
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if w.rng.Float64() < math.Pow(eps, float64(t)) {
			m.cnt.fastSkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, 1-eps, t)
	}
	ids, hits, held := m.freeze(u, w)
	defer m.segMu.UnlockSet(held)
	defer m.flushMuts(w)
	for {
		var revived, seen int64
		if m.cfg.LegacyScan {
			revived, seen = m.reviveScan(ids, u, v, eps, first, w)
		} else {
			revived, seen = m.reviveScanIndexed(hits, v, eps, first, w)
		}
		switch {
		case revived > 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.revived.Add(revived)
			return
		case first < 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.slowNoops.Add(1)
			return
		case seen == 0:
			m.cnt.emptySkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, 1-eps, seen)
	}
}

// reviveScan runs one continuation pass over the frozen segments, returning
// the number of revivals performed and terminals enumerated.
func (m *Maintainer) reviveScan(ids []walkstore.SegmentID, u, v graph.NodeID, eps float64, first int64, w *updater) (revived, seen int64) {
	idx := int64(0)
	for _, id := range ids {
		p := m.walks.Path(id)
		if p[len(p)-1] != u {
			continue // not a terminal visit; impossible while u was dangling
		}
		cont := stats.FirstSuccessHit(w.rng, first, idx, 1-eps)
		idx++
		if !cont {
			continue
		}
		m.redirect(id, len(p), v, w)
		revived++
	}
	return revived, idx
}

// reviveScanIndexed is reviveScan over frozen pending-position hits: the
// terminal hit of each segment (position == last path index) is the revival
// candidate, enumerated in the same ascending-segment order as the legacy
// visitor scan.
func (m *Maintainer) reviveScanIndexed(hits []walkstore.PosHit, v graph.NodeID, eps float64, first int64, w *updater) (revived, seen int64) {
	idx := int64(0)
	g := 0
	for i := 0; i < len(hits); {
		id := hits[i].Seg
		j := i
		for j < len(hits) && hits[j].Seg == id {
			j++
		}
		p := groupPath(w, &g, id)
		for _, h := range hits[i:j] {
			if int(h.Pos) != len(p)-1 {
				continue // not a terminal visit; impossible while u was dangling
			}
			cont := stats.FirstSuccessHit(w.rng, first, idx, 1-eps)
			idx++
			if cont {
				m.redirect(id, len(p), v, w)
				revived++
			}
			break // at most one terminal hit per segment
		}
		i = j
	}
	return revived, idx
}

// redirect truncates segment id to keep nodes, steps it to v, and extends it
// with a fresh geometric tail sampled through the social store. Callers hold
// the segment's stripe lock. The tail is always sampled here, inline — only
// the store write is deferred to the phase's flushMuts unless
// UnbatchedWrites — so the RNG sequence is identical on both paths.
func (m *Maintainer) redirect(id walkstore.SegmentID, keep int, v graph.NodeID, w *updater) {
	if m.cfg.UnbatchedWrites {
		w.tail = append(w.tail[:0], v)
		w.tail = walk.AppendContinue(m.soc, v, m.cfg.Eps, w.rng, w.tail)
		removed, added := m.walks.ReplaceTail(id, keep, w.tail)
		m.cnt.stepsOut.Add(int64(removed))
		m.cnt.stepsIn.Add(int64(added))
		return
	}
	start := len(w.tailBuf)
	w.tailBuf = append(w.tailBuf, v)
	w.tailBuf = walk.AppendContinue(m.soc, v, m.cfg.Eps, w.rng, w.tailBuf)
	w.muts = append(w.muts, pendingMut{id: id, keep: keep, start: start, end: len(w.tailBuf)})
}

// truncate cuts segment id down to keep nodes with no replacement tail (the
// deletion path's reverse revival), deferred alongside the phase's redirects.
func (m *Maintainer) truncate(id walkstore.SegmentID, keep int, w *updater) {
	if m.cfg.UnbatchedWrites {
		removed, _ := m.walks.ReplaceTail(id, keep, nil)
		m.cnt.stepsOut.Add(int64(removed))
		return
	}
	w.muts = append(w.muts, pendingMut{id: id, keep: keep})
}

// flushMuts applies every tail mutation the current repair phase deferred
// through one stripe-grouped ReplaceTailBatch pass: one arena relocation
// critical section and one counter-stripe lock acquisition per touched
// stripe, instead of one of each per rerouted segment. Phases register it
// with defer immediately after the UnlockSet defer, so it runs (LIFO) while
// the segment stripe locks are still held; a phase's writes are therefore
// fully visible before the source stripe is released, exactly as on the
// unbatched path.
func (m *Maintainer) flushMuts(w *updater) {
	if len(w.muts) == 0 {
		return
	}
	w.tms = w.tms[:0]
	for _, mu := range w.muts {
		var tail []graph.NodeID
		if mu.end > mu.start {
			tail = w.tailBuf[mu.start:mu.end:mu.end]
		}
		w.tms = append(w.tms, walkstore.TailMutation{ID: mu.id, Keep: mu.keep, NewTail: tail})
	}
	removed, added := m.walks.ReplaceTailBatch(w.tms)
	m.cnt.stepsOut.Add(int64(removed))
	m.cnt.stepsIn.Add(int64(added))
	w.muts = w.muts[:0]
	w.tailBuf = w.tailBuf[:0]
}

// maybeCompact checks the arena's garbage ratio every CompactEvery-th
// completed mutation and compacts when it is worth the copy
// (Store.MaybeCompact). Compact changes no logical state (no epoch,
// stripe-epoch, or journal movement), so its placement relative to
// concurrent estimates is unconstrained; callers just must not hold
// segment stripe locks across it (they don't — it runs after the repair).
func (m *Maintainer) maybeCompact() {
	if m.cfg.CompactEvery <= 0 {
		return
	}
	if m.compactTick.Add(1)%int64(m.cfg.CompactEvery) == 0 {
		m.walks.MaybeCompact()
	}
}

// ensureNode seeds R fresh segments for a node first seen mid-stream,
// preserving the invariant that every known node owns R walks. The claim is
// made under knownMu so exactly one arrival seeds a node; the walks
// themselves are sampled outside the lock.
func (m *Maintainer) ensureNode(v graph.NodeID, w *updater) {
	m.knownMu.Lock()
	if m.known[v] {
		m.knownMu.Unlock()
		return
	}
	m.known[v] = true
	m.knownMu.Unlock()
	paths := make([][]graph.NodeID, m.cfg.R)
	for i := range paths {
		seg := walk.PageRank(m.soc, v, m.cfg.Eps, w.rng)
		paths[i] = seg.Path
		m.cnt.stepsIn.Add(int64(len(seg.Path)))
	}
	m.walks.AddBatch(paths)
	m.cnt.seeded.Add(int64(len(paths)))
}

// sortedVisitors returns the segments visiting u in ascending ID order,
// making a fixed-seed serialized run reproducible regardless of the visitor
// set's internal representation — and giving every worker one canonical
// enumeration order to draw first-switch indices over.
func sortedVisitors(walks *walkstore.Store, u graph.NodeID) []walkstore.SegmentID {
	ids := walks.Visitors(u)
	slices.Sort(ids)
	return ids
}

// Estimate returns the PageRank estimate of v: X_v / TotalVisits, the
// dangling-robust normalization of the paper's eps·X_v/(nR) (identical on
// dangling-free graphs, where E[TotalVisits] = nR/eps). Safe to call
// concurrently with updates: the numerator is read under v's counter stripe
// and the denominator atomically, so the ratio's skew is bounded by the
// mutations in flight.
func (m *Maintainer) Estimate(v graph.NodeID) float64 {
	m.cnt.estimates.Add(1)
	m.soc.CountFetch()
	visits, total := m.walks.VisitFraction(v)
	if total == 0 {
		return 0
	}
	return float64(visits) / float64(total)
}

// snapshot fetches the visit-count table once (per-stripe consistent) and
// its sum, recording the serve against both accounting layers.
func (m *Maintainer) snapshot() (map[graph.NodeID]int64, int64) {
	m.cnt.estimates.Add(1)
	m.soc.CountFetch()
	counts := m.walks.VisitCounts()
	var total int64
	for _, x := range counts {
		total += x
	}
	return counts, total
}

// ApproxAll returns the full estimate vector as one snapshot. Nodes never
// visited by any stored walk are absent.
func (m *Maintainer) ApproxAll() map[graph.NodeID]float64 {
	counts, total := m.snapshot()
	scores := make(map[graph.NodeID]float64, len(counts))
	if total == 0 {
		return scores
	}
	for v, x := range counts {
		scores[v] = float64(x) / float64(total)
	}
	return scores
}

// TopK returns the k highest-estimate nodes, descending, ties toward lower
// IDs.
func (m *Maintainer) TopK(k int) []topk.Item {
	counts, total := m.snapshot()
	c := topk.New(k)
	if total == 0 {
		return c.Items()
	}
	for v, x := range counts {
		c.Offer(v, float64(x)/float64(total))
	}
	return c.Items()
}

// Counters returns a snapshot of the update-path accounting.
func (m *Maintainer) Counters() Counters {
	return m.cnt.snapshot()
}
