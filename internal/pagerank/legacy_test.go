package pagerank

import (
	"math/rand/v2"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
)

// TestIndexedScanMatchesLegacy pins the pending-position index rewrite at
// its strongest: the indexed reroute/revive scans enumerate the identical
// (segment, position) order the legacy full-path scans did and consume the
// RNG identically, so a fixed-seed serialized storm must produce
// bitwise-identical estimates and update counters with the index on or off.
func TestIndexedScanMatchesLegacy(t *testing.T) {
	n, updates := 150, 800
	if testing.Short() {
		n, updates = 80, 300
	}
	run := func(legacy bool) (map[graph.NodeID]float64, Counters) {
		mt, _ := newMaintainer(n, Config{Eps: 0.2, R: 5, Workers: 1, Seed: 71, LegacyScan: legacy})
		mt.Bootstrap()
		rng := rand.New(rand.NewPCG(72, 0))
		edges := gen.DirichletStream(n, updates, rng)
		mt.ApplyEdges(edges)
		if err := mt.Store().Validate(); err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		return mt.ApproxAll(), mt.Counters()
	}

	gotIdx, cntIdx := run(false)
	gotLeg, cntLeg := run(true)
	// Estimates is read-path accounting; ApproxAll bumps it identically on
	// both runs, so whole-struct equality is still exact.
	if cntIdx != cntLeg {
		t.Fatalf("counters diverged:\nindexed %+v\nlegacy  %+v", cntIdx, cntLeg)
	}
	if cntIdx.SlowNoops != 0 {
		t.Fatalf("SlowNoops=%d, want 0", cntIdx.SlowNoops)
	}
	if len(gotIdx) != len(gotLeg) {
		t.Fatalf("estimate vectors differ in size: %d vs %d", len(gotIdx), len(gotLeg))
	}
	for v, x := range gotLeg {
		if gotIdx[v] != x {
			t.Fatalf("estimate[%d]=%v indexed, %v legacy", v, gotIdx[v], x)
		}
	}
}
