package pagerank

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/exact"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
)

// validateAll runs the full store recount plus the deletion invariant: after
// any churn no stored step may traverse a missing edge.
func validateAll(t *testing.T, mt *Maintainer) {
	t.Helper()
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	g := mt.Social().Graph()
	if err := mt.Store().ValidateSteps(g.HasEdge); err != nil {
		t.Fatal(err)
	}
}

// TestConvergesToOracleOnShrinkGrowStream is the deletion-side ground-truth
// test: stream interleaved grow and shrink phases through the maintainer and
// require the estimates on the churned graph to match exact power iteration
// on the final graph — the reverse reroute rule keeps the stored walks
// distributed as fresh walks on whatever graph survives.
func TestConvergesToOracleOnShrinkGrowStream(t *testing.T) {
	n, m, r := 100, 3000, 100
	if testing.Short() {
		n, m, r = 60, 1200, 60
	}
	const eps = 0.2
	mt, soc := newMaintainer(n, Config{Eps: eps, R: r, Workers: 4, Seed: 31})
	mt.Bootstrap()

	rng := rand.New(rand.NewPCG(32, 0))
	arrivals := gen.DirichletStream(n, m, rng)
	events := gen.ShrinkGrowStream(arrivals, 6, 0.3, rng)
	mt.ApplyEvents(events)

	validateAll(t, mt)
	cnt := mt.Counters()
	if cnt.Deletions == 0 || cnt.DelRerouted == 0 {
		t.Fatalf("shrink phases did no deletion work: %+v", cnt)
	}
	if cnt.DelMisses != 0 {
		t.Fatalf("DelMisses=%d on an in-order only-live churn stream", cnt.DelMisses)
	}
	if cnt.SlowNoops != 0 {
		t.Fatalf("SlowNoops=%d, want 0", cnt.SlowNoops)
	}

	pi := exact.PageRank(soc.Graph(), eps, oracleTol)
	got := mt.ApproxAll()
	// Observed ~0.06 at these fixed seeds; ~3x headroom.
	if d := exact.L1(got, pi); d > 0.18 {
		t.Fatalf("L1(maintainer, oracle)=%v exceeds tolerance", d)
	}
	for v, x := range got {
		if math.IsNaN(x) || x < 0 {
			t.Fatalf("estimate[%d]=%v", v, x)
		}
	}
}

// TestDeletionLegacyScanBitwise extends the bitwise legacy/indexed pin to the
// deletion path: a fixed-seed serialized churn storm must produce identical
// estimates and counters with the pending-position index on and off, because
// both unroute flavors enumerate the same (segment, position) candidates and
// draw the same coin stream.
func TestDeletionLegacyScanBitwise(t *testing.T) {
	n, m := 120, 900
	if testing.Short() {
		n, m = 70, 400
	}
	run := func(legacy bool) (map[graph.NodeID]float64, Counters) {
		mt, _ := newMaintainer(n, Config{Eps: 0.2, R: 5, Workers: 1, Seed: 41, LegacyScan: legacy})
		mt.Bootstrap()
		rng := rand.New(rand.NewPCG(42, 0))
		events := gen.PowerLawChurnStream(n, m, 0.8, 0.35, rng)
		mt.ApplyEvents(events)
		validateAll(t, mt)
		return mt.ApproxAll(), mt.Counters()
	}

	gotIdx, cntIdx := run(false)
	gotLeg, cntLeg := run(true)
	if cntIdx != cntLeg {
		t.Fatalf("counters diverged:\nindexed %+v\nlegacy  %+v", cntIdx, cntLeg)
	}
	if cntIdx.Deletions == 0 {
		t.Fatal("churn stream produced no deletions")
	}
	if cntIdx.SlowNoops != 0 {
		t.Fatalf("SlowNoops=%d, want 0", cntIdx.SlowNoops)
	}
	if len(gotIdx) != len(gotLeg) {
		t.Fatalf("estimate vectors differ in size: %d vs %d", len(gotIdx), len(gotLeg))
	}
	for v, x := range gotLeg {
		if gotIdx[v] != x {
			t.Fatalf("estimate[%d]=%v indexed, %v legacy", v, gotIdx[v], x)
		}
	}
}

// TestDegenerateDeletions sweeps the deletion edge cases: the reverse revival
// (last out-edge gone), edges never walked, deletion before any walks exist,
// and delete-then-re-add. Nothing may panic or produce NaN, and the store
// invariants must hold after every case.
func TestDegenerateDeletions(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"last out-edge truncates", func(t *testing.T) {
			// 0 -> 1 is node 0's only out-edge; every bootstrap walk from 0
			// steps through it. Deleting it must truncate them all at 0.
			mt, soc := newMaintainer(3, Config{Eps: 0.2, R: 20, Workers: 1, Seed: 1})
			soc.AddEdge(0, 1)
			soc.AddEdge(1, 2)
			mt.Bootstrap()
			mt.ApplyDeletion(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			cnt := mt.Counters()
			if cnt.DelTruncated == 0 {
				t.Fatalf("no reverse revival recorded: %+v", cnt)
			}
			if cnt.DelRerouted != 0 {
				t.Fatalf("rerouted through a surviving edge that does not exist: %+v", cnt)
			}
			// Walks from 0 now terminate at 0; mass past the cut is gone.
			if est := mt.Estimate(0); math.IsNaN(est) || est <= 0 {
				t.Fatalf("estimate(0)=%v", est)
			}
		}},
		{"never-walked edge is cheap", func(t *testing.T) {
			// 1 is dangling at bootstrap, so every walk reaching it stops
			// there — node 1's stored hits are all terminal. Slipping 1 -> 2
			// into the graph behind the maintainer's back (no arrival repair)
			// then deleting it exercises a scan with hits but zero
			// candidates: no coin, no repair, just the removal.
			mt, soc := newMaintainer(3, Config{Eps: 0.2, R: 10, Workers: 1, Seed: 2})
			soc.AddEdge(0, 1)
			mt.Bootstrap()
			soc.AddEdge(1, 2)
			before := mt.Counters()
			mt.ApplyDeletion(graph.Edge{From: 1, To: 2})
			validateAll(t, mt)
			cnt := mt.Counters()
			if cnt.Deletions != before.Deletions+1 {
				t.Fatalf("deletion not counted: %+v", cnt)
			}
			if cnt.DelRerouted != before.DelRerouted || cnt.DelTruncated != before.DelTruncated {
				t.Fatalf("repair work on a walked-free edge: %+v", cnt)
			}
		}},
		{"never-bootstrapped store", func(t *testing.T) {
			// No Bootstrap: the walk store is empty. The deletion must still
			// remove the edge and count itself without touching segments.
			mt, soc := newMaintainer(2, Config{Eps: 0.2, R: 5, Workers: 1, Seed: 3})
			soc.AddEdge(0, 1)
			mt.ApplyDeletion(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			if soc.Graph().HasEdge(0, 1) {
				t.Fatal("edge survived deletion")
			}
			cnt := mt.Counters()
			if cnt.Deletions != 1 || cnt.DelMisses != 0 || cnt.DelRerouted != 0 || cnt.DelTruncated != 0 {
				t.Fatalf("unexpected accounting: %+v", cnt)
			}
		}},
		{"missing edge is a counted no-op", func(t *testing.T) {
			mt, _ := newMaintainer(2, Config{Eps: 0.2, R: 5, Workers: 1, Seed: 4})
			mt.Bootstrap()
			mt.ApplyDeletion(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			cnt := mt.Counters()
			if cnt.Deletions != 1 || cnt.DelMisses != 1 {
				t.Fatalf("miss not counted: %+v", cnt)
			}
		}},
		{"delete then re-add", func(t *testing.T) {
			// The truncated terminals must revive when the edge returns: after
			// re-adding 0 -> 1, no walk from 0 may still dangle there (the
			// revival law fires on first arrival at a dangling terminal).
			mt, soc := newMaintainer(3, Config{Eps: 0.2, R: 30, Workers: 1, Seed: 5})
			soc.AddEdge(0, 1)
			soc.AddEdge(1, 0)
			mt.Bootstrap()
			mt.ApplyDeletion(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			mid := mt.Counters()
			if mid.DelTruncated == 0 {
				t.Fatalf("deletion of the only out-edge truncated nothing: %+v", mid)
			}
			mt.ApplyEdge(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			cnt := mt.Counters()
			if cnt.Revived == 0 {
				t.Fatalf("re-add revived nothing: %+v", cnt)
			}
			if est := mt.Estimate(1); math.IsNaN(est) || est <= 0 {
				t.Fatalf("estimate(1)=%v after re-add", est)
			}
		}},
		{"multigraph copy survives", func(t *testing.T) {
			// Two copies of 0 -> 1: removing one leaves every stored step
			// legal (u still has an edge to v), so ValidateSteps must pass
			// whether or not individual steps were re-sampled.
			mt, soc := newMaintainer(3, Config{Eps: 0.2, R: 20, Workers: 1, Seed: 6})
			soc.AddEdge(0, 1)
			soc.AddEdge(0, 1)
			soc.AddEdge(1, 2)
			mt.Bootstrap()
			if c := soc.CountEdges(0, 1); c != 2 {
				t.Fatalf("CountEdges=%d, want 2", c)
			}
			mt.ApplyDeletion(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			if c := soc.CountEdges(0, 1); c != 1 {
				t.Fatalf("CountEdges=%d after removal, want 1", c)
			}
			cnt := mt.Counters()
			if cnt.DelTruncated != 0 {
				t.Fatalf("truncated despite a surviving copy: %+v", cnt)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestChurnFuzz is the shrink-grow fuzz harness: random interleaved
// add/delete batches with per-batch full-store recounts and the
// missing-edge-step invariant, serialized and with the parallel worker pool,
// under whatever -race the CI run adds.
func TestChurnFuzz(t *testing.T) {
	rounds, batch := 12, 150
	if testing.Short() {
		rounds, batch = 6, 80
	}
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "serialized", 4: "parallel"}[workers], func(t *testing.T) {
			const n = 80
			mt, _ := newMaintainer(n, Config{
				Eps: 0.2, R: 20, Workers: 4, Seed: 51, UpdateWorkers: workers,
			})
			mt.Bootstrap()
			rng := rand.New(rand.NewPCG(52, uint64(workers)))
			for round := 0; round < rounds; round++ {
				events := gen.PowerLawChurnStream(n, batch, 0.9, 0.4, rng)
				mt.ApplyEvents(events)
				validateAll(t, mt)
			}
			cnt := mt.Counters()
			if cnt.Deletions == 0 || cnt.Arrivals == 0 {
				t.Fatalf("fuzz stream was one-sided: %+v", cnt)
			}
			if cnt.SlowNoops != 0 {
				t.Fatalf("SlowNoops=%d, want 0", cnt.SlowNoops)
			}
			if workers == 1 && cnt.DelMisses != 0 {
				t.Fatalf("DelMisses=%d on a serialized only-live stream", cnt.DelMisses)
			}
			for v, x := range mt.ApproxAll() {
				if math.IsNaN(x) || x < 0 {
					t.Fatalf("estimate[%d]=%v", v, x)
				}
			}
		})
	}
}
