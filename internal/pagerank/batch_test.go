package pagerank

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
)

// This file pins the batching-era guarantees for the PageRank maintainer:
// phase-batched index writes and epoch-keyed arena compaction must both be
// bitwise invisible to a fixed-seed serialized run, and compaction must
// survive estimate reads racing a parallel storm under -race.

// churnRun drives a fixed-seed serialized churn storm through a fresh
// maintainer with the given config knobs and returns the final estimates and
// counters, validating the store each round.
func churnRun(t *testing.T, cfg Config) (map[graph.NodeID]float64, Counters) {
	t.Helper()
	const n = 60
	rounds, batch := 6, 120
	if testing.Short() {
		rounds, batch = 3, 60
	}
	cfg.Eps, cfg.R, cfg.Workers, cfg.Seed = 0.2, 8, 1, 321
	mt, _ := newMaintainer(n, cfg)
	mt.Bootstrap()
	rng := rand.New(rand.NewPCG(322, 0))
	for round := 0; round < rounds; round++ {
		events := gen.PowerLawChurnStream(n, batch, 0.9, 0.35, rng)
		mt.ApplyEvents(events)
		validateAll(t, mt)
	}
	return mt.ApproxAll(), mt.Counters()
}

func requireRunsEqual(t *testing.T, label string, a, b map[graph.NodeID]float64, cntA, cntB Counters) {
	t.Helper()
	if cntA != cntB {
		t.Fatalf("%s: counters diverged:\nA %+v\nB %+v", label, cntA, cntB)
	}
	if cntA.SlowNoops != 0 {
		t.Fatalf("%s: SlowNoops=%d, want 0", label, cntA.SlowNoops)
	}
	if len(a) != len(b) {
		t.Fatalf("%s: estimate vectors differ in size: %d vs %d", label, len(a), len(b))
	}
	for v, x := range b {
		if a[v] != x {
			t.Fatalf("%s: estimate[%d]=%v vs %v", label, v, a[v], x)
		}
	}
}

// TestBatchedWritesMatchUnbatched proves the deferred write path is bitwise
// invisible: a fixed-seed serialized churn storm must produce identical
// estimates and counters whether every redirect/truncation is an immediate
// ReplaceTail (UnbatchedWrites) or coalesced into one ReplaceTailBatch per
// repair phase. The legacy full-path scan closes the triangle.
func TestBatchedWritesMatchUnbatched(t *testing.T) {
	estB, cntB := churnRun(t, Config{})
	estU, cntU := churnRun(t, Config{UnbatchedWrites: true})
	requireRunsEqual(t, "batched vs unbatched", estB, estU, cntB, cntU)

	estL, cntL := churnRun(t, Config{LegacyScan: true})
	requireRunsEqual(t, "batched vs legacy scan", estB, estL, cntB, cntL)
}

// TestCompactEveryBitwise pins compaction's no-logical-state contract at the
// maintainer level: the same fixed-seed storm with CompactEvery firing every
// few updates is bitwise identical to the never-compacting run, while
// CompactEvery=1 leaves the arena dense. validateAll runs every round, so
// Validate and ValidateSteps are checked after many compactions.
func TestCompactEveryBitwise(t *testing.T) {
	est0, cnt0 := churnRun(t, Config{})
	estC, cntC := churnRun(t, Config{CompactEvery: 3})
	requireRunsEqual(t, "CompactEvery=3 vs off", est0, estC, cnt0, cntC)

	const n = 60
	run := func(every int) (live, total int64) {
		mt, _ := newMaintainer(n, Config{Eps: 0.2, R: 8, Workers: 1, Seed: 321, CompactEvery: every})
		mt.Bootstrap()
		rng := rand.New(rand.NewPCG(322, 0))
		mt.ApplyEvents(gen.PowerLawChurnStream(n, 120, 0.9, 0.35, rng))
		validateAll(t, mt)
		return mt.Store().ArenaStats()
	}
	live0, total0 := run(0)
	liveC, totalC := run(1)
	if liveC != live0 {
		t.Fatalf("live slots diverged: %d vs %d", liveC, live0)
	}
	if totalC >= total0 {
		t.Fatalf("CompactEvery=1 arena (%d) not smaller than never-compacting (%d)", totalC, total0)
	}
	if g := float64(totalC-liveC) / float64(totalC); g > 0.3 {
		t.Fatalf("CompactEvery=1 left %.0f%% garbage, want <= 30%%", 100*g)
	}
}

// TestCompactRacesEstimatesAndStorm is the -race stress for the PageRank
// side: CompactEvery fires from storm workers while estimate readers snapshot
// visit fractions and an external compactor races both.
func TestCompactRacesEstimatesAndStorm(t *testing.T) {
	n, storm := 150, 1200
	if testing.Short() {
		n, storm = 90, 400
	}
	mt, _ := newMaintainer(n, Config{
		Eps: 0.2, R: 6, UpdateWorkers: 4, Seed: 332, CompactEvery: 7,
	})
	mt.Bootstrap()
	rng := rand.New(rand.NewPCG(331, 0))
	events := gen.PowerLawChurnStream(n, storm, 0.9, 0.3, rng)

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // external compactor, racing the CompactEvery trigger
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if live, total := mt.Store().ArenaStats(); total > live {
				mt.Store().Compact()
			}
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qrng := rand.New(rand.NewPCG(333, uint64(i)))
			for {
				select {
				case <-done:
					return
				default:
				}
				v := graph.NodeID(qrng.IntN(n))
				if x := mt.Estimate(v); math.IsNaN(x) || x < 0 {
					t.Errorf("estimate[%d]=%v under compacting storm", v, x)
					return
				}
			}
		}(i)
	}
	mt.ApplyEvents(events)
	close(done)
	wg.Wait()
	validateAll(t, mt)
	if c := mt.Counters(); c.SlowNoops != 0 {
		t.Fatalf("compacting storm recorded %d no-op slow paths", c.SlowNoops)
	}
}
