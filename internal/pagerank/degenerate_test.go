package pagerank

import (
	"math"
	"testing"

	"fastppr/internal/graph"
)

// TestDegenerateStoreQueries sweeps Estimate/TopK/ApproxAll against the two
// degenerate stores the total==0 guards exist for: a never-bootstrapped
// maintainer and a bootstrapped all-dangling graph (every stored segment is
// a single node, so every visit is terminal). No panic, no NaN, no silent
// zero where a defined score exists.
func TestDegenerateStoreQueries(t *testing.T) {
	const n = 6
	cases := []struct {
		name      string
		bootstrap bool
		wantScore float64 // expected Estimate of a live node
	}{
		{name: "never-bootstrapped", bootstrap: false, wantScore: 0},
		{name: "all-dangling", bootstrap: true, wantScore: 1.0 / n},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mt, _ := newMaintainer(n, Config{Eps: 0.3, R: 4, Seed: 7})
			if tc.bootstrap {
				mt.Bootstrap()
			}
			for v := graph.NodeID(0); v < n; v++ {
				if got := mt.Estimate(v); got != tc.wantScore {
					t.Fatalf("Estimate(%d)=%v want %v", v, got, tc.wantScore)
				}
			}
			if got := mt.Estimate(999); got != 0 {
				t.Fatalf("Estimate(unknown)=%v", got)
			}
			all := mt.ApproxAll()
			wantLen := 0
			if tc.bootstrap {
				wantLen = n
			}
			if len(all) != wantLen {
				t.Fatalf("ApproxAll has %d nodes, want %d", len(all), wantLen)
			}
			var sum float64
			for v, x := range all {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("ApproxAll[%d]=%v", v, x)
				}
				sum += x
			}
			if tc.bootstrap && math.Abs(sum-1) > 1e-12 {
				t.Fatalf("ApproxAll sums to %v, want 1", sum)
			}
			// k far beyond the live node count must truncate, not pad or panic.
			top := mt.TopK(10 * n)
			if len(top) != wantLen {
				t.Fatalf("TopK(%d) returned %d items, want %d", 10*n, len(top), wantLen)
			}
			for _, it := range top {
				if math.IsNaN(it.Score) {
					t.Fatalf("TopK NaN score for node %d", it.Node)
				}
			}
			// An edge arrival into the degenerate store must not panic either:
			// on the empty store both repair phases are EmptySkips; on the
			// all-dangling store it is the first-out-edge revival of node 0.
			mt.ApplyEdge(graph.Edge{From: 0, To: 1})
			if err := mt.Store().Validate(); err != nil {
				t.Fatal(err)
			}
			c := mt.Counters()
			if c.SlowNoops != 0 {
				t.Fatalf("SlowNoops=%d after degenerate arrival", c.SlowNoops)
			}
		})
	}
}
