// Package engine drives the Monte Carlo walk machinery in parallel: it
// generates the paper's R reset-walk segments per node with a worker pool
// (full-store construction, the preprocessing step of Section 2.2) and
// replays edge arrivals through the paper's incremental update rule
// (Section 2.2's maintenance loop, the 1/d reroute coin of its Theorem 1
// analysis), both against the sharded graph and the arena-backed walk
// store.
//
// Design notes. Each worker owns a PCG random source (math/rand/v2), a
// graph.Batcher, and a set of reusable path buffers, so the steady state
// allocates nothing per segment. Segment generation runs as a lockstep
// burst: up to Batch walkers advance together, one shard-grouped sampling
// call per round, and finished bursts are flushed into the store through
// AddBatch under a single lock acquisition. Edge updates stripe-lock on
// SegmentID (via the shared stripes package) so two workers never reroute
// the same segment concurrently while leaving unrelated segments fully
// parallel — the same per-segment serialization contract the maintainers'
// parallel update paths rely on; see docs/DESIGN.md#6-concurrency-model
// for the system-wide lock order and docs/DESIGN.md#1-data-flow for where
// the engine sits in it.
//
// The engine also replays the inverse stream: ApplyDeletions runs the
// reverse reroute rule (each stored step through a removed copy of (u, v)
// captured with probability 1/c over the pre-removal multiplicity c, then
// re-stepped through a surviving out-edge or truncated when none survive),
// and ApplyWindow streams arrivals through a fixed-capacity sliding window,
// feeding each expiring edge back through the deletion path so the graph
// always holds exactly the last capacity arrivals — see
// docs/DESIGN.md#10-deletions--windows.
//
// The engine is the throughput-oriented, approximately-serialized replay
// used by benchmarks; pagerank.Maintainer layers the exactly-serialized,
// call-accounted update path with the W(v) fast path on top of the same
// store. Config.CompactEvery has ApplyWindow check the walk arena between
// arrivals every N streamed edges (and once more at stream end),
// compacting when at least a quarter of it is garbage — bitwise invisible
// to the window run, per docs/DESIGN.md#11-batching--compaction.
package engine
