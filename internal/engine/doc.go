// Package engine drives the Monte Carlo walk machinery in parallel: it
// generates the paper's R reset-walk segments per node with a worker pool
// (full-store construction, the preprocessing step of Section 2.2) and
// replays edge arrivals through the paper's incremental update rule
// (Section 2.2's maintenance loop, the 1/d reroute coin of its Theorem 1
// analysis), both against the sharded graph and the arena-backed walk
// store.
//
// Design notes. Each worker owns a PCG random source (math/rand/v2), a
// graph.Batcher, and a set of reusable path buffers, so the steady state
// allocates nothing per segment. Segment generation runs as a lockstep
// burst: up to Batch walkers advance together, one shard-grouped sampling
// call per round, and finished bursts are flushed into the store through
// AddBatch under a single lock acquisition. Edge updates stripe-lock on
// SegmentID so two workers never reroute the same segment concurrently
// while leaving unrelated segments fully parallel.
//
// The engine is the throughput-oriented, approximately-serialized replay
// used by benchmarks; pagerank.Maintainer layers the exactly-serialized,
// call-accounted update path with the W(v) fast path on top of the same
// store.
package engine
