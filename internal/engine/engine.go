package engine

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"fastppr/internal/graph"
	"fastppr/internal/stripes"
	"fastppr/internal/walk"
	"fastppr/internal/walkstore"
)

// Config parameterizes an Engine.
type Config struct {
	// Eps is the walk reset probability; segment lengths are geometric with
	// mean 1/Eps. Must be in (0, 1].
	Eps float64
	// R is the number of stored segments per node (the paper's R).
	R int
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// Batch is the number of lockstep walkers per worker burst; 0 means 128.
	Batch int
	// Seed seeds the PCG sources. BuildStore derives one source per node
	// chunk (PCG(Seed, chunkIndex)), so the generated walks are identical
	// for any worker count; only segment IDs and store layout depend on
	// scheduling. ApplyEdges derives per-worker sources and is not
	// scheduling-deterministic.
	Seed uint64
	// CompactEvery, when positive, makes ApplyWindow check the arena after
	// every CompactEvery-th streamed arrival (and once more at the end of
	// the stream), compacting when at least a quarter of it is garbage
	// (walkstore.MaybeCompact) — reclaiming what the window's reroutes and
	// expiries leave behind without repeatedly copying a mostly-live arena.
	// Compaction changes no logical state, so fixed-seed window runs are
	// bitwise identical with it on or off.
	CompactEvery int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Batch <= 0 {
		c.Batch = 128
	}
	if c.R <= 0 {
		c.R = 1
	}
	return c
}

// updateStripes is the number of per-segment locks serializing concurrent
// reroutes of the same segment during ApplyEdges.
const updateStripes = 512

// Engine generates and maintains walk segments over a graph/store pair.
// Methods are safe for concurrent use, though BuildStore is normally called
// once.
type Engine struct {
	g     *graph.Graph
	store *walkstore.Store
	cfg   Config
	segMu *stripes.MutexSet
}

// New returns an engine over g and store.
func New(g *graph.Graph, store *walkstore.Store, cfg Config) *Engine {
	if cfg.Eps <= 0 || cfg.Eps > 1 {
		panic("engine: Eps must be in (0, 1]")
	}
	return &Engine{g: g, store: store, cfg: cfg.withDefaults(), segMu: stripes.NewMutexSet(updateStripes)}
}

// Store returns the engine's walk store.
func (e *Engine) Store() *walkstore.Store { return e.store }

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// BuildStore generates cfg.R segments for every node in nodes and stores
// them, using the worker pool. It returns the total number of walk steps
// taken (stored path nodes). Nodes are claimed in fixed-size chunks via an
// atomic cursor, so the work balances even when segment lengths vary; each
// chunk walks with its own PCG(Seed, chunkIndex) source, so the generated
// paths do not depend on which worker claims which chunk.
func (e *Engine) BuildStore(nodes []graph.NodeID) int64 {
	cfg := e.cfg
	const chunk = 256
	var cursor, steps atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := newBurstGen(e.g, cfg.Batch, cfg.Eps)
			var local int64
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(nodes) {
					break
				}
				hi := min(lo+chunk, len(nodes))
				rng := rand.New(rand.NewPCG(cfg.Seed, uint64(lo/chunk)))
				local += gen.run(e.store, nodes[lo:hi], cfg.R, rng)
			}
			steps.Add(local)
		}()
	}
	wg.Wait()
	return steps.Load()
}

// burstGen holds one worker's reusable lockstep-walk state.
type burstGen struct {
	g       *graph.Graph
	batcher *graph.Batcher
	eps     float64
	batch   int
	// Parallel arrays over alive walkers, compacted by swap-remove.
	cur  []graph.NodeID
	next []graph.NodeID
	ok   []bool
	slot []int // alive walker -> path buffer index
	// One reusable path buffer per walker slot; flushed via AddBatch.
	paths [][]graph.NodeID
}

func newBurstGen(g *graph.Graph, batch int, eps float64) *burstGen {
	return &burstGen{
		g:       g,
		batcher: g.NewBatcher(),
		eps:     eps,
		batch:   batch,
		cur:     make([]graph.NodeID, 0, batch),
		next:    make([]graph.NodeID, batch),
		ok:      make([]bool, batch),
		slot:    make([]int, 0, batch),
		paths:   make([][]graph.NodeID, batch),
	}
}

// run generates r segments for every source in sources, flushing each burst
// into store via AddBatch. It returns the number of stored steps.
func (b *burstGen) run(store *walkstore.Store, sources []graph.NodeID, r int, rng *rand.Rand) int64 {
	var steps int64
	total := len(sources) * r
	emitted := 0
	for emitted < total {
		n := min(b.batch, total-emitted)
		// Seed the burst: walker i starts at sources[(emitted+i)/r].
		b.cur = b.cur[:n]
		b.slot = b.slot[:n]
		for i := 0; i < n; i++ {
			src := sources[(emitted+i)/r]
			b.cur[i] = src
			b.slot[i] = i
			b.paths[i] = append(b.paths[i][:0], src)
		}
		emitted += n
		// Lockstep rounds until every walker in the burst has reset.
		for alive := n; alive > 0; {
			// Reset phase: geometric termination before each step.
			for i := 0; i < alive; {
				if rng.Float64() < b.eps {
					alive = b.retire(i, alive)
					continue
				}
				i++
			}
			if alive == 0 {
				break
			}
			// Step phase: one shard-grouped sampling call for the survivors.
			b.batcher.RandomOutNeighbors(b.cur[:alive], b.next[:alive], b.ok[:alive], rng)
			for i := 0; i < alive; {
				if !b.ok[i] { // dangling node ends the segment
					alive = b.retire(i, alive)
					continue
				}
				b.cur[i] = b.next[i]
				b.paths[b.slot[i]] = append(b.paths[b.slot[i]], b.next[i])
				i++
			}
		}
		store.AddBatch(b.paths[:n])
		for i := 0; i < n; i++ {
			steps += int64(len(b.paths[i]))
		}
	}
	return steps
}

// retire swap-removes walker i from the alive prefix and returns the new
// alive count. Its finished path stays in its slot for the burst flush.
func (b *burstGen) retire(i, alive int) int {
	alive--
	b.cur[i] = b.cur[alive]
	b.slot[i] = b.slot[alive]
	b.next[i] = b.next[alive]
	b.ok[i] = b.ok[alive]
	return alive
}

// UpdateStats aggregates the work done by an ApplyEdges run.
type UpdateStats struct {
	Edges     int   // edge arrivals applied
	Rerouted  int64 // segments whose tail was regenerated
	StepsIn   int64 // visits added by reroutes
	StepsOut  int64 // visits removed by reroutes
	Candidate int64 // segment visits examined (the paper's W(u) work bound)
}

// updState is one ApplyEdges worker's reusable buffers: regenerated tail,
// stripe-lock keys, and the pending-position probe/freeze scratch.
type updState struct {
	tail  []graph.NodeID
	keys  []uint64
	idx   []int
	hits  []walkstore.PosHit
	segs  []walkstore.SegmentID
	paths [][]graph.NodeID

	// Deferred-write state: the repair loops sample fresh tails into
	// tailBuf inline (preserving the exact RNG consumption order) and
	// record a pendingMut each; flushMuts applies one arrival's mutations
	// through one stripe-grouped ReplaceTailBatch pass.
	tailBuf []graph.NodeID
	muts    []pendingMut
	tms     []walkstore.TailMutation
}

// pendingMut is one deferred ReplaceTail; start == end records a pure
// truncation (the deletion path's reverse revival).
type pendingMut struct {
	id         walkstore.SegmentID
	keep       int
	start, end int // st.tailBuf[start:end] is the fresh tail
}

// flushMuts applies the deferred tail mutations through one stripe-grouped
// ReplaceTailBatch pass, crediting removed/added visits to the caller's
// stats. Registered with defer after the UnlockSet defer, so it runs (LIFO)
// while the segment stripe locks are still held.
func (e *Engine) flushMuts(st *updState, stepsOut, stepsIn *int64) {
	if len(st.muts) == 0 {
		return
	}
	st.tms = st.tms[:0]
	for _, mu := range st.muts {
		var tail []graph.NodeID
		if mu.end > mu.start {
			tail = st.tailBuf[mu.start:mu.end:mu.end]
		}
		st.tms = append(st.tms, walkstore.TailMutation{ID: mu.id, Keep: mu.keep, NewTail: tail})
	}
	removed, added := e.store.ReplaceTailBatch(st.tms)
	*stepsOut += int64(removed)
	*stepsIn += int64(added)
	st.muts = st.muts[:0]
	st.tailBuf = st.tailBuf[:0]
}

// ApplyEdges replays edge arrivals through the paper's update rule using the
// worker pool: for each arriving edge (u, v), after inserting it the new
// out-degree of u is d, and every stored walk step leaving u is redirected
// through v with probability 1/d; a redirected segment keeps its prefix up
// to that visit, steps to v, and continues with a fresh geometric walk.
// An edge that takes u from dangling to degree 1 instead revives the walks
// that died at u: each continues through the new edge with probability
// 1-eps, restoring the geometric law. Distinct edges proceed in parallel;
// reroutes of the same segment are serialized by SegmentID stripe locks.
//
// Caveat: when two goroutines insert the *first two* edges of the same
// source concurrently, both may observe d=2 and skip the dangling revival.
// Arrival streams are modeled after real social traffic where repeat edges
// from one brand-new source inside one batch are rare; a strict maintainer
// can serialize per-source if it needs exactness there.
func (e *Engine) ApplyEdges(edges []graph.Edge, seed uint64) UpdateStats {
	cfg := e.cfg
	var cursor atomic.Int64
	var stats UpdateStats
	var statsMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(worker)))
			var local UpdateStats
			var st updState
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(edges) {
					break
				}
				ed := edges[i]
				e.g.AddEdge(ed.From, ed.To)
				local.Edges++
				e.applyOne(ed, rng, &st, &local)
			}
			statsMu.Lock()
			stats.Edges += local.Edges
			stats.Rerouted += local.Rerouted
			stats.StepsIn += local.StepsIn
			stats.StepsOut += local.StepsOut
			stats.Candidate += local.Candidate
			statsMu.Unlock()
		}(w)
	}
	wg.Wait()
	return stats
}

// applyOne reroutes the stored segments affected by one inserted edge,
// consuming the store's pending-position index: probe the visit positions at
// u, freeze the hit segments under their SegmentID stripes, re-read the
// index so every position is exact (another worker may have rerouted a
// probed segment in between), then flip coins only at the stored steps the
// new edge can actually capture instead of walking every visitor's path.
func (e *Engine) applyOne(ed graph.Edge, rng *rand.Rand, st *updState, stats *UpdateStats) {
	u, v := ed.From, ed.To
	d := e.g.OutDegree(u)
	if d == 0 {
		return
	}
	inv := 1.0 / float64(d)
	// firstEdge: this arrival took u from dangling to degree 1. Every stored
	// walk that visits u then ended there (a dangling node terminates every
	// visit), so instead of rerouting mid-path steps we must revive the
	// terminal visit: a fresh walk arriving at u now continues with
	// probability 1-eps, and its only possible step is the new edge.
	firstEdge := d == 1
	st.hits = e.store.AppendPendingPositions(st.hits[:0], u, walkstore.Unsided)
	if len(st.hits) == 0 {
		return
	}
	st.segs = walkstore.DistinctSegments(st.segs, st.hits)
	st.keys = st.keys[:0]
	for _, id := range st.segs {
		st.keys = append(st.keys, uint64(id))
	}
	st.idx = e.segMu.LockKeys(st.keys, st.idx)
	defer e.segMu.UnlockSet(st.idx)
	defer e.flushMuts(st, &stats.StepsOut, &stats.StepsIn)
	if e.cfg.Workers > 1 {
		// Another worker may have mutated a probed segment between the probe
		// and the freeze; re-read now that the segments cannot move.
		st.hits = e.store.AppendPendingPositions(st.hits[:0], u, walkstore.Unsided)
		st.hits = walkstore.KeepSegments(st.hits, st.segs)
	}
	st.paths = e.store.AppendPaths(st.paths, st.segs)
	g := 0
	for i := 0; i < len(st.hits); {
		id := st.hits[i].Seg
		j := i
		for j < len(st.hits) && st.hits[j].Seg == id {
			j++
		}
		group := st.hits[i:j]
		i = j
		for st.segs[g] != id {
			g++
		}
		path := st.paths[g]
		reroute := -1
		for _, h := range group {
			// Only non-terminal visits take an outgoing step that the new
			// edge can capture.
			if int(h.Pos) >= len(path)-1 {
				continue
			}
			stats.Candidate++
			if rng.Float64() < inv {
				reroute = int(h.Pos)
				break
			}
		}
		if reroute < 0 && firstEdge && int(group[len(group)-1].Pos) == len(path)-1 {
			stats.Candidate++
			if rng.Float64() >= e.cfg.Eps {
				reroute = len(path) - 1
			}
		}
		if reroute < 0 {
			continue
		}
		start := len(st.tailBuf)
		st.tailBuf = append(st.tailBuf, v)
		st.tailBuf = walk.AppendContinue(e.g, v, e.cfg.Eps, rng, st.tailBuf)
		st.muts = append(st.muts, pendingMut{id: id, keep: reroute + 1, start: start, end: len(st.tailBuf)})
		stats.Rerouted++
	}
}
