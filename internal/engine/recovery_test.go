package engine

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"fastppr/internal/graph"
	"fastppr/internal/persist"
)

// TestPersistRoundTripThenApply drives the engine over a persisted store:
// build the store under a WAL, close cleanly, recover, and run the same edge
// storm against both the original and the recovered store. The walk engine
// draws nothing from the store but segment state, so the recovered run must
// match the original bitwise.
func TestPersistRoundTripThenApply(t *testing.T) {
	g := buildTestGraph(300, 4, 5)
	cfg := Config{Eps: 0.2, R: 8, Workers: 1, Seed: 42}

	dir := t.TempDir()
	pm, walks, _, err := persist.Open(persist.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(g, walks, cfg)
	eng.BuildStore(g.Nodes())
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	pm2, walks2, info, err := persist.Open(persist.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	if info.TornBytes != 0 {
		t.Fatalf("clean close left %d torn bytes", info.TornBytes)
	}
	if !reflect.DeepEqual(walks2.VisitCounts(), walks.VisitCounts()) {
		t.Fatal("recovered store's visit counts diverge before any update")
	}

	rng := rand.New(rand.NewPCG(12, 0))
	var edges []graph.Edge
	for len(edges) < 500 {
		u := graph.NodeID(rng.IntN(300))
		v := graph.NodeID(rng.IntN(300))
		if u != v {
			edges = append(edges, graph.Edge{From: u, To: v})
		}
	}
	eng.ApplyEdges(edges, 13)
	// ApplyEdges writes arrivals into its graph, so the recovered engine
	// needs its own (identically seeded) copy to see the same degrees.
	eng2 := New(buildTestGraph(300, 4, 5), walks2, cfg)
	eng2.ApplyEdges(edges, 13)

	if err := walks2.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(walks2.VisitCounts(), walks.VisitCounts()) {
		t.Fatal("storm over the recovered store diverges from the original")
	}
	if g1, g2c := walks.Epoch(), walks2.Epoch(); g1 != g2c {
		t.Fatalf("epochs diverge: %d vs %d", g1, g2c)
	}
}
