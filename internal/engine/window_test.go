package engine

import (
	"math/rand/v2"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

// TestApplyDeletionsMaintainsInvariants streams a churn sequence through the
// engine's deletion path: the store recount and the missing-edge-step
// invariant must hold, and the delete accounting must balance the store's
// visit totals.
func TestApplyDeletionsMaintainsInvariants(t *testing.T) {
	g := buildTestGraph(300, 4, 11)
	nodes := g.Nodes()
	store := walkstore.New()
	eng := New(g, store, Config{Eps: 0.2, R: 3, Workers: 4, Batch: 16, Seed: 12})
	eng.BuildStore(nodes)
	before := store.TotalVisits()

	// Delete a third of the edges, in a shuffled order.
	rng := rand.New(rand.NewPCG(13, 0))
	edges := gen.RandomPermutationStream(g, rng)
	dels := edges[:len(edges)/3]
	stats := eng.ApplyDeletions(dels, 14)

	if stats.Edges != len(dels) {
		t.Fatalf("applied %d deletions, want %d (misses=%d)", stats.Edges, len(dels), stats.Missed)
	}
	if stats.Rerouted+stats.Truncated == 0 {
		t.Fatal("deleting a third of the graph repaired nothing")
	}
	if err := store.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := store.ValidateSteps(g.HasEdge); err != nil {
		t.Fatal(err)
	}
	if got, want := store.TotalVisits(), before-stats.StepsOut+stats.StepsIn; got != want {
		t.Fatalf("TotalVisits=%d, accounting says %d", got, want)
	}
}

// TestApplyWindowHoldsExactlyTheWindow pins the sliding-window driver: after
// streaming m arrivals through a capacity-c window over an edgeless start,
// the graph holds exactly the last min(c, m) arrivals and the stored walks
// only traverse surviving edges.
func TestApplyWindowHoldsExactlyTheWindow(t *testing.T) {
	const n, m, capacity = 80, 600, 150
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	store := walkstore.New()
	eng := New(g, store, Config{Eps: 0.2, R: 3, Workers: 1, Seed: 21})
	eng.BuildStore(g.Nodes())

	rng := rand.New(rand.NewPCG(22, 0))
	stream := gen.DirichletStream(n, m, rng)
	stats := eng.ApplyWindow(stream, capacity, 23)

	if stats.Arrived != m {
		t.Fatalf("Arrived=%d want %d", stats.Arrived, m)
	}
	if stats.Expired != m-capacity {
		t.Fatalf("Expired=%d want %d", stats.Expired, m-capacity)
	}
	if got, want := stats.Turnover(), float64(m-capacity)/float64(m); got != want {
		t.Fatalf("Turnover=%v want %v", got, want)
	}
	if stats.Delete.Missed != 0 {
		t.Fatalf("window expiry missed %d edges it had inserted itself", stats.Delete.Missed)
	}
	if got := g.NumEdges(); got != capacity {
		t.Fatalf("graph holds %d edges, want the window's %d", got, capacity)
	}
	// The surviving edges are exactly the stream's suffix (as a multiset).
	want := map[graph.Edge]int{}
	for _, ed := range stream[m-capacity:] {
		want[ed]++
	}
	for ed, k := range want {
		if got := g.CountEdges(ed.From, ed.To); got != k {
			t.Fatalf("edge %v multiplicity %d, want %d", ed, got, k)
		}
	}
	if err := store.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := store.ValidateSteps(g.HasEdge); err != nil {
		t.Fatal(err)
	}
}

// TestApplyWindowNeverEvictsUnderCapacity checks the no-expiry regime: a
// stream shorter than the window deletes nothing.
func TestApplyWindowNeverEvictsUnderCapacity(t *testing.T) {
	const n = 40
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	store := walkstore.New()
	eng := New(g, store, Config{Eps: 0.25, R: 2, Workers: 1, Seed: 31})
	eng.BuildStore(g.Nodes())

	rng := rand.New(rand.NewPCG(32, 0))
	stream := gen.DirichletStream(n, 100, rng)
	stats := eng.ApplyWindow(stream, 500, 33)
	if stats.Expired != 0 || stats.Delete.Edges != 0 {
		t.Fatalf("under-capacity stream expired edges: %+v", stats)
	}
	if stats.Turnover() != 0 {
		t.Fatalf("Turnover=%v want 0", stats.Turnover())
	}
	if got := g.NumEdges(); got != 100 {
		t.Fatalf("graph holds %d edges, want all 100 streamed", got)
	}
}
