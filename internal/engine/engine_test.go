package engine

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

func buildTestGraph(n, d int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 0))
	return gen.PreferentialAttachment(n, d, rng)
}

func TestBuildStoreCounts(t *testing.T) {
	g := buildTestGraph(500, 4, 1)
	nodes := g.Nodes()
	const r = 3
	store := walkstore.New()
	eng := New(g, store, Config{Eps: 0.25, R: r, Workers: 4, Batch: 32, Seed: 7})
	steps := eng.BuildStore(nodes)
	if got, want := store.NumSegments(), len(nodes)*r; got != want {
		t.Fatalf("NumSegments=%d want %d", got, want)
	}
	if steps != store.TotalVisits() {
		t.Fatalf("reported steps=%d, store holds %d visits", steps, store.TotalVisits())
	}
	for _, v := range nodes {
		if got := len(store.OwnedBy(v)); got != r {
			t.Fatalf("node %d owns %d segments, want %d", v, got, r)
		}
		for _, id := range store.OwnedBy(v) {
			if p := store.Path(id); p[0] != v {
				t.Fatalf("segment %d owned by %d starts at %d", id, v, p[0])
			}
		}
	}
	if err := store.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildStoreSegmentLengths checks the parallel engine draws the same
// geometric length law as the sequential walker.
func TestBuildStoreSegmentLengths(t *testing.T) {
	// A cycle gives every node out-degree 1, so lengths are purely the
	// reset coin.
	g := graph.New(0)
	const n = 200
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	const eps = 0.2
	const r = 50
	store := walkstore.New()
	eng := New(g, store, Config{Eps: eps, R: r, Workers: 3, Seed: 3})
	steps := eng.BuildStore(g.Nodes())
	mean := float64(steps) / float64(n*r)
	if math.Abs(mean-1/eps) > 0.15 {
		t.Fatalf("mean segment length %.3f, want %.3f +- 0.15", mean, 1/eps)
	}
}

// TestBuildStoreDeterministicAcrossWorkerCounts pins the per-chunk RNG
// derivation: the same seed must generate the same walks (hence the same
// per-node visit counts) no matter how many workers run.
func TestBuildStoreDeterministicAcrossWorkerCounts(t *testing.T) {
	g := buildTestGraph(600, 3, 2)
	nodes := g.Nodes()
	run := func(workers int) map[graph.NodeID]int64 {
		store := walkstore.New()
		eng := New(g, store, Config{Eps: 0.2, R: 2, Workers: workers, Seed: 5})
		eng.BuildStore(nodes)
		return store.VisitCounts()
	}
	a, b, c := run(1), run(4), run(4)
	for v, x := range a {
		if b[v] != x || c[v] != x {
			t.Fatalf("visit counts diverge at node %d: w1=%d w4=%d w4'=%d", v, x, b[v], c[v])
		}
	}
	if len(b) != len(a) || len(c) != len(a) {
		t.Fatalf("visit table sizes diverge: %d vs %d vs %d", len(a), len(b), len(c))
	}
}

func TestApplyEdgesMaintainsInvariants(t *testing.T) {
	g := buildTestGraph(300, 4, 4)
	nodes := g.Nodes()
	store := walkstore.New()
	eng := New(g, store, Config{Eps: 0.2, R: 4, Workers: 4, Seed: 11})
	eng.BuildStore(nodes)
	before := store.NumSegments()

	rng := rand.New(rand.NewPCG(12, 0))
	var edges []graph.Edge
	for len(edges) < 500 {
		u := graph.NodeID(rng.IntN(300))
		v := graph.NodeID(rng.IntN(300))
		if u != v {
			edges = append(edges, graph.Edge{From: u, To: v})
		}
	}
	stats := eng.ApplyEdges(edges, 13)
	if stats.Edges != len(edges) {
		t.Fatalf("applied %d edges, want %d", stats.Edges, len(edges))
	}
	if stats.Rerouted == 0 {
		t.Fatal("500 arrivals on a 300-node graph rerouted nothing — update rule not firing")
	}
	if store.NumSegments() != before {
		t.Fatalf("segment count changed: %d -> %d", before, store.NumSegments())
	}
	if err := store.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every rerouted segment must still be a real walk: consecutive nodes
	// connected by edges.
	for _, v := range nodes {
		for _, id := range store.OwnedBy(v) {
			p := store.Path(id)
			for i := 1; i < len(p); i++ {
				if !g.HasEdge(p[i-1], p[i]) {
					t.Fatalf("segment %d contains non-edge %d->%d", id, p[i-1], p[i])
				}
			}
		}
	}
}

// TestConcurrentBuildAndUpdateStress races segment generation, edge updates,
// and store reads together; run under -race.
func TestConcurrentBuildAndUpdateStress(t *testing.T) {
	g := buildTestGraph(200, 3, 6)
	nodes := g.Nodes()
	store := walkstore.New()
	eng := New(g, store, Config{Eps: 0.25, R: 2, Workers: 2, Seed: 21})
	eng.BuildStore(nodes)

	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewPCG(31, 0))
		var edges []graph.Edge
		for len(edges) < 300 {
			u := graph.NodeID(rng.IntN(200))
			v := graph.NodeID(rng.IntN(200))
			if u != v {
				edges = append(edges, graph.Edge{From: u, To: v})
			}
		}
		eng.ApplyEdges(edges, 32)
	}()
	// Concurrent readers over the store while the storm runs.
	rng := rand.New(rand.NewPCG(33, 0))
	for i := 0; i < 2000; i++ {
		v := nodes[rng.IntN(len(nodes))]
		store.Visits(v)
		store.W(v)
		for _, id := range store.OwnedBy(v) {
			_ = store.Path(id)
		}
	}
	<-done
	if err := store.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFirstEdgeRevivesDanglingWalks pins the dangling-revival rule: when a
// node with stored terminal visits gains its first out-edge, about 1-eps of
// the walks that died there must continue through it.
func TestFirstEdgeRevivesDanglingWalks(t *testing.T) {
	// Star into a dangling sink: every walk from a spoke reaches node 0 and
	// dies there (node 0 has no out-edges).
	g := graph.New(0)
	const spokes = 200
	for i := 1; i <= spokes; i++ {
		g.AddEdge(graph.NodeID(i), 0)
	}
	const eps = 0.2
	store := walkstore.New()
	eng := New(g, store, Config{Eps: eps, R: 10, Workers: 2, Seed: 41})
	eng.BuildStore(g.Nodes())

	// Count stored walks whose final node is the sink.
	terminalAtSink := 0
	for _, id := range store.Visitors(0) {
		p := store.Path(id)
		if p[len(p)-1] == 0 {
			terminalAtSink++
		}
	}
	if terminalAtSink == 0 {
		t.Fatal("no walks terminate at the dangling sink; test setup broken")
	}

	// First out-edge of the sink arrives.
	stats := eng.ApplyEdges([]graph.Edge{{From: 0, To: 1}}, 42)
	if err := store.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expect ~ (1-eps) * terminalAtSink revivals; allow 5 sigma of a
	// binomial around it.
	want := (1 - eps) * float64(terminalAtSink)
	sigma := math.Sqrt(float64(terminalAtSink) * eps * (1 - eps))
	if math.Abs(float64(stats.Rerouted)-want) > 5*sigma+1 {
		t.Fatalf("rerouted %d walks, want ~%.0f (+-%.0f)", stats.Rerouted, want, 5*sigma)
	}
	// Revived walks must step through the new edge 0->1.
	for _, id := range store.Visitors(0) {
		p := store.Path(id)
		for i, v := range p[:len(p)-1] {
			if v == 0 && p[i+1] != 1 {
				t.Fatalf("segment %d leaves the sink via non-edge 0->%d", id, p[i+1])
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.New(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Eps=0")
		}
	}()
	New(g, walkstore.New(), Config{Eps: 0})
}
