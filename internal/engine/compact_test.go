package engine

import (
	"math/rand/v2"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

// TestApplyWindowCompactEveryBitwise pins the engine's compaction trigger:
// the serialized sliding-window driver with CompactEvery firing during the
// stream must produce bitwise-identical stats and store contents to the run
// that never compacts, and the compacting run's arena must end dense at the
// last trigger point modulo the tail of the stream.
func TestApplyWindowCompactEveryBitwise(t *testing.T) {
	const n, m, capacity = 60, 400, 120
	run := func(compactEvery int) (WindowStats, *walkstore.Store) {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		store := walkstore.New()
		eng := New(g, store, Config{Eps: 0.2, R: 3, Workers: 1, Seed: 41, CompactEvery: compactEvery})
		eng.BuildStore(g.Nodes())
		rng := rand.New(rand.NewPCG(42, 0))
		stream := gen.DirichletStream(n, m, rng)
		stats := eng.ApplyWindow(stream, capacity, 43)
		if err := store.Validate(); err != nil {
			t.Fatalf("CompactEvery=%d: %v", compactEvery, err)
		}
		if err := store.ValidateSteps(g.HasEdge); err != nil {
			t.Fatalf("CompactEvery=%d: %v", compactEvery, err)
		}
		return stats, store
	}

	stats0, store0 := run(0)
	statsC, storeC := run(5)
	if stats0 != statsC {
		t.Fatalf("window stats diverged:\noff %+v\non  %+v", stats0, statsC)
	}
	if e0, eC := store0.Epoch(), storeC.Epoch(); e0 != eC {
		t.Fatalf("store epochs diverged: %d vs %d", e0, eC)
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if a, b := store0.Visits(id), storeC.Visits(id); a != b {
			t.Fatalf("Visits(%d): %d vs %d", v, a, b)
		}
		if a, b := store0.Terminals(id), storeC.Terminals(id); a != b {
			t.Fatalf("Terminals(%d): %d vs %d", v, a, b)
		}
	}
	// Both stores hold the same segments (BuildStore assigns IDs
	// deterministically with the same inputs); their paths must match too.
	for v := 0; v < n; v++ {
		ids := store0.OwnedBy(graph.NodeID(v))
		idsC := storeC.OwnedBy(graph.NodeID(v))
		if len(ids) != len(idsC) {
			t.Fatalf("OwnedBy(%d): %v vs %v", v, ids, idsC)
		}
		for i, id := range ids {
			if id != idsC[i] {
				t.Fatalf("OwnedBy(%d)[%d]: %d vs %d", v, i, id, idsC[i])
			}
			p0 := store0.Path(id)
			pC := storeC.Path(id)
			if len(p0) != len(pC) {
				t.Fatalf("Path(%d) lengths: %d vs %d", id, len(p0), len(pC))
			}
			for j := range p0 {
				if p0[j] != pC[j] {
					t.Fatalf("Path(%d)[%d]: %d vs %d", id, j, p0[j], pC[j])
				}
			}
		}
	}
	// The compacting run actually reclaimed garbage: its arena must be no
	// larger than the non-compacting run's, and strictly smaller given the
	// churn a 3x-overcapacity stream generates.
	_, total0 := store0.ArenaStats()
	liveC, totalC := storeC.ArenaStats()
	if totalC >= total0 {
		t.Fatalf("compacting run's arena (%d) not smaller than baseline (%d)", totalC, total0)
	}
	if liveC > totalC {
		t.Fatalf("ArenaStats live=%d > total=%d", liveC, totalC)
	}
}
