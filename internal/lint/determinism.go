package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the bitwise-reproducibility contract: every fast path
// in the tree is proven equivalent to its oracle on fixed seeds, which only
// means anything if no wall-clock, global-RNG, or map-iteration
// nondeterminism can leak into the replayed sequences. In the deterministic
// packages (engine, pagerank, salsa, walkstore, gen) it forbids:
//
//   - time.Now / time.Since — wall-clock reads;
//   - the global math/rand and math/rand/v2 convenience functions (Intn,
//     Float64, Shuffle, …) — process-global RNG state; constructing local
//     sources (New, NewSource, NewPCG, NewZipf, NewChaCha8) stays legal;
//   - ranging over a map when the loop body draws from an RNG, emits a WAL
//     record, or appends to a batch declared outside the loop — Go's map
//     order would silently reorder coin flips, journal records, or batch
//     contents between runs (the exact bug class the seeded-shuffle fix in
//     gen.RandomPermutationStream patched by hand). Collect-then-sort
//     loops are legitimate and carry a //lint:allow determinism note.
//
// Test files are exempt: the fixed-seed suites own their determinism
// obligations explicitly.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock, global RNG, or order-sensitive map iteration in the deterministic packages",
	Run:  runDeterminism,
}

// deterministicPkgs names the packages under the bitwise-reproducibility
// contract, by package name.
var deterministicPkgs = map[string]bool{
	"engine":    true,
	"pagerank":  true,
	"salsa":     true,
	"walkstore": true,
	"gen":       true,
}

// randConstructors are the math/rand and math/rand/v2 package-level
// functions that build local sources rather than touching global state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewZipf": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s in deterministic package %s; wall-clock reads break fixed-seed reproducibility", fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() != nil {
			return // methods on *rand.Rand etc. are seeded locally
		}
		if randConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s in deterministic package %s; draw from a seeded local source instead", fn.Pkg().Name(), fn.Name(), pass.Pkg.Name())
	}
}

// calleeFunc resolves the called function/method object, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// checkMapRange flags `range m` over a map whose body feeds an RNG draw, a
// WAL record, or an out-of-loop append.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if why := orderSensitiveCall(pass, n); why != "" {
				pass.Reportf(rng.Pos(),
					"range over map feeds %s at line %d; map iteration order is random per run — iterate a sorted key slice instead", why, pass.Fset.Position(n.Pos()).Line)
				return false
			}
		case *ast.AssignStmt:
			if why := outOfLoopAppend(pass, rng, n); why != "" {
				pass.Reportf(rng.Pos(),
					"range over map appends to %s declared outside the loop; map iteration order is random per run — iterate a sorted key slice or sort afterwards", why)
				return false
			}
		}
		return true
	})
}

// orderSensitiveCall classifies a call inside a map-range body as an RNG
// draw or a WAL/mutation-log record, returning a description or "".
func orderSensitiveCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && (obj.Pkg().Path() == "math/rand" || obj.Pkg().Path() == "math/rand/v2") {
				return "an RNG draw (" + obj.Name() + "." + fn.Name() + ")"
			}
			if obj.Name() == "MutationLog" || strings.HasPrefix(fn.Name(), "Log") {
				return "a WAL record (" + obj.Name() + "." + fn.Name() + ")"
			}
		}
	}
	return ""
}

// outOfLoopAppend reports an `x = append(x, …)` whose target is declared
// outside the range statement, returning the target's name or "".
func outOfLoopAppend(pass *Pass, rng *ast.RangeStmt, a *ast.AssignStmt) string {
	for i, rhs := range a.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if b, ok := pass.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i >= len(a.Lhs) {
			continue
		}
		id, ok := a.Lhs[i].(*ast.Ident)
		if !ok {
			// appends through selectors/indexes (s.batch = append…) are
			// always out-of-loop state.
			if sel, isSel := a.Lhs[i].(*ast.SelectorExpr); isSel {
				return exprString(sel)
			}
			continue
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj == nil {
			continue
		}
		if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
			return id.Name
		}
	}
	return ""
}
