package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MutationLog checks the DESIGN.md §8 journal-ordering rule: every call on
// the walk store's MutationLog hook must fire inside the same segMu
// critical section as the mutation it records, so WAL order equals mutation
// order and each record's sequence number is the post-mutation epoch.
// Concretely, a call to a Log* method on a MutationLog-typed value must be
//
//   - dominated by a write acquisition of the segMu segment lock (an RLock
//     does not serialize the journal), with no release in between, and
//   - post-dominated by its release — a deferred Unlock registered under
//     the lock, or an explicit Unlock later in the function;
//
// unless the enclosing function declares the caller-holds contract: a name
// ending in "Locked", or a doc comment stating that the caller holds segMu.
// A *Locked function that also acquires segMu itself is flagged — that is
// either a self-deadlock or a misdeclared contract.
//
// The traversal is branch-sensitive: an if-arm that ends in panic or
// return (the unlock-before-panic idiom) does not leak its release into
// the fall-through path.
var MutationLog = &Analyzer{
	Name: "mutationlog",
	Doc:  "MutationLog hooks fire inside the segMu critical section of the mutation they record",
	Run:  runMutationLog,
}

var callerHoldsRe = regexp.MustCompile(`(?i)(caller|callers)[^.]*hold(s|ing)?[^.]*segMu|hold(s|ing)[^.]*segMu`)

func runMutationLog(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, doc *ast.CommentGroup, body *ast.BlockStmt) {
			checkMutationLogFunc(pass, name, doc, body)
		})
	}
	return nil
}

// mlogState is the lock state along one control-flow path.
type mlogState struct {
	wHeld   int
	rHeld   int
	inDefer bool // a deferred segMu.Unlock is registered
}

// mergeStates is the fall-through join: conservative on domination (a path
// without the lock must be reported) and on deferral.
func mergeStates(a, b mlogState) mlogState {
	return mlogState{
		wHeld:   min(a.wHeld, b.wHeld),
		rHeld:   min(a.rHeld, b.rHeld),
		inDefer: a.inDefer && b.inDefer,
	}
}

type mlogScan struct {
	pass     *Pass
	fname    string
	exempt   bool
	state    mlogState
	unlockAt []token.Pos // every explicit or deferred write release, any path
}

func checkMutationLogFunc(pass *Pass, name string, doc *ast.CommentGroup, body *ast.BlockStmt) {
	exempt := strings.HasSuffix(name, "Locked") ||
		(doc != nil && callerHoldsRe.MatchString(doc.Text()))
	s := &mlogScan{pass: pass, fname: name, exempt: exempt}
	if exempt {
		// The contract says segMu is already held on entry.
		s.state.wHeld = 1
		s.state.inDefer = true // released by the caller
	}
	// Pre-collect every write release so post-domination can ask "does any
	// release appear later in the source?".
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n.Pos() != body.Pos() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if kind, ok := segMuOp(pass, call); ok && kind == evUnlockW {
				s.unlockAt = append(s.unlockAt, call.Pos())
			}
		}
		return true
	})
	s.stmts(body.List)
}

func (s *mlogScan) stmts(list []ast.Stmt) bool {
	for _, st := range list {
		if s.stmt(st) {
			return true
		}
	}
	return false
}

func (s *mlogScan) stmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return s.stmts(st.List)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.scanExpr(st.Cond)
		pre := s.state
		thenTerm := s.stmts(st.Body.List)
		afterThen := s.state
		s.state = pre
		elseTerm := false
		if st.Else != nil {
			elseTerm = s.stmt(st.Else)
		}
		afterElse := s.state
		switch {
		case thenTerm && elseTerm:
			s.state = pre
			return st.Else != nil
		case thenTerm:
			s.state = afterElse
		case elseTerm:
			s.state = afterThen
		default:
			s.state = mergeStates(afterThen, afterElse)
		}
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.scanExpr(st.Cond)
		}
		s.stmts(st.Body.List)
		if st.Post != nil {
			s.stmt(st.Post)
		}
		return false
	case *ast.RangeStmt:
		s.scanExpr(st.X)
		s.stmts(st.Body.List)
		return false
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.scanExpr(st.Tag)
		}
		s.armsMerge(st.Body)
		return false
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.stmt(st.Assign)
		s.armsMerge(st.Body)
		return false
	case *ast.SelectStmt:
		s.armsMerge(st.Body)
		return false
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.scanExpr(e)
		}
		return true
	case *ast.BranchStmt:
		return st.Tok != token.FALLTHROUGH
	case *ast.DeferStmt:
		if kind, ok := segMuOp(s.pass, st.Call); ok && kind == evUnlockW {
			s.state.inDefer = true
		}
		return false
	case *ast.ExprStmt:
		s.scanExpr(st.X)
		return isPanicCall(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.scanExpr(e)
		}
		return false
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			s.scanExpr(a)
		}
		return false
	default:
		if st != nil {
			s.scanNode(st)
		}
		return false
	}
}

func (s *mlogScan) armsMerge(body *ast.BlockStmt) {
	pre := s.state
	merged := pre
	for _, c := range body.List {
		var exprs []ast.Expr
		var comm ast.Stmt
		var arm []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			exprs, arm = c.List, c.Body
		case *ast.CommClause:
			comm, arm = c.Comm, c.Body
		default:
			continue
		}
		s.state = pre
		for _, e := range exprs {
			s.scanExpr(e)
		}
		if comm != nil {
			s.stmt(comm)
		}
		if s.stmts(arm) {
			continue
		}
		merged = mergeStates(merged, s.state)
	}
	s.state = merged
}

func (s *mlogScan) scanExpr(e ast.Expr) { s.scanNode(e) }

func (s *mlogScan) scanNode(n ast.Node) {
	ast.Inspect(n, func(child ast.Node) bool {
		if _, isLit := child.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := child.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := segMuOp(s.pass, call); ok {
			s.applyOp(kind, call.Pos())
			return true
		}
		if name, ok := mutationLogCall(s.pass, call); ok {
			s.logCall(name, call.Pos())
		}
		return true
	})
}

func (s *mlogScan) applyOp(kind mlogEventKind, pos token.Pos) {
	switch kind {
	case evLockW:
		if s.exempt {
			s.pass.Reportf(pos,
				"%s declares the caller-holds-segMu contract but acquires segMu itself (self-deadlock)", s.fname)
		}
		s.state.wHeld++
	case evRLock:
		s.state.rHeld++
	case evUnlockW:
		if s.state.wHeld > 0 {
			s.state.wHeld--
		}
	case evRUnlock:
		if s.state.rHeld > 0 {
			s.state.rHeld--
		}
	}
}

func (s *mlogScan) logCall(name string, pos token.Pos) {
	switch {
	case s.state.wHeld == 0 && s.state.rHeld > 0:
		// The read lock admits concurrent loggers, so journal order is no
		// longer mutation order.
		s.pass.Reportf(pos,
			"%s fires under segMu.RLock; a read lock does not serialize the journal", name)
	case s.state.wHeld == 0:
		s.pass.Reportf(pos,
			"%s is not dominated by a segMu write acquisition; the §8 rule requires journal order == mutation order", name)
	case !s.state.inDefer && !s.unlockAfter(pos):
		s.pass.Reportf(pos,
			"%s is not post-dominated by a segMu release; unlock after logging (or defer the unlock)", name)
	}
}

func (s *mlogScan) unlockAfter(pos token.Pos) bool {
	for _, p := range s.unlockAt {
		if p > pos {
			return true
		}
	}
	return false
}

// mlogEventKind classifies segMu lock operations.
type mlogEventKind int

const (
	evLockW mlogEventKind = iota
	evRLock
	evUnlockW
	evRUnlock
)

// segMuOp classifies a call as a segMu lock operation. Only the walk
// store's segment lock shape counts: a sync.RWMutex field named segMu.
func segMuOp(pass *Pass, call *ast.CallExpr) (mlogEventKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	fieldSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	if classifySyncMutex(pass, fieldSel) != classStoreSeg {
		return 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return evLockW, true
	case "RLock":
		return evRLock, true
	case "Unlock":
		return evUnlockW, true
	case "RUnlock":
		return evRUnlock, true
	}
	return 0, false
}

// mutationLogCall reports whether call invokes a Log* method on a value
// whose static type is a named MutationLog interface, returning a display
// name.
func mutationLogCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Log") {
		return "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "MutationLog" {
		return "", false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return "", false
	}
	return "MutationLog." + sel.Sel.Name, true
}
