package lint

import (
	"bufio"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// DocAnchor is the documentation discipline as an analyzer, replacing the
// CI shell greps it grew out of: every internal package carries a doc.go
// anchoring it to docs/DESIGN.md, and every `DESIGN.md#anchor` reference in
// a doc.go must resolve to a real heading under GitHub's slug rules
// (lowercase, punctuation stripped, spaces to hyphens). Renaming a DESIGN.md
// section without updating the package docs is a vet failure, with the
// offending reference pinpointed to the comment line that holds it.
//
// DESIGN.md is resolved by walking up from the package directory to the
// nearest docs/DESIGN.md, so the fixture tree can carry its own.
var DocAnchor = &Analyzer{
	Name: "docanchor",
	Doc:  "internal packages carry a doc.go whose DESIGN.md anchors resolve to real headings",
	Run:  runDocAnchor,
}

var anchorRe = regexp.MustCompile(`DESIGN\.md#([A-Za-z0-9_-]+)`)

func runDocAnchor(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "/internal/") && !strings.HasPrefix(path, "internal/") {
		return nil
	}
	if strings.HasSuffix(pass.Pkg.Name(), "_test") || strings.HasSuffix(path, ".test") {
		return nil // external test packages and synthetic test mains ride on the base package's doc.go
	}

	var docFile *ast.File
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "doc.go" {
			docFile = f
			break
		}
	}
	if docFile == nil {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"internal package %s has no doc.go; every internal package documents the paper section it implements (docs/DESIGN.md)", path)
		}
		return nil
	}

	slugs, designPath, err := designSlugs(pass.Dir)
	if err != nil {
		pass.Reportf(docFile.Name.Pos(), "cannot resolve docs/DESIGN.md above %s: %v", pass.Dir, err)
		return nil
	}

	refs := 0
	for _, cg := range docFile.Comments {
		for _, c := range cg.List {
			for _, m := range anchorRe.FindAllStringSubmatchIndex(c.Text, -1) {
				refs++
				anchor := c.Text[m[2]:m[3]]
				if !slugs[anchor] {
					pass.Reportf(c.Pos()+token.Pos(m[0]),
						"doc.go references missing DESIGN.md anchor #%s (checked %s)", anchor, designPath)
				}
			}
		}
	}
	if refs == 0 {
		pass.Reportf(docFile.Name.Pos(),
			"doc.go references no docs/DESIGN.md section anchor; add a DESIGN.md#<slug> link to the section this package implements")
	}
	return nil
}

// designSlugs walks up from dir to the nearest docs/DESIGN.md and returns
// the GitHub slug set of its headings.
func designSlugs(dir string) (map[string]bool, string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return nil, "", err
	}
	for i := 0; i < 12; i++ {
		candidate := filepath.Join(d, "docs", "DESIGN.md")
		if _, err := os.Stat(candidate); err == nil {
			slugs, err := headingSlugs(candidate)
			return slugs, candidate, err
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	return nil, "", os.ErrNotExist
}

// headingSlugs extracts every markdown heading of file as a GitHub anchor
// slug: lowercase, characters outside [a-z0-9 -] stripped, spaces to
// hyphens. Duplicate headings get GitHub's -1, -2, … suffixes.
func headingSlugs(file string) (map[string]bool, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	slugs := make(map[string]bool)
	counts := make(map[string]int)
	sc := bufio.NewScanner(f)
	inFence := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		trimmed := line
		level := 0
		for level < len(trimmed) && trimmed[level] == '#' {
			level++
		}
		if level == 0 || level > 6 || level == len(trimmed) || trimmed[level] != ' ' {
			continue
		}
		slug := Slugify(trimmed[level+1:])
		if n := counts[slug]; n > 0 {
			slugs[slug+"-"+strconv.Itoa(n)] = true
		} else {
			slugs[slug] = true
		}
		counts[slug]++
	}
	return slugs, sc.Err()
}

// Slugify applies GitHub's heading-anchor rules to one heading text.
func Slugify(heading string) string {
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
