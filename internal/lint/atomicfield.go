package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity per struct field:
//
//   - A field whose address is ever passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, …), atomic.LoadUint64(&s.n), …) must be
//     accessed through sync/atomic everywhere in the package; a plain read
//     or write of such a field is a data race the race detector only finds
//     when the interleaving happens to bite.
//   - A field of typed-atomic type (atomic.Int64, atomic.Bool, …) may only
//     be used as a method-call receiver or have its address taken; reading
//     or assigning the value copies the atomic and tears the invariant.
//
// The analysis is per package: the tree keeps atomic fields unexported, so
// every access site is visible to one pass.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a field touched via sync/atomic anywhere must be touched atomically everywhere",
	Run:  runAtomicField,
}

// atomicFuncs are the sync/atomic package-level functions whose first
// argument is the address of the word they operate on.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicField(pass *Pass) error {
	// First pass: collect every field object whose address reaches a
	// sync/atomic call.
	atomicFields := make(map[*types.Var]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFuncCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if fld := addressedField(pass, arg); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call.Pos()
					}
				}
			}
			return true
		})
	}

	// Second pass: flag plain accesses of collected fields, and value
	// copies of typed atomics.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := selectedField(pass, sel)
			if fld == nil {
				return true
			}
			parent := ast.Node(nil)
			if len(stack) >= 2 {
				parent = stack[len(stack)-2]
			}
			if _, isAtomic := atomicFields[fld]; isAtomic {
				if !isAtomicContext(pass, stack) {
					pass.Reportf(sel.Pos(),
						"plain access of field %s, which is accessed via sync/atomic elsewhere in the package; use sync/atomic everywhere", fld.Name())
				}
				return true
			}
			if isTypedAtomic(fld.Type()) && !isTypedAtomicUse(parent, sel) {
				pass.Reportf(sel.Pos(),
					"field %s has atomic type %s but is used as a value; call its methods (or take its address) instead of copying it", fld.Name(), typeShort(fld.Type()))
			}
			return true
		})
	}
	return nil
}

// isAtomicFuncCall reports whether call invokes a sync/atomic word
// function.
func isAtomicFuncCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicFuncs[sel.Sel.Name] {
		return false
	}
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic"
}

// addressedField unwraps &x.f and returns f's field object, or nil.
func addressedField(pass *Pass, e ast.Expr) *types.Var {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := u.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(pass, sel)
}

// selectedField resolves a selector to a struct field object declared in
// this package, or nil.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() || v.Pkg() != pass.Pkg {
		return nil
	}
	return v
}

// isAtomicContext reports whether the innermost selector on the stack sits
// under &x.f inside a sync/atomic call's argument list.
func isAtomicContext(pass *Pass, stack []ast.Node) bool {
	// stack = [... call, unary&, selector]
	if len(stack) < 3 {
		return false
	}
	u, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && isAtomicFuncCall(pass, call)
}

// isTypedAtomic reports whether t is one of sync/atomic's typed atomics.
func isTypedAtomic(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}

// isTypedAtomicUse reports whether parent uses the atomic-typed selector
// legally: as the receiver of a method call (s.n.Add(1) parses as a
// selector whose X is our selector) or with its address taken.
func isTypedAtomicUse(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// s.n.Load() — our selector is the X of a method selector.
		return p.X == sel
	case *ast.UnaryExpr:
		return p.Op == token.AND && p.X == sel
	}
	return false
}

func typeShort(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}
