package lint

// An analysistest-style fixture harness on the standard library. Fixture
// packages live under testdata/src/<importpath>; fixture-local imports
// (e.g. the mini "stripes" package) resolve there, everything else
// type-checks from $GOROOT/src via the source importer. Expected findings
// are comments carrying `want "<regex>"` markers on the diagnostic's line;
// every diagnostic must match a want and every want must be matched.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

type fixturePkg struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
	dir   string
}

type fixtureLoader struct {
	t    *testing.T
	fset *token.FileSet
	root string
	pkgs map[string]*fixturePkg
	std  types.Importer
}

func newFixtureLoader(t *testing.T) *fixtureLoader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	return &fixtureLoader{
		t:    t,
		fset: fset,
		root: root,
		pkgs: make(map[string]*fixturePkg),
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the fixture tree with a stdlib
// fallback, so fixtures can import both "stripes" and "sync".
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if fi, err := os.Stat(filepath.Join(l.root, path)); err == nil && fi.IsDir() {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return l.std.Import(path)
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{pkg: pkg, info: info, files: files, dir: dir}
	l.pkgs[path] = fp
	return fp, nil
}

// want is one expected-diagnostic marker.
type want struct {
	re      *regexp.Regexp
	line    int
	file    string
	matched bool
}

var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants extracts `want "regex"` markers. The marker may sit anywhere
// in a comment (doc comments double as fixture lines for docanchor); each
// quoted string after the marker is one expected diagnostic on that line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, `want "`)
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range quotedRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					raw, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{re: re, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}
	return wants
}

// runFixture analyzes one fixture package with the given analyzers and
// checks the diagnostics against its want markers.
func runFixture(t *testing.T, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	l := newFixtureLoader(t)
	fp, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags, err := RunPackage(l.fset, fp.files, fp.pkg, fp.info, fp.dir, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgPath, err)
	}
	wants := collectWants(t, l.fset, fp.files)
	t.Logf("%s: %d diagnostics, %d wants", pkgPath, len(diags), len(wants))
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestLockOrderFixture(t *testing.T)   { runFixture(t, "lockorderfix", LockOrder) }
func TestAtomicFieldFixture(t *testing.T) { runFixture(t, "atomicfix", AtomicField) }
func TestDeterminismFixture(t *testing.T) { runFixture(t, "determinism", Determinism) }
func TestMutationLogFixture(t *testing.T) { runFixture(t, "mutationlogfix", MutationLog) }
func TestAllowFixture(t *testing.T)       { runFixture(t, "allowfix", All()...) }

func TestDocAnchorFixtures(t *testing.T) {
	for _, pkg := range []string{
		"internal/docgood",
		"internal/docbad",
		"internal/docnone",
		"internal/docmissing",
	} {
		t.Run(filepath.Base(pkg), func(t *testing.T) { runFixture(t, pkg, DocAnchor) })
	}
}
