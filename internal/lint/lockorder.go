package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// LockOrder machine-checks the DESIGN.md §6 lock hierarchy inside each
// function body:
//
//   - Stripe mutexes (stripes.MutexSet) may be acquired raw only one stripe
//     at a time. Holding two raw stripes of one set, or extending a held set
//     with a raw Lock, bypasses the ordered acquisition that LockPair /
//     LockSet / LockKeys provide and is a deadlock waiting on a hash
//     collision.
//   - A raw stripe lock acquired inside a loop must be released inside that
//     loop iteration; accumulating stripes one per iteration is an unordered
//     multi-lock in disguise.
//   - Acquisitions of the named lock sets must go strictly downward through
//     the declared partial order (endpoint stripes → SegmentID stripes →
//     walk-store segment lock → counter stripes → graph shards). Same-level
//     nesting across distinct sets is flagged too: within a level, order is
//     only defined by an ordered-acquisition primitive.
//   - knownMu is taken while holding nothing else, and nothing tracked is
//     taken while holding it.
//
// The traversal is branch-sensitive (if/switch arms fork from the same
// pre-state and merge, terminating arms don't merge) and recognizes the
// ordered-pair idiom — `if i < j { a.Lock(); b.Lock() } else { b.Lock();
// a.Lock() }` — as a single ordered acquisition, so primitives like
// graph.lockPair and stripes.LockPair check clean by their own shape.
// Function literals are independent scopes. The model is still linear
// within an arm and deliberately conservative; a reviewed
// //lint:allow lockorder <reason> records the exceptions, of which
// Validate's freeze-everything pass is the canonical one.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "stripe locks acquired only via the ordered primitives, and named lock sets only in §6 order",
	Run:  runLockOrder,
}

// heldLock is one tracked acquisition still live in the scan.
type heldLock struct {
	class lockClass
	setID string
	raw   bool // a single raw stripe of a MutexSet (Lock(i) or Of(k).Lock())
	write bool
	pos   token.Pos
}

// lockEvent is the classified effect of one call expression.
type lockEvent struct {
	kind     int // 0 none, 1 acquire, 2 release
	lock     heldLock
	setID    string
	readOnly bool
}

const (
	evNone = iota
	evAcquire
	evRelease
)

type lockOrderScan struct {
	pass *Pass
	held []heldLock
	// ofLocals maps a local *sync.Mutex variable produced by
	// `lk := set.Of(key)` back to its originating set.
	ofLocals map[types.Object]ofLocal
}

type ofLocal struct {
	setID string
	class lockClass
}

func runLockOrder(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, doc *ast.CommentGroup, body *ast.BlockStmt) {
			s := &lockOrderScan{pass: pass, ofLocals: make(map[types.Object]ofLocal)}
			s.stmts(body.List)
		})
	}
	return nil
}

// stmts walks a statement list, returning whether it definitely transfers
// control away (return / panic / break / continue / goto).
func (s *lockOrderScan) stmts(list []ast.Stmt) bool {
	for _, st := range list {
		if s.stmt(st) {
			return true
		}
	}
	return false
}

func (s *lockOrderScan) stmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return s.stmts(st.List)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt)
	case *ast.IfStmt:
		return s.ifStmt(st)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.exprScan(st.Cond)
		}
		s.loopBody(st.Body, func() {
			if st.Post != nil {
				s.stmt(st.Post)
			}
		})
		return false
	case *ast.RangeStmt:
		s.exprScan(st.X)
		s.loopBody(st.Body, nil)
		return false
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.exprScan(st.Tag)
		}
		return s.caseArms(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.stmt(st.Assign)
		return s.caseArms(st.Body)
	case *ast.SelectStmt:
		return s.caseArms(st.Body)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.exprScan(e)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear arm.
		return st.Tok != token.FALLTHROUGH
	case *ast.DeferStmt:
		// A deferred release keeps the lock held for the rest of the scan,
		// which matches the §6 semantics: everything after runs under it.
		// Deferred acquisitions are nonsense we leave to review.
		return false
	case *ast.ExprStmt:
		if isPanicCall(st.X) {
			s.exprScan(st.X)
			return true
		}
		s.exprScan(st.X)
		return false
	case *ast.AssignStmt:
		s.trackOfAssign(st)
		for _, e := range st.Rhs {
			s.exprScan(e)
		}
		for _, e := range st.Lhs {
			s.exprScan(e)
		}
		return false
	case *ast.GoStmt:
		// The goroutine body is a separate scope (funcBodies visits it);
		// only the call's arguments run here.
		for _, a := range st.Call.Args {
			s.exprScan(a)
		}
		return false
	default:
		if st != nil {
			s.nodeScan(st)
		}
		return false
	}
}

// ifStmt forks the lock state per arm and merges the arms that fall
// through. The ordered-pair idiom is recognized first and applied as one
// grouped acquisition.
func (s *lockOrderScan) ifStmt(st *ast.IfStmt) bool {
	if st.Init != nil {
		s.stmt(st.Init)
	}
	s.exprScan(st.Cond)
	if s.orderedPairIdiom(st) {
		return false
	}
	pre := slices.Clone(s.held)
	thenTerm := s.stmts(st.Body.List)
	afterThen := s.held
	s.held = slices.Clone(pre)
	elseTerm := false
	if st.Else != nil {
		elseTerm = s.stmt(st.Else)
	}
	afterElse := s.held
	switch {
	case thenTerm && elseTerm:
		s.held = pre
		return st.Else != nil
	case thenTerm:
		s.held = afterElse
	case elseTerm:
		s.held = afterThen
	default:
		s.held = mergeHeld(afterThen, afterElse)
	}
	return false
}

// caseArms forks per clause from the same pre-state and merges the arms
// that fall through (plus the no-arm-matched state).
func (s *lockOrderScan) caseArms(body *ast.BlockStmt) bool {
	pre := slices.Clone(s.held)
	merged := slices.Clone(pre)
	allTerm := true
	hasArm := false
	for _, c := range body.List {
		var exprs []ast.Expr
		var comm ast.Stmt
		var arm []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			exprs, arm = c.List, c.Body
		case *ast.CommClause:
			comm, arm = c.Comm, c.Body
		default:
			continue
		}
		hasArm = true
		s.held = slices.Clone(pre)
		for _, e := range exprs {
			s.exprScan(e)
		}
		if comm != nil {
			s.stmt(comm)
		}
		if s.stmts(arm) {
			continue
		}
		allTerm = false
		merged = mergeHeld(merged, s.held)
	}
	s.held = merged
	return hasArm && allTerm && switchExhaustive(body)
}

// switchExhaustive is a conservative "has a default/else arm" check; only
// then can all-arms-terminate terminate the switch.
func switchExhaustive(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// loopBody walks a loop body once and flags raw stripe locks still held at
// the end of the iteration.
func (s *lockOrderScan) loopBody(body *ast.BlockStmt, post func()) {
	mark := len(s.held)
	s.stmts(body.List)
	if post != nil {
		post()
	}
	kept := s.held[:mark:mark]
	for _, h := range s.held[mark:] {
		if h.raw {
			s.pass.Reportf(h.pos,
				"raw stripe lock on %s acquired inside a loop and still held at loop end; freeze the whole set up front with LockSet/LockKeys", h.setID)
			continue
		}
		kept = append(kept, h)
	}
	s.held = kept
}

// mergeHeld unions two post-arm states by (class, setID).
func mergeHeld(a, b []heldLock) []heldLock {
	out := slices.Clone(a)
	for _, h := range b {
		found := false
		for _, g := range out {
			if g.class == h.class && g.setID == h.setID {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

// orderedPairIdiom recognizes
//
//	if i < j { a.Lock(); b.Lock() } else { b.Lock(); a.Lock() }
//
// (any comparison operator, both arms pure acquisition sequences over the
// same lock set in any order) and applies it as one grouped ordered
// acquisition.
func (s *lockOrderScan) orderedPairIdiom(st *ast.IfStmt) bool {
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	elseBlock, ok := st.Else.(*ast.BlockStmt)
	if !ok {
		return false
	}
	thenLocks, ok := pureAcquisitions(s, st.Body.List)
	if !ok || len(thenLocks) < 2 {
		return false
	}
	elseLocks, ok := pureAcquisitions(s, elseBlock.List)
	if !ok || len(elseLocks) != len(thenLocks) {
		return false
	}
	key := func(h heldLock) string { return h.setID }
	tk := make([]string, len(thenLocks))
	ek := make([]string, len(elseLocks))
	for i := range thenLocks {
		tk[i] = key(thenLocks[i])
		ek[i] = key(elseLocks[i])
	}
	slices.Sort(tk)
	slices.Sort(ek)
	if !slices.Equal(tk, ek) {
		return false
	}
	s.acquire(heldLock{
		class: thenLocks[0].class,
		setID: strings.Join(tk, "+"),
		raw:   false,
		write: true,
		pos:   st.Pos(),
	})
	return true
}

// pureAcquisitions classifies a statement list that consists solely of
// lock-acquisition calls, without applying them.
func pureAcquisitions(s *lockOrderScan, list []ast.Stmt) ([]heldLock, bool) {
	var locks []heldLock
	for _, st := range list {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			return nil, false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		ev := s.callEvent(call)
		if ev.kind != evAcquire {
			return nil, false
		}
		locks = append(locks, ev.lock)
	}
	return locks, true
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// exprScan applies lock events of every call nested in an expression,
// skipping function literals.
func (s *lockOrderScan) exprScan(e ast.Expr) { s.nodeScan(e) }

func (s *lockOrderScan) nodeScan(n ast.Node) {
	ast.Inspect(n, func(child ast.Node) bool {
		switch child := child.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			s.trackOfAssign(child)
		case *ast.CallExpr:
			s.applyCall(child)
		}
		return true
	})
}

// trackOfAssign records `lk := set.Of(key)` so later lk.Lock() calls are
// attributed to the set.
func (s *lockOrderScan) trackOfAssign(a *ast.AssignStmt) {
	if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Of" || !isMutexSetType(s.pass.Info.TypeOf(sel.X)) {
		return
	}
	id, ok := a.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := s.pass.Info.Defs[id]
	if obj == nil {
		obj = s.pass.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	s.ofLocals[obj] = ofLocal{setID: exprString(sel.X), class: s.classifySet(sel.X)}
}

// classifySet ranks a MutexSet expression: by field name when it is a
// field selector, SegmentID level otherwise.
func (s *lockOrderScan) classifySet(e ast.Expr) lockClass {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return classifyMutexSetField(sel.Sel.Name)
	}
	return classSegStripe
}

func (s *lockOrderScan) applyCall(call *ast.CallExpr) {
	switch ev := s.callEvent(call); ev.kind {
	case evAcquire:
		s.acquire(ev.lock)
	case evRelease:
		s.release(ev.setID, ev.readOnly)
	}
}

// callEvent classifies one call expression as a lock acquisition or
// release of a tracked lock, without mutating the scan state.
func (s *lockOrderScan) callEvent(call *ast.CallExpr) lockEvent {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}
	}
	method := sel.Sel.Name
	recv := sel.X

	// stripes.MutexSet primitives.
	if isMutexSetType(s.pass.Info.TypeOf(recv)) {
		setID := exprString(recv)
		class := s.classifySet(recv)
		switch method {
		case "Lock":
			return lockEvent{kind: evAcquire, lock: heldLock{class: class, setID: setID, raw: true, write: true, pos: call.Pos()}}
		case "LockPair", "LockSet", "LockKeys":
			return lockEvent{kind: evAcquire, lock: heldLock{class: class, setID: setID, write: true, pos: call.Pos()}}
		case "Unlock", "UnlockPair", "UnlockSet":
			return lockEvent{kind: evRelease, setID: setID}
		}
		return lockEvent{}
	}

	// `set.Of(k).Lock()` without the intermediate local.
	if inner, ok := recv.(*ast.CallExpr); ok && (method == "Lock" || method == "Unlock") {
		if isel, ok := inner.Fun.(*ast.SelectorExpr); ok && isel.Sel.Name == "Of" && isMutexSetType(s.pass.Info.TypeOf(isel.X)) {
			setID := exprString(isel.X)
			if method == "Lock" {
				return lockEvent{kind: evAcquire, lock: heldLock{class: s.classifySet(isel.X), setID: setID, raw: true, write: true, pos: call.Pos()}}
			}
			return lockEvent{kind: evRelease, setID: setID}
		}
	}

	// `lk.Lock()` where lk came from set.Of(key).
	if id, ok := recv.(*ast.Ident); ok {
		if obj := s.pass.Info.Uses[id]; obj != nil {
			if of, tracked := s.ofLocals[obj]; tracked {
				switch method {
				case "Lock":
					return lockEvent{kind: evAcquire, lock: heldLock{class: of.class, setID: of.setID, raw: true, write: true, pos: call.Pos()}}
				case "Unlock":
					return lockEvent{kind: evRelease, setID: of.setID}
				}
				return lockEvent{}
			}
		}
	}

	// Plain sync.Mutex / sync.RWMutex fields from the §6 table.
	fieldSel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}
	}
	class := classifySyncMutex(s.pass, fieldSel)
	if class == classNone {
		return lockEvent{}
	}
	setID := exprString(recv)
	switch method {
	case "Lock":
		return lockEvent{kind: evAcquire, lock: heldLock{class: class, setID: setID, write: true, pos: call.Pos()}}
	case "RLock":
		return lockEvent{kind: evAcquire, lock: heldLock{class: class, setID: setID, pos: call.Pos()}}
	case "Unlock":
		return lockEvent{kind: evRelease, setID: setID}
	case "RUnlock":
		return lockEvent{kind: evRelease, setID: setID, readOnly: true}
	}
	return lockEvent{}
}

func (s *lockOrderScan) acquire(nl heldLock) {
	for _, h := range s.held {
		switch {
		case h.setID == nl.setID && h.class == nl.class:
			if h.raw && nl.raw {
				s.pass.Reportf(nl.pos,
					"second raw stripe lock on %s while one is already held; acquire both via LockPair/LockSet/LockKeys", nl.setID)
			} else if h.raw || nl.raw {
				s.pass.Reportf(nl.pos,
					"raw stripe lock on %s extends a held multi-lock of the same set; fold the key into the LockSet/LockKeys acquisition", nl.setID)
			} else if h.write || nl.write {
				s.pass.Reportf(nl.pos, "%s acquired while already held (self-deadlock)", nl.setID)
			}
		case h.class == classKnown:
			s.pass.Reportf(nl.pos,
				"%s acquired while holding knownMu; §6 requires knownMu to be held alone", nl.setID)
		case nl.class == classKnown:
			s.pass.Reportf(nl.pos,
				"knownMu acquired while holding %s (%s); §6 requires knownMu to be held alone", h.setID, h.class)
		case h.class.level() > 0 && nl.class.level() > 0 && h.class.level() > nl.class.level():
			s.pass.Reportf(nl.pos,
				"acquires %s (%s) while holding %s (%s); §6 acquisitions go downward only", nl.setID, nl.class, h.setID, h.class)
		case h.class.level() > 0 && h.class == nl.class:
			s.pass.Reportf(nl.pos,
				"acquires %s while already holding %s — both %s; within-level multi-lock must go through an ordered primitive", nl.setID, h.setID, nl.class)
		}
	}
	s.held = append(s.held, nl)
}

// release drops the most recent matching acquisition. Unmatched releases
// are ignored: arms are walked independently, so an early-return unlock
// legitimately precedes the main-path unlock.
func (s *lockOrderScan) release(setID string, readOnly bool) {
	for i := len(s.held) - 1; i >= 0; i-- {
		h := s.held[i]
		if h.setID != setID {
			continue
		}
		if readOnly && h.write {
			continue
		}
		s.held = append(s.held[:i], s.held[i+1:]...)
		return
	}
}
