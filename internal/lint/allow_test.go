package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestAllowMalformed(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:allow
var a int

//lint:allow determinism
var b int

//lint:allow determinism collect-then-sort loop
var c int
`)
	allows, diags := collectAllows(fset, files, All())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "names no analyzer") {
		t.Errorf("bare annotation: got %q", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "has no reason") {
		t.Errorf("reasonless annotation: got %q", diags[1].Message)
	}
	// Only the well-formed annotation registers, covering its line and the
	// line below.
	if len(allows) != 2 {
		t.Fatalf("got %d suppression keys, want 2: %v", len(allows), allows)
	}
	for k := range allows {
		if k.analyzer != "determinism" {
			t.Errorf("suppression for %q, want determinism", k.analyzer)
		}
	}
}

func TestAllowDiagnosticsUnsuppressable(t *testing.T) {
	// An allow annotation cannot silence the diagnostic about itself being
	// malformed: filterAllowed runs before allow diagnostics are appended.
	fset, files := parseSrc(t, `package p

//lint:allow lockorder muting the line below
//lint:allow nosuchanalyzer whatever
var x int
`)
	_, diags := collectAllows(fset, files, All())
	filtered := filterAllowed(diags, map[allowKey]bool{})
	if len(filtered) != 1 || !strings.Contains(filtered[0].Message, "unknown analyzer") {
		t.Fatalf("got %v, want one unknown-analyzer diagnostic", filtered)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"12. Static analysis":      "12-static-analysis",
		"8. Durability & recovery": "8-durability--recovery",
		"Lock order":               "lock-order",
		"  Spaces  ":               "spaces",
		"CamelCase_and_under":      "camelcaseandunder",
	}
	for in, want := range cases {
		if got := Slugify(in); got != want {
			t.Errorf("Slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeadingSlugsRealDesign(t *testing.T) {
	// The production DESIGN.md must expose the anchors the tree's doc.go
	// files rely on, including the section this PR adds.
	slugs, err := headingSlugs(filepath.Join("..", "..", "docs", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"6-concurrency-model",
		"8-durability--recovery",
		"12-static-analysis",
		"lock-order",
	} {
		if !slugs[want] {
			t.Errorf("docs/DESIGN.md lacks anchor #%s", want)
		}
	}
}

func TestHeadingSlugsDuplicatesAndFences(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "D.md")
	md := "# Top\n\n### Notes\n\n### Notes\n\n```\n## fenced heading\n```\n"
	if err := os.WriteFile(path, []byte(md), 0o666); err != nil {
		t.Fatal(err)
	}
	slugs, err := headingSlugs(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"top", "notes", "notes-1"} {
		if !slugs[want] {
			t.Errorf("missing slug %q in %v", want, slugs)
		}
	}
	if slugs["fenced-heading"] {
		t.Error("fenced heading leaked into the slug set")
	}
}
