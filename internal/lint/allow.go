package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The allow annotation is the reviewed escape hatch for conservative
// analyzers:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory — an allow is a review artifact, not a mute button — and the
// analyzer name must exist, so a typo cannot silently disable a check.

const allowPrefix = "//lint:allow"

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows scans every comment in the package for allow annotations.
// It returns the set of (file, line, analyzer) suppressions — each
// annotation covers its own line and the line below — plus diagnostics for
// malformed annotations.
func collectAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (map[allowKey]bool, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := make(map[allowKey]bool)
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "allow",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "allow annotation names no analyzer")
					continue
				}
				name := fields[0]
				if !known[name] {
					bad(c.Pos(), "allow annotation names unknown analyzer %q", name)
					continue
				}
				if len(fields) < 2 {
					bad(c.Pos(), "allow annotation for %q has no reason; a reviewed justification is required", name)
					continue
				}
				p := fset.Position(c.Pos())
				allows[allowKey{p.Filename, p.Line, name}] = true
				allows[allowKey{p.Filename, p.Line + 1, name}] = true
			}
		}
	}
	return allows, diags
}

func filterAllowed(diags []Diagnostic, allows map[allowKey]bool) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
