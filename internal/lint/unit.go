package lint

// The `go vet -vettool` unit protocol, implemented directly on the standard
// library (the x/tools unitchecker is not a dependency of this module).
// cmd/go drives a vettool like this:
//
//	walklint -V=full          # version fingerprint for the build cache
//	walklint -flags           # JSON description of supported flags
//	walklint <dir>/vet.cfg    # analyze one package unit
//
// The cfg file is JSON describing one type-checking unit: source files,
// the import map, and the export-data file of every dependency. We
// type-check with go/importer's gc importer reading that export data, run
// the suite, write the (empty — the suite is factless) .vetx output the
// build cache expects, and report diagnostics on stderr, exiting 2 when
// there are findings, exactly as the x/tools unitchecker does.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// unitConfig mirrors the JSON shape cmd/go writes for vet tools.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is cmd/walklint's entry point. Exits 0 on a clean run, 1 on driver
// errors, 2 when the suite has findings.
func Main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			printVersion()
			return
		case args[0] == "-flags":
			// No analyzer flags: everything is declared in source
			// (//lint:allow) so a run's meaning never depends on invocation.
			fmt.Println("[]")
			return
		case args[0] == "-version":
			fmt.Println(Version)
			return
		}
	}
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintf(os.Stderr, "usage: walklint [-V=full | -flags | -version | <unit>.cfg]\n")
		fmt.Fprintf(os.Stderr, "run it via: go vet -vettool=$(command -v walklint) ./...\n")
		os.Exit(1)
	}
	diags, err := runUnitFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "walklint: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", relPos(d.Pos), d.Analyzer, d.Message)
		}
		os.Exit(2)
	}
}

// printVersion emits the fingerprint line cmd/go hashes into its build
// cache key: the executable's content hash plus the suite Version, so
// rebuilding walklint with changed analyzers invalidates cached vet
// results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(h, "%s", Version)
	fmt.Printf("%s version %s buildID=%x\n", name, Version, h.Sum(nil)[:16])
}

// runUnitFile analyzes one vet unit. Packages outside the current module
// (the standard library, eventual dependencies) are skipped — the suite
// encodes this repository's invariants.
func runUnitFile(cfgPath string) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// The build cache expects a facts file for every unit, including the
	// ones we skip.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("walklint: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly || !inModule(&cfg) {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheckUnit(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}
	return RunPackage(fset, files, pkg, info, cfg.Dir, All())
}

func inModule(cfg *unitConfig) bool {
	if cfg.ModulePath == "" {
		return false
	}
	return cfg.ImportPath == cfg.ModulePath ||
		strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/") ||
		strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+".") // synthetic test mains: fastppr/….test
}

// typeCheckUnit type-checks the unit against the export data cmd/go
// already compiled for every dependency.
func typeCheckUnit(cfg *unitConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})
	tcfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, buildArch()),
	}
	if v := cfg.GoVersion; v != "" {
		tcfg.GoVersion = v
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// relPos renders a diagnostic position relative to the working directory
// when possible, matching go vet's own output style.
func relPos(p token.Position) string {
	wd, err := os.Getwd()
	if err != nil {
		return p.String()
	}
	rel, err := filepath.Rel(wd, p.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p.String()
	}
	q := p
	q.Filename = rel
	return q.String()
}
