// Package lint is the walklint analyzer suite: machine checks for the
// invariants the compiler cannot see — the DESIGN.md §6 lock order, the
// mixed-atomicity field rule, the fixed-seed determinism contract, the §8
// mutation-log critical-section rule, and the doc.go → DESIGN.md anchor
// discipline. See docs/DESIGN.md#12-static-analysis.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shapes (Analyzer, Pass, Diagnostic) so the suite can migrate onto the real
// driver wholesale if the dependency ever lands; until then the package is
// stdlib-only and cmd/walklint speaks `go vet -vettool`'s unit protocol
// directly (see unit.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Version names the analyzer-suite revision. It feeds the vettool's -V
// fingerprint and benchwalk's lint_clean provenance, so bump it whenever an
// analyzer's findings can change.
const Version = "walklint-1.0.0"

// An Analyzer is one named invariant check. The shape matches
// x/tools/go/analysis.Analyzer minus facts and requires.
type Analyzer struct {
	Name string // short lowercase identifier, used in //lint:allow
	Doc  string // one-line description of the invariant it encodes
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dir is the package's directory on disk — docanchor resolves
	// docs/DESIGN.md by walking up from here.
	Dir string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, carried with its resolved file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full walklint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		LockOrder,
		AtomicField,
		Determinism,
		MutationLog,
		DocAnchor,
	}
}

// ByName resolves one analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage runs the analyzers over one type-checked package, applies the
// //lint:allow annotation filter, and returns the surviving diagnostics
// sorted by position. Malformed allow annotations are themselves
// diagnostics (analyzer "allow") and cannot be suppressed.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Dir:      dir,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	allows, allowDiags := collectAllows(fset, files, analyzers)
	diags = filterAllowed(diags, allows)
	diags = append(diags, allowDiags...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
