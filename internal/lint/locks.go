package lint

// Shared lock-site classification for the lockorder and mutationlog
// analyzers. Classification is by *shape* — struct type name, field name,
// and mutex type — rather than by import path, so the analysistest fixtures
// can reproduce each idiom with small local packages and so the rules keep
// working if packages move. The shapes are exactly the named lock sets of
// docs/DESIGN.md#lock-order:
//
//	level 1  maintainer endpoint stripes   stripes.MutexSet fields srcMu / endMu
//	level 2  maintainer SegmentID stripes  stripes.MutexSet fields named segMu
//	         (and any other MutexSet — every remaining set in the tree is a
//	         SegmentID set handed around as a parameter)
//	level 3  walk-store segment lock       sync.RWMutex field segMu
//	level 4  walk-store counter stripes    field mu of struct counterStripe
//	level 5  graph shard locks             field mu of struct shard
//	known    the seed-a-new-node claim     any field knownMu — held alone
//
// Acquisitions must only ever go downward through the levels; knownMu is
// exclusive against every tracked lock in both directions.

import (
	"go/ast"
	"go/types"
)

type lockClass int

const (
	classNone lockClass = iota
	classEndpoint
	classSegStripe
	classStoreSeg
	classCounter
	classShard
	classKnown
)

// level returns the §6 rank, or 0 for unranked classes.
func (c lockClass) level() int {
	switch c {
	case classEndpoint:
		return 1
	case classSegStripe:
		return 2
	case classStoreSeg:
		return 3
	case classCounter:
		return 4
	case classShard:
		return 5
	}
	return 0
}

func (c lockClass) String() string {
	switch c {
	case classEndpoint:
		return "maintainer endpoint stripes (level 1)"
	case classSegStripe:
		return "maintainer SegmentID stripes (level 2)"
	case classStoreSeg:
		return "walk-store segment lock (level 3)"
	case classCounter:
		return "walk-store counter stripes (level 4)"
	case classShard:
		return "graph shard lock (level 5)"
	case classKnown:
		return "knownMu (exclusive)"
	}
	return "unranked lock"
}

// isMutexSetType reports whether t is (a pointer to) the stripes.MutexSet
// striping primitive: a named type MutexSet declared in a package named
// stripes.
func isMutexSetType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "MutexSet" && obj.Pkg() != nil && obj.Pkg().Name() == "stripes"
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (rw true for
// the latter).
func isSyncMutex(t types.Type) (ok, rw bool) {
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// fieldOwnerName returns the name of the named struct type that declares
// field v, or "".
func fieldOwnerName(pkg *types.Package, v *types.Var) string {
	if !v.IsField() {
		return ""
	}
	for _, scopeName := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(scopeName).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}

// classifyMutexSetField ranks a stripes.MutexSet by the field name it is
// stored under. Non-field MutexSet expressions (parameters, locals) default
// to the SegmentID level: every set handed around the tree by value is a
// SegmentID set.
func classifyMutexSetField(name string) lockClass {
	switch name {
	case "srcMu", "endMu":
		return classEndpoint
	}
	return classSegStripe
}

// classifySyncMutex ranks a plain sync mutex selector expression
// (e.g. s.segMu, st.mu, sh.mu, m.knownMu) per the shape table above.
func classifySyncMutex(pass *Pass, sel *ast.SelectorExpr) lockClass {
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok {
		return classNone
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return classNone
	}
	mok, rw := isSyncMutex(v.Type())
	if !mok {
		return classNone
	}
	switch v.Name() {
	case "knownMu":
		return classKnown
	case "segMu":
		if rw {
			return classStoreSeg
		}
	case "mu":
		switch fieldOwnerName(pass.Pkg, v) {
		case "counterStripe":
			return classCounter
		case "shard":
			return classShard
		}
	}
	return classNone
}

// exprString renders a lock expression compactly for set identity and
// messages (m.srcMu, s.stripes[i].mu, ...). It intentionally collapses
// distinct index expressions: two raw acquisitions through the same set
// expression are exactly the pattern lockorder exists to flag.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.UnaryExpr:
		return exprString(e.X)
	}
	return "lock"
}

// funcBodies yields every function body in the file in source order —
// declarations and function literals — each as an independent lock scope (a
// goroutine body must stand on its own). visit receives the body and, for
// declarations, the doc comment and name ("" for literals).
func funcBodies(f *ast.File, visit func(name string, doc *ast.CommentGroup, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Name.Name, n.Doc, n.Body)
			}
			return true
		case *ast.FuncLit:
			visit("", nil, n.Body)
			return true
		}
		return true
	})
}

// walkOrdered visits the nodes of body in source order, skipping nested
// function literals (they are separate lock scopes). enter is called on
// every node; leave is called with the same node after its children.
func walkOrdered(body *ast.BlockStmt, enter func(ast.Node), leave func(ast.Node)) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return
		}
		enter(n)
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil || child == n {
				return child == n
			}
			walk(child)
			return false
		})
		leave(n)
	}
	for _, stmt := range body.List {
		walk(stmt)
	}
}
