// Package stripes is the fixture mirror of the repository's striping
// primitive: same type name, same method set, trivial bodies. The lockorder
// analyzer classifies by shape (a type named MutexSet in a package named
// stripes), so this mini package exercises exactly the production rules.
package stripes

import "sync"

type MutexSet struct {
	mus []sync.Mutex
}

func New(n int) *MutexSet { return &MutexSet{mus: make([]sync.Mutex, n)} }

func (s *MutexSet) Index(key uint64) int { return int(key % uint64(len(s.mus))) }

func (s *MutexSet) Of(key uint64) *sync.Mutex { return &s.mus[s.Index(key)] }

func (s *MutexSet) Lock(i int) { s.mus[i].Lock() }

func (s *MutexSet) Unlock(i int) { s.mus[i].Unlock() }

func (s *MutexSet) LockPair(a, b uint64) (int, int) {
	i, j := s.Index(a), s.Index(b)
	if i > j {
		i, j = j, i
	}
	s.mus[i].Lock()
	if j != i {
		s.mus[j].Lock()
	}
	return i, j
}

func (s *MutexSet) UnlockPair(i, j int) {
	if j != i {
		s.mus[j].Unlock()
	}
	s.mus[i].Unlock()
}

func (s *MutexSet) LockSet(idx []int) {
	for _, i := range idx {
		s.mus[i].Lock()
	}
}

func (s *MutexSet) UnlockSet(idx []int) {
	for k := len(idx) - 1; k >= 0; k-- {
		s.mus[idx[k]].Unlock()
	}
}

func (s *MutexSet) CollectIndices(keys []uint64, buf []int) []int {
	buf = buf[:0]
	for _, k := range keys {
		buf = append(buf, s.Index(k))
	}
	return buf
}

func (s *MutexSet) LockKeys(keys []uint64, buf []int) []int {
	buf = s.CollectIndices(keys, buf)
	s.LockSet(buf)
	return buf
}
