// Package allowfix exercises the //lint:allow annotation mechanism under
// the full analyzer suite: a valid annotation suppresses its finding, an
// unknown analyzer name is itself an unsuppressable finding, and other
// //lint: directives are not ours to judge.
package allowfix

import "stripes"

type maintainer struct {
	segs stripes.MutexSet
}

func suppressed(m *maintainer, i, j int) {
	m.segs.Lock(i)
	//lint:allow lockorder reviewed fixture double-lock; exercises suppression
	m.segs.Lock(j)
	m.segs.Unlock(j)
	m.segs.Unlock(i)
}

func unknownName(m *maintainer, i int) {
	m.segs.Lock(i)
	//lint:allow lockordering typo'd analyzer name — want "unknown analyzer"
	m.segs.Unlock(i)
}

func notOurs(m *maintainer, i int) {
	//lint:allowance is a different directive and is ignored
	m.segs.Lock(i)
	m.segs.Unlock(i)
}
