// Package atomicfix exercises the atomicfield analyzer: all-or-nothing
// atomicity per field, and no value copies of typed atomics.
package atomicfix

import "sync/atomic"

type counters struct {
	visits int64        // accessed via atomic.AddInt64 below → atomic everywhere
	plain  int64        // never touched atomically → plain access is fine
	epoch  atomic.Int64 // typed atomic → methods or address only
}

func bump(c *counters) {
	atomic.AddInt64(&c.visits, 1)
	c.epoch.Add(1)
}

func readClean(c *counters) int64 {
	return atomic.LoadInt64(&c.visits) + c.epoch.Load()
}

func plainClean(c *counters) int64 {
	c.plain++
	return c.plain
}

func mixedRead(c *counters) int64 {
	return c.visits // want "plain access of field visits"
}

func mixedWrite(c *counters) {
	c.visits = 0 // want "plain access of field visits"
}

func copyTyped(c *counters) {
	v := c.epoch // want "field epoch has atomic type atomic.Int64 but is used as a value"
	_ = v
}

func addrTypedClean(c *counters) *atomic.Int64 {
	return &c.epoch
}

func allowedMix(c *counters) int64 {
	//lint:allow atomicfield constructor-only read before the struct is published
	return c.visits
}
