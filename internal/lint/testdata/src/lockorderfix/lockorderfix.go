// Package lockorderfix exercises the lockorder analyzer: the §6 named lock
// sets reproduced in miniature, with every violation class and the clean
// idioms that must not be flagged.
package lockorderfix

import (
	"sync"

	"stripes"
)

type maintainer struct {
	srcMu   stripes.MutexSet // level 1
	endMu   stripes.MutexSet // level 1
	segs    stripes.MutexSet // level 2
	knownMu sync.Mutex       // exclusive
}

type Store struct {
	segMu sync.RWMutex // level 3
}

type counterStripe struct {
	mu sync.Mutex // level 4
}

type shard struct {
	mu sync.RWMutex // level 5
}

// --- raw stripe misuse ---

func doubleRaw(m *maintainer, i, j int) {
	m.segs.Lock(i)
	m.segs.Lock(j) // want "second raw stripe lock on m.segs"
	m.segs.Unlock(j)
	m.segs.Unlock(i)
}

func rawExtendsSet(m *maintainer, keys []uint64, buf []int) {
	buf = m.segs.LockKeys(keys, buf)
	m.segs.Lock(0) // want "extends a held multi-lock"
	m.segs.Unlock(0)
	m.segs.UnlockSet(buf)
}

func ofLocalDouble(m *maintainer, a, b uint64) {
	la := m.srcMu.Of(a)
	lb := m.srcMu.Of(b)
	la.Lock()
	lb.Lock() // want "second raw stripe lock on m.srcMu"
	lb.Unlock()
	la.Unlock()
}

func inlineOfDouble(m *maintainer, a, b uint64) {
	m.srcMu.Of(a).Lock()
	m.srcMu.Of(b).Lock() // want "second raw stripe lock on m.srcMu"
	m.srcMu.Of(b).Unlock()
	m.srcMu.Of(a).Unlock()
}

func rawInLoop(m *maintainer, keys []uint64) {
	for _, k := range keys {
		m.segs.Lock(m.segs.Index(k)) // want "acquired inside a loop and still held at loop end"
	}
}

func rawInLoopReleased(m *maintainer, keys []uint64) {
	for _, k := range keys {
		i := m.segs.Index(k)
		m.segs.Lock(i)
		m.segs.Unlock(i)
	}
}

// --- ordered primitives are clean ---

func pairClean(m *maintainer, a, b uint64) {
	i, j := m.endMu.LockPair(a, b)
	m.endMu.UnlockPair(i, j)
}

func setClean(m *maintainer, keys []uint64, buf []int) {
	buf = m.segs.LockKeys(keys, buf)
	defer m.segs.UnlockSet(buf)
}

func singleRawClean(m *maintainer, i int) {
	m.segs.Lock(i)
	m.segs.Unlock(i)
}

// --- cross-level order ---

func downwardClean(m *maintainer, st *Store, cs *counterStripe, i int) {
	m.srcMu.Lock(i)
	st.segMu.Lock()
	cs.mu.Lock()
	cs.mu.Unlock()
	st.segMu.Unlock()
	m.srcMu.Unlock(i)
}

func upward(st *Store, cs *counterStripe) {
	cs.mu.Lock()
	st.segMu.Lock() // want "acquisitions go downward only"
	st.segMu.Unlock()
	cs.mu.Unlock()
}

func upwardStripe(m *maintainer, st *Store, i int) {
	st.segMu.Lock()
	m.srcMu.Lock(i) // want "acquisitions go downward only"
	m.srcMu.Unlock(i)
	st.segMu.Unlock()
}

func sameLevelCrossSet(m *maintainer, i, j int) {
	m.srcMu.Lock(i)
	m.endMu.Lock(j) // want "within-level multi-lock must go through an ordered primitive"
	m.endMu.Unlock(j)
	m.srcMu.Unlock(i)
}

func selfDeadlock(st *Store) {
	st.segMu.Lock()
	st.segMu.Lock() // want "self-deadlock"
	st.segMu.Unlock()
	st.segMu.Unlock()
}

// --- knownMu exclusivity ---

func knownThenOther(m *maintainer, st *Store) {
	m.knownMu.Lock()
	st.segMu.Lock() // want "while holding knownMu"
	st.segMu.Unlock()
	m.knownMu.Unlock()
}

func otherThenKnown(m *maintainer, st *Store) {
	st.segMu.Lock()
	m.knownMu.Lock() // want "knownMu acquired while holding"
	m.knownMu.Unlock()
	st.segMu.Unlock()
}

func knownAloneClean(m *maintainer) {
	m.knownMu.Lock()
	m.knownMu.Unlock()
}

// --- branch sensitivity ---

// lockPairShards is the graph.lockPair idiom: the two arms acquire the same
// pair in mirrored order, which is one ordered acquisition, not nesting.
func lockPairShards(a, b *shard, i, j int) {
	if i < j {
		a.mu.Lock()
		b.mu.Lock()
	} else {
		b.mu.Lock()
		a.mu.Lock()
	}
	b.mu.Unlock()
	a.mu.Unlock()
}

func unorderedShards(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want "within-level multi-lock must go through an ordered primitive"
	b.mu.Unlock()
	a.mu.Unlock()
}

// earlyReturnClean releases on the error path and the main path; the arms
// must not pollute each other.
func earlyReturnClean(st *Store, bad bool) {
	st.segMu.Lock()
	if bad {
		st.segMu.Unlock()
		return
	}
	st.segMu.Unlock()
}

// goroutineScopeClean: the literal is its own scope — its acquisition must
// not count as nesting under the caller's lock.
func goroutineScopeClean(st *Store, cs *counterStripe) {
	cs.mu.Lock()
	go func() {
		st.segMu.Lock()
		st.segMu.Unlock()
	}()
	cs.mu.Unlock()
}

// --- the reviewed escape hatch ---

func allowedDouble(m *maintainer, i, j int) {
	m.segs.Lock(i)
	//lint:allow lockorder fixture demonstrates a reviewed suppression
	m.segs.Lock(j)
	m.segs.Unlock(j)
	m.segs.Unlock(i)
}
