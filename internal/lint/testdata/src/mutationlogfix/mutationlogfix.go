// Package mutationlogfix exercises the mutationlog analyzer: the §8 rule
// that MutationLog hooks fire inside the segMu critical section of the
// mutation they record.
package mutationlogfix

import "sync"

type MutationLog interface {
	LogAdd(id uint64)
	LogRemove(id uint64)
}

type Store struct {
	segMu sync.RWMutex
	mlog  MutationLog
	n     int
}

func addClean(s *Store, id uint64) {
	s.segMu.Lock()
	s.n++
	if s.mlog != nil {
		s.mlog.LogAdd(id)
	}
	s.segMu.Unlock()
}

func addDeferClean(s *Store, id uint64) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	s.n++
	s.mlog.LogAdd(id)
}

// panicPathClean is the AddBatchSided shape: an unlock on a terminating
// branch must not count as releasing the lock on the fall-through path.
func panicPathClean(s *Store, id uint64, bad bool) {
	s.segMu.Lock()
	if bad {
		s.segMu.Unlock()
		panic("bad batch")
	}
	s.n++
	s.mlog.LogAdd(id)
	s.segMu.Unlock()
}

func earlyReturnClean(s *Store, id uint64, skip bool) {
	s.segMu.Lock()
	if skip {
		s.segMu.Unlock()
		return
	}
	s.mlog.LogAdd(id)
	s.segMu.Unlock()
}

func unlocked(s *Store, id uint64) {
	s.mlog.LogAdd(id) // want "not dominated by a segMu write acquisition"
}

func underRLock(s *Store, id uint64) {
	s.segMu.RLock()
	s.mlog.LogAdd(id) // want "fires under segMu.RLock"
	s.segMu.RUnlock()
}

func afterRelease(s *Store, id uint64) {
	s.segMu.Lock()
	s.n++
	s.segMu.Unlock()
	s.mlog.LogRemove(id) // want "not dominated by a segMu write acquisition"
}

// maybeUnlocked releases on a non-terminating branch, so the log call runs
// without the lock whenever cond held.
func maybeUnlocked(s *Store, id uint64, cond bool) {
	s.segMu.Lock()
	if cond {
		s.segMu.Unlock()
	}
	s.mlog.LogAdd(id) // want "not dominated by a segMu write acquisition"
	if !cond {
		s.segMu.Unlock()
	}
}

func neverReleased(s *Store, id uint64) {
	s.segMu.Lock()
	s.mlog.LogAdd(id) // want "not post-dominated by a segMu release"
}

// relocateLocked mirrors the walkstore convention: the Locked suffix is the
// caller-holds contract.
func relocateLocked(s *Store, id uint64) {
	s.n++
	s.mlog.LogRemove(id)
}

// applyTail appends the tail record. The caller is responsible for holding
// segMu for the whole batch.
func applyTail(s *Store, id uint64) {
	s.mlog.LogAdd(id)
}

// badLocked claims the contract and takes the lock anyway.
func badLocked(s *Store, id uint64) {
	s.segMu.Lock() // want "declares the caller-holds-segMu contract but acquires segMu itself"
	s.mlog.LogAdd(id)
	s.segMu.Unlock()
}

func allowedUnlocked(s *Store, id uint64) {
	//lint:allow mutationlog replay path; single-threaded by construction
	s.mlog.LogAdd(id)
}
