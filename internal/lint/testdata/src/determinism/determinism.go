// Package walkstore (fixture) exercises the determinism analyzer: the
// package is named into the deterministic set, so wall-clock reads, global
// RNG draws, and order-sensitive map ranges must be flagged here.
package walkstore

import (
	mrand "math/rand"
	randv2 "math/rand/v2"
	"sort"
	"time"
)

type wlog struct{}

func (*wlog) LogAdd(id uint64) {}

type MutationLog interface {
	LogAdd(id uint64)
}

func wallClock() int64 {
	t := time.Now() // want "time.Now in deterministic package walkstore"
	return t.UnixNano()
}

func wallClockSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package walkstore"
}

func globalRand() int {
	return mrand.Intn(10) // want "global rand.Intn in deterministic package walkstore"
}

func globalRandV2() uint64 {
	return randv2.Uint64() // want "global rand.Uint64 in deterministic package walkstore"
}

func seededClean(seed int64) int {
	r := mrand.New(mrand.NewSource(seed))
	return r.Intn(10)
}

func seededV2Clean(a, b uint64) uint64 {
	r := randv2.New(randv2.NewPCG(a, b))
	return r.Uint64()
}

func mapRangeRNG(m map[int]int, r *mrand.Rand) int {
	s := 0
	for k := range m { // want "range over map feeds an RNG draw"
		s += r.Intn(k + 1)
	}
	return s
}

func mapRangeWAL(m map[uint64]int, log *wlog) {
	for id := range m { // want "range over map feeds a WAL record"
		log.LogAdd(id)
	}
}

func mapRangeAppend(m map[int]int) []int {
	var out []int
	for k := range m { // want "range over map appends to out declared outside the loop"
		out = append(out, k)
	}
	return out
}

func mapRangeFieldAppend(m map[int]int, b *batch) {
	for k := range m { // want "range over map appends to b.ids declared outside the loop"
		b.ids = append(b.ids, k)
	}
}

type batch struct {
	ids []int
}

func sortedKeysClean(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	//lint:allow determinism key collection only; sorted below before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sliceRangeClean(xs []int, r *mrand.Rand) int {
	s := 0
	for range xs {
		s += r.Intn(7)
	}
	return s
}

func mapRangeHarmlessClean(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
