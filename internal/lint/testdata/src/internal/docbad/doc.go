// Package docbad is a fixture internal package with one resolving anchor,
// DESIGN.md#6-concurrency-model, and several that must be flagged:
// a renamed section DESIGN.md#7-the-pending-position-index, want "missing DESIGN.md anchor #7-the-pending-position-index"
// a fenced heading DESIGN.md#99-a-heading-inside-a-code-fence-must-not-become-an-anchor, want "missing DESIGN.md anchor #99-a"
// and an over-suffixed duplicate DESIGN.md#notes-2. want "missing DESIGN.md anchor #notes-2"
package docbad
