// Package docnone is a fixture internal package whose doc.go never links a
// design section at all.
package docnone // want "references no docs/DESIGN.md section anchor"
