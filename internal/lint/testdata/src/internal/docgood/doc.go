// Package docgood is a fixture internal package whose anchors all resolve:
// the lock discipline lives in DESIGN.md#6-concurrency-model (specifically
// DESIGN.md#lock-order), durability in DESIGN.md#8-durability--recovery,
// and the second notes section is DESIGN.md#notes-1.
package docgood
