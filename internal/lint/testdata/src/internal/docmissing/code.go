// Package docmissing is a fixture internal package with no doc.go file.
package docmissing // want "has no doc.go"

func identity(x int) int { return x }
