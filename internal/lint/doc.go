// Package lint machine-checks the repository's concurrency, determinism,
// and durability invariants: a suite of five analyzers built directly on
// go/ast and go/types (no golang.org/x/tools dependency), compiled into
// the cmd/walklint vettool and run as `go vet -vettool=walklint ./...`.
//
// The analyzers and the contracts they hold the code to:
//
//   - lockorder — the DESIGN.md#6-concurrency-model lock hierarchy: stripe
//     mutexes multi-acquired only via LockPair/LockSet/LockKeys, no
//     upward or same-level cross-set acquisitions.
//   - atomicfield — a field touched via sync/atomic anywhere is touched
//     atomically everywhere; typed atomics are never copied.
//   - determinism — no wall clock, global rand, or order-sensitive map
//     ranges in the replayable packages.
//   - mutationlog — DESIGN.md#8-durability--recovery journal ordering:
//     MutationLog hooks fire inside the segMu critical section of the
//     mutation they record.
//   - docanchor — every internal package has a doc.go whose DESIGN.md
//     anchors resolve to real headings.
//
// Reviewed exceptions are annotated in source as
// `//lint:allow <analyzer> <reason>`; the reason is mandatory. The full
// rules live in DESIGN.md#12-static-analysis.
package lint
