package walkstore

import (
	"math/rand/v2"
	"slices"
	"sync"
	"testing"

	"fastppr/internal/graph"
)

// This file proves the two batching-era primitives: ReplaceTailBatch must be
// byte-equal to the sequential per-mutation path (the maintainers' bitwise
// reproducibility rides on it), and Compact must reclaim arena garbage
// without perturbing any logical state.

// requireStoresEqual asserts two stores are logically identical over the
// given live segment IDs and node space: paths, sides, every counter family,
// every pending-position bucket, and the global epoch.
func requireStoresEqual(t *testing.T, a, b *Store, live []SegmentID, nodeSpace int) {
	t.Helper()
	if ae, be := a.Epoch(), b.Epoch(); ae != be {
		t.Fatalf("Epoch: %d vs %d", ae, be)
	}
	if an, bn := a.NumSegments(), b.NumSegments(); an != bn {
		t.Fatalf("NumSegments: %d vs %d", an, bn)
	}
	for _, id := range live {
		if ap, bp := a.Path(id), b.Path(id); !slices.Equal(ap, bp) {
			t.Fatalf("Path(%d): %v vs %v", id, ap, bp)
		}
		if as, bs := a.SideOf(id), b.SideOf(id); as != bs {
			t.Fatalf("SideOf(%d): %d vs %d", id, as, bs)
		}
	}
	sides := []Side{Unsided, SideForward, SideBackward}
	for v := 0; v < nodeSpace; v++ {
		n := graph.NodeID(v)
		if av, bv := a.Visits(n), b.Visits(n); av != bv {
			t.Fatalf("Visits(%d): %d vs %d", v, av, bv)
		}
		if aw, bw := a.W(n), b.W(n); aw != bw {
			t.Fatalf("W(%d): %d vs %d", v, aw, bw)
		}
		if at, bt := a.Terminals(n), b.Terminals(n); at != bt {
			t.Fatalf("Terminals(%d): %d vs %d", v, at, bt)
		}
		if ac, bc := a.Candidates(n), b.Candidates(n); ac != bc {
			t.Fatalf("Candidates(%d): %d vs %d", v, ac, bc)
		}
		for _, dir := range sides {
			ah := a.PendingPositions(n, dir)
			bh := b.PendingPositions(n, dir)
			if !slices.Equal(ah, bh) {
				t.Fatalf("PendingPositions(%d, %d): %v vs %v", v, dir, ah, bh)
			}
		}
	}
	for _, s := range []*Store{a, b} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplaceTailBatchMatchesSequential is the table-driven equivalence
// proof: for each case, two identically seeded stores receive the same
// mutation set — one through per-entry ReplaceTail calls in order, the other
// through a single ReplaceTailBatch — and must end byte-equal, with matching
// removed/added totals.
func TestReplaceTailBatchMatchesSequential(t *testing.T) {
	type tc struct {
		name  string
		seed  [][]graph.NodeID // initial paths; segment i gets side i%3-1 pattern below
		sides []Side
		muts  []TailMutation
	}
	mk := func(ids ...int64) []graph.NodeID { return path(ids...) }
	cases := []tc{
		{
			name:  "disjoint segments, mixed extend and truncate",
			seed:  [][]graph.NodeID{mk(1, 2, 3), mk(4, 5), mk(6, 7, 8, 9)},
			sides: []Side{Unsided, Unsided, Unsided},
			muts: []TailMutation{
				{ID: 0, Keep: 1, NewTail: mk(10, 11)},
				{ID: 1, Keep: 2, NewTail: mk(12)},
				{ID: 2, Keep: 2, NewTail: nil}, // pure truncation
			},
		},
		{
			name:  "sided segments cross stripes",
			seed:  [][]graph.NodeID{mk(0, 64, 128), mk(1, 65), mk(2, 66, 130)},
			sides: []Side{SideForward, SideBackward, SideForward},
			muts: []TailMutation{
				{ID: 0, Keep: 2, NewTail: mk(192, 3)},
				{ID: 1, Keep: 1, NewTail: mk(129, 193)},
				{ID: 2, Keep: 1, NewTail: nil},
			},
		},
		{
			name:  "noop entries interleaved",
			seed:  [][]graph.NodeID{mk(1, 2), mk(3, 4)},
			sides: []Side{Unsided, SideForward},
			muts: []TailMutation{
				{ID: 0, Keep: 2, NewTail: nil}, // no-op
				{ID: 1, Keep: 1, NewTail: mk(5, 6)},
				{ID: 1, Keep: 3, NewTail: nil}, // no-op against the new length
			},
		},
		{
			name:  "all noops",
			seed:  [][]graph.NodeID{mk(1, 2), mk(3)},
			sides: []Side{Unsided, Unsided},
			muts: []TailMutation{
				{ID: 0, Keep: 2, NewTail: nil},
				{ID: 1, Keep: 1, NewTail: nil},
			},
		},
		{
			name:  "same segment twice, later entry sees earlier effect",
			seed:  [][]graph.NodeID{mk(1, 2, 3)},
			sides: []Side{SideBackward},
			muts: []TailMutation{
				{ID: 0, Keep: 1, NewTail: mk(7, 8, 9, 10)},
				{ID: 0, Keep: 3, NewTail: mk(11)},
			},
		},
		{
			name:  "terminal moves within one node (revisit)",
			seed:  [][]graph.NodeID{mk(5, 6, 5)},
			sides: []Side{Unsided},
			muts: []TailMutation{
				{ID: 0, Keep: 2, NewTail: mk(5)}, // terminal node unchanged, position moves
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seq, bat := New(), New()
			var live []SegmentID
			for i, p := range c.seed {
				id := seq.AddSided(slices.Clone(p), c.sides[i])
				if got := bat.AddSided(slices.Clone(p), c.sides[i]); got != id {
					t.Fatalf("seed id mismatch: %d vs %d", got, id)
				}
				live = append(live, id)
			}
			var wantRm, wantAd int
			for _, m := range c.muts {
				rm, ad := seq.ReplaceTail(m.ID, m.Keep, m.NewTail)
				wantRm += rm
				wantAd += ad
			}
			gotRm, gotAd := bat.ReplaceTailBatch(c.muts)
			if gotRm != wantRm || gotAd != wantAd {
				t.Fatalf("batch removed/added = %d/%d, sequential = %d/%d", gotRm, gotAd, wantRm, wantAd)
			}
			requireStoresEqual(t, seq, bat, live, 256)
		})
	}
}

// TestReplaceTailBatchHubBoundary pushes one (node, dir) pending bucket
// across the hubThreshold map upgrade inside a single batch and checks the
// result against the sequential path — the transient bucket lengths during
// the grouped apply differ from the sequential ones, so the upgrade decision
// is the one place the two code paths could diverge.
func TestReplaceTailBatchHubBoundary(t *testing.T) {
	const hub = graph.NodeID(3)
	seq, bat := New(), New()
	var live []SegmentID
	var muts []TailMutation
	// Seed 2*hubThreshold forward-sided segments [x, i] that do not touch hub,
	// then batch-rewrite every tail to [hub] so each contributes one pending
	// entry at hub (position 1 of a forward segment is backward-pending — the
	// sides alternate): the bucket goes 0 -> 2*hubThreshold in one
	// ReplaceTailBatch call, crossing the upgrade boundary mid-apply.
	for i := 0; i < 2*hubThreshold; i++ {
		p := []graph.NodeID{graph.NodeID(100 + i), graph.NodeID(5000 + i)}
		id := seq.AddSided(slices.Clone(p), SideForward)
		bat.AddSided(slices.Clone(p), SideForward)
		live = append(live, id)
		muts = append(muts, TailMutation{ID: id, Keep: 1, NewTail: []graph.NodeID{hub}})
	}
	for _, m := range muts {
		seq.ReplaceTail(m.ID, m.Keep, m.NewTail)
	}
	bat.ReplaceTailBatch(muts)
	if px := &bat.stripe(hub).node(hub).pending[int(SideBackward)]; px.m == nil {
		t.Fatalf("batched bucket did not upgrade to map past %d entries", hubThreshold)
	}
	requireStoresEqual(t, seq, bat, live, 1)
	hits := bat.PendingPositions(hub, SideBackward)
	if len(hits) != 2*hubThreshold {
		t.Fatalf("hub bucket has %d hits, want %d", len(hits), 2*hubThreshold)
	}
	// And back down: batch-truncate all but one away, again in one call.
	muts = muts[:0]
	for _, id := range live[:2*hubThreshold-1] {
		muts = append(muts, TailMutation{ID: id, Keep: 1, NewTail: nil})
	}
	for _, m := range muts {
		seq.ReplaceTail(m.ID, m.Keep, m.NewTail)
	}
	bat.ReplaceTailBatch(muts)
	requireStoresEqual(t, seq, bat, live, 1)
}

// TestReplaceTailBatchPanics pins the bulk API's validation: a bad entry
// anywhere in the batch must panic like its sequential counterpart.
func TestReplaceTailBatchPanics(t *testing.T) {
	s := New()
	id := s.Add(path(1, 2))
	mustPanic(t, "batch keep=0", func() {
		s.ReplaceTailBatch([]TailMutation{{ID: id, Keep: 2}, {ID: id, Keep: 0}})
	})
}

// TestFuzzBatchAgainstSequential mirrors the index-vs-brute churn fuzz
// through the batch API: randomized clumps of tail mutations are applied
// sequentially to one store and as one batch to its twin, with every
// pending-position bucket cross-checked against the full-path enumeration
// and both stores validated as they drift through hub upgrades, removals,
// and periodic compactions.
func TestFuzzBatchAgainstSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 0))
	seq, bat := New(), New()
	var live []SegmentID
	const nodeSpace = 12 // tiny, so buckets cross hubThreshold
	randPath := func() []graph.NodeID {
		p := make([]graph.NodeID, 1+rng.IntN(6))
		for i := range p {
			p[i] = graph.NodeID(rng.IntN(nodeSpace))
		}
		return p
	}
	sides := []Side{Unsided, SideForward, SideBackward}
	rounds := 300
	if testing.Short() {
		rounds = 80
	}
	for round := 0; round < rounds; round++ {
		switch k := rng.IntN(10); {
		case k < 3 || len(live) == 0:
			p := randPath()
			side := sides[rng.IntN(3)]
			id := seq.AddSided(slices.Clone(p), side)
			bat.AddSided(slices.Clone(p), side)
			live = append(live, id)
		case k < 8:
			// A clump of 1..6 mutations over randomly chosen live segments,
			// duplicates allowed (later entries see earlier effects).
			muts := make([]TailMutation, 0, 6)
			lens := make(map[SegmentID]int)
			for c := 1 + rng.IntN(6); c > 0; c-- {
				id := live[rng.IntN(len(live))]
				n, ok := lens[id]
				if !ok {
					n = len(seq.Path(id))
				}
				keep := 1 + rng.IntN(n)
				var tail []graph.NodeID
				if rng.IntN(4) > 0 {
					tail = randPath()
				}
				lens[id] = keep + len(tail)
				muts = append(muts, TailMutation{ID: id, Keep: keep, NewTail: tail})
			}
			var wantRm, wantAd int
			for _, m := range muts {
				rm, ad := seq.ReplaceTail(m.ID, m.Keep, m.NewTail)
				wantRm += rm
				wantAd += ad
			}
			gotRm, gotAd := bat.ReplaceTailBatch(muts)
			if gotRm != wantRm || gotAd != wantAd {
				t.Fatalf("round %d: batch %d/%d vs sequential %d/%d", round, gotRm, gotAd, wantRm, wantAd)
			}
		case k < 9:
			i := rng.IntN(len(live))
			seq.Remove(live[i])
			bat.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			bat.Compact() // only the batch store compacts: state must not care
		}
		for v := 0; v < nodeSpace; v++ {
			for _, dir := range sides {
				got := bat.PendingPositions(graph.NodeID(v), dir)
				want := brutePending(bat, live, graph.NodeID(v), dir)
				if !slices.Equal(got, want) {
					t.Fatalf("round %d node %d dir %d:\ngot  %v\nwant %v", round, v, dir, got, want)
				}
			}
		}
		if round%50 == 0 {
			requireStoresEqual(t, seq, bat, live, nodeSpace)
		}
	}
	requireStoresEqual(t, seq, bat, live, nodeSpace)
}

// TestCompactReclaimsGarbage drives churn to pile up arena garbage, then
// pins Compact's contract: all garbage reclaimed (live == total after),
// every path byte-identical, previously returned Path slices untouched,
// Epoch and every StripeEpoch unmoved, Validate clean, and a second Compact
// is a no-op.
func TestCompactReclaimsGarbage(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 0))
	s := New()
	var live []SegmentID
	sides := []Side{Unsided, SideForward, SideBackward}
	for i := 0; i < 40; i++ {
		p := make([]graph.NodeID, 1+rng.IntN(8))
		for j := range p {
			p[j] = graph.NodeID(rng.IntN(50))
		}
		live = append(live, s.AddSided(p, sides[i%3]))
	}
	for op := 0; op < 400; op++ {
		id := live[rng.IntN(len(live))]
		n := len(s.Path(id))
		tail := make([]graph.NodeID, rng.IntN(5))
		for j := range tail {
			tail[j] = graph.NodeID(rng.IntN(50))
		}
		s.ReplaceTail(id, 1+rng.IntN(n), tail)
	}
	liveBefore, totalBefore := s.ArenaStats()
	if totalBefore <= liveBefore {
		t.Fatalf("churn left no garbage: live=%d total=%d", liveBefore, totalBefore)
	}
	epochBefore := s.Epoch()
	var stripeBefore [numStripes]int64
	for i := range stripeBefore {
		stripeBefore[i] = s.StripeEpoch(i)
	}
	snapPaths := make([][]graph.NodeID, len(live))
	snapCopies := make([][]graph.NodeID, len(live))
	for i, id := range live {
		snapPaths[i] = s.Path(id) // old-arena window, must stay intact
		snapCopies[i] = slices.Clone(snapPaths[i])
	}

	gotLive, reclaimed := s.Compact()
	if gotLive != liveBefore || reclaimed != totalBefore-liveBefore {
		t.Fatalf("Compact returned (%d, %d), want (%d, %d)", gotLive, reclaimed, liveBefore, totalBefore-liveBefore)
	}
	liveAfter, totalAfter := s.ArenaStats()
	if liveAfter != liveBefore || totalAfter != liveBefore {
		t.Fatalf("post-compact ArenaStats = (%d, %d), want (%d, %d)", liveAfter, totalAfter, liveBefore, liveBefore)
	}
	if s.Epoch() != epochBefore {
		t.Fatalf("Compact moved Epoch: %d -> %d", epochBefore, s.Epoch())
	}
	for i := range stripeBefore {
		if got := s.StripeEpoch(i); got != stripeBefore[i] {
			t.Fatalf("Compact moved StripeEpoch(%d): %d -> %d", i, stripeBefore[i], got)
		}
	}
	for i, id := range live {
		if got := s.Path(id); !slices.Equal(got, snapCopies[i]) {
			t.Fatalf("Path(%d) changed across Compact: %v want %v", id, got, snapCopies[i])
		}
		if !slices.Equal(snapPaths[i], snapCopies[i]) {
			t.Fatalf("pre-compact Path slice of %d mutated: %v want %v", id, snapPaths[i], snapCopies[i])
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if gotLive, reclaimed = s.Compact(); reclaimed != 0 {
		t.Fatalf("second Compact reclaimed %d from a dense arena", reclaimed)
	}
	// Churn keeps working on the fresh arena.
	s.ReplaceTail(live[0], 1, path(1, 2, 3))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMaybeCompactThreshold pins the garbage-ratio gate: MaybeCompact is a
// no-op on an empty or dense arena, declines while garbage stays below
// compactMinGarbageFrac, and compacts the first time the fraction crosses
// it — so periodic triggers can check cheaply without ever paying a
// full-arena copy for a near-dense store.
func TestMaybeCompactThreshold(t *testing.T) {
	s := New()
	if s.MaybeCompact() {
		t.Fatal("MaybeCompact compacted an empty store")
	}
	var segs []SegmentID
	for i := 0; i < 8; i++ {
		p := make([]graph.NodeID, 10)
		for j := range p {
			p[j] = graph.NodeID(i*10 + j)
		}
		segs = append(segs, s.Add(p))
	}
	if s.MaybeCompact() {
		t.Fatal("MaybeCompact compacted a dense arena")
	}
	if live, total := s.ArenaStats(); live != total {
		t.Fatalf("no-op MaybeCompact changed the arena: live=%d total=%d", live, total)
	}
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("churn never crossed the garbage threshold")
		}
		s.ReplaceTail(segs[i%len(segs)], 1, path(1, 2, 3))
		live, total := s.ArenaStats()
		frac := float64(total-live) / float64(total)
		if frac < compactMinGarbageFrac {
			if s.MaybeCompact() {
				t.Fatalf("MaybeCompact compacted at %.2f garbage, below the %.2f threshold", frac, compactMinGarbageFrac)
			}
			if _, after := s.ArenaStats(); after != total {
				t.Fatalf("declined MaybeCompact changed arena total: %d -> %d", total, after)
			}
			continue
		}
		if !s.MaybeCompact() {
			t.Fatalf("MaybeCompact declined at %.2f garbage, above the %.2f threshold", frac, compactMinGarbageFrac)
		}
		break
	}
	if live, total := s.ArenaStats(); live != total {
		t.Fatalf("post-compact arena not dense: live=%d total=%d", live, total)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCompactReadersAndBatchMutators is the -race stress for the
// compaction path: writers churn disjoint segment sets through
// ReplaceTailBatch, readers chase index hits into Path reads, and a
// compactor loops Compact the whole time — the exact overlap the
// maintainers' CompactEvery trigger produces against a parallel storm.
func TestConcurrentCompactReadersAndBatchMutators(t *testing.T) {
	const (
		writers   = 3
		nodeSpace = 64
	)
	iters := 300
	if testing.Short() {
		iters = 100
	}
	s := New()
	owned := make([][]SegmentID, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < 24; i++ {
			owned[w] = append(owned[w], s.AddSided(
				[]graph.NodeID{graph.NodeID(w*16 + i%16), graph.NodeID(i % nodeSpace), graph.NodeID(w)}, Side(i%2)))
		}
	}
	var writerWG sync.WaitGroup
	var auxWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 7))
			var muts []TailMutation
			for it := 0; it < iters; it++ {
				muts = muts[:0]
				for c := 1 + rng.IntN(4); c > 0; c-- {
					id := owned[w][rng.IntN(len(owned[w]))]
					tail := make([]graph.NodeID, rng.IntN(4))
					for j := range tail {
						tail[j] = graph.NodeID(rng.IntN(nodeSpace))
					}
					muts = append(muts, TailMutation{ID: id, Keep: 1, NewTail: tail})
				}
				s.ReplaceTailBatch(muts)
			}
		}(w)
	}
	auxWG.Add(1)
	go func() { // compactor
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Compact()
		}
	}()
	for r := 0; r < 2; r++ {
		auxWG.Add(1)
		go func(r int) { // readers
			defer auxWG.Done()
			rng := rand.New(rand.NewPCG(uint64(r), 8))
			var hits []PosHit
			var segs []SegmentID
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := graph.NodeID(rng.IntN(nodeSpace))
				dir := Side(rng.IntN(2))
				hits = s.AppendPendingPositions(hits[:0], v, dir)
				segs = DistinctSegments(segs, hits)
				for _, id := range segs {
					if len(s.Path(id)) == 0 {
						t.Error("empty path observed")
						return
					}
				}
			}
		}(r)
	}
	writerWG.Wait()
	close(stop)
	auxWG.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, total := s.ArenaStats(); total == 0 {
		t.Fatal("arena emptied by concurrent churn")
	}
}

// TestGroupByStripe pins the pre-grouping permutation the maintainers use:
// it must be a permutation, group equal stripes contiguously, and preserve
// the original order within each stripe (stability — the property that keeps
// Workers=1 pre-grouped runs deterministic).
func TestGroupByStripe(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 0))
	for trial := 0; trial < 20; trial++ {
		n := rng.IntN(200)
		nodes := make([]graph.NodeID, n)
		for i := range nodes {
			nodes[i] = graph.NodeID(rng.IntN(1000))
		}
		order := GroupByStripe(n, func(i int) graph.NodeID { return nodes[i] })
		if len(order) != n {
			t.Fatalf("trial %d: len=%d want %d", trial, len(order), n)
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("trial %d: not a permutation: %v", trial, order)
			}
			seen[i] = true
		}
		firstSeen := map[int]int{}
		lastStripe := -1
		for k, i := range order {
			st := stripeIndex(nodes[i])
			if st != lastStripe {
				if _, dup := firstSeen[st]; dup {
					t.Fatalf("trial %d: stripe %d not contiguous in %v", trial, st, order)
				}
				firstSeen[st] = k
				lastStripe = st
			}
			if k > firstSeen[st] {
				prev := order[k-1]
				if stripeIndex(nodes[prev]) == st && prev > i {
					t.Fatalf("trial %d: within-stripe order not stable at %d", trial, k)
				}
			}
		}
	}
}
