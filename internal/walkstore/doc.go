// Package walkstore implements the paper's "PageRank Store" (Section 2.2):
// the database of random walk segments kept alongside the social graph, and
// the counters that make both the incremental update rule and the estimate
// reads cheap.
//
// For every node the store holds the segments that node owns, and — the key
// to cheap incremental updates — an inverted visit index mapping each node v
// to the set of segments that pass through v, plus the counters the paper
// names explicitly:
//
//	X_v  — total number of visits to v across all stored segments, the
//	       numerator of the PageRank estimate  ~pi_v = eps * X_v / (nR)
//	       (the paper's Section 2.1 estimator). On graphs with dangling
//	       nodes, walks truncate early and the better-normalized estimator
//	       is X_v / TotalVisits (same shape, correct scale);
//	W(v) — number of distinct stored segments visiting v, used by the
//	       "call the PageRank Store with probability 1-(1-1/d)^W" fast path
//	       of the paper's Section 2.2 cost analysis.
//	T(v) — number of stored segments whose path *ends* at v (Terminals).
//	       Candidates(v) = X_v - T(v) counts the outgoing steps stored
//	       segments take from v, which is the exact exponent for the skip
//	       coin: an arriving edge (v, w) needs no rerouting with probability
//	       (1-1/d)^Candidates(v), so the incremental maintainer can skip the
//	       whole arrival on one counter read without fetching any path.
//
// Sided segments. SALSA (Sections 2.3 and 5) stores alternating walks; a
// segment can be tagged with the direction of its first step (AddSided).
// Because alternation is strict, the pending step direction of a visit is
// side XOR position parity, and the store maintains per-direction visit,
// terminal, and total counters: PendingVisits(v, Backward) is exactly the
// authority-side visit count of v, PendingCandidates the sided skip-coin
// exponent, PendingTerminals the revival candidates — the sided analogues
// of X_v, Candidates, and T(v).
//
// Storage layout. Segment paths live in one grow-only arena ([]graph.NodeID)
// addressed by (offset, length); mutation never writes inside the occupied
// prefix of the arena, so a path slice handed out by Path stays valid and
// immutable for the life of the store even across ReplaceTail (which writes
// the revised path at the arena tail and repoints the segment) — see
// docs/DESIGN.md#2-the-arena--copy-on-truncate-invariant. The visitor index
// keeps, per node, a small sorted (segment, multiplicity) slice and upgrades
// to a map only for high-degree hubs.
//
// Concurrency. All per-node state — counters, visitor sets, owner lists,
// sided tables — is sharded into hash-addressed lock stripes, so everything
// one node's skip coin reads is consistent under a single stripe lock while
// unrelated nodes mutate in parallel; the arena and segment table sit under
// a separate segment lock, global totals are atomic mirrors, and each
// stripe keeps its own share of every total, which Validate cross-checks
// against both the atomics and a recount from the stored paths. Reads are
// freely concurrent; mutations of distinct segments are concurrent-safe,
// mutations of the same segment must be serialized by the caller (the
// engine and both maintainers hold SegmentID stripe locks for exactly
// this). Epoch counts completed mutations — the version stamp the
// read-mostly query path brackets itself with. The full lock order and the
// snapshot-semantics argument live in docs/DESIGN.md#6-concurrency-model.
//
// The store is deliberately agnostic about what a segment means: it stores
// node paths. The PageRank maintainer stores reset walks; the SALSA
// maintainer stores alternating walks. An optional observer receives every
// visit mutation so callers can maintain further derived counters without a
// second index.
package walkstore
