// Package walkstore implements the paper's "PageRank Store" (Section 2.2):
// the database of random walk segments kept alongside the social graph, and
// the counters and indexes that make the incremental update rule, the
// estimate reads, and the repair scans cheap.
//
// For every node the store maintains one consolidated state record holding
// the counters the paper names explicitly:
//
//	X_v  — total number of visits to v across all stored segments, the
//	       numerator of the PageRank estimate  ~pi_v = eps * X_v / (nR)
//	       (the paper's Section 2.1 estimator). On graphs with dangling
//	       nodes, walks truncate early and the better-normalized estimator
//	       is X_v / TotalVisits (same shape, correct scale);
//	W(v) — number of distinct stored segments visiting v, used by the
//	       "call the PageRank Store with probability 1-(1-1/d)^W" fast path
//	       of the paper's Section 2.2 cost analysis;
//	T(v) — number of stored segments whose path *ends* at v (Terminals).
//	       Candidates(v) = X_v - T(v) counts the outgoing steps stored
//	       segments take from v, which is the exact exponent for the skip
//	       coin: an arriving edge (v, w) needs no rerouting with probability
//	       (1-1/d)^Candidates(v), so the incremental maintainer can skip the
//	       whole arrival on one counter read without fetching any path.
//
// Pending-position index. The counters say how many stored steps an arrival
// perturbs; the pending-position index says exactly which ones. Per (node,
// pending step direction) — plus one bucket for unsided segments — the
// store keeps the sorted (SegmentID, position) pairs of its stored visits
// (AppendPendingPositions), so a repair phase enumerates its candidates in
// O(hits) instead of walking every visitor's full path, in exactly the
// candidate order the pre-index scans used (ascending segment, then
// position — the order first-switch indices are drawn over). The buckets
// hold one entry per visit and double as the inverted visitor index
// (Visitors and W derive from them). Ordinary nodes keep a bucket as a
// pointer-free sorted slice of packed seg<<32|pos words; past hubThreshold
// entries it upgrades to a per-segment position map. See
// docs/DESIGN.md#7-the-pending-position-index for the full argument.
//
// Sided segments. SALSA (Sections 2.3 and 5) stores alternating walks; a
// segment can be tagged with the direction of its first step (AddSided).
// Because alternation is strict, the pending step direction of a visit is
// side XOR position parity, and the store maintains per-direction visit,
// terminal, and total counters: PendingVisits(v, Backward) is exactly the
// authority-side visit count of v, PendingCandidates the sided skip-coin
// exponent, PendingTerminals the revival candidates — the sided analogues
// of X_v, Candidates, and T(v) — with the sided index buckets enumerating
// each.
//
// Storage layout. Segment paths live in one grow-only arena ([]graph.NodeID)
// addressed by (offset, length); mutation never writes inside the occupied
// prefix of the arena, so a path slice handed out by Path stays valid and
// immutable for the life of the store even across ReplaceTail (which writes
// the revised path at the arena tail and repoints the segment) — see
// docs/DESIGN.md#2-the-arena--copy-on-truncate-invariant. Per-node state is
// addressed by dense slots (stripe = id&63, slot = id>>6, with a sparse-map
// fallback for IDs outside the dense range), so the hot counter touches are
// slice indexes, not hash lookups.
//
// Concurrency. All per-node state is sharded into numStripes lock stripes
// selected by the node ID's low bits, so everything one node's skip coin
// reads is consistent under a single stripe lock while unrelated nodes
// mutate in parallel; the arena and segment table sit under a separate
// segment lock, and each stripe keeps its own share of every total, which
// Validate cross-checks against the atomic global mirrors and a recount
// from the stored paths. Batch adds (AddBatch) and tail mutations
// (ReplaceTail/Remove) group their per-node updates by stripe, paying one
// lock acquisition per touched stripe and one atomic-total update per
// mutation. Reads are freely concurrent; mutations of distinct segments are
// concurrent-safe, mutations of the same segment must be serialized by the
// caller (the engine and both maintainers hold SegmentID stripe locks for
// exactly this). Epoch counts completed mutations — the version stamp the
// read-mostly query path brackets itself with — and every stripe carries
// its own StripeEpoch, bumped on each mutating acquisition of that
// stripe's lock, so the serving tier can key cached query results on
// exactly the stripes a query read (docs/DESIGN.md#9-the-serving-tier)
// instead of invalidating on every mutation anywhere; Validate
// cross-checks the per-stripe epochs against the global count of mutating
// stripe acquisitions.
//
// Validate requires a quiescent store and enforces that itself: it takes
// the segment lock plus every counter stripe and then checks the in-flight
// mutation count, failing with a wrapped ErrConcurrentMutation (test with
// errors.Is) when it caught a mutation between its arena phase and its
// counter updates — the one state a lock-holding validator cannot
// distinguish from corruption. Callers that cannot guarantee quiescence can
// additionally bracket the call with Epoch() reads. The full lock order and
// the snapshot-semantics argument live in
// docs/DESIGN.md#6-concurrency-model.
//
// The store is deliberately agnostic about what a segment means: it stores
// node paths. The PageRank maintainer stores reset walks; the SALSA
// maintainer stores alternating walks. An optional observer receives every
// visit mutation so callers can maintain further derived counters without a
// second index.
//
// Under churn (docs/DESIGN.md#10-deletions--windows) the same machinery
// runs in reverse: deletion repairs enumerate the stored steps through the
// removed edge from the pending-position buckets in O(hits), and
// ValidateSteps checks the edge-consistency invariant a shrink leaves
// behind — no stored step may traverse an edge missing from the graph,
// with backward (sided) steps checked against the transposed adjacency.
//
// Batching and compaction (docs/DESIGN.md#11-batching--compaction).
// ReplaceTailBatch applies a whole repair phase's tail mutations under one
// segment-lock acquisition — relocations in batch order (so replay order
// equals execution order and a batch may touch the same segment twice),
// then one stripe-sorted index pass — producing byte-identical index
// buckets, epochs, and WAL records to the per-call path; GroupByStripe is
// the stable counting sort the maintainers' parallel paths use to aim
// whole arrival slices at one stripe neighborhood. Compact rewrites the
// live segments into a fresh arena and repoints them in place, reclaiming
// ReplaceTail garbage (measured by ArenaStats) while bumping no epoch, no
// stripe stamp, and no mutation-log entry — previously handed-out Path
// slices keep reading the old arena, so the stability contract above is
// untouched and cached query results stay valid across a compaction.
// MaybeCompact wraps Compact behind a garbage-ratio gate — it only pays
// for the arena copy when at least a quarter of the slots are garbage —
// and is what the maintainers' periodic triggers call.
package walkstore
