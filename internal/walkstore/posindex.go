package walkstore

import (
	"cmp"
	"fmt"
	"slices"

	"fastppr/internal/graph"
)

// PosHit is one pending-position index entry: a stored segment and the path
// position at which it visits the indexed node. For a sided segment the entry
// lives in the bucket of the visit's pending step direction; unsided segments
// keep all their visit positions in one bucket. Hits sort by (Seg, Pos) —
// ascending segment ID, then ascending position — which is exactly the
// canonical candidate-enumeration order the maintainers' repair scans draw
// truncated-geometric first-switch indices over.
type PosHit struct {
	Seg SegmentID
	Pos int32
}

func comparePosHit(a, b PosHit) int {
	if c := cmp.Compare(a.Seg, b.Seg); c != 0 {
		return c
	}
	return cmp.Compare(a.Pos, b.Pos)
}

// pendingBuckets is the number of per-node position-index buckets: one per
// sided pending direction (indexed by Side) plus one for unsided segments.
const (
	unsidedBucket  = 2
	pendingBuckets = 3
)

// pendingBucket maps a visit's (segment side, path position) to its index
// bucket: the pending step direction for sided segments (side XOR position
// parity), the dedicated unsided bucket otherwise.
func pendingBucket(side Side, pos int) int {
	if side < 0 {
		return unsidedBucket
	}
	return int(side.PendingAt(pos))
}

// bucketOf maps the direction argument of the index read API to a bucket:
// SideForward/SideBackward address the sided pending-direction buckets,
// Unsided the unsided visit-position bucket.
func bucketOf(dir Side) int {
	if dir == Unsided {
		return unsidedBucket
	}
	mustDir(dir)
	return int(dir)
}

// packEntry encodes one index entry as seg<<32 | pos. Numeric order of the
// packed word is exactly (seg, pos) lexicographic order, so the list
// representation sorts, searches, and moves single machine words. Segment
// IDs are dense from 0 and positions are bounded by path length, so both
// comfortably fit 32 bits; the guard documents the limit rather than
// silently corrupting past it.
func packEntry(seg SegmentID, pos int32) uint64 {
	if uint64(seg) >= 1<<32 {
		panic(fmt.Sprintf("walkstore: segment %d overflows the packed position index", seg))
	}
	return uint64(seg)<<32 | uint64(uint32(pos))
}

func unpackEntry(e uint64) PosHit {
	return PosHit{Seg: SegmentID(e >> 32), Pos: int32(uint32(e))}
}

// posIndex is the pending-position set of one (node, bucket): the exact
// (segment, position) pairs where a stored visit to the node is pending a
// step in the bucket's direction. Ordinary nodes keep a sorted slice of
// packed seg<<32|pos words — pointer-free (the GC never scans it),
// append-dominated (fresh segments carry the largest IDs), one short
// memmove on a mid-list insert — and upgrade to a per-segment map once the
// entry count crosses hubThreshold, where the memmove would be tens of
// kilobytes per update. Exactly one representation is active at a time;
// there is no downgrade. The zero value is an empty index.
type posIndex struct {
	list []uint64              // packed entries, sorted; active while m == nil
	m    map[SegmentID][]int32 // hub mode: per-segment sorted position lists
	n    int                   // total entries across either representation
}

func (px *posIndex) add(seg SegmentID, pos int32) {
	px.n++
	if px.m != nil {
		ps := px.m[seg]
		// Fast path: a fresh segment's visits arrive in ascending position
		// order, so per-segment lists grow at the end.
		if len(ps) == 0 || ps[len(ps)-1] < pos {
			px.m[seg] = append(ps, pos)
			return
		}
		i, found := slices.BinarySearch(ps, pos)
		if found {
			panic(fmt.Sprintf("walkstore: duplicate pending position (%d,%d)", seg, pos))
		}
		px.m[seg] = slices.Insert(ps, i, pos)
		return
	}
	e := packEntry(seg, pos)
	// Fast path: fresh segments carry the largest ID yet, so bulk loads and
	// reroute tails append at the end of the sorted list.
	if n := len(px.list); n == 0 || px.list[n-1] < e {
		px.list = append(px.list, e)
	} else {
		i, found := slices.BinarySearch(px.list, e)
		if found {
			panic(fmt.Sprintf("walkstore: duplicate pending position (%d,%d)", seg, pos))
		}
		px.list = slices.Insert(px.list, i, e)
	}
	if len(px.list) > hubThreshold {
		px.m = make(map[SegmentID][]int32, 2*len(px.list))
		for _, e := range px.list {
			h := unpackEntry(e)
			px.m[h.Seg] = append(px.m[h.Seg], h.Pos)
		}
		px.list = nil
	}
}

// remove drops one entry.
func (px *posIndex) remove(seg SegmentID, pos int32) {
	if px.m != nil {
		ps := px.m[seg]
		if len(ps) == 1 && ps[0] == pos {
			delete(px.m, seg)
			px.n--
			return
		}
		// Fast path: ReplaceTail unwinds a tail from its end, so the removed
		// position is usually the segment's largest.
		if n := len(ps); n > 0 && ps[n-1] == pos {
			px.m[seg] = ps[:n-1]
			px.n--
			return
		}
		i, found := slices.BinarySearch(ps, pos)
		if !found {
			panic(fmt.Sprintf("walkstore: removing absent pending position (%d,%d)", seg, pos))
		}
		// len(ps) >= 2 here: a single-entry list was fully handled above.
		px.m[seg] = slices.Delete(ps, i, i+1)
		px.n--
		return
	}
	e := packEntry(seg, pos)
	// Fast path: ReplaceTail unwinds a tail from its end, so the removed
	// entry is often the list's last.
	if n := len(px.list); n > 0 && px.list[n-1] == e {
		px.list = px.list[:n-1]
		px.n--
		return
	}
	i, found := slices.BinarySearch(px.list, e)
	if !found {
		panic(fmt.Sprintf("walkstore: removing absent pending position (%d,%d)", seg, pos))
	}
	px.list = slices.Delete(px.list, i, i+1)
	px.n--
}

// appendTo appends every entry to dst in (seg, pos) order. The slice
// representation is already sorted; the map representation sorts its
// segment keys (cheap integer sort over distinct segments) and emits each
// segment's already-sorted position list.
func (px *posIndex) appendTo(dst []PosHit) []PosHit {
	if px.m == nil {
		for _, e := range px.list {
			dst = append(dst, unpackEntry(e))
		}
		return dst
	}
	segs := make([]SegmentID, 0, len(px.m))
	//lint:allow determinism key collection only; segs is sorted on the next line before any emission
	for seg := range px.m {
		segs = append(segs, seg)
	}
	slices.Sort(segs)
	for _, seg := range segs {
		for _, p := range px.m[seg] {
			dst = append(dst, PosHit{Seg: seg, Pos: p})
		}
	}
	return dst
}

// appendSegs appends the bucket's distinct segment IDs to dst, unordered
// (ascending in slice mode, map order in hub mode). Callers sort and
// deduplicate across buckets.
func (px *posIndex) appendSegs(dst []SegmentID) []SegmentID {
	if px.m != nil {
		//lint:allow determinism unordered by contract; every caller sorts and dedups dst across buckets
		for seg := range px.m {
			dst = append(dst, seg)
		}
		return dst
	}
	for _, e := range px.list {
		if seg := SegmentID(e >> 32); len(dst) == 0 || dst[len(dst)-1] != seg {
			dst = append(dst, seg)
		}
	}
	return dst
}

// AppendPendingPositions appends the pending-position entries of (v, dir) to
// dst (reset first) and returns it sorted by (segment, position). For
// dir == SideForward or SideBackward the entries are exactly the stored
// sided visits to v whose pending step has direction dir, terminal visits
// included — so non-terminal entries count PendingCandidates(v, dir) and the
// entry at a segment's last position is a PendingTerminals(v, dir) member.
// For dir == Unsided they are every visit position of unsided segments at v
// (the PageRank repair enumeration). The copy is taken under v's counter
// stripe lock. See docs/DESIGN.md#7-the-pending-position-index for how the
// maintainers freeze and consume this enumeration.
func (s *Store) AppendPendingPositions(dst []PosHit, v graph.NodeID, dir Side) []PosHit {
	b := bucketOf(dir)
	dst = dst[:0]
	st := s.stripe(v)
	st.mu.RLock()
	if ns := st.node(v); ns != nil {
		dst = ns.pending[b].appendTo(dst)
	}
	st.mu.RUnlock()
	return dst
}

// PendingPositions is AppendPendingPositions into a fresh slice.
func (s *Store) PendingPositions(v graph.NodeID, dir Side) []PosHit {
	return s.AppendPendingPositions(nil, v, dir)
}

// DistinctSegments appends the distinct segment IDs of hits — which must be
// sorted by (seg, pos), as AppendPendingPositions returns them — to dst
// (reset first), ascending. This is the segment set a repair phase freezes
// under its SegmentID stripe locks before consuming the hits.
func DistinctSegments(dst []SegmentID, hits []PosHit) []SegmentID {
	dst = dst[:0]
	for _, h := range hits {
		if len(dst) == 0 || dst[len(dst)-1] != h.Seg {
			dst = append(dst, h.Seg)
		}
	}
	return dst
}

// KeepSegments filters hits (sorted by segment) in place to the entries
// whose segment appears in segs (sorted ascending), returning the shortened
// slice. A repair phase applies it to the re-read index snapshot so the
// frozen enumeration never includes a segment it did not lock.
func KeepSegments(hits []PosHit, segs []SegmentID) []PosHit {
	out := hits[:0]
	j := 0
	for _, h := range hits {
		for j < len(segs) && segs[j] < h.Seg {
			j++
		}
		if j < len(segs) && segs[j] == h.Seg {
			out = append(out, h)
		}
	}
	return out
}
