package walkstore

import (
	"math/rand/v2"
	"slices"
	"testing"

	"fastppr/internal/graph"
)

func path(ids ...int64) []graph.NodeID {
	p := make([]graph.NodeID, len(ids))
	for i, x := range ids {
		p[i] = graph.NodeID(x)
	}
	return p
}

func TestAddReplaceRemove(t *testing.T) {
	s := New()
	a := s.Add(path(1, 2, 3, 2))
	b := s.Add(path(2, 3))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Visits(2); got != 3 {
		t.Fatalf("Visits(2)=%d want 3", got)
	}
	if got := s.W(2); got != 2 {
		t.Fatalf("W(2)=%d want 2", got)
	}
	if got := s.TotalVisits(); got != 6 {
		t.Fatalf("TotalVisits=%d want 6", got)
	}
	if got := s.OwnedBy(1); !slices.Equal(got, []SegmentID{a}) {
		t.Fatalf("OwnedBy(1)=%v want [%d]", got, a)
	}

	removed, added := s.ReplaceTail(a, 2, path(5, 6))
	if removed != 2 || added != 2 {
		t.Fatalf("ReplaceTail removed=%d added=%d want 2,2", removed, added)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Path(a); !slices.Equal(got, path(1, 2, 5, 6)) {
		t.Fatalf("Path(a)=%v want [1 2 5 6]", got)
	}
	// No-op replace.
	removed, added = s.ReplaceTail(a, 4, nil)
	if removed != 0 || added != 0 {
		t.Fatalf("no-op ReplaceTail did work: %d,%d", removed, added)
	}

	s.Remove(a)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.NumSegments(); got != 1 {
		t.Fatalf("NumSegments=%d want 1", got)
	}
	if got := s.Visitors(2); !slices.Equal(got, []SegmentID{b}) {
		t.Fatalf("Visitors(2)=%v want [%d]", got, b)
	}
	s.Remove(b)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalVisits(); got != 0 {
		t.Fatalf("TotalVisits=%d want 0 after removing everything", got)
	}
}

// TestPathStableAcrossReplaceTail pins the aliasing fix: a slice returned by
// Path must keep its contents after ReplaceTail rewrites the segment.
func TestPathStableAcrossReplaceTail(t *testing.T) {
	s := New()
	id := s.Add(path(10, 20, 30, 40))
	old := s.Path(id)
	snapshot := append([]graph.NodeID(nil), old...)

	// Truncate-and-extend, the exact shape that used to mutate old in place.
	s.ReplaceTail(id, 2, path(99, 98, 97))
	if !slices.Equal(old, snapshot) {
		t.Fatalf("old Path slice mutated by ReplaceTail: %v want %v", old, snapshot)
	}
	// Drive many more mutations to force arena regrowth; the old window
	// must still be intact.
	for i := 0; i < 1000; i++ {
		s.ReplaceTail(id, 1, path(int64(i), int64(i+1), int64(i+2)))
	}
	if !slices.Equal(old, snapshot) {
		t.Fatalf("old Path slice mutated after arena growth: %v want %v", old, snapshot)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPathCapClamped ensures a caller appending to a Path result cannot
// stomp arena bytes owned by another segment.
func TestPathCapClamped(t *testing.T) {
	s := New()
	a := s.Add(path(1, 2))
	b := s.Add(path(3, 4))
	pa := s.Path(a)
	_ = append(pa, 777) // must reallocate, not write into b's window
	if got := s.Path(b); !slices.Equal(got, path(3, 4)) {
		t.Fatalf("segment b corrupted by append to a's path: %v", got)
	}
}

// TestHubVisitorSet crosses the slice->map threshold and back down.
func TestHubVisitorSet(t *testing.T) {
	s := New()
	var ids []SegmentID
	for i := 0; i < 3*hubThreshold; i++ {
		ids = append(ids, s.Add(path(7, int64(1000+i))))
	}
	if got := s.W(7); got != 3*hubThreshold {
		t.Fatalf("W(7)=%d want %d", got, 3*hubThreshold)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:2*hubThreshold] {
		s.Remove(id)
	}
	if got := s.W(7); got != hubThreshold {
		t.Fatalf("W(7)=%d want %d", got, hubThreshold)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddBatch(t *testing.T) {
	s := New()
	ids := s.AddBatch([][]graph.NodeID{path(1, 2), path(2), path(3, 1, 2)})
	if len(ids) != 3 {
		t.Fatalf("AddBatch returned %d ids", len(ids))
	}
	if got := s.NumSegments(); got != 3 {
		t.Fatalf("NumSegments=%d want 3", got)
	}
	if got := s.Path(ids[2]); !slices.Equal(got, path(3, 1, 2)) {
		t.Fatalf("Path=%v want [3 1 2]", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestObserverSeesMutations(t *testing.T) {
	s := New()
	var events int
	net := map[graph.NodeID]int{}
	s.SetObserver(func(seg SegmentID, node graph.NodeID, pos int, delta int) {
		events++
		net[node] += delta
	})
	id := s.Add(path(1, 2, 3))
	s.ReplaceTail(id, 1, path(4))
	s.Remove(id)
	if events != 3+3+2 {
		t.Fatalf("observer saw %d events, want 8", events)
	}
	for v, n := range net {
		if n != 0 {
			t.Fatalf("net visit delta for node %d is %d, want 0", v, n)
		}
	}
}

// TestFuzzAgainstValidate drives randomized Add/ReplaceTail/Remove and
// checks every store invariant after each mutation — the acceptance
// criterion for the arena layout.
func TestFuzzAgainstValidate(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	s := New()
	var live []SegmentID
	randPath := func() []graph.NodeID {
		n := 1 + rng.IntN(6)
		p := make([]graph.NodeID, n)
		for i := range p {
			p[i] = graph.NodeID(rng.IntN(20)) // heavy ID reuse to stress visitor sets
		}
		return p
	}
	const ops = 2500
	for op := 0; op < ops; op++ {
		switch k := rng.IntN(10); {
		case k < 4 || len(live) == 0:
			live = append(live, s.Add(randPath()))
		case k < 8:
			i := rng.IntN(len(live))
			id := live[i]
			n := len(s.Path(id))
			keep := 1 + rng.IntN(n)
			var tail []graph.NodeID
			if rng.IntN(4) > 0 {
				tail = randPath()
			}
			s.ReplaceTail(id, keep, tail)
		default:
			i := rng.IntN(len(live))
			s.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
	liveNodes, total := s.ArenaStats()
	if liveNodes > total {
		t.Fatalf("ArenaStats live=%d > total=%d", liveNodes, total)
	}
}

func TestPanicsOnBadUse(t *testing.T) {
	s := New()
	id := s.Add(path(1, 2))
	s.Remove(id)
	mustPanic(t, "Path of removed segment", func() { s.Path(id) })
	mustPanic(t, "double Remove", func() { s.Remove(id) })
	mustPanic(t, "empty Add", func() { s.Add(nil) })
	id2 := s.Add(path(3))
	mustPanic(t, "ReplaceTail keep=0", func() { s.ReplaceTail(id2, 0, nil) })
	mustPanic(t, "ReplaceTail keep too large", func() { s.ReplaceTail(id2, 2, nil) })
	mustPanic(t, "SetObserver with live segments", func() { s.SetObserver(func(SegmentID, graph.NodeID, int, int) {}) })
	// Emptied via Remove, the store accepts a fresh observer (rebuild flow)
	// and it sees subsequent mutations.
	s.Remove(id2)
	seen := 0
	s.SetObserver(func(SegmentID, graph.NodeID, int, int) { seen++ })
	s.Add(path(4, 5))
	if seen != 2 {
		t.Fatalf("observer attached after rebuild saw %d events, want 2", seen)
	}
}

// TestTerminalsAndCandidates pins the T(v) counter and the derived
// candidate count X_v - T(v) that the incremental maintainer's skip coin
// exponentiates, across every mutation path.
func TestTerminalsAndCandidates(t *testing.T) {
	s := New()
	a := s.Add(path(1, 2, 3))
	b := s.Add(path(2, 3))
	c := s.Add(path(3))
	if got := s.Terminals(3); got != 3 {
		t.Fatalf("Terminals(3)=%d want 3", got)
	}
	if got := s.Candidates(3); got != 0 {
		t.Fatalf("Candidates(3)=%d want 0 (all visits terminal)", got)
	}
	if got := s.Candidates(2); got != 2 {
		t.Fatalf("Candidates(2)=%d want 2", got)
	}

	// ReplaceTail moves the terminal from 3 to 9.
	s.ReplaceTail(a, 2, path(9))
	if got := s.Terminals(3); got != 2 {
		t.Fatalf("Terminals(3)=%d want 2 after ReplaceTail", got)
	}
	if got := s.Terminals(9); got != 1 {
		t.Fatalf("Terminals(9)=%d want 1", got)
	}
	// Pure truncation: the kept prefix's last node becomes terminal.
	s.ReplaceTail(a, 1, nil)
	if got := s.Terminals(1); got != 1 {
		t.Fatalf("Terminals(1)=%d want 1 after truncation", got)
	}
	if got := s.Terminals(9); got != 0 {
		t.Fatalf("Terminals(9)=%d want 0 after truncation", got)
	}
	// A path revisiting its terminal node: 5 appears twice, once terminal.
	d := s.Add(path(5, 6, 5))
	if got, want := s.Visits(5), int64(2); got != want {
		t.Fatalf("Visits(5)=%d want %d", got, want)
	}
	if got := s.Terminals(5); got != 1 {
		t.Fatalf("Terminals(5)=%d want 1", got)
	}
	if got := s.Candidates(5); got != 1 {
		t.Fatalf("Candidates(5)=%d want 1", got)
	}

	s.Remove(b)
	s.Remove(c)
	s.Remove(d)
	if got := s.Terminals(3); got != 0 {
		t.Fatalf("Terminals(3)=%d want 0 after removals", got)
	}
	if got := s.Terminals(5); got != 0 {
		t.Fatalf("Terminals(5)=%d want 0 after removals", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVisitFraction(t *testing.T) {
	s := New()
	s.Add(path(1, 2, 2))
	s.Add(path(3))
	visits, total := s.VisitFraction(2)
	if visits != 2 || total != 4 {
		t.Fatalf("VisitFraction(2)=(%d,%d) want (2,4)", visits, total)
	}
	if visits, total = s.VisitFraction(99); visits != 0 || total != 4 {
		t.Fatalf("VisitFraction(99)=(%d,%d) want (0,4)", visits, total)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
