// Package walkstore implements the paper's "PageRank Store": the database
// of random walk segments kept alongside the social graph (Section 2.2).
//
// For every node the store holds the segments that node owns, and — the key
// to cheap incremental updates — an inverted visit index mapping each node v
// to the set of segments that pass through v, plus the counters the paper
// names explicitly:
//
//	X_v  — total number of visits to v across all stored segments, the
//	       numerator of the PageRank estimate  ~pi_v = eps * X_v / (nR).
//	       On graphs with dangling nodes, walks truncate early and the
//	       better-normalized estimator is X_v / TotalVisits (same shape,
//	       correct scale);
//	W(v) — number of distinct stored segments visiting v, used by the
//	       "call the PageRank Store with probability 1-(1-1/d)^W" fast path.
//	T(v) — number of stored segments whose path *ends* at v (Terminals).
//	       Candidates(v) = X_v - T(v) counts the outgoing steps stored
//	       segments take from v, which is the exact exponent for the skip
//	       coin: an arriving edge (v, w) needs no rerouting with probability
//	       (1-1/d)^Candidates(v), so the incremental maintainer can skip the
//	       whole arrival on one counter read without fetching any path.
//
// Storage layout. Segment paths live in one grow-only arena ([]graph.NodeID)
// addressed by (offset, length); mutation never writes inside the occupied
// prefix of the arena, so a path slice handed out by Path stays valid and
// immutable for the life of the store even across ReplaceTail (which writes
// the revised path at the arena tail and repoints the segment). The visitor
// index keeps, per node, a small sorted (segment, multiplicity) slice and
// upgrades to a map only for high-degree hubs, replacing the nested-map
// layout whose per-node allocation dominated the old hot path.
//
// The store is deliberately agnostic about what a segment means: it stores
// node paths. The PageRank maintainer stores reset walks; the SALSA
// maintainer stores alternating walks and keeps the per-segment direction
// bit itself. An optional observer receives every visit mutation so callers
// can maintain derived counters (SALSA's hub/authority tallies) without a
// second index.
package walkstore

import (
	"fmt"
	"slices"
	"sync"

	"fastppr/internal/graph"
)

// SegmentID identifies a stored segment. IDs are assigned densely from 0 and
// never reused.
type SegmentID int64

// Observer is notified of visit-count mutations: delta is +1 when a segment
// gains a visit to node at path position pos, -1 when it loses one.
type Observer func(seg SegmentID, node graph.NodeID, pos int, delta int)

// segRef addresses one segment's path inside the arena.
type segRef struct {
	off  int64
	n    int32
	live bool
}

// hubThreshold is the visitor-set size at which the sorted-slice
// representation upgrades to a map. Sorted slices win below it (no per-node
// map allocation, cache-friendly binary search); hubs visited by thousands
// of segments need O(1) updates.
const hubThreshold = 64

// visitorSet tracks the multiset of segments visiting one node: a sorted
// (ids, counts) pair for ordinary nodes, a map for hubs. Exactly one
// representation is active at a time.
type visitorSet struct {
	ids    []SegmentID
	counts []int32
	m      map[SegmentID]int32
}

func (vs *visitorSet) distinct() int {
	if vs.m != nil {
		return len(vs.m)
	}
	return len(vs.ids)
}

func (vs *visitorSet) count(id SegmentID) int32 {
	if vs.m != nil {
		return vs.m[id]
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if !found {
		return 0
	}
	return vs.counts[i]
}

func (vs *visitorSet) add(id SegmentID) {
	if vs.m != nil {
		vs.m[id]++
		return
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if found {
		vs.counts[i]++
		return
	}
	vs.ids = slices.Insert(vs.ids, i, id)
	vs.counts = slices.Insert(vs.counts, i, 1)
	if len(vs.ids) > hubThreshold {
		vs.m = make(map[SegmentID]int32, 2*len(vs.ids))
		for j, x := range vs.ids {
			vs.m[x] = vs.counts[j]
		}
		vs.ids, vs.counts = nil, nil
	}
}

// remove drops one multiplicity of id and reports whether the set is empty.
func (vs *visitorSet) remove(id SegmentID) (empty bool) {
	if vs.m != nil {
		c := vs.m[id]
		if c == 0 {
			panic(fmt.Sprintf("walkstore: removing absent visitor %d", id))
		}
		if c == 1 {
			delete(vs.m, id)
		} else {
			vs.m[id] = c - 1
		}
		return len(vs.m) == 0
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if !found {
		panic(fmt.Sprintf("walkstore: removing absent visitor %d", id))
	}
	vs.counts[i]--
	if vs.counts[i] == 0 {
		vs.ids = slices.Delete(vs.ids, i, i+1)
		vs.counts = slices.Delete(vs.counts, i, i+1)
	}
	return len(vs.ids) == 0
}

// each calls f for every (segment, multiplicity) pair. Order is ascending by
// ID in slice mode, unspecified in map mode.
func (vs *visitorSet) each(f func(SegmentID, int32)) {
	if vs.m != nil {
		for id, c := range vs.m {
			f(id, c)
		}
		return
	}
	for i, id := range vs.ids {
		f(id, vs.counts[i])
	}
}

// Store holds walk segments with an inverted visit index. All methods are
// safe for concurrent use.
type Store struct {
	mu          sync.RWMutex
	arena       []graph.NodeID
	segs        []segRef // indexed by SegmentID
	owned       map[graph.NodeID][]SegmentID
	visitors    map[graph.NodeID]*visitorSet
	visits      map[graph.NodeID]int64 // X_v
	terminals   map[graph.NodeID]int64 // T(v): live segments ending at v
	totalVisits int64
	liveNodes   int64 // arena slots referenced by live segments
	numLive     int
	observer    Observer
}

// New returns an empty store.
func New() *Store {
	return &Store{
		owned:     make(map[graph.NodeID][]SegmentID),
		visitors:  make(map[graph.NodeID]*visitorSet),
		visits:    make(map[graph.NodeID]int64),
		terminals: make(map[graph.NodeID]int64),
	}
}

// SetObserver installs an observer for visit mutations. Must be called
// while the store holds no live segments (fresh, or emptied for a rebuild);
// the observer then sees every mutation.
func (s *Store) SetObserver(o Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.numLive != 0 {
		panic("walkstore: SetObserver with live segments")
	}
	s.observer = o
}

// Add stores a new segment owned by its first node and returns its ID.
// The path must be non-empty. The path is copied; the caller keeps ownership
// of its slice.
func (s *Store) Add(path []graph.NodeID) SegmentID {
	if len(path) == 0 {
		panic("walkstore: empty segment path")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(path)
}

// AddBatch stores many segments under one lock acquisition — the bulk-load
// path the parallel walk engine uses to flush a burst of finished segments.
// Every path must be non-empty; paths are copied. The returned IDs are in
// input order.
func (s *Store) AddBatch(paths [][]graph.NodeID) []SegmentID {
	ids := make([]SegmentID, len(paths))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, p := range paths {
		if len(p) == 0 {
			panic("walkstore: empty segment path")
		}
		ids[i] = s.addLocked(p)
	}
	return ids
}

func (s *Store) addLocked(path []graph.NodeID) SegmentID {
	id := SegmentID(len(s.segs))
	off := int64(len(s.arena))
	s.arena = append(s.arena, path...)
	s.segs = append(s.segs, segRef{off: off, n: int32(len(path)), live: true})
	s.numLive++
	s.liveNodes += int64(len(path))
	src := path[0]
	s.owned[src] = append(s.owned[src], id)
	s.terminals[path[len(path)-1]]++
	for pos, v := range path {
		s.addVisitLocked(id, v, pos)
	}
	return id
}

// decTerminalLocked drops one terminal count of v, clearing empty entries.
func (s *Store) decTerminalLocked(v graph.NodeID) {
	s.terminals[v]--
	if s.terminals[v] == 0 {
		delete(s.terminals, v)
	}
}

// retargetTerminalLocked moves one terminal count from old to new.
func (s *Store) retargetTerminalLocked(oldEnd, newEnd graph.NodeID) {
	if oldEnd == newEnd {
		return
	}
	s.decTerminalLocked(oldEnd)
	s.terminals[newEnd]++
}

func (s *Store) addVisitLocked(id SegmentID, v graph.NodeID, pos int) {
	vs := s.visitors[v]
	if vs == nil {
		vs = &visitorSet{}
		s.visitors[v] = vs
	}
	vs.add(id)
	s.visits[v]++
	s.totalVisits++
	if s.observer != nil {
		s.observer(id, v, pos, +1)
	}
}

func (s *Store) removeVisitLocked(id SegmentID, v graph.NodeID, pos int) {
	vs := s.visitors[v]
	if vs == nil {
		panic(fmt.Sprintf("walkstore: removing absent visit of segment %d at node %d", id, v))
	}
	if vs.remove(id) {
		delete(s.visitors, v)
	}
	s.visits[v]--
	if s.visits[v] == 0 {
		delete(s.visits, v)
	}
	s.totalVisits--
	if s.observer != nil {
		s.observer(id, v, pos, -1)
	}
}

// refLocked returns the live segRef for id, panicking on unknown or removed
// segments.
func (s *Store) refLocked(id SegmentID) segRef {
	if id < 0 || int(id) >= len(s.segs) || !s.segs[id].live {
		panic(fmt.Sprintf("walkstore: unknown segment %d", id))
	}
	return s.segs[id]
}

// pathLocked returns the arena window of a live segment, capacity-clamped so
// callers cannot append into the arena.
func (s *Store) pathLocked(r segRef) []graph.NodeID {
	return s.arena[r.off : r.off+int64(r.n) : r.off+int64(r.n)]
}

// Path returns the segment's node path. The returned slice must not be
// modified, but it is stable: the arena is grow-only and ReplaceTail writes
// revised paths to fresh arena space, so the slice keeps its contents even
// after later mutations of the same segment.
func (s *Store) Path(id SegmentID) []graph.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pathLocked(s.refLocked(id))
}

// OwnedBy returns the IDs of segments whose walks start at u, in insertion
// order. The returned slice is a copy.
func (s *Store) OwnedBy(u graph.NodeID) []SegmentID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SegmentID(nil), s.owned[u]...)
}

// Visitors returns the IDs of segments that visit v. Order is unspecified.
func (s *Store) Visitors(v graph.NodeID) []SegmentID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.visitors[v]
	if vs == nil {
		return nil
	}
	ids := make([]SegmentID, 0, vs.distinct())
	vs.each(func(id SegmentID, _ int32) { ids = append(ids, id) })
	return ids
}

// W returns the number of distinct segments visiting v — the paper's W(v).
func (s *Store) W(v graph.NodeID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.visitors[v]
	if vs == nil {
		return 0
	}
	return vs.distinct()
}

// Visits returns X_v, the total visit count of v across stored segments.
func (s *Store) Visits(v graph.NodeID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.visits[v]
}

// Terminals returns T(v), the number of stored segments whose path ends at v.
func (s *Store) Terminals(v graph.NodeID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.terminals[v]
}

// Candidates returns X_v - T(v): the number of outgoing walk steps stored
// segments take from v. An edge arriving at source v perturbs the store with
// probability exactly 1-(1-1/d)^Candidates(v), the quantity behind the
// incremental maintainer's skip coin (the paper states the bound with W(v),
// which coincides when segments visit v at most once and never end there).
func (s *Store) Candidates(v graph.NodeID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.visits[v] - s.terminals[v]
}

// VisitFraction returns X_v together with the total visit count, read under
// one lock so the ratio is a consistent snapshot even while updates land.
func (s *Store) VisitFraction(v graph.NodeID) (visits, total int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.visits[v], s.totalVisits
}

// TotalVisits returns the sum of X_v over all nodes (= total stored steps).
func (s *Store) TotalVisits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalVisits
}

// VisitCounts returns a copy of the full X_v table.
func (s *Store) VisitCounts() map[graph.NodeID]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[graph.NodeID]int64, len(s.visits))
	for v, x := range s.visits {
		out[v] = x
	}
	return out
}

// NumSegments returns the number of stored (live) segments.
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.numLive
}

// ArenaStats reports the arena's live and total node slots. The difference
// is garbage left behind by ReplaceTail/Remove; a future compaction pass can
// reclaim it when the ratio degrades.
func (s *Store) ArenaStats() (live, total int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveNodes, int64(len(s.arena))
}

// ReplaceTail truncates the segment to its first keep nodes (keep >= 1) and
// appends newTail, updating the visit index. It returns the number of
// removed and added visits, which the maintainer accounts as update work.
// The revised path is written to fresh arena space, so slices previously
// returned by Path keep their old contents (copy-on-truncate).
func (s *Store) ReplaceTail(id SegmentID, keep int, newTail []graph.NodeID) (removed, added int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.refLocked(id)
	if keep < 1 || keep > int(r.n) {
		panic(fmt.Sprintf("walkstore: ReplaceTail keep=%d out of range for len=%d", keep, r.n))
	}
	if keep == int(r.n) && len(newTail) == 0 {
		return 0, 0
	}
	old := s.pathLocked(r)
	newEnd := old[keep-1]
	if len(newTail) > 0 {
		newEnd = newTail[len(newTail)-1]
	}
	s.retargetTerminalLocked(old[r.n-1], newEnd)
	for pos := int(r.n) - 1; pos >= keep; pos-- {
		s.removeVisitLocked(id, old[pos], pos)
		removed++
	}
	// Relocate: prefix copy plus the new tail at the arena's end. The old
	// window is never written again, keeping outstanding Path slices stable.
	off := int64(len(s.arena))
	s.arena = append(s.arena, old[:keep]...)
	s.arena = append(s.arena, newTail...)
	n := keep + len(newTail)
	s.segs[id] = segRef{off: off, n: int32(n), live: true}
	s.liveNodes += int64(n) - int64(r.n)
	for i, v := range newTail {
		s.addVisitLocked(id, v, keep+i)
		added++
	}
	return removed, added
}

// Remove deletes a segment entirely, unwinding its visits. Used when a node
// is retired or a maintainer is rebuilt. The ID is not reused.
func (s *Store) Remove(id SegmentID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.refLocked(id)
	p := s.pathLocked(r)
	s.decTerminalLocked(p[len(p)-1])
	for pos := len(p) - 1; pos >= 0; pos-- {
		s.removeVisitLocked(id, p[pos], pos)
	}
	src := p[0]
	ids := s.owned[src]
	for i, x := range ids {
		if x == id {
			s.owned[src] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(s.owned[src]) == 0 {
		delete(s.owned, src)
	}
	s.segs[id].live = false
	s.numLive--
	s.liveNodes -= int64(r.n)
}

// Validate checks the visit index, counters, and arena references against
// the stored paths. O(total path length); for tests.
func (s *Store) Validate() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	wantVisits := make(map[graph.NodeID]int64)
	wantVisitors := make(map[graph.NodeID]map[SegmentID]int32)
	wantTerminals := make(map[graph.NodeID]int64)
	var total, live int64
	numLive := 0
	for i := range s.segs {
		r := s.segs[i]
		if !r.live {
			continue
		}
		numLive++
		id := SegmentID(i)
		if r.n <= 0 {
			return fmt.Errorf("walkstore: segment %d has empty path", id)
		}
		if r.off < 0 || r.off+int64(r.n) > int64(len(s.arena)) {
			return fmt.Errorf("walkstore: segment %d ref (%d,%d) outside arena of %d", id, r.off, r.n, len(s.arena))
		}
		p := s.pathLocked(r)
		live += int64(len(p))
		wantTerminals[p[len(p)-1]]++
		for _, v := range p {
			wantVisits[v]++
			total++
			if wantVisitors[v] == nil {
				wantVisitors[v] = make(map[SegmentID]int32)
			}
			wantVisitors[v][id]++
		}
		if !slices.Contains(s.owned[p[0]], id) {
			return fmt.Errorf("walkstore: segment %d missing from owner index of node %d", id, p[0])
		}
	}
	if numLive != s.numLive {
		return fmt.Errorf("walkstore: numLive=%d want %d", s.numLive, numLive)
	}
	if live != s.liveNodes {
		return fmt.Errorf("walkstore: liveNodes=%d want %d", s.liveNodes, live)
	}
	if total != s.totalVisits {
		return fmt.Errorf("walkstore: totalVisits=%d want %d", s.totalVisits, total)
	}
	if len(wantVisits) != len(s.visits) {
		return fmt.Errorf("walkstore: visit table has %d nodes, want %d", len(s.visits), len(wantVisits))
	}
	for v, x := range wantVisits {
		if s.visits[v] != x {
			return fmt.Errorf("walkstore: visits[%d]=%d want %d", v, s.visits[v], x)
		}
		vs := s.visitors[v]
		if vs == nil {
			return fmt.Errorf("walkstore: missing visitor set for node %d", v)
		}
		if vs.m != nil && (vs.ids != nil || vs.counts != nil) {
			return fmt.Errorf("walkstore: visitors[%d] has both slice and map representations", v)
		}
		if vs.m == nil && !slices.IsSorted(vs.ids) {
			return fmt.Errorf("walkstore: visitors[%d] ids not sorted", v)
		}
		if vs.distinct() != len(wantVisitors[v]) {
			return fmt.Errorf("walkstore: visitors[%d] has %d segments, want %d", v, vs.distinct(), len(wantVisitors[v]))
		}
		for id, c := range wantVisitors[v] {
			if got := vs.count(id); got != c {
				return fmt.Errorf("walkstore: visitors[%d][%d]=%d want %d", v, id, got, c)
			}
		}
	}
	for v := range s.visitors {
		if wantVisits[v] == 0 {
			return fmt.Errorf("walkstore: stale visitor set for node %d", v)
		}
	}
	if len(wantTerminals) != len(s.terminals) {
		return fmt.Errorf("walkstore: terminal table has %d nodes, want %d", len(s.terminals), len(wantTerminals))
	}
	for v, c := range wantTerminals {
		if s.terminals[v] != c {
			return fmt.Errorf("walkstore: terminals[%d]=%d want %d", v, s.terminals[v], c)
		}
	}
	for id := range s.owned {
		if len(s.owned[id]) == 0 {
			return fmt.Errorf("walkstore: empty owner slot for node %d", id)
		}
	}
	return nil
}
