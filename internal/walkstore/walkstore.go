package walkstore

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"fastppr/internal/graph"
)

// SegmentID identifies a stored segment. IDs are assigned densely from 0 and
// never reused.
type SegmentID int64

// Side tags a stored segment with the direction of its first step. PageRank
// segments are Unsided; SALSA segments are stored once per side so the
// maintainer can serve hub and authority scores from one store. The values
// mirror walk.Direction (Forward = 0, Backward = 1) so callers can convert
// with a cast.
type Side int8

const (
	// Unsided marks a plain reset-walk segment (no alternation structure).
	Unsided Side = -1
	// SideForward marks a segment whose first step follows an out-edge: an
	// alternating walk started on the hub side.
	SideForward Side = 0
	// SideBackward marks a segment whose first step follows an in-edge: an
	// alternating walk started on the authority side.
	SideBackward Side = 1
)

// PendingAt returns the direction of the step an alternating segment takes
// *from* path position pos: the first direction at even positions, its
// opposite at odd ones. Only valid on sided values.
func (s Side) PendingAt(pos int) Side {
	if s < 0 {
		panic("walkstore: PendingAt on unsided segment")
	}
	return Side(int8(s) ^ int8(pos&1))
}

func mustDir(d Side) {
	if d != SideForward && d != SideBackward {
		panic(fmt.Sprintf("walkstore: invalid direction %d", d))
	}
}

// Observer is notified of visit-count mutations: delta is +1 when a segment
// gains a visit to node at path position pos, -1 when it loses one. The
// observer runs under the counter stripe lock of the visited node, so it may
// fire concurrently for different nodes.
type Observer func(seg SegmentID, node graph.NodeID, pos int, delta int)

// MutationLog receives every segment mutation as a serialized feed — the
// segment-level sibling of the per-visit Observer, shaped for write-ahead
// logging. Each method is invoked inside the mutation's segMu critical
// section, so calls are totally ordered and that order is a valid
// linearization of the store's mutation history: replaying the calls against
// an empty store (or a store restored to the epoch the log started at)
// reproduces the live store's segment table bitwise, dead slots and ID
// assignment included. Path and tail slices are arena-resident and stable;
// the log may retain them. Implementations must not call back into the store
// and must not block on anything that itself mutates the store (the calls
// run under the segment lock). See docs/DESIGN.md#8-durability--recovery.
type MutationLog interface {
	// LogAdd records a stored segment: AddBatchSided emits one call per path,
	// in ID order. The store's epoch after the mutation completes is the
	// number of LogAdd/LogReplaceTail/LogRemove calls issued so far.
	LogAdd(id SegmentID, side Side, path []graph.NodeID)
	// LogReplaceTail records a tail replacement (keep >= 1 prefix nodes, then
	// tail). No-op replacements (keep == length, empty tail) are not logged,
	// matching their absent epoch bump.
	LogReplaceTail(id SegmentID, keep int, tail []graph.NodeID)
	// LogRemove records a segment removal. The ID is never reused.
	LogRemove(id SegmentID)
}

// segRef addresses one segment's path inside the arena.
type segRef struct {
	off  int64
	n    int32
	side Side
	live bool
}

// hubThreshold is the entry count at which a pending-position bucket's
// sorted slice upgrades to a map. The slice is a pointer-free value array —
// the GC never scans it, appends dominate (fresh segments carry the largest
// IDs), and a mid-list insert is one short memmove — so it stays ahead of a
// map well past the typical node's ~2·R·L/2 entries; only genuine hubs with
// thousands of pending visits need the map's O(1) updates, paying its
// pointer-ful buckets and write barriers where the memmove would be tens of
// kilobytes.
const hubThreshold = 1024

const (
	// stripeBits selects the counter stripe from a node ID's low bits;
	// numStripes is the stripe count. Low-bit striping (rather than a hash)
	// is what makes the dense slot addressing below exact: node v lives in
	// stripe v&63 at slot v>>6, so dense ID spaces — every generator and the
	// production workload assign 0..n-1 — hit a plain slice index instead of
	// a hash map on every counter touch.
	stripeBits = 6
	numStripes = 1 << stripeBits
	// denseLimit bounds the IDs served from dense slots; rarer IDs at or
	// above it (or negative) fall back to the per-stripe sparse map, so a
	// wild ID costs a map hit instead of gigabytes of slots.
	denseLimit = 1 << 26
)

// nodeState bundles every per-node structure the store maintains — visit and
// terminal counters, owner lists, the sided pending-direction counters, and
// the pending-position index buckets — so one node-state lookup per mutation
// or read serves all of them. Before this consolidation every visit update
// hashed the same node key into half a dozen parallel maps; now it is one
// slot read plus field arithmetic, which is what keeps the index maintenance
// cheaper than the scans it replaced.
type nodeState struct {
	visits    int64 // X_v
	terminals int64 // T(v): live segments ending here
	owned     []SegmentID

	// Per-side counters over sided (alternating) segments, indexed by the
	// pending step direction of a visit: a visit at position pos of a segment
	// with first direction f has pending direction f XOR (pos&1). Visits
	// pending a Backward step are authority-side, visits pending a Forward
	// step are hub-side, so these fields are exactly the SALSA maintainer's
	// score numerators and skip-coin exponents.
	sidedVisits    [2]int64
	sidedTerminals [2]int64
	ownedSided     [2][]SegmentID

	// Pending-position index: the exact (segment, position) pairs of stored
	// visits to this node, bucketed by pending step direction (sided) or
	// into the unsided bucket. It is the counters above made enumerable —
	// the repair scans read their candidate lists from here instead of
	// walking every visitor's full path. The buckets hold exactly one entry
	// per visit, so they double as the inverted visitor index: Visitors and
	// W derive from them instead of a separately maintained multiset.
	pending [pendingBuckets]posIndex
}

// empty reports whether the node no longer holds any stored state. The
// pending buckets hold exactly one entry per visit, so visits == 0 implies
// they are empty; the other fields are checked explicitly because terminals
// and owner lists move under their own lock acquisitions during a multi-step
// mutation.
func (ns *nodeState) empty() bool {
	return ns.visits == 0 && ns.terminals == 0 && len(ns.owned) == 0 &&
		ns.sidedTerminals == [2]int64{} &&
		len(ns.ownedSided[0]) == 0 && len(ns.ownedSided[1]) == 0
}

// counterStripe owns the node states of the nodes whose IDs select it, plus
// this stripe's share of the global visit totals. Everything a single node's
// skip coin needs — visits, terminals, candidates, sided variants, pending
// positions — lives under one stripe lock, so a maintainer reads a
// consistent per-node view with one acquisition while unrelated nodes
// proceed in parallel.
type counterStripe struct {
	mu sync.RWMutex
	// dense holds node states at slot v>>stripeBits for IDs below
	// denseLimit; sparse catches everything else. numNodes counts live
	// states across both.
	dense    []*nodeState
	sparse   map[graph.NodeID]*nodeState
	numNodes int

	// Stripe shares of the global totals; Validate cross-checks that they
	// sum to the atomic globals and to a recount from the stored paths.
	totalVisits int64
	sidedTotals [2]int64

	// epoch counts mutating acquisitions of this stripe's lock: every
	// locked section that changed any node state in the stripe bumps it
	// exactly once, from inside the critical section. It is the global
	// Epoch() localized: a reader holding a stamp for the stripes it
	// depends on learns whether *those* nodes' stored state moved, without
	// being invalidated by an unrelated storm. Written under mu, read
	// atomically (StripeEpoch); Validate cross-checks the sum of all
	// stripe epochs against the global stripeTouches counter so a mutation
	// path cannot silently skip the bump.
	epoch atomic.Int64
}

// node returns the node's state, or nil.
func (st *counterStripe) node(v graph.NodeID) *nodeState {
	if u := uint64(v); u < denseLimit {
		if slot := u >> stripeBits; slot < uint64(len(st.dense)) {
			return st.dense[slot]
		}
		return nil
	}
	return st.sparse[v]
}

// nodeCreate returns the node's state, allocating it on first touch.
func (st *counterStripe) nodeCreate(v graph.NodeID) *nodeState {
	if u := uint64(v); u < denseLimit {
		slot := u >> stripeBits
		if slot >= uint64(len(st.dense)) {
			grown := make([]*nodeState, max(int(slot)+1, 2*len(st.dense)))
			copy(grown, st.dense)
			st.dense = grown
		}
		ns := st.dense[slot]
		if ns == nil {
			ns = &nodeState{}
			st.dense[slot] = ns
			st.numNodes++
		}
		return ns
	}
	ns := st.sparse[v]
	if ns == nil {
		ns = &nodeState{}
		st.sparse[v] = ns
		st.numNodes++
	}
	return ns
}

// maybeDelete drops a node whose state has fully drained.
func (st *counterStripe) maybeDelete(v graph.NodeID, ns *nodeState) {
	if !ns.empty() {
		return
	}
	if u := uint64(v); u < denseLimit {
		st.dense[u>>stripeBits] = nil
	} else {
		delete(st.sparse, v)
	}
	st.numNodes--
}

// each calls f for every live node state in the stripe. i is the stripe's
// index, needed to reconstruct dense IDs (v = slot<<stripeBits | i).
func (st *counterStripe) each(i int, f func(v graph.NodeID, ns *nodeState)) {
	for slot, ns := range st.dense {
		if ns != nil {
			f(graph.NodeID(uint64(slot)<<stripeBits|uint64(i)), ns)
		}
	}
	for v, ns := range st.sparse {
		f(v, ns)
	}
}

// ErrConcurrentMutation is returned (wrapped) by Validate when it catches a
// segment mutation in flight: the store is not corrupt, the caller raced the
// mutators. Re-run Validate at a quiescent point.
var ErrConcurrentMutation = errors.New("walkstore: concurrent mutation during Validate")

// Store holds walk segments with an inverted visit index. Reads are safe for
// arbitrary concurrent use. Mutations of *different* segments are safe
// concurrently; mutations of the same segment (ReplaceTail/Remove on one ID)
// must be serialized by the caller — the engine and both maintainers hold
// SegmentID stripe locks for exactly this. Counter state is sharded into
// numStripes lock stripes by node, so per-node reads and updates of
// unrelated nodes do not contend.
type Store struct {
	segMu     sync.RWMutex // guards arena, segs, numLive, liveNodes, observer, mlog
	arena     []graph.NodeID
	segs      []segRef // indexed by SegmentID
	numLive   int
	liveNodes int64 // arena slots referenced by live segments
	observer  Observer
	mlog      MutationLog

	// Global counter mirrors, updated once per completed mutation (the
	// per-stripe shares stay lock-exact). Individually exact at quiescent
	// points; under concurrent mutation a reader pairing a stripe count with
	// an atomic total sees skew bounded by the mutations in flight — see
	// docs/DESIGN.md#6-concurrency-model for the snapshot semantics.
	totalVisits atomic.Int64
	sidedTotals [2]atomic.Int64

	// epoch counts completed segment mutations (Add/ReplaceTail/Remove). A
	// reader brackets work with two Epoch() calls to learn whether — and how
	// much — the store moved underneath it.
	epoch atomic.Int64

	// stripeTouches counts mutating stripe-lock acquisitions across all
	// stripes — the running sum the per-stripe epochs must add up to.
	// Maintained purely as Validate's cross-check on the stripe epochs.
	stripeTouches atomic.Int64

	// mutators counts segment mutations in flight, from inside the segMu
	// critical section of their arena phase until their last counter update
	// has landed. Validate holds segMu plus every counter stripe, so a
	// non-zero read there means a mutation is caught between phases — the one
	// state a lock-holding validator cannot distinguish from corruption — and
	// Validate fails with ErrConcurrentMutation instead of a bogus report.
	mutators atomic.Int64

	stripes [numStripes]counterStripe
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.stripes {
		s.stripes[i].sparse = make(map[graph.NodeID]*nodeState)
	}
	return s
}

// stripeIndex returns the counter stripe index of node v.
func stripeIndex(v graph.NodeID) int {
	return int(uint64(v) & (numStripes - 1))
}

// stripe returns the counter stripe owning node v.
func (s *Store) stripe(v graph.NodeID) *counterStripe {
	return &s.stripes[stripeIndex(v)]
}

// NumStripes returns the number of counter stripes (for tests and bench
// provenance).
func (s *Store) NumStripes() int { return numStripes }

// StripeCount is the number of counter stripes as a compile-time constant,
// exported so callers keying per-stripe state (the serving tier's
// invalidation stamps fit one uint64 bitmask exactly because this is 64) can
// size arrays and fail to compile if the stripe geometry ever changes.
const StripeCount = numStripes

// StripeOf returns the index of the counter stripe owning node v — the key
// under which per-node mutations stamp StripeEpoch. Queries accumulate the
// stripes they depend on with this function.
func StripeOf(v graph.NodeID) int { return stripeIndex(v) }

// GroupByStripe returns a stable permutation of [0, n) grouping indices by
// StripeOf(node(i)): a counting sort, O(n + StripeCount). The maintainers
// pre-group a storm's arrivals by source stripe with it so consecutive
// claims touch the same counter stripe and endpoint locks (cache-local
// ingestion); stability keeps same-stripe arrivals in stream order.
func GroupByStripe(n int, node func(int) graph.NodeID) []int {
	var next [numStripes]int
	for i := 0; i < n; i++ {
		next[stripeIndex(node(i))]++
	}
	sum := 0
	for i := range next {
		next[i], sum = sum, sum+next[i]
	}
	order := make([]int, n)
	for i := 0; i < n; i++ {
		st := stripeIndex(node(i))
		order[next[st]] = i
		next[st]++
	}
	return order
}

// Epoch returns the number of completed segment mutations. Monotone;
// bracketing a read-only pass with two Epoch calls bounds how many mutations
// landed during it.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// StripeEpoch returns stripe i's mutation stamp: the number of locked
// sections that changed any node state in the stripe. It is Epoch()
// localized — a mutation bumps exactly the stripes whose nodes it touched,
// so a reader that stamps the stripes it read can detect whether *its*
// dependencies moved while unrelated stripes churn freely. Monotone;
// bumped after the owning critical section's changes are visible.
func (s *Store) StripeEpoch(i int) int64 { return s.stripes[i].epoch.Load() }

// AppendStripeEpochs appends every stripe's current epoch to dst (reset
// first), indexed by stripe. The loads are individually atomic, not a
// consistent cut: under concurrent mutation each stamp is exact for its own
// stripe, which is all the per-stripe validation protocol needs.
func (s *Store) AppendStripeEpochs(dst []int64) []int64 {
	dst = dst[:0]
	for i := range s.stripes {
		dst = append(dst, s.stripes[i].epoch.Load())
	}
	return dst
}

// touchStripeLocked records one mutating acquisition of st's lock. Caller
// holds st.mu; the paired global counter keeps Validate able to prove no
// mutation path skipped its bump.
func (s *Store) touchStripeLocked(st *counterStripe) {
	st.epoch.Add(1)
	s.stripeTouches.Add(1)
}

// SetObserver installs an observer for visit mutations. Must be called
// while the store holds no live segments (fresh, or emptied for a rebuild);
// the observer then sees every mutation.
func (s *Store) SetObserver(o Observer) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if s.numLive != 0 {
		panic("walkstore: SetObserver with live segments")
	}
	s.observer = o
}

// SetMutationLog installs (or, with nil, detaches) the segment-mutation log.
// Unlike SetObserver it is legal on a store holding live segments — the
// durability layer attaches a WAL to a store restored from a snapshot — but
// the caller must guarantee no mutation is in flight (the recovery path is
// single-threaded; a running system quiesces first), or the log would miss
// the straddling mutation.
func (s *Store) SetMutationLog(l MutationLog) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	s.mlog = l
}

// Add stores a new unsided segment owned by its first node and returns its
// ID. The path must be non-empty. The path is copied; the caller keeps
// ownership of its slice.
func (s *Store) Add(path []graph.NodeID) SegmentID {
	return s.AddSided(path, Unsided)
}

// AddSided stores a new segment tagged with the direction of its first step.
// Sided segments additionally maintain the per-side pending-direction
// counters and the per-side owner index.
func (s *Store) AddSided(path []graph.NodeID, side Side) SegmentID {
	return s.AddBatchSided([][]graph.NodeID{path}, side)[0]
}

// AddBatch stores many unsided segments under one arena-lock acquisition —
// the bulk-load path the parallel walk engine uses to flush a burst of
// finished segments. Every path must be non-empty; paths are copied. The
// returned IDs are in input order.
func (s *Store) AddBatch(paths [][]graph.NodeID) []SegmentID {
	return s.AddBatchSided(paths, Unsided)
}

// AddBatchSided is AddBatch with every segment tagged with one side.
func (s *Store) AddBatchSided(paths [][]graph.NodeID, side Side) []SegmentID {
	if side != Unsided {
		mustDir(side)
	}
	ids := make([]SegmentID, len(paths))
	stored := make([][]graph.NodeID, len(paths))
	s.segMu.Lock()
	for _, p := range paths {
		if len(p) == 0 {
			s.segMu.Unlock()
			panic("walkstore: empty segment path")
		}
	}
	s.mutators.Add(1)
	for i, p := range paths {
		ids[i], stored[i] = s.appendSegmentLocked(p, side)
		if s.mlog != nil {
			s.mlog.LogAdd(ids[i], side, stored[i])
		}
	}
	s.segMu.Unlock()
	s.indexBatch(ids, stored, side)
	s.epoch.Add(int64(len(paths)))
	s.mutators.Add(-1)
	return ids
}

// idxOp is one deferred per-node index update of a batch add, grouped by
// counter stripe so a whole batch pays one lock acquisition per touched
// stripe instead of one per visit.
type idxOp struct {
	id   SegmentID
	v    graph.NodeID
	pos  int32 // visit position; for opTerminal, the path's last position
	kind uint8
}

const (
	opVisit uint8 = iota
	opOwner
	opTerminal
)

// indexBatch registers freshly appended segments in the per-node counter
// stripes — owner lists, terminal counters, one visit (and pending-position
// entry) per path position — with all updates for one stripe applied under a
// single lock acquisition. Per-node op order follows input order, so owner
// lists keep insertion order.
func (s *Store) indexBatch(ids []SegmentID, stored [][]graph.NodeID, side Side) {
	var ops [numStripes][]idxOp
	var totalDelta int64
	var sidedDelta [2]int64
	for i, p := range stored {
		id := ids[i]
		src := p[0]
		ops[stripeIndex(src)] = append(ops[stripeIndex(src)], idxOp{id: id, v: src, kind: opOwner})
		end := p[len(p)-1]
		ops[stripeIndex(end)] = append(ops[stripeIndex(end)], idxOp{id: id, v: end, pos: int32(len(p) - 1), kind: opTerminal})
		for pos, v := range p {
			ops[stripeIndex(v)] = append(ops[stripeIndex(v)], idxOp{id: id, v: v, pos: int32(pos), kind: opVisit})
			totalDelta++
			if side >= 0 {
				sidedDelta[side.PendingAt(pos)]++
			}
		}
	}
	for si := range ops {
		if len(ops[si]) == 0 {
			continue
		}
		st := &s.stripes[si]
		st.mu.Lock()
		s.touchStripeLocked(st)
		for _, op := range ops[si] {
			switch op.kind {
			case opOwner:
				ns := st.nodeCreate(op.v)
				ns.owned = append(ns.owned, op.id)
				if side >= 0 {
					ns.ownedSided[side] = append(ns.ownedSided[side], op.id)
				}
			case opTerminal:
				ns := st.nodeCreate(op.v)
				ns.terminals++
				if side >= 0 {
					ns.sidedTerminals[side.PendingAt(int(op.pos))]++
				}
			case opVisit:
				s.addVisitLocked(st, op.id, op.v, int(op.pos), side)
			}
		}
		st.mu.Unlock()
	}
	s.bumpTotals(totalDelta, sidedDelta)
}

// bumpTotals applies one mutation's worth of deltas to the atomic global
// mirrors (the per-stripe shares are updated inside the locked sections).
func (s *Store) bumpTotals(totalDelta int64, sidedDelta [2]int64) {
	if totalDelta != 0 {
		s.totalVisits.Add(totalDelta)
	}
	for d := 0; d < 2; d++ {
		if sidedDelta[d] != 0 {
			s.sidedTotals[d].Add(sidedDelta[d])
		}
	}
}

// appendSegmentLocked writes one segment into the arena and returns its ID
// together with the arena-resident copy of the path (stable forever, safe to
// read after the lock is released). Caller holds segMu.
func (s *Store) appendSegmentLocked(path []graph.NodeID, side Side) (SegmentID, []graph.NodeID) {
	id := SegmentID(len(s.segs))
	off := int64(len(s.arena))
	s.arena = append(s.arena, path...)
	s.segs = append(s.segs, segRef{off: off, n: int32(len(path)), side: side, live: true})
	s.numLive++
	s.liveNodes += int64(len(path))
	return id, s.arena[off : off+int64(len(path)) : off+int64(len(path))]
}

// addVisitLocked records one visit of segment id to v at path position pos:
// visit counters, stripe share, pending-position index, observer — one node
// lookup, then field arithmetic. The caller holds v's stripe lock and is
// responsible for the atomic global totals (bumpTotals).
func (s *Store) addVisitLocked(st *counterStripe, id SegmentID, v graph.NodeID, pos int, side Side) {
	ns := st.nodeCreate(v)
	ns.visits++
	st.totalVisits++
	if side >= 0 {
		d := side.PendingAt(pos)
		ns.sidedVisits[d]++
		st.sidedTotals[d]++
	}
	ns.pending[pendingBucket(side, pos)].add(id, int32(pos))
	if s.observer != nil {
		s.observer(id, v, pos, +1)
	}
}

// removeVisitLocked is addVisitLocked's inverse; it does not drain the node
// (callers run maybeDelete once their stripe group completes).
func (s *Store) removeVisitLocked(st *counterStripe, ns *nodeState, id SegmentID, v graph.NodeID, pos int, side Side) {
	ns.visits--
	st.totalVisits--
	if side >= 0 {
		d := side.PendingAt(pos)
		ns.sidedVisits[d]--
		st.sidedTotals[d]--
	}
	ns.pending[pendingBucket(side, pos)].remove(id, int32(pos))
	if s.observer != nil {
		s.observer(id, v, pos, -1)
	}
}

// tailOp is one deferred counter update of a ReplaceTail/Remove, batched by
// stripe exactly like idxOp: a redirect touches ~2L positions across ~2L
// stripes' worth of nodes, and paying one lock acquisition and one atomic
// total update per mutation instead of one per visit is a large share of the
// arrival hot path.
type tailOp struct {
	id   SegmentID
	v    graph.NodeID
	pos  int32
	kind uint8
	side Side // the mutated segment's stored side (Unsided for plain walks)
	d    Side // direction for sided terminal ops
}

const (
	tailVisitRemove uint8 = iota
	tailVisitAdd
	tailTermDec
	tailTermInc
	tailSidedDec
	tailSidedInc
)

var tailOpPool = sync.Pool{New: func() any { b := make([]tailOp, 0, 64); return &b }}

// applyTailOps groups ops by counter stripe (stable, so one node's removals
// keep their descending-position order) and applies each group under a
// single stripe-lock acquisition, then bumps the atomic totals once. Every
// op carries its own segment and side, so one call can apply a whole batch
// of tail mutations spanning segments of different sides, with each touched
// stripe still paying exactly one mutating acquisition for the batch.
func (s *Store) applyTailOps(ops []tailOp) {
	sortOpsByStripe(ops)
	var totalDelta int64
	var sidedDelta [2]int64
	for i := 0; i < len(ops); {
		si := stripeIndex(ops[i].v)
		st := &s.stripes[si]
		st.mu.Lock()
		s.touchStripeLocked(st)
		j := i
		for ; j < len(ops) && stripeIndex(ops[j].v) == si; j++ {
			op := ops[j]
			switch op.kind {
			case tailVisitRemove:
				ns := st.node(op.v)
				if ns == nil {
					st.mu.Unlock()
					panic(fmt.Sprintf("walkstore: removing absent visit of segment %d at node %d", op.id, op.v))
				}
				s.removeVisitLocked(st, ns, op.id, op.v, int(op.pos), op.side)
				totalDelta--
				if op.side >= 0 {
					sidedDelta[op.side.PendingAt(int(op.pos))]--
				}
				st.maybeDelete(op.v, ns)
			case tailVisitAdd:
				s.addVisitLocked(st, op.id, op.v, int(op.pos), op.side)
				totalDelta++
				if op.side >= 0 {
					sidedDelta[op.side.PendingAt(int(op.pos))]++
				}
			case tailTermDec:
				ns := st.node(op.v)
				ns.terminals--
				st.maybeDelete(op.v, ns)
			case tailTermInc:
				st.nodeCreate(op.v).terminals++
			case tailSidedDec:
				ns := st.node(op.v)
				ns.sidedTerminals[op.d]--
				st.maybeDelete(op.v, ns)
			case tailSidedInc:
				st.nodeCreate(op.v).sidedTerminals[op.d]++
			}
		}
		st.mu.Unlock()
		i = j
	}
	s.bumpTotals(totalDelta, sidedDelta)
}

// sortOpsByStripe stably sorts ops by counter stripe index: insertion sort
// for a single mutation's ~2L ops, counting sort over the 64 stripes for
// larger batches. Both are stable, so a batch applies each stripe's ops in
// exactly the order a sequence of single mutations would have — the
// byte-equality the batched write path is proven against.
func sortOpsByStripe(ops []tailOp) {
	if len(ops) <= 32 {
		for i := 1; i < len(ops); i++ {
			for j := i; j > 0 && stripeIndex(ops[j-1].v) > stripeIndex(ops[j].v); j-- {
				ops[j-1], ops[j] = ops[j], ops[j-1]
			}
		}
		return
	}
	var next [numStripes]int
	for i := range ops {
		next[stripeIndex(ops[i].v)]++
	}
	sum := 0
	for i := range next {
		next[i], sum = sum, sum+next[i]
	}
	tmpp := tailOpPool.Get().(*[]tailOp)
	tmp := slices.Grow((*tmpp)[:0], len(ops))[:len(ops)]
	for _, op := range ops {
		si := stripeIndex(op.v)
		tmp[next[si]] = op
		next[si]++
	}
	copy(ops, tmp)
	*tmpp = tmp[:0]
	tailOpPool.Put(tmpp)
}

// refLocked returns the live segRef for id, panicking on unknown or removed
// segments. Caller holds segMu.
func (s *Store) refLocked(id SegmentID) segRef {
	if id < 0 || int(id) >= len(s.segs) || !s.segs[id].live {
		panic(fmt.Sprintf("walkstore: unknown segment %d", id))
	}
	return s.segs[id]
}

// pathLocked returns the arena window of a live segment, capacity-clamped so
// callers cannot append into the arena.
func (s *Store) pathLocked(r segRef) []graph.NodeID {
	return s.arena[r.off : r.off+int64(r.n) : r.off+int64(r.n)]
}

// Path returns the segment's node path. The returned slice must not be
// modified, but it is stable: the arena is grow-only and ReplaceTail writes
// revised paths to fresh arena space, so the slice keeps its contents even
// after later mutations of the same segment. This stability is what lets
// concurrent readers (the query layer's splices, the maintainers' scans)
// hold a coherent path with no copy while mutations continue.
func (s *Store) Path(id SegmentID) []graph.NodeID {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.pathLocked(s.refLocked(id))
}

// AppendPaths appends the paths of ids to dst (reset first) under a single
// segment-lock acquisition — the repair scans' bulk fetch, one lock for a
// whole frozen segment set instead of one per segment. The returned slices
// carry Path's stability guarantee.
func (s *Store) AppendPaths(dst [][]graph.NodeID, ids []SegmentID) [][]graph.NodeID {
	dst = dst[:0]
	s.segMu.RLock()
	for _, id := range ids {
		dst = append(dst, s.pathLocked(s.refLocked(id)))
	}
	s.segMu.RUnlock()
	return dst
}

// OwnedBy returns the IDs of segments whose walks start at u, in insertion
// order. The returned slice is a copy.
func (s *Store) OwnedBy(u graph.NodeID) []SegmentID {
	st := s.stripe(u)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if ns := st.node(u); ns != nil {
		return append([]SegmentID(nil), ns.owned...)
	}
	return nil
}

// OwnedSided returns the IDs of u's stored segments whose first step has the
// given direction, in insertion order. The returned slice is a copy.
func (s *Store) OwnedSided(u graph.NodeID, side Side) []SegmentID {
	mustDir(side)
	st := s.stripe(u)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if ns := st.node(u); ns != nil {
		return append([]SegmentID(nil), ns.ownedSided[side]...)
	}
	return nil
}

// SideOf returns the side a live segment was stored with (Unsided for plain
// reset walks).
func (s *Store) SideOf(id SegmentID) Side {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.refLocked(id).side
}

// PendingVisits returns the number of stored sided visits to v whose pending
// step has direction dir (terminal visits included). Visits pending a
// Backward step are authority-side visits; pending Forward, hub-side.
func (s *Store) PendingVisits(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if ns := st.node(v); ns != nil {
		return ns.sidedVisits[dir]
	}
	return 0
}

// PendingTerminals returns the number of stored sided segments that end at v
// with a pending step of direction dir — the walks an arriving edge can
// revive when v gains its first edge in that direction.
func (s *Store) PendingTerminals(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if ns := st.node(v); ns != nil {
		return ns.sidedTerminals[dir]
	}
	return 0
}

// PendingCandidates returns the number of dir-direction steps stored sided
// segments actually take from v (pending visits minus terminals) — the exact
// exponent of the SALSA maintainer's skip coin, the sided analogue of
// Candidates. Both counts are read under v's stripe lock, so the difference
// is a consistent per-node snapshot even while other nodes mutate.
func (s *Store) PendingCandidates(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if ns := st.node(v); ns != nil {
		return ns.sidedVisits[dir] - ns.sidedTerminals[dir]
	}
	return 0
}

// PendingTotal returns the total number of stored sided visits pending a
// step of direction dir — the normalizer of the global hub (Forward) and
// authority (Backward) score estimates.
func (s *Store) PendingTotal(dir Side) int64 {
	mustDir(dir)
	return s.sidedTotals[dir].Load()
}

// PendingVisitCounts returns a copy of the full pending-visit table for one
// direction, together with its total. Each stripe is read under its own
// lock, so the copy is per-stripe consistent; at a quiescent point it is
// exact, and the total is the sum of the per-stripe shares read under the
// same locks as their counts.
func (s *Store) PendingVisitCounts(dir Side) (counts map[graph.NodeID]int64, total int64) {
	mustDir(dir)
	size := 0
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		size += s.stripes[i].numNodes
		s.stripes[i].mu.RUnlock()
	}
	counts = make(map[graph.NodeID]int64, size)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		st.each(i, func(v graph.NodeID, ns *nodeState) {
			if x := ns.sidedVisits[dir]; x != 0 {
				counts[v] = x
			}
		})
		total += st.sidedTotals[dir]
		st.mu.RUnlock()
	}
	return counts, total
}

// PendingVisitFraction returns the pending-dir visit count of v together
// with the side total. The count is read under v's stripe lock; the total is
// the atomic global, so under concurrent mutation the ratio has bounded skew
// (at most the mutations in flight) rather than lock-exact consistency.
func (s *Store) PendingVisitFraction(v graph.NodeID, dir Side) (visits, total int64) {
	mustDir(dir)
	st := s.stripe(v)
	st.mu.RLock()
	if ns := st.node(v); ns != nil {
		visits = ns.sidedVisits[dir]
	}
	st.mu.RUnlock()
	return visits, s.sidedTotals[dir].Load()
}

// Visitors returns the IDs of segments that visit v, ascending. It is
// derived from the pending-position buckets (which hold one entry per
// visit), so it costs a sort over the visit count rather than a table read —
// acceptable for its remaining callers (the legacy scan path and tests); the
// hot paths consume AppendPendingPositions directly.
func (s *Store) Visitors(v graph.NodeID) []SegmentID {
	st := s.stripe(v)
	st.mu.RLock()
	var ids []SegmentID
	if ns := st.node(v); ns != nil {
		for b := range ns.pending {
			ids = ns.pending[b].appendSegs(ids)
		}
	}
	st.mu.RUnlock()
	slices.Sort(ids)
	return slices.Compact(ids)
}

// W returns the number of distinct segments visiting v — the paper's W(v).
// Derived like Visitors.
func (s *Store) W(v graph.NodeID) int {
	return len(s.Visitors(v))
}

// Visits returns X_v, the total visit count of v across stored segments.
func (s *Store) Visits(v graph.NodeID) int64 {
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if ns := st.node(v); ns != nil {
		return ns.visits
	}
	return 0
}

// Terminals returns T(v), the number of stored segments whose path ends at v.
func (s *Store) Terminals(v graph.NodeID) int64 {
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if ns := st.node(v); ns != nil {
		return ns.terminals
	}
	return 0
}

// Candidates returns X_v - T(v): the number of outgoing walk steps stored
// segments take from v. An edge arriving at source v perturbs the store with
// probability exactly 1-(1-1/d)^Candidates(v), the quantity behind the
// incremental maintainer's skip coin (the paper states the bound with W(v),
// which coincides when segments visit v at most once and never end there).
// Both counts live under v's stripe lock, so the difference is a consistent
// per-node snapshot.
func (s *Store) Candidates(v graph.NodeID) int64 {
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if ns := st.node(v); ns != nil {
		return ns.visits - ns.terminals
	}
	return 0
}

// VisitFraction returns X_v together with the total visit count. The count
// is read under v's stripe lock, the total atomically; see
// PendingVisitFraction for the skew bound under concurrent mutation.
func (s *Store) VisitFraction(v graph.NodeID) (visits, total int64) {
	st := s.stripe(v)
	st.mu.RLock()
	if ns := st.node(v); ns != nil {
		visits = ns.visits
	}
	st.mu.RUnlock()
	return visits, s.totalVisits.Load()
}

// TotalVisits returns the sum of X_v over all nodes (= total stored steps).
func (s *Store) TotalVisits() int64 {
	return s.totalVisits.Load()
}

// VisitCounts returns a copy of the full X_v table, per-stripe consistent
// (exact at quiescent points).
func (s *Store) VisitCounts() map[graph.NodeID]int64 {
	size := 0
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		size += s.stripes[i].numNodes
		s.stripes[i].mu.RUnlock()
	}
	out := make(map[graph.NodeID]int64, size)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		st.each(i, func(v graph.NodeID, ns *nodeState) {
			if ns.visits != 0 {
				out[v] = ns.visits
			}
		})
		st.mu.RUnlock()
	}
	return out
}

// NumSegments returns the number of stored (live) segments.
func (s *Store) NumSegments() int {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.numLive
}

// ArenaStats reports the arena's live and total node slots. The difference
// is garbage left behind by ReplaceTail/Remove; a future compaction pass can
// reclaim it when the ratio degrades.
func (s *Store) ArenaStats() (live, total int64) {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.liveNodes, int64(len(s.arena))
}

// compactMinGarbageFrac is the garbage fraction below which MaybeCompact
// declines to compact. Compact pays a full copy of the live arena, so a
// periodic trigger that fired unconditionally would repeatedly copy a huge,
// mostly-live arena to reclaim slivers — at large n that costs orders of
// magnitude more than the mutations between triggers.
const compactMinGarbageFrac = 0.25

// MaybeCompact runs Compact only when at least compactMinGarbageFrac of the
// arena is garbage, reporting whether it compacted. The periodic triggers
// (the maintainers' CompactEvery ticks, the window driver) call this
// instead of Compact directly: the tick decides how often the ratio is
// checked, the ratio decides whether a copy is worth it. The check is a
// snapshot — a concurrent mutation may move the ratio before Compact takes
// the segment lock — which costs only a marginally early or late
// compaction, never correctness.
func (s *Store) MaybeCompact() bool {
	live, total := s.ArenaStats()
	if total == 0 || float64(total-live) < compactMinGarbageFrac*float64(total) {
		return false
	}
	s.Compact()
	return true
}

// Compact rewrites every live segment's path into a fresh, densely packed
// arena (in segment-ID order) and drops the old one, reclaiming the garbage
// ReplaceTail and Remove leave behind. It changes no logical state: no
// visit moves, no counter changes, Epoch()/StripeEpoch stamps stay put, and
// nothing is written to the mutation log — a compaction commutes with
// replaying the log, so WAL sequence numbers and checkpoint epochs are
// unaffected. The stable-Path contract survives because previously returned
// slices keep pointing into the old arena's backing array, which is never
// written again (the garbage collector retains it while any such slice is
// live); reads after Compact serve the same bytes from the new arena.
// Safe to call concurrently with readers and with mutations of other
// phases — it takes the segment lock exclusively, so no arena write can
// overlap it. Returns the live slot count and the number reclaimed.
func (s *Store) Compact() (live, reclaimed int64) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	old := int64(len(s.arena))
	if old == s.liveNodes {
		return s.liveNodes, 0
	}
	fresh := make([]graph.NodeID, 0, s.liveNodes)
	for i := range s.segs {
		r := &s.segs[i]
		if !r.live {
			continue
		}
		off := int64(len(fresh))
		fresh = append(fresh, s.arena[r.off:r.off+int64(r.n)]...)
		r.off = off
	}
	s.arena = fresh
	return s.liveNodes, old - int64(len(fresh))
}

// ReplaceTail truncates the segment to its first keep nodes (keep >= 1) and
// appends newTail, updating the visit index. It returns the number of
// removed and added visits, which the maintainer accounts as update work.
// The revised path is written to fresh arena space, so slices previously
// returned by Path keep their old contents (copy-on-truncate). Concurrent
// ReplaceTail/Remove calls on the same segment must be serialized by the
// caller; calls on distinct segments may run concurrently.
func (s *Store) ReplaceTail(id SegmentID, keep int, newTail []graph.NodeID) (removed, added int) {
	old, r, noop := s.relocate(id, keep, newTail)
	if noop {
		return 0, 0
	}
	opsp := tailOpPool.Get().(*[]tailOp)
	ops, removed, added := appendTailOps((*opsp)[:0], id, keep, newTail, old, r)
	s.applyTailOps(ops)
	*opsp = ops[:0]
	tailOpPool.Put(opsp)
	s.epoch.Add(1)
	s.mutators.Add(-1)
	return removed, added
}

// appendTailOps appends one tail replacement's counter/index ops in the
// canonical order: terminal hand-off (when the endpoint moved), sided
// terminal hand-off, visit removals descending from the old end down to
// keep, then tail additions ascending. Returns ops plus the removed/added
// visit counts. old and r are the pre-relocation path and ref.
func appendTailOps(ops []tailOp, id SegmentID, keep int, newTail []graph.NodeID, old []graph.NodeID, r segRef) (_ []tailOp, removed, added int) {
	n := keep + len(newTail)
	newEnd := old[keep-1]
	if len(newTail) > 0 {
		newEnd = newTail[len(newTail)-1]
	}
	oldEnd := old[r.n-1]
	if oldEnd != newEnd {
		ops = append(ops,
			tailOp{id: id, v: oldEnd, kind: tailTermDec, side: r.side},
			tailOp{id: id, v: newEnd, kind: tailTermInc, side: r.side})
	}
	if r.side >= 0 {
		oldD := r.side.PendingAt(int(r.n) - 1)
		newD := r.side.PendingAt(n - 1)
		if oldEnd != newEnd || oldD != newD {
			ops = append(ops,
				tailOp{id: id, v: oldEnd, kind: tailSidedDec, d: oldD, side: r.side},
				tailOp{id: id, v: newEnd, kind: tailSidedInc, d: newD, side: r.side})
		}
	}
	for pos := int(r.n) - 1; pos >= keep; pos-- {
		ops = append(ops, tailOp{id: id, v: old[pos], pos: int32(pos), kind: tailVisitRemove, side: r.side})
		removed++
	}
	for i, v := range newTail {
		ops = append(ops, tailOp{id: id, v: v, pos: int32(keep + i), kind: tailVisitAdd, side: r.side})
		added++
	}
	return ops, removed, added
}

// TailMutation is one deferred tail replacement: truncate segment ID to its
// first Keep nodes (Keep >= 1) and append NewTail.
type TailMutation struct {
	ID      SegmentID
	Keep    int
	NewTail []graph.NodeID
}

// relocated carries one batch entry's arena-phase result into the op-build
// phase; a no-op entry keeps old == nil.
type relocated struct {
	old []graph.NodeID
	r   segRef
}

var relocPool = sync.Pool{New: func() any { b := make([]relocated, 0, 16); return &b }}

// ReplaceTailBatch applies a sequence of tail replacements as one bulk
// mutation. The arena rewrites and mutation-log records of the whole batch
// land under a single segment-lock acquisition, in slice order, so the log
// reads exactly as if the calls had been sequential; the counter and
// pending-index updates are then grouped so each touched counter stripe
// pays one lock acquisition (and one StripeEpoch bump) for all of the
// batch's positions instead of one per mutation. The resulting store state
// — index bucket bytes included — is identical to calling ReplaceTail once
// per entry in order, and the epoch advances by the number of non-no-op
// entries exactly as the sequential calls would have. Entries may span
// segments of different sides, and mutating the same segment twice in one
// batch is legal (later entries see earlier ones' effects). Like
// ReplaceTail, concurrent mutations of any segment in the batch must be
// serialized by the caller. Returns the batch's total removed and added
// visit counts.
func (s *Store) ReplaceTailBatch(muts []TailMutation) (removed, added int) {
	if len(muts) == 0 {
		return 0, 0
	}
	if len(muts) == 1 {
		return s.ReplaceTail(muts[0].ID, muts[0].Keep, muts[0].NewTail)
	}
	relp := relocPool.Get().(*[]relocated)
	rel := (*relp)[:0]
	nonNoops := 0
	s.segMu.Lock()
	func() {
		defer s.segMu.Unlock()
		for i := range muts {
			m := &muts[i]
			old, r, noop := s.relocateLocked(m.ID, m.Keep, m.NewTail)
			if noop {
				rel = append(rel, relocated{})
				continue
			}
			if nonNoops == 0 {
				s.mutators.Add(1)
			}
			nonNoops++
			rel = append(rel, relocated{old: old, r: r})
		}
	}()
	if nonNoops == 0 {
		*relp = rel[:0]
		relocPool.Put(relp)
		return 0, 0
	}
	opsp := tailOpPool.Get().(*[]tailOp)
	ops := (*opsp)[:0]
	for i := range muts {
		re := &rel[i]
		if re.old == nil {
			continue
		}
		m := &muts[i]
		var rm, ad int
		ops, rm, ad = appendTailOps(ops, m.ID, m.Keep, m.NewTail, re.old, re.r)
		removed += rm
		added += ad
	}
	s.applyTailOps(ops)
	*opsp = ops[:0]
	tailOpPool.Put(opsp)
	*relp = rel[:0]
	relocPool.Put(relp)
	s.epoch.Add(int64(nonNoops))
	s.mutators.Add(-1)
	return removed, added
}

// relocate performs ReplaceTail's arena phase under the segment lock: it
// validates the request and, unless it is a no-op, writes prefix copy plus
// new tail at the arena's end and repoints the segment. The returned old
// path is the pre-relocation arena window — never written again, so reading
// it after the lock drops is safe.
func (s *Store) relocate(id SegmentID, keep int, newTail []graph.NodeID) (old []graph.NodeID, r segRef, noop bool) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	old, r, noop = s.relocateLocked(id, keep, newTail)
	if !noop {
		s.mutators.Add(1)
	}
	return old, r, noop
}

// relocateLocked is relocate's body for a caller already holding segMu; the
// caller owns the in-flight mutator accounting (a batch counts once).
func (s *Store) relocateLocked(id SegmentID, keep int, newTail []graph.NodeID) (old []graph.NodeID, r segRef, noop bool) {
	r = s.refLocked(id)
	if keep < 1 || keep > int(r.n) {
		panic(fmt.Sprintf("walkstore: ReplaceTail keep=%d out of range for len=%d", keep, r.n))
	}
	if keep == int(r.n) && len(newTail) == 0 {
		return nil, r, true
	}
	old = s.pathLocked(r)
	off := int64(len(s.arena))
	s.arena = append(s.arena, old[:keep]...)
	s.arena = append(s.arena, newTail...)
	n := keep + len(newTail)
	s.segs[id] = segRef{off: off, n: int32(n), side: r.side, live: true}
	s.liveNodes += int64(n) - int64(r.n)
	if s.mlog != nil {
		end := off + int64(n)
		s.mlog.LogReplaceTail(id, keep, s.arena[off+int64(keep):end:end])
	}
	return old, r, false
}

// Remove deletes a segment entirely, unwinding its visits. Used when a node
// is retired or a maintainer is rebuilt. The ID is not reused. Like
// ReplaceTail, concurrent mutations of the same segment must be serialized
// by the caller.
func (s *Store) Remove(id SegmentID) {
	p, r := s.retire(id)
	opsp := tailOpPool.Get().(*[]tailOp)
	ops := (*opsp)[:0]
	ops = append(ops, tailOp{id: id, v: p[len(p)-1], kind: tailTermDec, side: r.side})
	if r.side >= 0 {
		ops = append(ops, tailOp{id: id, v: p[len(p)-1], kind: tailSidedDec, d: r.side.PendingAt(len(p) - 1), side: r.side})
	}
	for pos := len(p) - 1; pos >= 0; pos-- {
		ops = append(ops, tailOp{id: id, v: p[pos], pos: int32(pos), kind: tailVisitRemove, side: r.side})
	}
	s.applyTailOps(ops)
	*opsp = ops[:0]
	tailOpPool.Put(opsp)
	src := p[0]
	st := s.stripe(src)
	st.mu.Lock()
	s.touchStripeLocked(st)
	if ns := st.node(src); ns != nil {
		if i := slices.Index(ns.owned, id); i >= 0 {
			ns.owned = slices.Delete(ns.owned, i, i+1)
		}
		if r.side >= 0 {
			if i := slices.Index(ns.ownedSided[r.side], id); i >= 0 {
				ns.ownedSided[r.side] = slices.Delete(ns.ownedSided[r.side], i, i+1)
			}
		}
		st.maybeDelete(src, ns)
	}
	st.mu.Unlock()
	s.epoch.Add(1)
	s.mutators.Add(-1)
}

// retire performs Remove's segment-table phase under the segment lock,
// returning the (stable, still-readable) path and ref of the now-dead
// segment.
func (s *Store) retire(id SegmentID) ([]graph.NodeID, segRef) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	r := s.refLocked(id)
	s.mutators.Add(1)
	p := s.pathLocked(r)
	s.segs[id].live = false
	s.numLive--
	s.liveNodes -= int64(r.n)
	if s.mlog != nil {
		s.mlog.LogRemove(id)
	}
	return p, r
}

// Validate checks the visit counters, pending-position index, arena
// references, per-stripe residency, and the per-stripe total shares against
// the stored paths. O(total path length); for tests.
//
// Validate is only meaningful on a consistent store, and it enforces that
// itself: it acquires the segment lock plus every counter stripe (blocking
// new mutations for the duration), then checks the in-flight mutation count.
// A mutation caught between its arena phase and its counter updates holds no
// lock, so without the check it would be indistinguishable from corruption;
// with it, Validate fails loudly with ErrConcurrentMutation (wrapped, test
// with errors.Is) instead of reporting a bogus mismatch. Callers that cannot
// guarantee quiescence may also bracket Validate with Epoch() reads to learn
// how much the store moved around the pass.
func (s *Store) Validate() error {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		defer s.stripes[i].mu.RUnlock()
	}
	// With segMu and every stripe held, a mutation can neither start (the
	// arena phase needs segMu) nor advance (counter updates need a stripe),
	// so a non-zero count here is definitive, not transient.
	if n := s.mutators.Load(); n != 0 {
		return fmt.Errorf("%w: %d segment mutations in flight", ErrConcurrentMutation, n)
	}

	wantVisits := make(map[graph.NodeID]int64)
	wantTerminals := make(map[graph.NodeID]int64)
	var wantSidedVisits, wantSidedTerminals [2]map[graph.NodeID]int64
	var wantSidedTotals [2]int64
	for d := 0; d < 2; d++ {
		wantSidedVisits[d] = make(map[graph.NodeID]int64)
		wantSidedTerminals[d] = make(map[graph.NodeID]int64)
	}
	var wantPending [pendingBuckets]map[graph.NodeID]map[PosHit]bool
	for b := range wantPending {
		wantPending[b] = make(map[graph.NodeID]map[PosHit]bool)
	}
	var total, live int64
	numLive := 0
	for i := range s.segs {
		r := s.segs[i]
		if !r.live {
			continue
		}
		numLive++
		id := SegmentID(i)
		if r.n <= 0 {
			return fmt.Errorf("walkstore: segment %d has empty path", id)
		}
		if r.off < 0 || r.off+int64(r.n) > int64(len(s.arena)) {
			return fmt.Errorf("walkstore: segment %d ref (%d,%d) outside arena of %d", id, r.off, r.n, len(s.arena))
		}
		p := s.pathLocked(r)
		live += int64(len(p))
		wantTerminals[p[len(p)-1]]++
		for pos, v := range p {
			wantVisits[v]++
			total++
			if r.side >= 0 {
				d := r.side.PendingAt(pos)
				wantSidedVisits[d][v]++
				wantSidedTotals[d]++
			}
			b := pendingBucket(r.side, pos)
			if wantPending[b][v] == nil {
				wantPending[b][v] = make(map[PosHit]bool)
			}
			wantPending[b][v][PosHit{Seg: id, Pos: int32(pos)}] = true
		}
		if r.side >= 0 {
			wantSidedTerminals[r.side.PendingAt(len(p)-1)][p[len(p)-1]]++
			ns := s.stripe(p[0]).node(p[0])
			if ns == nil || !slices.Contains(ns.ownedSided[r.side], id) {
				return fmt.Errorf("walkstore: segment %d missing from sided owner index of node %d", id, p[0])
			}
		}
		ns := s.stripe(p[0]).node(p[0])
		if ns == nil || !slices.Contains(ns.owned, id) {
			return fmt.Errorf("walkstore: segment %d missing from owner index of node %d", id, p[0])
		}
	}
	if numLive != s.numLive {
		return fmt.Errorf("walkstore: numLive=%d want %d", s.numLive, numLive)
	}
	if live != s.liveNodes {
		return fmt.Errorf("walkstore: liveNodes=%d want %d", s.liveNodes, live)
	}
	if got := s.totalVisits.Load(); got != total {
		return fmt.Errorf("walkstore: totalVisits=%d want %d", got, total)
	}

	// Per-stripe checks: residency (a node's state lives in the stripe and
	// slot its ID selects), counter exactness, and the stripe total shares
	// summing to the atomic globals.
	var stripeTotal, stripeEpochSum int64
	var stripeSided [2]int64
	nVisits, nTerminals := 0, 0
	var nSidedVisits, nSidedTerminals [2]int
	var nPending [pendingBuckets]int
	var nodeErr error
	for i := range s.stripes {
		st := &s.stripes[i]
		stripeTotal += st.totalVisits
		stripeEpochSum += st.epoch.Load()
		for d := 0; d < 2; d++ {
			stripeSided[d] += st.sidedTotals[d]
		}
		numNodes := 0
		st.each(i, func(v graph.NodeID, ns *nodeState) {
			numNodes++
			if nodeErr != nil {
				return
			}
			nodeErr = func() error {
				if stripeIndex(v) != i {
					return fmt.Errorf("walkstore: node %d state resident in stripe %d, want %d", v, i, stripeIndex(v))
				}
				if uint64(v) >= denseLimit {
					if _, ok := st.sparse[v]; !ok {
						return fmt.Errorf("walkstore: node %d outside dense range but not in sparse table", v)
					}
				}
				if ns.empty() {
					return fmt.Errorf("walkstore: drained node state retained for node %d", v)
				}
				if ns.visits != wantVisits[v] {
					return fmt.Errorf("walkstore: visits[%d]=%d want %d", v, ns.visits, wantVisits[v])
				}
				if ns.visits != 0 {
					nVisits++
				}
				// The pending buckets double as the inverted visitor index
				// (one entry per visit); their exact-set check below subsumes
				// a separate per-segment multiplicity check.
				var pendingN int
				for b := 0; b < pendingBuckets; b++ {
					pendingN += ns.pending[b].n
				}
				if int64(pendingN) != ns.visits {
					return fmt.Errorf("walkstore: node %d has %d pending entries for %d visits", v, pendingN, ns.visits)
				}
				if ns.terminals != wantTerminals[v] {
					return fmt.Errorf("walkstore: terminals[%d]=%d want %d", v, ns.terminals, wantTerminals[v])
				}
				if ns.terminals != 0 {
					nTerminals++
				}
				for d := 0; d < 2; d++ {
					if ns.sidedVisits[d] != wantSidedVisits[d][v] {
						return fmt.Errorf("walkstore: sidedVisits[%d][%d]=%d want %d", d, v, ns.sidedVisits[d], wantSidedVisits[d][v])
					}
					if ns.sidedVisits[d] != 0 {
						nSidedVisits[d]++
					}
					if ns.sidedTerminals[d] != wantSidedTerminals[d][v] {
						return fmt.Errorf("walkstore: sidedTerminals[%d][%d]=%d want %d", d, v, ns.sidedTerminals[d], wantSidedTerminals[d][v])
					}
					if ns.sidedTerminals[d] != 0 {
						nSidedTerminals[d]++
					}
				}
				for b := 0; b < pendingBuckets; b++ {
					px := &ns.pending[b]
					if px.n != 0 {
						nPending[b]++
						if err := validatePosIndex(b, v, px, wantPending[b][v]); err != nil {
							return err
						}
					} else if len(wantPending[b][v]) != 0 {
						return fmt.Errorf("walkstore: pending[%d][%d] empty, want %d entries", b, v, len(wantPending[b][v]))
					}
				}
				return nil
			}()
		})
		if nodeErr != nil {
			return nodeErr
		}
		if numNodes != st.numNodes {
			return fmt.Errorf("walkstore: stripe %d tracks %d nodes, found %d", i, st.numNodes, numNodes)
		}
	}
	if nVisits != len(wantVisits) {
		return fmt.Errorf("walkstore: visit table has %d nodes, want %d", nVisits, len(wantVisits))
	}
	if nTerminals != len(wantTerminals) {
		return fmt.Errorf("walkstore: terminal table has %d nodes, want %d", nTerminals, len(wantTerminals))
	}
	if stripeTotal != total {
		return fmt.Errorf("walkstore: per-stripe visit shares sum to %d, want %d", stripeTotal, total)
	}
	// Per-stripe epoch cross-check: every mutating stripe acquisition bumps
	// its stripe's epoch and the global touch counter as a pair, so a
	// mutation path that forgot one of the bumps breaks this sum.
	if got := s.stripeTouches.Load(); stripeEpochSum != got {
		return fmt.Errorf("walkstore: per-stripe epochs sum to %d, want %d mutating stripe acquisitions", stripeEpochSum, got)
	}
	for d := 0; d < 2; d++ {
		if nSidedVisits[d] != len(wantSidedVisits[d]) {
			return fmt.Errorf("walkstore: sided visit table %d has %d nodes, want %d", d, nSidedVisits[d], len(wantSidedVisits[d]))
		}
		if nSidedTerminals[d] != len(wantSidedTerminals[d]) {
			return fmt.Errorf("walkstore: sided terminal table %d has %d nodes, want %d", d, nSidedTerminals[d], len(wantSidedTerminals[d]))
		}
		if stripeSided[d] != wantSidedTotals[d] {
			return fmt.Errorf("walkstore: per-stripe sided shares %d sum to %d, want %d", d, stripeSided[d], wantSidedTotals[d])
		}
		if got := s.sidedTotals[d].Load(); got != wantSidedTotals[d] {
			return fmt.Errorf("walkstore: sidedTotals[%d]=%d want %d", d, got, wantSidedTotals[d])
		}
	}
	for b := 0; b < pendingBuckets; b++ {
		if nPending[b] != len(wantPending[b]) {
			return fmt.Errorf("walkstore: pending index bucket %d has %d nodes, want %d", b, nPending[b], len(wantPending[b]))
		}
	}
	return nil
}

// ValidateSteps checks every stored step against the caller's edge
// predicate: step pos -> pos+1 of an unsided or forward-pending position must
// traverse an edge path[pos] -> path[pos+1] of the caller's graph, a
// backward-pending step the reverse edge. This is the deletion-path
// invariant — after any sequence of arrivals and deletions, no stored walk
// may traverse an edge that no longer exists (the reverse reroute rule
// resamples with probability 1 when the last copy of an edge goes away).
// Like Validate it requires quiescence and fails with ErrConcurrentMutation
// on a raced pass. O(total path length) plus one predicate call per step;
// for tests.
func (s *Store) ValidateSteps(hasEdge func(from, to graph.NodeID) bool) error {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		defer s.stripes[i].mu.RUnlock()
	}
	if n := s.mutators.Load(); n != 0 {
		return fmt.Errorf("%w: %d segment mutations in flight", ErrConcurrentMutation, n)
	}
	for i := range s.segs {
		r := s.segs[i]
		if !r.live {
			continue
		}
		p := s.pathLocked(r)
		for pos := 0; pos < len(p)-1; pos++ {
			from, to := p[pos], p[pos+1]
			if r.side >= 0 && r.side.PendingAt(pos) == SideBackward {
				from, to = to, from
			}
			if !hasEdge(from, to) {
				return fmt.Errorf("walkstore: segment %d step %d traverses missing edge %d->%d", i, pos, from, to)
			}
		}
	}
	return nil
}

// validatePosIndex cross-checks one node's pending-position bucket against
// the full-path recount: exact entry set, representation exclusivity, and
// sorted/duplicate-free invariants in both representations.
func validatePosIndex(b int, v graph.NodeID, px *posIndex, want map[PosHit]bool) error {
	if px.m != nil && px.list != nil {
		return fmt.Errorf("walkstore: pending[%d][%d] has both slice and map representations", b, v)
	}
	if px.n != len(want) {
		return fmt.Errorf("walkstore: pending[%d][%d] has %d entries, want %d", b, v, px.n, len(want))
	}
	if px.m != nil {
		for seg, ps := range px.m {
			if len(ps) == 0 {
				return fmt.Errorf("walkstore: pending[%d][%d] keeps empty position list for segment %d", b, v, seg)
			}
			for i, p := range ps {
				if i > 0 && ps[i-1] >= p {
					return fmt.Errorf("walkstore: pending[%d][%d] segment %d positions not strictly sorted", b, v, seg)
				}
				if !want[PosHit{Seg: seg, Pos: p}] {
					return fmt.Errorf("walkstore: pending[%d][%d] has stale entry (%d,%d)", b, v, seg, p)
				}
			}
		}
		return nil
	}
	for i, e := range px.list {
		if i > 0 && px.list[i-1] >= e {
			return fmt.Errorf("walkstore: pending[%d][%d] list not strictly sorted at %d", b, v, i)
		}
		if h := unpackEntry(e); !want[h] {
			return fmt.Errorf("walkstore: pending[%d][%d] has stale entry (%d,%d)", b, v, h.Seg, h.Pos)
		}
	}
	return nil
}
