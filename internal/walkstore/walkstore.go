package walkstore

import (
	"fmt"
	"slices"
	"sync"

	"fastppr/internal/graph"
)

// SegmentID identifies a stored segment. IDs are assigned densely from 0 and
// never reused.
type SegmentID int64

// Side tags a stored segment with the direction of its first step. PageRank
// segments are Unsided; SALSA segments are stored once per side so the
// maintainer can serve hub and authority scores from one store. The values
// mirror walk.Direction (Forward = 0, Backward = 1) so callers can convert
// with a cast.
type Side int8

const (
	// Unsided marks a plain reset-walk segment (no alternation structure).
	Unsided Side = -1
	// SideForward marks a segment whose first step follows an out-edge: an
	// alternating walk started on the hub side.
	SideForward Side = 0
	// SideBackward marks a segment whose first step follows an in-edge: an
	// alternating walk started on the authority side.
	SideBackward Side = 1
)

// PendingAt returns the direction of the step an alternating segment takes
// *from* path position pos: the first direction at even positions, its
// opposite at odd ones. Only valid on sided values.
func (s Side) PendingAt(pos int) Side {
	if s < 0 {
		panic("walkstore: PendingAt on unsided segment")
	}
	return Side(int8(s) ^ int8(pos&1))
}

func mustDir(d Side) {
	if d != SideForward && d != SideBackward {
		panic(fmt.Sprintf("walkstore: invalid direction %d", d))
	}
}

// Observer is notified of visit-count mutations: delta is +1 when a segment
// gains a visit to node at path position pos, -1 when it loses one.
type Observer func(seg SegmentID, node graph.NodeID, pos int, delta int)

// segRef addresses one segment's path inside the arena.
type segRef struct {
	off  int64
	n    int32
	side Side
	live bool
}

// hubThreshold is the visitor-set size at which the sorted-slice
// representation upgrades to a map. Sorted slices win below it (no per-node
// map allocation, cache-friendly binary search); hubs visited by thousands
// of segments need O(1) updates.
const hubThreshold = 64

// visitorSet tracks the multiset of segments visiting one node: a sorted
// (ids, counts) pair for ordinary nodes, a map for hubs. Exactly one
// representation is active at a time.
type visitorSet struct {
	ids    []SegmentID
	counts []int32
	m      map[SegmentID]int32
}

func (vs *visitorSet) distinct() int {
	if vs.m != nil {
		return len(vs.m)
	}
	return len(vs.ids)
}

func (vs *visitorSet) count(id SegmentID) int32 {
	if vs.m != nil {
		return vs.m[id]
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if !found {
		return 0
	}
	return vs.counts[i]
}

func (vs *visitorSet) add(id SegmentID) {
	if vs.m != nil {
		vs.m[id]++
		return
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if found {
		vs.counts[i]++
		return
	}
	vs.ids = slices.Insert(vs.ids, i, id)
	vs.counts = slices.Insert(vs.counts, i, 1)
	if len(vs.ids) > hubThreshold {
		vs.m = make(map[SegmentID]int32, 2*len(vs.ids))
		for j, x := range vs.ids {
			vs.m[x] = vs.counts[j]
		}
		vs.ids, vs.counts = nil, nil
	}
}

// remove drops one multiplicity of id and reports whether the set is empty.
func (vs *visitorSet) remove(id SegmentID) (empty bool) {
	if vs.m != nil {
		c := vs.m[id]
		if c == 0 {
			panic(fmt.Sprintf("walkstore: removing absent visitor %d", id))
		}
		if c == 1 {
			delete(vs.m, id)
		} else {
			vs.m[id] = c - 1
		}
		return len(vs.m) == 0
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if !found {
		panic(fmt.Sprintf("walkstore: removing absent visitor %d", id))
	}
	vs.counts[i]--
	if vs.counts[i] == 0 {
		vs.ids = slices.Delete(vs.ids, i, i+1)
		vs.counts = slices.Delete(vs.counts, i, i+1)
	}
	return len(vs.ids) == 0
}

// each calls f for every (segment, multiplicity) pair. Order is ascending by
// ID in slice mode, unspecified in map mode.
func (vs *visitorSet) each(f func(SegmentID, int32)) {
	if vs.m != nil {
		for id, c := range vs.m {
			f(id, c)
		}
		return
	}
	for i, id := range vs.ids {
		f(id, vs.counts[i])
	}
}

// Store holds walk segments with an inverted visit index. All methods are
// safe for concurrent use.
type Store struct {
	mu          sync.RWMutex
	arena       []graph.NodeID
	segs        []segRef // indexed by SegmentID
	owned       map[graph.NodeID][]SegmentID
	visitors    map[graph.NodeID]*visitorSet
	visits      map[graph.NodeID]int64 // X_v
	terminals   map[graph.NodeID]int64 // T(v): live segments ending at v
	totalVisits int64
	liveNodes   int64 // arena slots referenced by live segments
	numLive     int
	observer    Observer

	// Per-side counters over sided (alternating) segments, indexed by the
	// pending step direction of a visit: a visit at position pos of a segment
	// with first direction f has pending direction f XOR (pos&1). Visits
	// pending a Backward step are authority-side, visits pending a Forward
	// step are hub-side, so these tables are exactly the SALSA maintainer's
	// score numerators and skip-coin exponents.
	sidedVisits    [2]map[graph.NodeID]int64
	sidedTerminals [2]map[graph.NodeID]int64
	sidedTotals    [2]int64
	ownedSided     [2]map[graph.NodeID][]SegmentID
}

// New returns an empty store.
func New() *Store {
	s := &Store{
		owned:     make(map[graph.NodeID][]SegmentID),
		visitors:  make(map[graph.NodeID]*visitorSet),
		visits:    make(map[graph.NodeID]int64),
		terminals: make(map[graph.NodeID]int64),
	}
	for d := 0; d < 2; d++ {
		s.sidedVisits[d] = make(map[graph.NodeID]int64)
		s.sidedTerminals[d] = make(map[graph.NodeID]int64)
		s.ownedSided[d] = make(map[graph.NodeID][]SegmentID)
	}
	return s
}

// SetObserver installs an observer for visit mutations. Must be called
// while the store holds no live segments (fresh, or emptied for a rebuild);
// the observer then sees every mutation.
func (s *Store) SetObserver(o Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.numLive != 0 {
		panic("walkstore: SetObserver with live segments")
	}
	s.observer = o
}

// Add stores a new unsided segment owned by its first node and returns its
// ID. The path must be non-empty. The path is copied; the caller keeps
// ownership of its slice.
func (s *Store) Add(path []graph.NodeID) SegmentID {
	return s.AddSided(path, Unsided)
}

// AddSided stores a new segment tagged with the direction of its first step.
// Sided segments additionally maintain the per-side pending-direction
// counters and the per-side owner index.
func (s *Store) AddSided(path []graph.NodeID, side Side) SegmentID {
	if len(path) == 0 {
		panic("walkstore: empty segment path")
	}
	if side != Unsided {
		mustDir(side)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(path, side)
}

// AddBatch stores many unsided segments under one lock acquisition — the
// bulk-load path the parallel walk engine uses to flush a burst of finished
// segments. Every path must be non-empty; paths are copied. The returned IDs
// are in input order.
func (s *Store) AddBatch(paths [][]graph.NodeID) []SegmentID {
	return s.AddBatchSided(paths, Unsided)
}

// AddBatchSided is AddBatch with every segment tagged with one side.
func (s *Store) AddBatchSided(paths [][]graph.NodeID, side Side) []SegmentID {
	if side != Unsided {
		mustDir(side)
	}
	ids := make([]SegmentID, len(paths))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, p := range paths {
		if len(p) == 0 {
			panic("walkstore: empty segment path")
		}
		ids[i] = s.addLocked(p, side)
	}
	return ids
}

func (s *Store) addLocked(path []graph.NodeID, side Side) SegmentID {
	id := SegmentID(len(s.segs))
	off := int64(len(s.arena))
	s.arena = append(s.arena, path...)
	s.segs = append(s.segs, segRef{off: off, n: int32(len(path)), side: side, live: true})
	s.numLive++
	s.liveNodes += int64(len(path))
	src := path[0]
	s.owned[src] = append(s.owned[src], id)
	s.terminals[path[len(path)-1]]++
	if side >= 0 {
		s.ownedSided[side][src] = append(s.ownedSided[side][src], id)
		s.sidedTerminals[side.PendingAt(len(path)-1)][path[len(path)-1]]++
	}
	for pos, v := range path {
		s.addVisitLocked(id, v, pos)
	}
	return id
}

// decTerminalLocked drops one terminal count of v, clearing empty entries.
func (s *Store) decTerminalLocked(v graph.NodeID) {
	s.terminals[v]--
	if s.terminals[v] == 0 {
		delete(s.terminals, v)
	}
}

// retargetTerminalLocked moves one terminal count from old to new.
func (s *Store) retargetTerminalLocked(oldEnd, newEnd graph.NodeID) {
	if oldEnd == newEnd {
		return
	}
	s.decTerminalLocked(oldEnd)
	s.terminals[newEnd]++
}

func (s *Store) addVisitLocked(id SegmentID, v graph.NodeID, pos int) {
	vs := s.visitors[v]
	if vs == nil {
		vs = &visitorSet{}
		s.visitors[v] = vs
	}
	vs.add(id)
	s.visits[v]++
	s.totalVisits++
	if side := s.segs[id].side; side >= 0 {
		d := side.PendingAt(pos)
		s.sidedVisits[d][v]++
		s.sidedTotals[d]++
	}
	if s.observer != nil {
		s.observer(id, v, pos, +1)
	}
}

func (s *Store) removeVisitLocked(id SegmentID, v graph.NodeID, pos int) {
	vs := s.visitors[v]
	if vs == nil {
		panic(fmt.Sprintf("walkstore: removing absent visit of segment %d at node %d", id, v))
	}
	if vs.remove(id) {
		delete(s.visitors, v)
	}
	s.visits[v]--
	if s.visits[v] == 0 {
		delete(s.visits, v)
	}
	s.totalVisits--
	if side := s.segs[id].side; side >= 0 {
		d := side.PendingAt(pos)
		s.sidedVisits[d][v]--
		if s.sidedVisits[d][v] == 0 {
			delete(s.sidedVisits[d], v)
		}
		s.sidedTotals[d]--
	}
	if s.observer != nil {
		s.observer(id, v, pos, -1)
	}
}

// decSidedTerminalLocked drops one sided terminal count, clearing empties.
func (s *Store) decSidedTerminalLocked(d Side, v graph.NodeID) {
	s.sidedTerminals[d][v]--
	if s.sidedTerminals[d][v] == 0 {
		delete(s.sidedTerminals[d], v)
	}
}

// refLocked returns the live segRef for id, panicking on unknown or removed
// segments.
func (s *Store) refLocked(id SegmentID) segRef {
	if id < 0 || int(id) >= len(s.segs) || !s.segs[id].live {
		panic(fmt.Sprintf("walkstore: unknown segment %d", id))
	}
	return s.segs[id]
}

// pathLocked returns the arena window of a live segment, capacity-clamped so
// callers cannot append into the arena.
func (s *Store) pathLocked(r segRef) []graph.NodeID {
	return s.arena[r.off : r.off+int64(r.n) : r.off+int64(r.n)]
}

// Path returns the segment's node path. The returned slice must not be
// modified, but it is stable: the arena is grow-only and ReplaceTail writes
// revised paths to fresh arena space, so the slice keeps its contents even
// after later mutations of the same segment.
func (s *Store) Path(id SegmentID) []graph.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pathLocked(s.refLocked(id))
}

// OwnedBy returns the IDs of segments whose walks start at u, in insertion
// order. The returned slice is a copy.
func (s *Store) OwnedBy(u graph.NodeID) []SegmentID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SegmentID(nil), s.owned[u]...)
}

// OwnedSided returns the IDs of u's stored segments whose first step has the
// given direction, in insertion order. The returned slice is a copy.
func (s *Store) OwnedSided(u graph.NodeID, side Side) []SegmentID {
	mustDir(side)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SegmentID(nil), s.ownedSided[side][u]...)
}

// SideOf returns the side a live segment was stored with (Unsided for plain
// reset walks).
func (s *Store) SideOf(id SegmentID) Side {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.refLocked(id).side
}

// PendingVisits returns the number of stored sided visits to v whose pending
// step has direction dir (terminal visits included). Visits pending a
// Backward step are authority-side visits; pending Forward, hub-side.
func (s *Store) PendingVisits(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sidedVisits[dir][v]
}

// PendingTerminals returns the number of stored sided segments that end at v
// with a pending step of direction dir — the walks an arriving edge can
// revive when v gains its first edge in that direction.
func (s *Store) PendingTerminals(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sidedTerminals[dir][v]
}

// PendingCandidates returns the number of dir-direction steps stored sided
// segments actually take from v (pending visits minus terminals) — the exact
// exponent of the SALSA maintainer's skip coin, the sided analogue of
// Candidates.
func (s *Store) PendingCandidates(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sidedVisits[dir][v] - s.sidedTerminals[dir][v]
}

// PendingTotal returns the total number of stored sided visits pending a
// step of direction dir — the normalizer of the global hub (Forward) and
// authority (Backward) score estimates.
func (s *Store) PendingTotal(dir Side) int64 {
	mustDir(dir)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sidedTotals[dir]
}

// PendingVisitCounts returns a copy of the full pending-visit table for one
// direction, together with its total, read under one lock so the ratios form
// a consistent snapshot.
func (s *Store) PendingVisitCounts(dir Side) (counts map[graph.NodeID]int64, total int64) {
	mustDir(dir)
	s.mu.RLock()
	defer s.mu.RUnlock()
	counts = make(map[graph.NodeID]int64, len(s.sidedVisits[dir]))
	for v, x := range s.sidedVisits[dir] {
		counts[v] = x
	}
	return counts, s.sidedTotals[dir]
}

// PendingVisitFraction returns the pending-dir visit count of v together
// with the side total, read under one lock.
func (s *Store) PendingVisitFraction(v graph.NodeID, dir Side) (visits, total int64) {
	mustDir(dir)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sidedVisits[dir][v], s.sidedTotals[dir]
}

// Visitors returns the IDs of segments that visit v. Order is unspecified.
func (s *Store) Visitors(v graph.NodeID) []SegmentID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.visitors[v]
	if vs == nil {
		return nil
	}
	ids := make([]SegmentID, 0, vs.distinct())
	vs.each(func(id SegmentID, _ int32) { ids = append(ids, id) })
	return ids
}

// W returns the number of distinct segments visiting v — the paper's W(v).
func (s *Store) W(v graph.NodeID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.visitors[v]
	if vs == nil {
		return 0
	}
	return vs.distinct()
}

// Visits returns X_v, the total visit count of v across stored segments.
func (s *Store) Visits(v graph.NodeID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.visits[v]
}

// Terminals returns T(v), the number of stored segments whose path ends at v.
func (s *Store) Terminals(v graph.NodeID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.terminals[v]
}

// Candidates returns X_v - T(v): the number of outgoing walk steps stored
// segments take from v. An edge arriving at source v perturbs the store with
// probability exactly 1-(1-1/d)^Candidates(v), the quantity behind the
// incremental maintainer's skip coin (the paper states the bound with W(v),
// which coincides when segments visit v at most once and never end there).
func (s *Store) Candidates(v graph.NodeID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.visits[v] - s.terminals[v]
}

// VisitFraction returns X_v together with the total visit count, read under
// one lock so the ratio is a consistent snapshot even while updates land.
func (s *Store) VisitFraction(v graph.NodeID) (visits, total int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.visits[v], s.totalVisits
}

// TotalVisits returns the sum of X_v over all nodes (= total stored steps).
func (s *Store) TotalVisits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalVisits
}

// VisitCounts returns a copy of the full X_v table.
func (s *Store) VisitCounts() map[graph.NodeID]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[graph.NodeID]int64, len(s.visits))
	for v, x := range s.visits {
		out[v] = x
	}
	return out
}

// NumSegments returns the number of stored (live) segments.
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.numLive
}

// ArenaStats reports the arena's live and total node slots. The difference
// is garbage left behind by ReplaceTail/Remove; a future compaction pass can
// reclaim it when the ratio degrades.
func (s *Store) ArenaStats() (live, total int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveNodes, int64(len(s.arena))
}

// ReplaceTail truncates the segment to its first keep nodes (keep >= 1) and
// appends newTail, updating the visit index. It returns the number of
// removed and added visits, which the maintainer accounts as update work.
// The revised path is written to fresh arena space, so slices previously
// returned by Path keep their old contents (copy-on-truncate).
func (s *Store) ReplaceTail(id SegmentID, keep int, newTail []graph.NodeID) (removed, added int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.refLocked(id)
	if keep < 1 || keep > int(r.n) {
		panic(fmt.Sprintf("walkstore: ReplaceTail keep=%d out of range for len=%d", keep, r.n))
	}
	if keep == int(r.n) && len(newTail) == 0 {
		return 0, 0
	}
	old := s.pathLocked(r)
	newEnd := old[keep-1]
	if len(newTail) > 0 {
		newEnd = newTail[len(newTail)-1]
	}
	s.retargetTerminalLocked(old[r.n-1], newEnd)
	if r.side >= 0 {
		s.decSidedTerminalLocked(r.side.PendingAt(int(r.n)-1), old[r.n-1])
		s.sidedTerminals[r.side.PendingAt(keep+len(newTail)-1)][newEnd]++
	}
	for pos := int(r.n) - 1; pos >= keep; pos-- {
		s.removeVisitLocked(id, old[pos], pos)
		removed++
	}
	// Relocate: prefix copy plus the new tail at the arena's end. The old
	// window is never written again, keeping outstanding Path slices stable.
	off := int64(len(s.arena))
	s.arena = append(s.arena, old[:keep]...)
	s.arena = append(s.arena, newTail...)
	n := keep + len(newTail)
	s.segs[id] = segRef{off: off, n: int32(n), side: r.side, live: true}
	s.liveNodes += int64(n) - int64(r.n)
	for i, v := range newTail {
		s.addVisitLocked(id, v, keep+i)
		added++
	}
	return removed, added
}

// Remove deletes a segment entirely, unwinding its visits. Used when a node
// is retired or a maintainer is rebuilt. The ID is not reused.
func (s *Store) Remove(id SegmentID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.refLocked(id)
	p := s.pathLocked(r)
	s.decTerminalLocked(p[len(p)-1])
	if r.side >= 0 {
		s.decSidedTerminalLocked(r.side.PendingAt(len(p)-1), p[len(p)-1])
	}
	for pos := len(p) - 1; pos >= 0; pos-- {
		s.removeVisitLocked(id, p[pos], pos)
	}
	src := p[0]
	ids := s.owned[src]
	for i, x := range ids {
		if x == id {
			s.owned[src] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(s.owned[src]) == 0 {
		delete(s.owned, src)
	}
	if r.side >= 0 {
		sids := s.ownedSided[r.side][src]
		for i, x := range sids {
			if x == id {
				s.ownedSided[r.side][src] = append(sids[:i], sids[i+1:]...)
				break
			}
		}
		if len(s.ownedSided[r.side][src]) == 0 {
			delete(s.ownedSided[r.side], src)
		}
	}
	s.segs[id].live = false
	s.numLive--
	s.liveNodes -= int64(r.n)
}

// Validate checks the visit index, counters, and arena references against
// the stored paths. O(total path length); for tests.
func (s *Store) Validate() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	wantVisits := make(map[graph.NodeID]int64)
	wantVisitors := make(map[graph.NodeID]map[SegmentID]int32)
	wantTerminals := make(map[graph.NodeID]int64)
	var wantSidedVisits, wantSidedTerminals [2]map[graph.NodeID]int64
	var wantSidedTotals [2]int64
	for d := 0; d < 2; d++ {
		wantSidedVisits[d] = make(map[graph.NodeID]int64)
		wantSidedTerminals[d] = make(map[graph.NodeID]int64)
	}
	var total, live int64
	numLive := 0
	for i := range s.segs {
		r := s.segs[i]
		if !r.live {
			continue
		}
		numLive++
		id := SegmentID(i)
		if r.n <= 0 {
			return fmt.Errorf("walkstore: segment %d has empty path", id)
		}
		if r.off < 0 || r.off+int64(r.n) > int64(len(s.arena)) {
			return fmt.Errorf("walkstore: segment %d ref (%d,%d) outside arena of %d", id, r.off, r.n, len(s.arena))
		}
		p := s.pathLocked(r)
		live += int64(len(p))
		wantTerminals[p[len(p)-1]]++
		for pos, v := range p {
			wantVisits[v]++
			total++
			if wantVisitors[v] == nil {
				wantVisitors[v] = make(map[SegmentID]int32)
			}
			wantVisitors[v][id]++
			if r.side >= 0 {
				d := r.side.PendingAt(pos)
				wantSidedVisits[d][v]++
				wantSidedTotals[d]++
			}
		}
		if r.side >= 0 {
			wantSidedTerminals[r.side.PendingAt(len(p)-1)][p[len(p)-1]]++
			if !slices.Contains(s.ownedSided[r.side][p[0]], id) {
				return fmt.Errorf("walkstore: segment %d missing from sided owner index of node %d", id, p[0])
			}
		}
		if !slices.Contains(s.owned[p[0]], id) {
			return fmt.Errorf("walkstore: segment %d missing from owner index of node %d", id, p[0])
		}
	}
	if numLive != s.numLive {
		return fmt.Errorf("walkstore: numLive=%d want %d", s.numLive, numLive)
	}
	if live != s.liveNodes {
		return fmt.Errorf("walkstore: liveNodes=%d want %d", s.liveNodes, live)
	}
	if total != s.totalVisits {
		return fmt.Errorf("walkstore: totalVisits=%d want %d", s.totalVisits, total)
	}
	if len(wantVisits) != len(s.visits) {
		return fmt.Errorf("walkstore: visit table has %d nodes, want %d", len(s.visits), len(wantVisits))
	}
	for v, x := range wantVisits {
		if s.visits[v] != x {
			return fmt.Errorf("walkstore: visits[%d]=%d want %d", v, s.visits[v], x)
		}
		vs := s.visitors[v]
		if vs == nil {
			return fmt.Errorf("walkstore: missing visitor set for node %d", v)
		}
		if vs.m != nil && (vs.ids != nil || vs.counts != nil) {
			return fmt.Errorf("walkstore: visitors[%d] has both slice and map representations", v)
		}
		if vs.m == nil && !slices.IsSorted(vs.ids) {
			return fmt.Errorf("walkstore: visitors[%d] ids not sorted", v)
		}
		if vs.distinct() != len(wantVisitors[v]) {
			return fmt.Errorf("walkstore: visitors[%d] has %d segments, want %d", v, vs.distinct(), len(wantVisitors[v]))
		}
		for id, c := range wantVisitors[v] {
			if got := vs.count(id); got != c {
				return fmt.Errorf("walkstore: visitors[%d][%d]=%d want %d", v, id, got, c)
			}
		}
	}
	for v := range s.visitors {
		if wantVisits[v] == 0 {
			return fmt.Errorf("walkstore: stale visitor set for node %d", v)
		}
	}
	if len(wantTerminals) != len(s.terminals) {
		return fmt.Errorf("walkstore: terminal table has %d nodes, want %d", len(s.terminals), len(wantTerminals))
	}
	for v, c := range wantTerminals {
		if s.terminals[v] != c {
			return fmt.Errorf("walkstore: terminals[%d]=%d want %d", v, s.terminals[v], c)
		}
	}
	for id := range s.owned {
		if len(s.owned[id]) == 0 {
			return fmt.Errorf("walkstore: empty owner slot for node %d", id)
		}
	}
	for d := 0; d < 2; d++ {
		if s.sidedTotals[d] != wantSidedTotals[d] {
			return fmt.Errorf("walkstore: sidedTotals[%d]=%d want %d", d, s.sidedTotals[d], wantSidedTotals[d])
		}
		if len(s.sidedVisits[d]) != len(wantSidedVisits[d]) {
			return fmt.Errorf("walkstore: sided visit table %d has %d nodes, want %d", d, len(s.sidedVisits[d]), len(wantSidedVisits[d]))
		}
		for v, x := range wantSidedVisits[d] {
			if s.sidedVisits[d][v] != x {
				return fmt.Errorf("walkstore: sidedVisits[%d][%d]=%d want %d", d, v, s.sidedVisits[d][v], x)
			}
		}
		if len(s.sidedTerminals[d]) != len(wantSidedTerminals[d]) {
			return fmt.Errorf("walkstore: sided terminal table %d has %d nodes, want %d", d, len(s.sidedTerminals[d]), len(wantSidedTerminals[d]))
		}
		for v, x := range wantSidedTerminals[d] {
			if s.sidedTerminals[d][v] != x {
				return fmt.Errorf("walkstore: sidedTerminals[%d][%d]=%d want %d", d, v, s.sidedTerminals[d][v], x)
			}
		}
		for v := range s.ownedSided[d] {
			if len(s.ownedSided[d][v]) == 0 {
				return fmt.Errorf("walkstore: empty sided owner slot for node %d", v)
			}
		}
	}
	return nil
}
