// Package walkstore implements the paper's "PageRank Store": the database
// of random walk segments kept alongside the social graph (Section 2.2).
//
// For every node the store holds the segments that node owns, and — the key
// to cheap incremental updates — an inverted visit index mapping each node v
// to the set of segments that pass through v, plus the counters the paper
// names explicitly:
//
//	X_v  — total number of visits to v across all stored segments, the
//	       numerator of the PageRank estimate  ~pi_v = eps * X_v / (nR);
//	W(v) — number of distinct stored segments visiting v, used by the
//	       "call the PageRank Store with probability 1-(1-1/d)^W" fast path.
//
// The store is deliberately agnostic about what a segment means: it stores
// node paths. The PageRank maintainer stores reset walks; the SALSA
// maintainer stores alternating walks and keeps the per-segment direction
// bit itself. An optional observer receives every visit mutation so callers
// can maintain derived counters (SALSA's hub/authority tallies) without a
// second index.
package walkstore

import (
	"fmt"
	"sync"

	"fastppr/internal/graph"
)

// SegmentID identifies a stored segment.
type SegmentID int64

// Observer is notified of visit-count mutations: delta is +1 when a segment
// gains a visit to node at path position pos, -1 when it loses one.
type Observer func(seg SegmentID, node graph.NodeID, pos int, delta int)

// Store holds walk segments with an inverted visit index. All methods are
// safe for concurrent use.
type Store struct {
	mu          sync.RWMutex
	paths       map[SegmentID][]graph.NodeID
	owned       map[graph.NodeID][]SegmentID
	visitors    map[graph.NodeID]map[SegmentID]int // multiplicity per segment
	visits      map[graph.NodeID]int64             // X_v
	totalVisits int64
	nextID      SegmentID
	observer    Observer
}

// New returns an empty store.
func New() *Store {
	return &Store{
		paths:    make(map[SegmentID][]graph.NodeID),
		owned:    make(map[graph.NodeID][]SegmentID),
		visitors: make(map[graph.NodeID]map[SegmentID]int),
		visits:   make(map[graph.NodeID]int64),
	}
}

// SetObserver installs an observer for visit mutations. Must be called
// before any segments are added; the observer then sees every mutation.
func (s *Store) SetObserver(o Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.paths) != 0 {
		panic("walkstore: SetObserver after segments were added")
	}
	s.observer = o
}

// Add stores a new segment owned by its first node and returns its ID.
// The path must be non-empty.
func (s *Store) Add(path []graph.NodeID) SegmentID {
	if len(path) == 0 {
		panic("walkstore: empty segment path")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	p := append([]graph.NodeID(nil), path...)
	s.paths[id] = p
	src := p[0]
	s.owned[src] = append(s.owned[src], id)
	for pos, v := range p {
		s.addVisitLocked(id, v, pos)
	}
	return id
}

func (s *Store) addVisitLocked(id SegmentID, v graph.NodeID, pos int) {
	m := s.visitors[v]
	if m == nil {
		m = make(map[SegmentID]int)
		s.visitors[v] = m
	}
	m[id]++
	s.visits[v]++
	s.totalVisits++
	if s.observer != nil {
		s.observer(id, v, pos, +1)
	}
}

func (s *Store) removeVisitLocked(id SegmentID, v graph.NodeID, pos int) {
	m := s.visitors[v]
	if m == nil || m[id] == 0 {
		panic(fmt.Sprintf("walkstore: removing absent visit of segment %d at node %d", id, v))
	}
	m[id]--
	if m[id] == 0 {
		delete(m, id)
		if len(m) == 0 {
			delete(s.visitors, v)
		}
	}
	s.visits[v]--
	if s.visits[v] == 0 {
		delete(s.visits, v)
	}
	s.totalVisits--
	if s.observer != nil {
		s.observer(id, v, pos, -1)
	}
}

// Path returns the segment's node path. The returned slice must not be
// modified; it is the store's copy, shared for speed on the update hot path.
func (s *Store) Path(id SegmentID) []graph.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.paths[id]
	if !ok {
		panic(fmt.Sprintf("walkstore: unknown segment %d", id))
	}
	return p
}

// OwnedBy returns the IDs of segments whose walks start at u, in insertion
// order. The returned slice is a copy.
func (s *Store) OwnedBy(u graph.NodeID) []SegmentID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SegmentID(nil), s.owned[u]...)
}

// Visitors returns the IDs of segments that visit v. Order is unspecified.
func (s *Store) Visitors(v graph.NodeID) []SegmentID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.visitors[v]
	ids := make([]SegmentID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	return ids
}

// W returns the number of distinct segments visiting v — the paper's W(v).
func (s *Store) W(v graph.NodeID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.visitors[v])
}

// Visits returns X_v, the total visit count of v across stored segments.
func (s *Store) Visits(v graph.NodeID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.visits[v]
}

// TotalVisits returns the sum of X_v over all nodes (= total stored steps).
func (s *Store) TotalVisits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalVisits
}

// VisitCounts returns a copy of the full X_v table.
func (s *Store) VisitCounts() map[graph.NodeID]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[graph.NodeID]int64, len(s.visits))
	for v, x := range s.visits {
		out[v] = x
	}
	return out
}

// NumSegments returns the number of stored segments.
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.paths)
}

// ReplaceTail truncates the segment to its first keep nodes (keep >= 1) and
// appends newTail, updating the visit index. It returns the number of
// removed and added visits, which the maintainer accounts as update work.
func (s *Store) ReplaceTail(id SegmentID, keep int, newTail []graph.NodeID) (removed, added int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.paths[id]
	if !ok {
		panic(fmt.Sprintf("walkstore: unknown segment %d", id))
	}
	if keep < 1 || keep > len(p) {
		panic(fmt.Sprintf("walkstore: ReplaceTail keep=%d out of range for len=%d", keep, len(p)))
	}
	for pos := len(p) - 1; pos >= keep; pos-- {
		s.removeVisitLocked(id, p[pos], pos)
		removed++
	}
	p = p[:keep]
	for _, v := range newTail {
		p = append(p, v)
		s.addVisitLocked(id, v, len(p)-1)
		added++
	}
	s.paths[id] = p
	return removed, added
}

// Remove deletes a segment entirely, unwinding its visits. Used when a node
// is retired or a maintainer is rebuilt.
func (s *Store) Remove(id SegmentID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.paths[id]
	if !ok {
		panic(fmt.Sprintf("walkstore: unknown segment %d", id))
	}
	for pos := len(p) - 1; pos >= 0; pos-- {
		s.removeVisitLocked(id, p[pos], pos)
	}
	src := p[0]
	ids := s.owned[src]
	for i, x := range ids {
		if x == id {
			s.owned[src] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(s.owned[src]) == 0 {
		delete(s.owned, src)
	}
	delete(s.paths, id)
}

// Validate checks the visit index and counters against the stored paths.
// O(total path length); for tests.
func (s *Store) Validate() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	wantVisits := make(map[graph.NodeID]int64)
	wantVisitors := make(map[graph.NodeID]map[SegmentID]int)
	var total int64
	for id, p := range s.paths {
		if len(p) == 0 {
			return fmt.Errorf("walkstore: segment %d has empty path", id)
		}
		for _, v := range p {
			wantVisits[v]++
			total++
			if wantVisitors[v] == nil {
				wantVisitors[v] = make(map[SegmentID]int)
			}
			wantVisitors[v][id]++
		}
		owned := false
		for _, x := range s.owned[p[0]] {
			if x == id {
				owned = true
				break
			}
		}
		if !owned {
			return fmt.Errorf("walkstore: segment %d missing from owner index of node %d", id, p[0])
		}
	}
	if total != s.totalVisits {
		return fmt.Errorf("walkstore: totalVisits=%d want %d", s.totalVisits, total)
	}
	if len(wantVisits) != len(s.visits) {
		return fmt.Errorf("walkstore: visit table has %d nodes, want %d", len(s.visits), len(wantVisits))
	}
	for v, x := range wantVisits {
		if s.visits[v] != x {
			return fmt.Errorf("walkstore: visits[%d]=%d want %d", v, s.visits[v], x)
		}
		if len(s.visitors[v]) != len(wantVisitors[v]) {
			return fmt.Errorf("walkstore: visitors[%d] has %d segments, want %d", v, len(s.visitors[v]), len(wantVisitors[v]))
		}
		for id, c := range wantVisitors[v] {
			if s.visitors[v][id] != c {
				return fmt.Errorf("walkstore: visitors[%d][%d]=%d want %d", v, id, s.visitors[v][id], c)
			}
		}
	}
	for id := range s.owned {
		if len(s.owned[id]) == 0 {
			return fmt.Errorf("walkstore: empty owner slot for node %d", id)
		}
	}
	return nil
}
