package walkstore

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"fastppr/internal/graph"
	"fastppr/internal/stripes"
)

// SegmentID identifies a stored segment. IDs are assigned densely from 0 and
// never reused.
type SegmentID int64

// Side tags a stored segment with the direction of its first step. PageRank
// segments are Unsided; SALSA segments are stored once per side so the
// maintainer can serve hub and authority scores from one store. The values
// mirror walk.Direction (Forward = 0, Backward = 1) so callers can convert
// with a cast.
type Side int8

const (
	// Unsided marks a plain reset-walk segment (no alternation structure).
	Unsided Side = -1
	// SideForward marks a segment whose first step follows an out-edge: an
	// alternating walk started on the hub side.
	SideForward Side = 0
	// SideBackward marks a segment whose first step follows an in-edge: an
	// alternating walk started on the authority side.
	SideBackward Side = 1
)

// PendingAt returns the direction of the step an alternating segment takes
// *from* path position pos: the first direction at even positions, its
// opposite at odd ones. Only valid on sided values.
func (s Side) PendingAt(pos int) Side {
	if s < 0 {
		panic("walkstore: PendingAt on unsided segment")
	}
	return Side(int8(s) ^ int8(pos&1))
}

func mustDir(d Side) {
	if d != SideForward && d != SideBackward {
		panic(fmt.Sprintf("walkstore: invalid direction %d", d))
	}
}

// Observer is notified of visit-count mutations: delta is +1 when a segment
// gains a visit to node at path position pos, -1 when it loses one. The
// observer runs under the counter stripe lock of the visited node, so it may
// fire concurrently for different nodes.
type Observer func(seg SegmentID, node graph.NodeID, pos int, delta int)

// segRef addresses one segment's path inside the arena.
type segRef struct {
	off  int64
	n    int32
	side Side
	live bool
}

// hubThreshold is the visitor-set size at which the sorted-slice
// representation upgrades to a map. Sorted slices win below it (no per-node
// map allocation, cache-friendly binary search); hubs visited by thousands
// of segments need O(1) updates.
const hubThreshold = 64

// visitorSet tracks the multiset of segments visiting one node: a sorted
// (ids, counts) pair for ordinary nodes, a map for hubs. Exactly one
// representation is active at a time.
type visitorSet struct {
	ids    []SegmentID
	counts []int32
	m      map[SegmentID]int32
}

func (vs *visitorSet) distinct() int {
	if vs.m != nil {
		return len(vs.m)
	}
	return len(vs.ids)
}

func (vs *visitorSet) count(id SegmentID) int32 {
	if vs.m != nil {
		return vs.m[id]
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if !found {
		return 0
	}
	return vs.counts[i]
}

func (vs *visitorSet) add(id SegmentID) {
	if vs.m != nil {
		vs.m[id]++
		return
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if found {
		vs.counts[i]++
		return
	}
	vs.ids = slices.Insert(vs.ids, i, id)
	vs.counts = slices.Insert(vs.counts, i, 1)
	if len(vs.ids) > hubThreshold {
		vs.m = make(map[SegmentID]int32, 2*len(vs.ids))
		for j, x := range vs.ids {
			vs.m[x] = vs.counts[j]
		}
		vs.ids, vs.counts = nil, nil
	}
}

// remove drops one multiplicity of id and reports whether the set is empty.
func (vs *visitorSet) remove(id SegmentID) (empty bool) {
	if vs.m != nil {
		c := vs.m[id]
		if c == 0 {
			panic(fmt.Sprintf("walkstore: removing absent visitor %d", id))
		}
		if c == 1 {
			delete(vs.m, id)
		} else {
			vs.m[id] = c - 1
		}
		return len(vs.m) == 0
	}
	i, found := slices.BinarySearch(vs.ids, id)
	if !found {
		panic(fmt.Sprintf("walkstore: removing absent visitor %d", id))
	}
	vs.counts[i]--
	if vs.counts[i] == 0 {
		vs.ids = slices.Delete(vs.ids, i, i+1)
		vs.counts = slices.Delete(vs.counts, i, i+1)
	}
	return len(vs.ids) == 0
}

// each calls f for every (segment, multiplicity) pair. Order is ascending by
// ID in slice mode, unspecified in map mode.
func (vs *visitorSet) each(f func(SegmentID, int32)) {
	if vs.m != nil {
		for id, c := range vs.m {
			f(id, c)
		}
		return
	}
	for i, id := range vs.ids {
		f(id, vs.counts[i])
	}
}

// numStripes is the number of counter stripes the per-node tables are
// sharded into. Power of two so stripe selection is a mask.
const numStripes = 64

// counterStripe owns the per-node index and counters for the nodes hashing
// to it, plus this stripe's share of the global visit totals. Everything a
// single node's skip coin needs — visits, terminals, candidates, visitor
// set, sided variants — lives under one stripe lock, so a maintainer reads a
// consistent per-node view with one acquisition while unrelated nodes
// proceed in parallel.
type counterStripe struct {
	mu        sync.RWMutex
	visitors  map[graph.NodeID]*visitorSet
	visits    map[graph.NodeID]int64 // X_v
	terminals map[graph.NodeID]int64 // T(v): live segments ending at v
	owned     map[graph.NodeID][]SegmentID

	// Per-side counters over sided (alternating) segments, indexed by the
	// pending step direction of a visit: a visit at position pos of a segment
	// with first direction f has pending direction f XOR (pos&1). Visits
	// pending a Backward step are authority-side, visits pending a Forward
	// step are hub-side, so these tables are exactly the SALSA maintainer's
	// score numerators and skip-coin exponents.
	sidedVisits    [2]map[graph.NodeID]int64
	sidedTerminals [2]map[graph.NodeID]int64
	ownedSided     [2]map[graph.NodeID][]SegmentID

	// Stripe shares of the global totals; Validate cross-checks that they
	// sum to the atomic globals and to a recount from the stored paths.
	totalVisits int64
	sidedTotals [2]int64
}

// Store holds walk segments with an inverted visit index. Reads are safe for
// arbitrary concurrent use. Mutations of *different* segments are safe
// concurrently; mutations of the same segment (ReplaceTail/Remove on one ID)
// must be serialized by the caller — the engine and both maintainers hold
// SegmentID stripe locks for exactly this. Counter state is sharded into
// numStripes lock stripes by node, so per-node reads and updates of
// unrelated nodes do not contend.
type Store struct {
	segMu     sync.RWMutex // guards arena, segs, numLive, liveNodes, observer
	arena     []graph.NodeID
	segs      []segRef // indexed by SegmentID
	numLive   int
	liveNodes int64 // arena slots referenced by live segments
	observer  Observer

	// Global counter mirrors, updated inside the stripe-locked sections.
	// Individually exact at any instant; the pair (per-node count, global
	// total) is only mutually consistent at quiescent points — see
	// docs/DESIGN.md#6-concurrency-model for the snapshot semantics.
	totalVisits atomic.Int64
	sidedTotals [2]atomic.Int64

	// epoch counts completed segment mutations (Add/ReplaceTail/Remove). A
	// reader brackets work with two Epoch() calls to learn whether — and how
	// much — the store moved underneath it.
	epoch atomic.Int64

	stripes [numStripes]counterStripe
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.visitors = make(map[graph.NodeID]*visitorSet)
		st.visits = make(map[graph.NodeID]int64)
		st.terminals = make(map[graph.NodeID]int64)
		st.owned = make(map[graph.NodeID][]SegmentID)
		for d := 0; d < 2; d++ {
			st.sidedVisits[d] = make(map[graph.NodeID]int64)
			st.sidedTerminals[d] = make(map[graph.NodeID]int64)
			st.ownedSided[d] = make(map[graph.NodeID][]SegmentID)
		}
	}
	return s
}

// stripeIndex returns the counter stripe index of node v.
func stripeIndex(v graph.NodeID) int {
	return int((stripes.Hash(uint64(v)) >> 32) & (numStripes - 1))
}

// stripe returns the counter stripe owning node v.
func (s *Store) stripe(v graph.NodeID) *counterStripe {
	return &s.stripes[stripeIndex(v)]
}

// NumStripes returns the number of counter stripes (for tests and bench
// provenance).
func (s *Store) NumStripes() int { return numStripes }

// Epoch returns the number of completed segment mutations. Monotone;
// bracketing a read-only pass with two Epoch calls bounds how many mutations
// landed during it.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// SetObserver installs an observer for visit mutations. Must be called
// while the store holds no live segments (fresh, or emptied for a rebuild);
// the observer then sees every mutation.
func (s *Store) SetObserver(o Observer) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if s.numLive != 0 {
		panic("walkstore: SetObserver with live segments")
	}
	s.observer = o
}

// Add stores a new unsided segment owned by its first node and returns its
// ID. The path must be non-empty. The path is copied; the caller keeps
// ownership of its slice.
func (s *Store) Add(path []graph.NodeID) SegmentID {
	return s.AddSided(path, Unsided)
}

// AddSided stores a new segment tagged with the direction of its first step.
// Sided segments additionally maintain the per-side pending-direction
// counters and the per-side owner index.
func (s *Store) AddSided(path []graph.NodeID, side Side) SegmentID {
	if len(path) == 0 {
		panic("walkstore: empty segment path")
	}
	if side != Unsided {
		mustDir(side)
	}
	id, stored := s.appendSegment(path, side)
	s.indexSegment(id, stored, side)
	s.epoch.Add(1)
	return id
}

// AddBatch stores many unsided segments under one arena-lock acquisition —
// the bulk-load path the parallel walk engine uses to flush a burst of
// finished segments. Every path must be non-empty; paths are copied. The
// returned IDs are in input order.
func (s *Store) AddBatch(paths [][]graph.NodeID) []SegmentID {
	return s.AddBatchSided(paths, Unsided)
}

// AddBatchSided is AddBatch with every segment tagged with one side.
func (s *Store) AddBatchSided(paths [][]graph.NodeID, side Side) []SegmentID {
	if side != Unsided {
		mustDir(side)
	}
	ids := make([]SegmentID, len(paths))
	stored := make([][]graph.NodeID, len(paths))
	s.segMu.Lock()
	for i, p := range paths {
		if len(p) == 0 {
			s.segMu.Unlock()
			panic("walkstore: empty segment path")
		}
		ids[i], stored[i] = s.appendSegmentLocked(p, side)
	}
	s.segMu.Unlock()
	for i, p := range stored {
		s.indexSegment(ids[i], p, side)
	}
	s.epoch.Add(int64(len(paths)))
	return ids
}

// appendSegment writes one segment into the arena under the segment lock and
// returns its ID together with the arena-resident copy of the path (stable
// forever, safe to read after the lock is released).
func (s *Store) appendSegment(path []graph.NodeID, side Side) (SegmentID, []graph.NodeID) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	return s.appendSegmentLocked(path, side)
}

func (s *Store) appendSegmentLocked(path []graph.NodeID, side Side) (SegmentID, []graph.NodeID) {
	id := SegmentID(len(s.segs))
	off := int64(len(s.arena))
	s.arena = append(s.arena, path...)
	s.segs = append(s.segs, segRef{off: off, n: int32(len(path)), side: side, live: true})
	s.numLive++
	s.liveNodes += int64(len(path))
	return id, s.arena[off : off+int64(len(path)) : off+int64(len(path))]
}

// indexSegment registers a freshly appended segment in the per-node counter
// stripes: owner index, terminal counters, and one visit per path position.
func (s *Store) indexSegment(id SegmentID, path []graph.NodeID, side Side) {
	src := path[0]
	st := s.stripe(src)
	st.mu.Lock()
	st.owned[src] = append(st.owned[src], id)
	if side >= 0 {
		st.ownedSided[side][src] = append(st.ownedSided[side][src], id)
	}
	st.mu.Unlock()

	end := path[len(path)-1]
	st = s.stripe(end)
	st.mu.Lock()
	st.terminals[end]++
	if side >= 0 {
		st.sidedTerminals[side.PendingAt(len(path)-1)][end]++
	}
	st.mu.Unlock()

	for pos, v := range path {
		s.addVisit(id, v, pos, side)
	}
}

func (s *Store) addVisit(id SegmentID, v graph.NodeID, pos int, side Side) {
	st := s.stripe(v)
	st.mu.Lock()
	vs := st.visitors[v]
	if vs == nil {
		vs = &visitorSet{}
		st.visitors[v] = vs
	}
	vs.add(id)
	st.visits[v]++
	st.totalVisits++
	s.totalVisits.Add(1)
	if side >= 0 {
		d := side.PendingAt(pos)
		st.sidedVisits[d][v]++
		st.sidedTotals[d]++
		s.sidedTotals[d].Add(1)
	}
	if s.observer != nil {
		s.observer(id, v, pos, +1)
	}
	st.mu.Unlock()
}

func (s *Store) removeVisit(id SegmentID, v graph.NodeID, pos int, side Side) {
	st := s.stripe(v)
	st.mu.Lock()
	vs := st.visitors[v]
	if vs == nil {
		st.mu.Unlock()
		panic(fmt.Sprintf("walkstore: removing absent visit of segment %d at node %d", id, v))
	}
	if vs.remove(id) {
		delete(st.visitors, v)
	}
	st.visits[v]--
	if st.visits[v] == 0 {
		delete(st.visits, v)
	}
	st.totalVisits--
	s.totalVisits.Add(-1)
	if side >= 0 {
		d := side.PendingAt(pos)
		st.sidedVisits[d][v]--
		if st.sidedVisits[d][v] == 0 {
			delete(st.sidedVisits[d], v)
		}
		st.sidedTotals[d]--
		s.sidedTotals[d].Add(-1)
	}
	if s.observer != nil {
		s.observer(id, v, pos, -1)
	}
	st.mu.Unlock()
}

// decTerminal drops one terminal count of v, clearing empty entries.
func (s *Store) decTerminal(v graph.NodeID) {
	st := s.stripe(v)
	st.mu.Lock()
	st.terminals[v]--
	if st.terminals[v] == 0 {
		delete(st.terminals, v)
	}
	st.mu.Unlock()
}

func (s *Store) incTerminal(v graph.NodeID) {
	st := s.stripe(v)
	st.mu.Lock()
	st.terminals[v]++
	st.mu.Unlock()
}

// decSidedTerminal drops one sided terminal count, clearing empties.
func (s *Store) decSidedTerminal(d Side, v graph.NodeID) {
	st := s.stripe(v)
	st.mu.Lock()
	st.sidedTerminals[d][v]--
	if st.sidedTerminals[d][v] == 0 {
		delete(st.sidedTerminals[d], v)
	}
	st.mu.Unlock()
}

func (s *Store) incSidedTerminal(d Side, v graph.NodeID) {
	st := s.stripe(v)
	st.mu.Lock()
	st.sidedTerminals[d][v]++
	st.mu.Unlock()
}

// refLocked returns the live segRef for id, panicking on unknown or removed
// segments. Caller holds segMu.
func (s *Store) refLocked(id SegmentID) segRef {
	if id < 0 || int(id) >= len(s.segs) || !s.segs[id].live {
		panic(fmt.Sprintf("walkstore: unknown segment %d", id))
	}
	return s.segs[id]
}

// pathLocked returns the arena window of a live segment, capacity-clamped so
// callers cannot append into the arena.
func (s *Store) pathLocked(r segRef) []graph.NodeID {
	return s.arena[r.off : r.off+int64(r.n) : r.off+int64(r.n)]
}

// Path returns the segment's node path. The returned slice must not be
// modified, but it is stable: the arena is grow-only and ReplaceTail writes
// revised paths to fresh arena space, so the slice keeps its contents even
// after later mutations of the same segment. This stability is what lets
// concurrent readers (the query layer's splices, the maintainers' scans)
// hold a coherent path with no copy while mutations continue.
func (s *Store) Path(id SegmentID) []graph.NodeID {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.pathLocked(s.refLocked(id))
}

// OwnedBy returns the IDs of segments whose walks start at u, in insertion
// order. The returned slice is a copy.
func (s *Store) OwnedBy(u graph.NodeID) []SegmentID {
	st := s.stripe(u)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]SegmentID(nil), st.owned[u]...)
}

// OwnedSided returns the IDs of u's stored segments whose first step has the
// given direction, in insertion order. The returned slice is a copy.
func (s *Store) OwnedSided(u graph.NodeID, side Side) []SegmentID {
	mustDir(side)
	st := s.stripe(u)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]SegmentID(nil), st.ownedSided[side][u]...)
}

// SideOf returns the side a live segment was stored with (Unsided for plain
// reset walks).
func (s *Store) SideOf(id SegmentID) Side {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.refLocked(id).side
}

// PendingVisits returns the number of stored sided visits to v whose pending
// step has direction dir (terminal visits included). Visits pending a
// Backward step are authority-side visits; pending Forward, hub-side.
func (s *Store) PendingVisits(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.sidedVisits[dir][v]
}

// PendingTerminals returns the number of stored sided segments that end at v
// with a pending step of direction dir — the walks an arriving edge can
// revive when v gains its first edge in that direction.
func (s *Store) PendingTerminals(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.sidedTerminals[dir][v]
}

// PendingCandidates returns the number of dir-direction steps stored sided
// segments actually take from v (pending visits minus terminals) — the exact
// exponent of the SALSA maintainer's skip coin, the sided analogue of
// Candidates. Both counts are read under v's stripe lock, so the difference
// is a consistent per-node snapshot even while other nodes mutate.
func (s *Store) PendingCandidates(v graph.NodeID, dir Side) int64 {
	mustDir(dir)
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.sidedVisits[dir][v] - st.sidedTerminals[dir][v]
}

// PendingTotal returns the total number of stored sided visits pending a
// step of direction dir — the normalizer of the global hub (Forward) and
// authority (Backward) score estimates.
func (s *Store) PendingTotal(dir Side) int64 {
	mustDir(dir)
	return s.sidedTotals[dir].Load()
}

// PendingVisitCounts returns a copy of the full pending-visit table for one
// direction, together with its total. Each stripe is read under its own
// lock, so the copy is per-stripe consistent; at a quiescent point it is
// exact, and the total is the sum of the per-stripe shares read under the
// same locks as their counts.
func (s *Store) PendingVisitCounts(dir Side) (counts map[graph.NodeID]int64, total int64) {
	mustDir(dir)
	size := 0
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		size += len(s.stripes[i].sidedVisits[dir])
		s.stripes[i].mu.RUnlock()
	}
	counts = make(map[graph.NodeID]int64, size)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for v, x := range st.sidedVisits[dir] {
			counts[v] = x
		}
		total += st.sidedTotals[dir]
		st.mu.RUnlock()
	}
	return counts, total
}

// PendingVisitFraction returns the pending-dir visit count of v together
// with the side total. The count is read under v's stripe lock; the total is
// the atomic global, so under concurrent mutation the ratio has bounded skew
// (at most the mutations in flight) rather than lock-exact consistency.
func (s *Store) PendingVisitFraction(v graph.NodeID, dir Side) (visits, total int64) {
	mustDir(dir)
	st := s.stripe(v)
	st.mu.RLock()
	visits = st.sidedVisits[dir][v]
	st.mu.RUnlock()
	return visits, s.sidedTotals[dir].Load()
}

// Visitors returns the IDs of segments that visit v. Order is unspecified.
func (s *Store) Visitors(v graph.NodeID) []SegmentID {
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	vs := st.visitors[v]
	if vs == nil {
		return nil
	}
	ids := make([]SegmentID, 0, vs.distinct())
	vs.each(func(id SegmentID, _ int32) { ids = append(ids, id) })
	return ids
}

// W returns the number of distinct segments visiting v — the paper's W(v).
func (s *Store) W(v graph.NodeID) int {
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	vs := st.visitors[v]
	if vs == nil {
		return 0
	}
	return vs.distinct()
}

// Visits returns X_v, the total visit count of v across stored segments.
func (s *Store) Visits(v graph.NodeID) int64 {
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.visits[v]
}

// Terminals returns T(v), the number of stored segments whose path ends at v.
func (s *Store) Terminals(v graph.NodeID) int64 {
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.terminals[v]
}

// Candidates returns X_v - T(v): the number of outgoing walk steps stored
// segments take from v. An edge arriving at source v perturbs the store with
// probability exactly 1-(1-1/d)^Candidates(v), the quantity behind the
// incremental maintainer's skip coin (the paper states the bound with W(v),
// which coincides when segments visit v at most once and never end there).
// Both counts live under v's stripe lock, so the difference is a consistent
// per-node snapshot.
func (s *Store) Candidates(v graph.NodeID) int64 {
	st := s.stripe(v)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.visits[v] - st.terminals[v]
}

// VisitFraction returns X_v together with the total visit count. The count
// is read under v's stripe lock, the total atomically; see
// PendingVisitFraction for the skew bound under concurrent mutation.
func (s *Store) VisitFraction(v graph.NodeID) (visits, total int64) {
	st := s.stripe(v)
	st.mu.RLock()
	visits = st.visits[v]
	st.mu.RUnlock()
	return visits, s.totalVisits.Load()
}

// TotalVisits returns the sum of X_v over all nodes (= total stored steps).
func (s *Store) TotalVisits() int64 {
	return s.totalVisits.Load()
}

// VisitCounts returns a copy of the full X_v table, per-stripe consistent
// (exact at quiescent points).
func (s *Store) VisitCounts() map[graph.NodeID]int64 {
	size := 0
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		size += len(s.stripes[i].visits)
		s.stripes[i].mu.RUnlock()
	}
	out := make(map[graph.NodeID]int64, size)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for v, x := range st.visits {
			out[v] = x
		}
		st.mu.RUnlock()
	}
	return out
}

// NumSegments returns the number of stored (live) segments.
func (s *Store) NumSegments() int {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.numLive
}

// ArenaStats reports the arena's live and total node slots. The difference
// is garbage left behind by ReplaceTail/Remove; a future compaction pass can
// reclaim it when the ratio degrades.
func (s *Store) ArenaStats() (live, total int64) {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.liveNodes, int64(len(s.arena))
}

// ReplaceTail truncates the segment to its first keep nodes (keep >= 1) and
// appends newTail, updating the visit index. It returns the number of
// removed and added visits, which the maintainer accounts as update work.
// The revised path is written to fresh arena space, so slices previously
// returned by Path keep their old contents (copy-on-truncate). Concurrent
// ReplaceTail/Remove calls on the same segment must be serialized by the
// caller; calls on distinct segments may run concurrently.
func (s *Store) ReplaceTail(id SegmentID, keep int, newTail []graph.NodeID) (removed, added int) {
	old, r, noop := s.relocate(id, keep, newTail)
	if noop {
		return 0, 0
	}
	n := keep + len(newTail)
	newEnd := old[keep-1]
	if len(newTail) > 0 {
		newEnd = newTail[len(newTail)-1]
	}
	oldEnd := old[r.n-1]
	if oldEnd != newEnd {
		s.decTerminal(oldEnd)
		s.incTerminal(newEnd)
	}
	if r.side >= 0 {
		oldD := r.side.PendingAt(int(r.n) - 1)
		newD := r.side.PendingAt(n - 1)
		if oldEnd != newEnd || oldD != newD {
			s.decSidedTerminal(oldD, oldEnd)
			s.incSidedTerminal(newD, newEnd)
		}
	}
	for pos := int(r.n) - 1; pos >= keep; pos-- {
		s.removeVisit(id, old[pos], pos, r.side)
		removed++
	}
	for i, v := range newTail {
		s.addVisit(id, v, keep+i, r.side)
		added++
	}
	s.epoch.Add(1)
	return removed, added
}

// relocate performs ReplaceTail's arena phase under the segment lock: it
// validates the request and, unless it is a no-op, writes prefix copy plus
// new tail at the arena's end and repoints the segment. The returned old
// path is the pre-relocation arena window — never written again, so reading
// it after the lock drops is safe.
func (s *Store) relocate(id SegmentID, keep int, newTail []graph.NodeID) (old []graph.NodeID, r segRef, noop bool) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	r = s.refLocked(id)
	if keep < 1 || keep > int(r.n) {
		panic(fmt.Sprintf("walkstore: ReplaceTail keep=%d out of range for len=%d", keep, r.n))
	}
	if keep == int(r.n) && len(newTail) == 0 {
		return nil, r, true
	}
	old = s.pathLocked(r)
	off := int64(len(s.arena))
	s.arena = append(s.arena, old[:keep]...)
	s.arena = append(s.arena, newTail...)
	n := keep + len(newTail)
	s.segs[id] = segRef{off: off, n: int32(n), side: r.side, live: true}
	s.liveNodes += int64(n) - int64(r.n)
	return old, r, false
}

// Remove deletes a segment entirely, unwinding its visits. Used when a node
// is retired or a maintainer is rebuilt. The ID is not reused. Like
// ReplaceTail, concurrent mutations of the same segment must be serialized
// by the caller.
func (s *Store) Remove(id SegmentID) {
	p, r := s.retire(id)
	s.decTerminal(p[len(p)-1])
	if r.side >= 0 {
		s.decSidedTerminal(r.side.PendingAt(len(p)-1), p[len(p)-1])
	}
	for pos := len(p) - 1; pos >= 0; pos-- {
		s.removeVisit(id, p[pos], pos, r.side)
	}
	src := p[0]
	st := s.stripe(src)
	st.mu.Lock()
	ids := st.owned[src]
	for i, x := range ids {
		if x == id {
			st.owned[src] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(st.owned[src]) == 0 {
		delete(st.owned, src)
	}
	if r.side >= 0 {
		sids := st.ownedSided[r.side][src]
		for i, x := range sids {
			if x == id {
				st.ownedSided[r.side][src] = append(sids[:i], sids[i+1:]...)
				break
			}
		}
		if len(st.ownedSided[r.side][src]) == 0 {
			delete(st.ownedSided[r.side], src)
		}
	}
	st.mu.Unlock()
	s.epoch.Add(1)
}

// retire performs Remove's segment-table phase under the segment lock,
// returning the (stable, still-readable) path and ref of the now-dead
// segment.
func (s *Store) retire(id SegmentID) ([]graph.NodeID, segRef) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	r := s.refLocked(id)
	p := s.pathLocked(r)
	s.segs[id].live = false
	s.numLive--
	s.liveNodes -= int64(r.n)
	return p, r
}

// Validate checks the visit index, counters, arena references, per-stripe
// residency, and the per-stripe total shares against the stored paths.
// O(total path length); for tests. Validate assumes a quiescent store: it
// takes every lock, but a mutation caught mid-flight (between its arena
// write and its counter updates) is indistinguishable from corruption, so
// call it only while no mutation is in progress.
func (s *Store) Validate() error {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		defer s.stripes[i].mu.RUnlock()
	}

	wantVisits := make(map[graph.NodeID]int64)
	wantVisitors := make(map[graph.NodeID]map[SegmentID]int32)
	wantTerminals := make(map[graph.NodeID]int64)
	var wantSidedVisits, wantSidedTerminals [2]map[graph.NodeID]int64
	var wantSidedTotals [2]int64
	for d := 0; d < 2; d++ {
		wantSidedVisits[d] = make(map[graph.NodeID]int64)
		wantSidedTerminals[d] = make(map[graph.NodeID]int64)
	}
	var total, live int64
	numLive := 0
	for i := range s.segs {
		r := s.segs[i]
		if !r.live {
			continue
		}
		numLive++
		id := SegmentID(i)
		if r.n <= 0 {
			return fmt.Errorf("walkstore: segment %d has empty path", id)
		}
		if r.off < 0 || r.off+int64(r.n) > int64(len(s.arena)) {
			return fmt.Errorf("walkstore: segment %d ref (%d,%d) outside arena of %d", id, r.off, r.n, len(s.arena))
		}
		p := s.pathLocked(r)
		live += int64(len(p))
		wantTerminals[p[len(p)-1]]++
		for pos, v := range p {
			wantVisits[v]++
			total++
			if wantVisitors[v] == nil {
				wantVisitors[v] = make(map[SegmentID]int32)
			}
			wantVisitors[v][id]++
			if r.side >= 0 {
				d := r.side.PendingAt(pos)
				wantSidedVisits[d][v]++
				wantSidedTotals[d]++
			}
		}
		if r.side >= 0 {
			wantSidedTerminals[r.side.PendingAt(len(p)-1)][p[len(p)-1]]++
			if !slices.Contains(s.stripe(p[0]).ownedSided[r.side][p[0]], id) {
				return fmt.Errorf("walkstore: segment %d missing from sided owner index of node %d", id, p[0])
			}
		}
		if !slices.Contains(s.stripe(p[0]).owned[p[0]], id) {
			return fmt.Errorf("walkstore: segment %d missing from owner index of node %d", id, p[0])
		}
	}
	if numLive != s.numLive {
		return fmt.Errorf("walkstore: numLive=%d want %d", s.numLive, numLive)
	}
	if live != s.liveNodes {
		return fmt.Errorf("walkstore: liveNodes=%d want %d", s.liveNodes, live)
	}
	if got := s.totalVisits.Load(); got != total {
		return fmt.Errorf("walkstore: totalVisits=%d want %d", got, total)
	}

	// Per-stripe checks: residency (a node's counters live in its hash
	// stripe), counter exactness, and the stripe total shares summing to the
	// atomic globals.
	var stripeTotal int64
	var stripeSided [2]int64
	nVisits, nTerminals := 0, 0
	var nSidedVisits, nSidedTerminals [2]int
	for i := range s.stripes {
		st := &s.stripes[i]
		stripeTotal += st.totalVisits
		for d := 0; d < 2; d++ {
			stripeSided[d] += st.sidedTotals[d]
			nSidedVisits[d] += len(st.sidedVisits[d])
			nSidedTerminals[d] += len(st.sidedTerminals[d])
			for v := range st.sidedVisits[d] {
				if stripeIndex(v) != i {
					return fmt.Errorf("walkstore: node %d sided visits resident in stripe %d, want %d", v, i, stripeIndex(v))
				}
			}
			for v := range st.ownedSided[d] {
				if len(st.ownedSided[d][v]) == 0 {
					return fmt.Errorf("walkstore: empty sided owner slot for node %d", v)
				}
			}
		}
		nVisits += len(st.visits)
		nTerminals += len(st.terminals)
		for v, x := range st.visits {
			if stripeIndex(v) != i {
				return fmt.Errorf("walkstore: node %d counters resident in stripe %d, want %d", v, i, stripeIndex(v))
			}
			if wantVisits[v] != x {
				return fmt.Errorf("walkstore: visits[%d]=%d want %d", v, x, wantVisits[v])
			}
			vs := st.visitors[v]
			if vs == nil {
				return fmt.Errorf("walkstore: missing visitor set for node %d", v)
			}
			if vs.m != nil && (vs.ids != nil || vs.counts != nil) {
				return fmt.Errorf("walkstore: visitors[%d] has both slice and map representations", v)
			}
			if vs.m == nil && !slices.IsSorted(vs.ids) {
				return fmt.Errorf("walkstore: visitors[%d] ids not sorted", v)
			}
			if vs.distinct() != len(wantVisitors[v]) {
				return fmt.Errorf("walkstore: visitors[%d] has %d segments, want %d", v, vs.distinct(), len(wantVisitors[v]))
			}
			for id, c := range wantVisitors[v] {
				if got := vs.count(id); got != c {
					return fmt.Errorf("walkstore: visitors[%d][%d]=%d want %d", v, id, got, c)
				}
			}
		}
		for v := range st.visitors {
			if wantVisits[v] == 0 {
				return fmt.Errorf("walkstore: stale visitor set for node %d", v)
			}
		}
		for v, c := range st.terminals {
			if wantTerminals[v] != c {
				return fmt.Errorf("walkstore: terminals[%d]=%d want %d", v, c, wantTerminals[v])
			}
		}
		for v := range st.owned {
			if len(st.owned[v]) == 0 {
				return fmt.Errorf("walkstore: empty owner slot for node %d", v)
			}
		}
		for d := 0; d < 2; d++ {
			for v, x := range st.sidedVisits[d] {
				if wantSidedVisits[d][v] != x {
					return fmt.Errorf("walkstore: sidedVisits[%d][%d]=%d want %d", d, v, x, wantSidedVisits[d][v])
				}
			}
			for v, x := range st.sidedTerminals[d] {
				if wantSidedTerminals[d][v] != x {
					return fmt.Errorf("walkstore: sidedTerminals[%d][%d]=%d want %d", d, v, x, wantSidedTerminals[d][v])
				}
			}
		}
	}
	if nVisits != len(wantVisits) {
		return fmt.Errorf("walkstore: visit table has %d nodes, want %d", nVisits, len(wantVisits))
	}
	if nTerminals != len(wantTerminals) {
		return fmt.Errorf("walkstore: terminal table has %d nodes, want %d", nTerminals, len(wantTerminals))
	}
	if stripeTotal != total {
		return fmt.Errorf("walkstore: per-stripe visit shares sum to %d, want %d", stripeTotal, total)
	}
	for d := 0; d < 2; d++ {
		if nSidedVisits[d] != len(wantSidedVisits[d]) {
			return fmt.Errorf("walkstore: sided visit table %d has %d nodes, want %d", d, nSidedVisits[d], len(wantSidedVisits[d]))
		}
		if nSidedTerminals[d] != len(wantSidedTerminals[d]) {
			return fmt.Errorf("walkstore: sided terminal table %d has %d nodes, want %d", d, nSidedTerminals[d], len(wantSidedTerminals[d]))
		}
		if stripeSided[d] != wantSidedTotals[d] {
			return fmt.Errorf("walkstore: per-stripe sided shares %d sum to %d, want %d", d, stripeSided[d], wantSidedTotals[d])
		}
		if got := s.sidedTotals[d].Load(); got != wantSidedTotals[d] {
			return fmt.Errorf("walkstore: sidedTotals[%d]=%d want %d", d, got, wantSidedTotals[d])
		}
	}
	return nil
}
