package walkstore

import (
	"math/rand/v2"
	"testing"

	"fastppr/internal/graph"
)

// sidedBrute recomputes every sided counter from the stored paths.
type sidedBrute struct {
	visits    [2]map[graph.NodeID]int64
	terminals [2]map[graph.NodeID]int64
	totals    [2]int64
}

func bruteSided(s *Store, live map[SegmentID]bool) sidedBrute {
	var b sidedBrute
	for d := 0; d < 2; d++ {
		b.visits[d] = make(map[graph.NodeID]int64)
		b.terminals[d] = make(map[graph.NodeID]int64)
	}
	for id := range live {
		side := s.SideOf(id)
		if side < 0 {
			continue
		}
		p := s.Path(id)
		for pos, v := range p {
			d := side.PendingAt(pos)
			b.visits[d][v]++
			b.totals[d]++
		}
		b.terminals[side.PendingAt(len(p)-1)][p[len(p)-1]]++
	}
	return b
}

func checkSided(t *testing.T, s *Store, live map[SegmentID]bool, nodes []graph.NodeID) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	b := bruteSided(s, live)
	for d := Side(0); d < 2; d++ {
		if got := s.PendingTotal(d); got != b.totals[d] {
			t.Fatalf("PendingTotal(%d)=%d want %d", d, got, b.totals[d])
		}
		counts, total := s.PendingVisitCounts(d)
		if total != b.totals[d] || len(counts) != len(b.visits[d]) {
			t.Fatalf("PendingVisitCounts(%d): %d nodes/%d total, want %d/%d",
				d, len(counts), total, len(b.visits[d]), b.totals[d])
		}
		for _, v := range nodes {
			if got := s.PendingVisits(v, d); got != b.visits[d][v] {
				t.Fatalf("PendingVisits(%d,%d)=%d want %d", v, d, got, b.visits[d][v])
			}
			if got := s.PendingTerminals(v, d); got != b.terminals[d][v] {
				t.Fatalf("PendingTerminals(%d,%d)=%d want %d", v, d, got, b.terminals[d][v])
			}
			if got := s.PendingCandidates(v, d); got != b.visits[d][v]-b.terminals[d][v] {
				t.Fatalf("PendingCandidates(%d,%d)=%d want %d", v, d, got, b.visits[d][v]-b.terminals[d][v])
			}
		}
	}
}

func TestSidedCountersBasic(t *testing.T) {
	s := New()
	// Forward-first from 1: pending directions F,B,F,B... at positions 0..3.
	f := s.AddSided([]graph.NodeID{1, 2, 1, 3}, SideForward)
	// Backward-first from 2: pending B,F,B.
	b := s.AddSided([]graph.NodeID{2, 1, 2}, SideBackward)
	// An unsided segment must not touch the sided tables.
	u := s.Add([]graph.NodeID{1, 2, 3})

	if got := s.SideOf(f); got != SideForward {
		t.Fatalf("SideOf(f)=%d", got)
	}
	if got := s.SideOf(b); got != SideBackward {
		t.Fatalf("SideOf(b)=%d", got)
	}
	if got := s.SideOf(u); got != Unsided {
		t.Fatalf("SideOf(u)=%d", got)
	}
	// Node 1: segment f visits at pos 0 (pending F) and pos 2 (pending F);
	// segment b at pos 1 (pending F). No authority-side visits at 1.
	if got := s.PendingVisits(1, SideForward); got != 3 {
		t.Fatalf("PendingVisits(1,F)=%d want 3", got)
	}
	if got := s.PendingVisits(1, SideBackward); got != 0 {
		t.Fatalf("PendingVisits(1,B)=%d want 0", got)
	}
	// Terminals: f ends at 3 on pos 3 (pending B); b ends at 2 on pos 2 (pending B).
	if got := s.PendingTerminals(3, SideBackward); got != 1 {
		t.Fatalf("PendingTerminals(3,B)=%d want 1", got)
	}
	if got := s.PendingTerminals(2, SideBackward); got != 1 {
		t.Fatalf("PendingTerminals(2,B)=%d want 1", got)
	}
	if got := s.OwnedSided(1, SideForward); len(got) != 1 || got[0] != f {
		t.Fatalf("OwnedSided(1,F)=%v", got)
	}
	if got := s.OwnedSided(1, SideBackward); len(got) != 0 {
		t.Fatalf("OwnedSided(1,B)=%v", got)
	}
	live := map[SegmentID]bool{f: true, b: true, u: true}
	checkSided(t, s, live, []graph.NodeID{1, 2, 3})
}

func TestSidedReplaceTailAndRemove(t *testing.T) {
	s := New()
	f := s.AddSided([]graph.NodeID{1, 2, 3, 4}, SideForward)
	b := s.AddSided([]graph.NodeID{4, 3, 2, 1}, SideBackward)
	live := map[SegmentID]bool{f: true, b: true}
	nodes := []graph.NodeID{1, 2, 3, 4, 5, 6}

	// Truncate f after position 1 and regrow: parity of the kept prefix is
	// unchanged, the new tail's pending directions follow from position.
	s.ReplaceTail(f, 2, []graph.NodeID{5, 6})
	checkSided(t, s, live, nodes)
	// Pure truncation: terminal moves to the kept prefix's end.
	s.ReplaceTail(b, 2, nil)
	checkSided(t, s, live, nodes)
	// Extension from the terminal.
	s.ReplaceTail(b, 2, []graph.NodeID{5})
	checkSided(t, s, live, nodes)

	s.Remove(f)
	delete(live, f)
	checkSided(t, s, live, nodes)
	if got := s.OwnedSided(1, SideForward); len(got) != 0 {
		t.Fatalf("removed segment still in sided owner index: %v", got)
	}
	s.Remove(b)
	delete(live, b)
	checkSided(t, s, live, nodes)
	for d := Side(0); d < 2; d++ {
		if got := s.PendingTotal(d); got != 0 {
			t.Fatalf("PendingTotal(%d)=%d after removing everything", d, got)
		}
	}
}

// TestSidedRandomizedStress drives a mixed sided/unsided store through
// random mutations and cross-checks every sided counter against brute force.
func TestSidedRandomizedStress(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 0))
	s := New()
	live := make(map[SegmentID]bool)
	var ids []SegmentID
	nodes := make([]graph.NodeID, 12)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	randPath := func() []graph.NodeID {
		p := make([]graph.NodeID, 1+rng.IntN(6))
		for i := range p {
			p[i] = nodes[rng.IntN(len(nodes))]
		}
		return p
	}
	ops := 600
	if testing.Short() {
		ops = 200
	}
	for op := 0; op < ops; op++ {
		switch k := rng.IntN(4); {
		case k == 0 || len(ids) == 0:
			side := Side(rng.IntN(3) - 1) // Unsided, Forward, or Backward
			var id SegmentID
			if side == Unsided {
				id = s.Add(randPath())
			} else {
				id = s.AddSided(randPath(), side)
			}
			live[id] = true
			ids = append(ids, id)
		case k == 1:
			id := ids[rng.IntN(len(ids))]
			if !live[id] {
				continue
			}
			p := s.Path(id)
			keep := 1 + rng.IntN(len(p))
			var tail []graph.NodeID
			if rng.IntN(3) > 0 {
				tail = randPath()
			}
			s.ReplaceTail(id, keep, tail)
		default:
			id := ids[rng.IntN(len(ids))]
			if !live[id] {
				continue
			}
			s.Remove(id)
			delete(live, id)
		}
	}
	checkSided(t, s, live, nodes)
}
