package walkstore

import (
	"math/rand/v2"
	"sync"
	"testing"

	"fastppr/internal/graph"
)

// TestEpochCountsMutations pins the epoch stamp: one tick per completed
// Add/ReplaceTail/Remove (batch adds tick once per segment), none for reads
// or no-op replaces.
func TestEpochCountsMutations(t *testing.T) {
	s := New()
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch=%d", s.Epoch())
	}
	id := s.Add(path(1, 2, 3))
	s.AddBatch([][]graph.NodeID{path(4), path(5, 6)})
	if got := s.Epoch(); got != 3 {
		t.Fatalf("epoch=%d want 3 after three adds", got)
	}
	s.Path(id)
	s.Visits(2)
	s.ReplaceTail(id, 3, nil) // no-op
	if got := s.Epoch(); got != 3 {
		t.Fatalf("epoch=%d want 3 after reads and a no-op replace", got)
	}
	s.ReplaceTail(id, 1, path(9))
	s.Remove(id)
	if got := s.Epoch(); got != 5 {
		t.Fatalf("epoch=%d want 5 after replace+remove", got)
	}
}

// TestStripedCountersCrossCheck spreads segments over many nodes (so every
// counter stripe is populated), then checks the per-stripe shares via
// Validate and the striped read paths against a brute-force recount.
func TestStripedCountersCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	s := New()
	wantVisits := map[graph.NodeID]int64{}
	var wantTotal int64
	const segs = 500
	for i := 0; i < segs; i++ {
		n := 1 + rng.IntN(8)
		p := make([]graph.NodeID, n)
		for j := range p {
			p[j] = graph.NodeID(rng.IntN(1000))
		}
		s.Add(p)
		for _, v := range p {
			wantVisits[v]++
			wantTotal++
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalVisits(); got != wantTotal {
		t.Fatalf("TotalVisits=%d want %d", got, wantTotal)
	}
	counts := s.VisitCounts()
	if len(counts) != len(wantVisits) {
		t.Fatalf("VisitCounts has %d nodes, want %d", len(counts), len(wantVisits))
	}
	for v, x := range wantVisits {
		if counts[v] != x {
			t.Fatalf("VisitCounts[%d]=%d want %d", v, counts[v], x)
		}
		if got := s.Visits(v); got != x {
			t.Fatalf("Visits(%d)=%d want %d", v, got, x)
		}
		visits, total := s.VisitFraction(v)
		if visits != x || total != wantTotal {
			t.Fatalf("VisitFraction(%d)=(%d,%d) want (%d,%d)", v, visits, total, x, wantTotal)
		}
	}
}

// TestConcurrentMutatorsAndReaders is the -race stress for the striped
// store: goroutines mutate disjoint segment sets (the external per-segment
// serialization contract) while readers hammer every read path, and the
// final state must pass the full per-stripe Validate.
func TestConcurrentMutatorsAndReaders(t *testing.T) {
	const (
		writers     = 4
		segsPer     = 40
		iters       = 300
		nodeSpace   = 256
		readerIters = 2000
	)
	s := New()
	owned := make([][]SegmentID, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < segsPer; i++ {
			owned[w] = append(owned[w], s.Add(path(int64(w*nodeSpace+i%nodeSpace), int64(i%nodeSpace))))
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 1))
			for it := 0; it < iters; it++ {
				id := owned[w][rng.IntN(len(owned[w]))]
				n := len(s.Path(id))
				keep := 1 + rng.IntN(n)
				tail := make([]graph.NodeID, rng.IntN(5))
				for j := range tail {
					tail[j] = graph.NodeID(rng.IntN(nodeSpace))
				}
				s.ReplaceTail(id, keep, tail)
				if rng.IntN(10) == 0 {
					p := make([]graph.NodeID, 1+rng.IntN(4))
					for j := range p {
						p[j] = graph.NodeID(rng.IntN(nodeSpace))
					}
					owned[w] = append(owned[w], s.Add(p))
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(r), 2))
			for it := 0; it < readerIters; it++ {
				select {
				case <-stop:
					return
				default:
				}
				v := graph.NodeID(rng.IntN(nodeSpace))
				_ = s.Visits(v)
				_ = s.W(v)
				_ = s.Terminals(v)
				_ = s.Candidates(v)
				_, _ = s.VisitFraction(v)
				_ = s.Visitors(v)
				_ = s.OwnedBy(v)
				_ = s.TotalVisits()
				_ = s.Epoch()
				for _, id := range s.Visitors(v) {
					p := s.Path(id)
					if len(p) == 0 {
						t.Error("empty path observed")
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSidedMutators runs the same stress over sided segments so
// the per-side stripe counters and sided terminals get the -race treatment,
// ending in a Validate cross-check of the per-stripe sided shares.
func TestConcurrentSidedMutators(t *testing.T) {
	const writers = 4
	s := New()
	owned := make([][]SegmentID, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < 30; i++ {
			side := Side(i % 2)
			owned[w] = append(owned[w], s.AddSided(path(int64(w*100+i), int64(i), int64(w)), side))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 3))
			for it := 0; it < 400; it++ {
				id := owned[w][rng.IntN(len(owned[w]))]
				n := len(s.Path(id))
				keep := 1 + rng.IntN(n)
				tail := make([]graph.NodeID, rng.IntN(4))
				for j := range tail {
					tail[j] = graph.NodeID(rng.IntN(64))
				}
				s.ReplaceTail(id, keep, tail)
				v := graph.NodeID(rng.IntN(64))
				_ = s.PendingVisits(v, SideForward)
				_ = s.PendingCandidates(v, SideBackward)
				_ = s.PendingTerminals(v, SideForward)
				_, _ = s.PendingVisitFraction(v, SideBackward)
				_ = s.PendingTotal(SideForward)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The side totals must agree between the atomic globals and the
	// per-stripe table walk.
	for d := SideForward; d <= SideBackward; d++ {
		counts, total := s.PendingVisitCounts(d)
		var sum int64
		for _, x := range counts {
			sum += x
		}
		if sum != total || total != s.PendingTotal(d) {
			t.Fatalf("side %d: counts sum %d, table total %d, atomic total %d", d, sum, total, s.PendingTotal(d))
		}
	}
}
