package walkstore

import (
	"math/rand/v2"
	"slices"
	"sync"
	"testing"

	"fastppr/internal/graph"
)

// brutePending recomputes one (node, dir) pending-position bucket from the
// stored paths: the full-path enumeration the index replaces.
func brutePending(s *Store, live []SegmentID, v graph.NodeID, dir Side) []PosHit {
	var want []PosHit
	ids := append([]SegmentID(nil), live...)
	slices.Sort(ids)
	for _, id := range ids {
		side := s.SideOf(id)
		for pos, x := range s.Path(id) {
			if x != v {
				continue
			}
			if pendingBucket(side, pos) == bucketOf(dir) {
				want = append(want, PosHit{Seg: id, Pos: int32(pos)})
			}
		}
	}
	return want
}

// TestPendingPositionsBruteForce drives randomized Add/AddSided/AddBatch/
// ReplaceTail/Remove churn over a small node space (so buckets cross the
// hub-upgrade boundary at hubThreshold entries and shrink back) and
// cross-checks every bucket of every touched node against the full-path
// enumeration after each mutation, with periodic full Validates.
func TestPendingPositionsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 0))
	s := New()
	var live []SegmentID
	const nodeSpace = 12 // tiny, so single nodes accumulate > hubThreshold entries
	randPath := func() []graph.NodeID {
		p := make([]graph.NodeID, 1+rng.IntN(6))
		for i := range p {
			p[i] = graph.NodeID(rng.IntN(nodeSpace))
		}
		return p
	}
	sides := []Side{Unsided, SideForward, SideBackward}
	ops := 1500
	if testing.Short() {
		ops = 400
	}
	for op := 0; op < ops; op++ {
		switch k := rng.IntN(10); {
		case k < 3 || len(live) == 0:
			live = append(live, s.AddSided(randPath(), sides[rng.IntN(3)]))
		case k < 4:
			batch := make([][]graph.NodeID, 1+rng.IntN(4))
			for i := range batch {
				batch[i] = randPath()
			}
			live = append(live, s.AddBatchSided(batch, sides[rng.IntN(3)])...)
		case k < 8:
			id := live[rng.IntN(len(live))]
			n := len(s.Path(id))
			var tail []graph.NodeID
			if rng.IntN(4) > 0 {
				tail = randPath()
			}
			s.ReplaceTail(id, 1+rng.IntN(n), tail)
		default:
			i := rng.IntN(len(live))
			s.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for v := 0; v < nodeSpace; v++ {
			for _, dir := range sides {
				got := s.PendingPositions(graph.NodeID(v), dir)
				want := brutePending(s, live, graph.NodeID(v), dir)
				if !slices.Equal(got, want) {
					t.Fatalf("op %d node %d dir %d:\ngot  %v\nwant %v", op, v, dir, got, want)
				}
			}
		}
		if op%100 == 0 {
			if err := s.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPosIndexHubBoundary pins the representation upgrade: pushing one
// (node, dir) bucket past hubThreshold entries must flip it to the map
// representation with identical contents, and removals below the boundary
// must keep it exact (no downgrade, like the visitor index).
func TestPosIndexHubBoundary(t *testing.T) {
	s := New()
	const hub = graph.NodeID(5)
	var ids []SegmentID
	// Each forward-sided path [hub, i] contributes one forward-pending entry
	// (position 0) at hub.
	for i := 0; i < 2*hubThreshold; i++ {
		ids = append(ids, s.AddSided([]graph.NodeID{hub, graph.NodeID(100 + i)}, SideForward))
		hits := s.PendingPositions(hub, SideForward)
		if len(hits) != i+1 {
			t.Fatalf("after %d adds: %d hits", i+1, len(hits))
		}
		if !slices.IsSortedFunc(hits, comparePosHit) {
			t.Fatalf("hits unsorted after %d adds", i+1)
		}
	}
	px := &s.stripe(hub).node(hub).pending[int(SideForward)]
	if px.m == nil {
		t.Fatalf("bucket did not upgrade to map past %d entries", hubThreshold)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:2*hubThreshold-1] {
		s.Remove(id)
	}
	hits := s.PendingPositions(hub, SideForward)
	if len(hits) != 1 || hits[0].Seg != ids[2*hubThreshold-1] {
		t.Fatalf("after removals: %v", hits)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDistinctSegmentsAndKeepSegments pins the two hit-list helpers the
// repair phases' freeze protocol is built on.
func TestDistinctSegmentsAndKeepSegments(t *testing.T) {
	hits := []PosHit{{2, 0}, {2, 3}, {5, 1}, {9, 0}, {9, 2}, {9, 4}}
	segs := DistinctSegments(nil, hits)
	if !slices.Equal(segs, []SegmentID{2, 5, 9}) {
		t.Fatalf("DistinctSegments=%v", segs)
	}
	kept := KeepSegments(slices.Clone(hits), []SegmentID{2, 9})
	want := []PosHit{{2, 0}, {2, 3}, {9, 0}, {9, 2}, {9, 4}}
	if !slices.Equal(kept, want) {
		t.Fatalf("KeepSegments=%v want %v", kept, want)
	}
	if got := KeepSegments(slices.Clone(hits), nil); len(got) != 0 {
		t.Fatalf("KeepSegments with no segs=%v", got)
	}
}

// TestMutationInFlightCounter pins the mechanism behind Validate's
// ErrConcurrentMutation guard: the observer fires strictly inside a
// mutation's counter phase, so it must always see the in-flight count
// non-zero, and the count must drain back to zero (Validate clean) once the
// mutation returns.
func TestMutationInFlightCounter(t *testing.T) {
	s := New()
	minSeen := int64(99)
	s.SetObserver(func(SegmentID, graph.NodeID, int, int) {
		if n := s.mutators.Load(); n < minSeen {
			minSeen = n
		}
	})
	id := s.Add(path(1, 2, 3))
	s.ReplaceTail(id, 1, path(4))
	s.Remove(id)
	if minSeen < 1 {
		t.Fatalf("observer saw in-flight count %d mid-mutation, want >= 1", minSeen)
	}
	if got := s.mutators.Load(); got != 0 {
		t.Fatalf("in-flight count %d after mutations returned", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIndexReadersAndMutators is the -race stress for the
// pending-position index: writers churn disjoint sided segment sets (the
// external per-segment serialization contract) while readers snapshot index
// buckets and chase the returned hits into Path reads, mimicking the
// maintainers' probe step racing a parallel storm. Ends in a full Validate
// (including the index cross-check).
func TestConcurrentIndexReadersAndMutators(t *testing.T) {
	const (
		writers   = 4
		nodeSpace = 64
	)
	iters := 400
	if testing.Short() {
		iters = 150
	}
	s := New()
	owned := make([][]SegmentID, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < 30; i++ {
			side := Side(i % 2)
			owned[w] = append(owned[w], s.AddSided(
				[]graph.NodeID{graph.NodeID(w*16 + i%16), graph.NodeID(i % nodeSpace), graph.NodeID(w)}, side))
		}
	}
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 5))
			for it := 0; it < iters; it++ {
				id := owned[w][rng.IntN(len(owned[w]))]
				n := len(s.Path(id))
				tail := make([]graph.NodeID, rng.IntN(4))
				for j := range tail {
					tail[j] = graph.NodeID(rng.IntN(nodeSpace))
				}
				s.ReplaceTail(id, 1+rng.IntN(n), tail)
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewPCG(uint64(r), 6))
			var hits []PosHit
			var segs []SegmentID
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := graph.NodeID(rng.IntN(nodeSpace))
				dir := Side(rng.IntN(2))
				hits = s.AppendPendingPositions(hits[:0], v, dir)
				segs = DistinctSegments(segs, hits)
				for _, id := range segs {
					if len(s.Path(id)) == 0 {
						t.Error("empty path observed")
						return
					}
				}
				_ = s.PendingVisits(v, dir)
			}
		}(r)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
