package walkstore

import (
	"errors"
	"reflect"
	"testing"

	"fastppr/internal/graph"
)

func TestEpochSemantics(t *testing.T) {
	s := New()
	if s.Epoch() != 0 {
		t.Fatalf("fresh store at epoch %d", s.Epoch())
	}
	ids := s.AddBatch([][]graph.NodeID{{1, 2}, {2, 3}, {3, 1}})
	if got := s.Epoch(); got != 3 {
		t.Fatalf("epoch after 3-path batch = %d, want 3 (one tick per stored path)", got)
	}
	s.AddSided([]graph.NodeID{4, 5}, SideForward)
	if got := s.Epoch(); got != 4 {
		t.Fatalf("epoch after AddSided = %d, want 4", got)
	}
	s.ReplaceTail(ids[0], 1, []graph.NodeID{7})
	if got := s.Epoch(); got != 5 {
		t.Fatalf("epoch after ReplaceTail = %d, want 5", got)
	}
	// A no-op replacement (keep everything, add nothing) must not tick: no
	// segment state changed, so a WAL journaling one record per tick would
	// otherwise drift from the store.
	s.ReplaceTail(ids[1], 2, nil)
	if got := s.Epoch(); got != 5 {
		t.Fatalf("epoch after no-op ReplaceTail = %d, want 5 still", got)
	}
	s.Remove(ids[2])
	if got := s.Epoch(); got != 6 {
		t.Fatalf("epoch after Remove = %d, want 6", got)
	}
}

// logEvent is one recorded MutationLog call.
type logEvent struct {
	kind    byte // 'a', 'r', 'd'
	id      SegmentID
	epochAt int64 // store epoch observed during the call
}

type recordingLog struct {
	s      *Store
	events []logEvent
}

func (l *recordingLog) LogAdd(id SegmentID, side Side, path []graph.NodeID) {
	l.events = append(l.events, logEvent{kind: 'a', id: id, epochAt: l.s.Epoch()})
}
func (l *recordingLog) LogReplaceTail(id SegmentID, keep int, tail []graph.NodeID) {
	l.events = append(l.events, logEvent{kind: 'r', id: id, epochAt: l.s.Epoch()})
}
func (l *recordingLog) LogRemove(id SegmentID) {
	l.events = append(l.events, logEvent{kind: 'd', id: id, epochAt: l.s.Epoch()})
}

// TestSerializedStormOrdering drives a serialized mutation storm with both
// hooks attached and checks the ordering contract each one documents: the
// observer's visit deltas arrive at non-decreasing epochs, and the mutation
// log sees exactly one call per epoch tick, in tick order, with batch adds
// delivered in ascending ID order.
func TestSerializedStormOrdering(t *testing.T) {
	s := New()
	var obsEpochs []int64
	s.SetObserver(func(seg SegmentID, node graph.NodeID, pos int, delta int) {
		obsEpochs = append(obsEpochs, s.Epoch())
	})
	rec := &recordingLog{s: s}
	s.SetMutationLog(rec)

	ids := s.AddBatch([][]graph.NodeID{{1, 2, 3}, {2, 3}, {3}})
	s.ReplaceTail(ids[0], 1, []graph.NodeID{5, 6})
	s.Remove(ids[1])
	s.AddSided([]graph.NodeID{1, 4}, SideBackward)

	wantKinds := []byte{'a', 'a', 'a', 'r', 'd', 'a'}
	if len(rec.events) != len(wantKinds) {
		t.Fatalf("mutation log saw %d calls, want %d", len(rec.events), len(wantKinds))
	}
	if got := s.Epoch(); got != int64(len(wantKinds)) {
		t.Fatalf("epoch %d after %d logged mutations", got, len(wantKinds))
	}
	for i, ev := range rec.events {
		if ev.kind != wantKinds[i] {
			t.Errorf("log call %d is %q, want %q", i, ev.kind, wantKinds[i])
		}
	}
	// Batch adds arrive in ascending assigned-ID order.
	if rec.events[0].id >= rec.events[1].id || rec.events[1].id >= rec.events[2].id {
		t.Errorf("batch add log order not ascending by ID: %v", rec.events[:3])
	}
	// The hooks run inside their mutation's critical section, before the
	// epoch bump publishes it, so the epoch a call observes never exceeds
	// the number of fully completed mutations — and never regresses.
	for i := 1; i < len(rec.events); i++ {
		if rec.events[i].epochAt < rec.events[i-1].epochAt {
			t.Fatalf("mutation log epoch regressed at call %d: %v", i, rec.events)
		}
	}
	for i := 1; i < len(obsEpochs); i++ {
		if obsEpochs[i] < obsEpochs[i-1] {
			t.Fatalf("observer epoch regressed at event %d", i)
		}
	}
	if len(obsEpochs) == 0 {
		t.Fatal("observer saw no visit deltas")
	}
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	s := New()
	var ids []SegmentID
	ids = append(ids, s.AddBatchSided([][]graph.NodeID{{1, 2, 3}, {2, 3}}, SideForward)...)
	ids = append(ids, s.AddSided([]graph.NodeID{3, 1, 2}, SideBackward))
	ids = append(ids, s.Add([]graph.NodeID{5}))
	s.ReplaceTail(ids[0], 2, []graph.NodeID{7, 8})
	s.Remove(ids[1]) // leaves a dead slot mid-table

	d, err := s.Dump()
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	s2, err := Restore(d)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("restored store fails Validate: %v", err)
	}
	if g, w := s2.Epoch(), s.Epoch(); g != w {
		t.Errorf("epoch = %d, want %d", g, w)
	}
	if g, w := s2.TotalVisits(), s.TotalVisits(); g != w {
		t.Errorf("total visits = %d, want %d", g, w)
	}
	if !reflect.DeepEqual(s2.VisitCounts(), s.VisitCounts()) {
		t.Error("visit counts diverge after restore")
	}
	for _, v := range []graph.NodeID{1, 2, 3, 5, 7, 8} {
		if g, w := s2.OwnedBy(v), s.OwnedBy(v); !reflect.DeepEqual(g, w) {
			t.Errorf("OwnedBy(%d) = %v, want %v", v, g, w)
		}
		for _, dir := range []Side{SideForward, SideBackward} {
			if g, w := s2.PendingPositions(v, dir), s.PendingPositions(v, dir); !reflect.DeepEqual(g, w) {
				t.Errorf("PendingPositions(%d, %d) = %v, want %v", v, dir, g, w)
			}
		}
	}
	// The dead slot must survive the round trip so ID assignment continues
	// identically.
	if s2.segs[ids[1]].live {
		t.Error("removed segment came back live after restore")
	}
	if g, w := s2.Add([]graph.NodeID{9}), s.Add([]graph.NodeID{9}); g != w {
		t.Errorf("next assigned ID = %d, want %d", g, w)
	}
}

func TestDumpRefusesConcurrentMutation(t *testing.T) {
	s := New()
	s.Add([]graph.NodeID{1, 2})
	s.mutators.Add(1)
	defer s.mutators.Add(-1)
	if _, err := s.Dump(); !errors.Is(err, ErrConcurrentMutation) {
		t.Fatalf("Dump with a mutation in flight = %v, want ErrConcurrentMutation", err)
	}
}
