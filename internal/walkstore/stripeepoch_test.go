package walkstore

import (
	"sync"
	"testing"

	"fastppr/internal/graph"
)

// TestStripeEpochLocality pins the point of per-stripe epochs: a mutation
// bumps exactly the stripes of the nodes it touches, and every other
// stripe's stamp is untouched — so a cached query keyed on its own stripes
// survives an unrelated storm.
func TestStripeEpochLocality(t *testing.T) {
	s := New()
	before := s.AppendStripeEpochs(nil)
	if len(before) != StripeCount {
		t.Fatalf("AppendStripeEpochs returned %d entries, want %d", len(before), StripeCount)
	}
	for i, e := range before {
		if e != 0 {
			t.Fatalf("fresh store stripe %d epoch=%d", i, e)
		}
	}

	// A single Add over nodes in distinct stripes bumps each touched stripe
	// exactly once (the batch groups its index ops per stripe-lock
	// acquisition) and no other.
	s.Add(path(1, 2, 3))
	for i := 0; i < StripeCount; i++ {
		want := int64(0)
		if i == StripeOf(1) || i == StripeOf(2) || i == StripeOf(3) {
			want = 1
		}
		if got := s.StripeEpoch(i); got != want {
			t.Fatalf("after Add(1,2,3): stripe %d epoch=%d want %d", i, got, want)
		}
	}

	// Two path nodes sharing a stripe (low-bit striping: 5 and 5+64) still
	// cost one acquisition, hence one tick.
	s.Add(path(5, 5+int64(StripeCount)))
	if got := s.StripeEpoch(StripeOf(5)); got != 1 {
		t.Fatalf("shared-stripe add: stripe %d epoch=%d want 1", StripeOf(5), got)
	}

	// ReplaceTail and Remove bump only stripes among the nodes they touch.
	id := s.Add(path(10, 11, 12))
	snap := s.AppendStripeEpochs(nil)
	s.ReplaceTail(id, 1, path(13))
	s.Remove(id)
	touched := map[int]bool{StripeOf(10): true, StripeOf(11): true, StripeOf(12): true, StripeOf(13): true}
	for i := 0; i < StripeCount; i++ {
		got := s.StripeEpoch(i)
		if touched[i] {
			if got <= snap[i] {
				t.Fatalf("replace+remove: touched stripe %d epoch stayed at %d", i, got)
			}
		} else if got != snap[i] {
			t.Fatalf("replace+remove: unrelated stripe %d moved %d -> %d", i, snap[i], got)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStripeEpochValidateCrossCheck hammers the store from several writers
// and then relies on Validate's sum-of-stripe-epochs == stripeTouches
// identity: a mutation path that bumps one side of the pair but not the
// other would fail here.
func TestStripeEpochValidateCrossCheck(t *testing.T) {
	s := New()
	const writers = 4
	owned := make([][]SegmentID, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < 20; i++ {
			owned[w] = append(owned[w], s.Add(path(int64(w*64+i), int64(i), int64(w))))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 200; it++ {
				id := owned[w][it%len(owned[w])]
				n := len(s.Path(id))
				keep := 1 + it%n
				var tail []graph.NodeID
				if it%3 != 0 {
					tail = path(int64(it % 96))
				}
				s.ReplaceTail(id, keep, tail)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var sum int64
	epochs := s.AppendStripeEpochs(nil)
	for _, e := range epochs {
		sum += e
	}
	if sum == 0 {
		t.Fatal("no stripe epochs advanced under a mutation storm")
	}
}
