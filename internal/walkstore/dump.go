package walkstore

import (
	"fmt"

	"fastppr/internal/graph"
)

// SegmentDump is one slot of a store dump, indexed by SegmentID. Dead slots
// (segments removed before the dump) carry Live == false and no path; they
// are preserved so a restored store assigns the same ID to its next Add —
// segment IDs drive the pending-position enumeration order the maintainers
// draw RNG indices over, so recovery must reproduce them bitwise, dead gaps
// included.
type SegmentDump struct {
	Live bool
	Side Side
	Path []graph.NodeID
}

// Dump is a point-in-time copy of everything a store needs to be rebuilt:
// the full segment table (live paths plus dead-slot gaps) and the epoch the
// copy was taken at. The visit totals are derivable from the live paths;
// they are carried anyway so Restore can cross-check its recount against
// what the live store believed.
type Dump struct {
	Epoch       int64
	TotalVisits int64
	SidedTotals [2]int64
	Segs        []SegmentDump
}

// Dump captures the store for a snapshot. It requires quiescence and
// enforces it the same way Validate does: with the segment lock and every
// counter stripe held, a non-zero in-flight mutation count is definitive and
// the dump fails with ErrConcurrentMutation (wrapped) instead of copying a
// store caught between a mutation's arena and counter phases.
func (s *Store) Dump() (*Dump, error) {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		defer s.stripes[i].mu.RUnlock()
	}
	if n := s.mutators.Load(); n != 0 {
		return nil, fmt.Errorf("%w: %d segment mutations in flight during Dump", ErrConcurrentMutation, n)
	}
	d := &Dump{
		Epoch:       s.epoch.Load(),
		TotalVisits: s.totalVisits.Load(),
		SidedTotals: [2]int64{s.sidedTotals[0].Load(), s.sidedTotals[1].Load()},
		Segs:        make([]SegmentDump, len(s.segs)),
	}
	for i, r := range s.segs {
		if !r.live {
			continue
		}
		d.Segs[i] = SegmentDump{
			Live: true,
			Side: r.side,
			Path: append([]graph.NodeID(nil), s.pathLocked(r)...),
		}
	}
	return d, nil
}

// Restore builds a fresh store from a dump, rebuilding every derived
// structure — counters, owner lists, terminals, and the pending-position
// index — from the live paths, then cross-checking the recounted totals
// against the dump's. The rebuilt store is behaviorally identical to the
// dumped one: segment IDs (dead slots included), epoch, owner-list order
// (per node, entries were appended in ascending-ID order on the live store,
// which is exactly the order a single ascending pass reproduces), and every
// counter match bitwise; only arena offsets differ, and nothing observes
// those.
func Restore(d *Dump) (*Store, error) {
	s := New()
	for i, sd := range d.Segs {
		if !sd.Live {
			s.segs = append(s.segs, segRef{})
			continue
		}
		if len(sd.Path) == 0 {
			return nil, fmt.Errorf("walkstore: restore: live segment %d has empty path", i)
		}
		if sd.Side != Unsided && sd.Side != SideForward && sd.Side != SideBackward {
			return nil, fmt.Errorf("walkstore: restore: segment %d has invalid side %d", i, sd.Side)
		}
		off := int64(len(s.arena))
		s.arena = append(s.arena, sd.Path...)
		s.segs = append(s.segs, segRef{off: off, n: int32(len(sd.Path)), side: sd.Side, live: true})
		s.numLive++
		s.liveNodes += int64(len(sd.Path))
	}

	// Re-index every live segment in ascending ID order. This mirrors
	// indexBatch but carries the side per segment, since one restore pass
	// spans sides the live store added in separate batches.
	type restoreOp struct {
		id   SegmentID
		v    graph.NodeID
		pos  int32
		side Side
		kind uint8
	}
	var ops [numStripes][]restoreOp
	var total int64
	var sided [2]int64
	for i := range s.segs {
		r := s.segs[i]
		if !r.live {
			continue
		}
		id := SegmentID(i)
		p := s.pathLocked(r)
		src := p[0]
		ops[stripeIndex(src)] = append(ops[stripeIndex(src)], restoreOp{id: id, v: src, side: r.side, kind: opOwner})
		end := p[len(p)-1]
		ops[stripeIndex(end)] = append(ops[stripeIndex(end)], restoreOp{id: id, v: end, pos: int32(len(p) - 1), side: r.side, kind: opTerminal})
		for pos, v := range p {
			ops[stripeIndex(v)] = append(ops[stripeIndex(v)], restoreOp{id: id, v: v, pos: int32(pos), side: r.side, kind: opVisit})
			total++
			if r.side >= 0 {
				sided[r.side.PendingAt(pos)]++
			}
		}
	}
	// The store is private to this goroutine until Restore returns, so no
	// locks are taken.
	for si := range ops {
		st := &s.stripes[si]
		for _, op := range ops[si] {
			switch op.kind {
			case opOwner:
				ns := st.nodeCreate(op.v)
				ns.owned = append(ns.owned, op.id)
				if op.side >= 0 {
					ns.ownedSided[op.side] = append(ns.ownedSided[op.side], op.id)
				}
			case opTerminal:
				ns := st.nodeCreate(op.v)
				ns.terminals++
				if op.side >= 0 {
					ns.sidedTerminals[op.side.PendingAt(int(op.pos))]++
				}
			case opVisit:
				s.addVisitLocked(st, op.id, op.v, int(op.pos), op.side)
			}
		}
	}
	s.bumpTotals(total, sided)

	if total != d.TotalVisits {
		return nil, fmt.Errorf("walkstore: restore: dump declares %d total visits, paths recount %d", d.TotalVisits, total)
	}
	for dir := 0; dir < 2; dir++ {
		if sided[dir] != d.SidedTotals[dir] {
			return nil, fmt.Errorf("walkstore: restore: dump declares %d sided visits for direction %d, paths recount %d",
				d.SidedTotals[dir], dir, sided[dir])
		}
	}
	s.epoch.Store(d.Epoch)
	return s, nil
}
