package graph

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node. IDs need not be dense or contiguous, but dense
// IDs (the normal case: every generator and the production ID allocator
// assign 0..n-1) are served from flat per-shard row arrays instead of hash
// maps — see shard below.
type NodeID int64

// Edge is a directed edge From -> To.
type Edge struct {
	From, To NodeID
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// denseLimit bounds the IDs served from dense row slots; rarer IDs at or
// above it (or negative) fall back to the per-shard sparse map, so a wild ID
// costs a map hit instead of gigabytes of slots.
const denseLimit = 1 << 26

// adjRow is one node's adjacency state: its out- and in-neighbor lists (both
// on the node's own shard, so a single shard lock covers every per-node
// read) and a presence flag distinguishing "known node with no edges" from
// "never seen".
type adjRow struct {
	out, in []NodeID
	present bool
}

// shard holds the adjacency rows of the nodes whose low ID bits select it.
// Rows for IDs below denseLimit live in a flat slot array (slot = id divided
// by the shard count), so the hot walk-step reads — degree, random neighbor
// — are a slice index instead of a map lookup; sparse catches the rest. The
// edges counter counts out-edges whose source is on this shard (so the
// per-shard counters sum to the global edge count).
type shard struct {
	mu     sync.RWMutex
	dense  []adjRow
	sparse map[NodeID]*adjRow
	nodes  int
	edges  int64
	// Pad shards apart so the mutexes of neighboring shards do not share a
	// cache line under write contention.
	_ [48]byte
}

// row returns v's adjacency row, or nil when v is unknown. slotBits is the
// graph's log2 shard count.
func (sh *shard) row(v NodeID, slotBits uint) *adjRow {
	if u := uint64(v); u < denseLimit {
		if slot := u >> slotBits; slot < uint64(len(sh.dense)) {
			if r := &sh.dense[slot]; r.present {
				return r
			}
		}
		return nil
	}
	return sh.sparse[v]
}

// rowCreate returns v's adjacency row, allocating it on first touch.
func (sh *shard) rowCreate(v NodeID, slotBits uint) *adjRow {
	if u := uint64(v); u < denseLimit {
		slot := u >> slotBits
		if slot >= uint64(len(sh.dense)) {
			grown := make([]adjRow, max(int(slot)+1, 2*len(sh.dense)))
			copy(grown, sh.dense)
			sh.dense = grown
		}
		r := &sh.dense[slot]
		if !r.present {
			r.present = true
			sh.nodes++
		}
		return r
	}
	r := sh.sparse[v]
	if r == nil {
		r = &adjRow{present: true}
		sh.sparse[v] = r
		sh.nodes++
	}
	return r
}

// each calls f for every known node's row. i is the shard index, needed to
// reconstruct dense IDs (v = slot<<slotBits | i).
func (sh *shard) each(i int, slotBits uint, f func(v NodeID, r *adjRow)) {
	for slot := range sh.dense {
		if r := &sh.dense[slot]; r.present {
			f(NodeID(uint64(slot)<<slotBits|uint64(i)), r)
		}
	}
	for v, r := range sh.sparse {
		f(v, r)
	}
}

// Graph is a dynamic directed multigraph, sharded by the low bits of the
// node ID. The zero value is not usable; use New or NewWithShards. All
// methods are safe for concurrent use.
type Graph struct {
	shards   []shard
	mask     uint64 // len(shards) - 1; shard of v is v & mask
	slotBits uint   // log2(len(shards)); dense slot of v is v >> slotBits
	edges    atomic.Int64
}

// New returns an empty graph with a shard count derived from GOMAXPROCS.
// sizeHint pre-sizes the per-shard row tables and may be zero.
func New(sizeHint int) *Graph {
	p := runtime.GOMAXPROCS(0)
	n := nextPow2(4 * p)
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return NewWithShards(sizeHint, n)
}

// NewWithShards returns an empty graph with an explicit shard count, rounded
// up to a power of two. sizeHint pre-sizes the row tables and may be zero.
func NewWithShards(sizeHint, shards int) *Graph {
	if shards < 1 {
		shards = 1
	}
	n := nextPow2(shards)
	g := &Graph{
		mask:     uint64(n - 1),
		slotBits: uint(bits.TrailingZeros(uint(n))),
	}
	g.shards = make([]shard, n)
	per := sizeHint / n
	for i := range g.shards {
		// Pre-size with length, not capacity: rowCreate grows on slot >=
		// len(dense), so spare capacity alone would never be used.
		g.shards[i].dense = make([]adjRow, per)
		g.shards[i].sparse = make(map[NodeID]*adjRow)
	}
	return g
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// NumShards returns the number of lock-striped shards.
func (g *Graph) NumShards() int { return len(g.shards) }

func (g *Graph) shardOf(v NodeID) int {
	// Low bits select the shard so dense IDs round-robin across shards and
	// the per-shard slot (v >> slotBits) stays dense.
	return int(uint64(v) & g.mask)
}

// lockAll / runlockAll acquire every shard in index order, the global lock
// order that makes multi-shard operations deadlock-free.
func (g *Graph) lockAll() {
	for i := range g.shards {
		g.shards[i].mu.Lock()
	}
}

func (g *Graph) unlockAll() {
	for i := range g.shards {
		g.shards[i].mu.Unlock()
	}
}

func (g *Graph) rlockAll() {
	for i := range g.shards {
		g.shards[i].mu.RLock()
	}
}

func (g *Graph) runlockAll() {
	for i := range g.shards {
		g.shards[i].mu.RUnlock()
	}
}

// AddNode ensures v exists (possibly with no edges). Adding an existing node
// is a no-op.
func (g *Graph) AddNode(v NodeID) {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.Lock()
	sh.rowCreate(v, g.slotBits)
	sh.mu.Unlock()
}

// lockPair locks the shards of u and v in index order and returns them.
// When both nodes share a shard only one lock is taken.
func (g *Graph) lockPair(u, v NodeID) (su, sv *shard) {
	i, j := g.shardOf(u), g.shardOf(v)
	su, sv = &g.shards[i], &g.shards[j]
	if i == j {
		su.mu.Lock()
		return su, su
	}
	if i < j {
		su.mu.Lock()
		sv.mu.Lock()
	} else {
		sv.mu.Lock()
		su.mu.Lock()
	}
	return su, sv
}

func unlockPair(su, sv *shard) {
	su.mu.Unlock()
	if sv != su {
		sv.mu.Unlock()
	}
}

// AddEdge inserts the directed edge u -> v, implicitly adding missing
// endpoints. Parallel edges are permitted (the graph is a multigraph); the
// caller decides whether duplicates make sense for its workload.
func (g *Graph) AddEdge(u, v NodeID) {
	su, sv := g.lockPair(u, v)
	// Create both rows before taking either pointer: growing a shard's dense
	// array relocates its rows, so a pointer taken before the second
	// rowCreate could dangle when u and v share a shard.
	su.rowCreate(u, g.slotBits)
	sv.rowCreate(v, g.slotBits)
	ru := su.row(u, g.slotBits)
	rv := sv.row(v, g.slotBits)
	ru.out = append(ru.out, v)
	rv.in = append(rv.in, u)
	su.edges++
	g.edges.Add(1)
	unlockPair(su, sv)
}

// RemoveEdge deletes one occurrence of u -> v. It reports whether an edge was
// removed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	su, sv := g.lockPair(u, v)
	defer unlockPair(su, sv)
	ru := su.row(u, g.slotBits)
	if ru == nil || !removeOne(&ru.out, v) {
		return false
	}
	rv := sv.row(v, g.slotBits)
	if rv == nil || !removeOne(&rv.in, u) {
		// The two adjacency tables are updated together, so a missing
		// reverse entry means internal corruption.
		panic("graph: adjacency tables out of sync")
	}
	su.edges--
	g.edges.Add(-1)
	return true
}

// removeOne swap-deletes the first occurrence of target in *s.
func removeOne(s *[]NodeID, target NodeID) bool {
	for i, x := range *s {
		if x == target {
			(*s)[i] = (*s)[len(*s)-1]
			*s = (*s)[:len(*s)-1]
			return true
		}
	}
	return false
}

// HasEdge reports whether at least one edge u -> v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	sh := &g.shards[g.shardOf(u)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if r := sh.row(u, g.slotBits); r != nil {
		return slices.Contains(r.out, v)
	}
	return false
}

// CountEdges returns the multiplicity of u -> v: how many parallel copies of
// the edge exist. The deletion repair rule needs it — removing one copy of a
// multi-edge perturbs each stored step through it with probability 1/c, not
// deterministically.
func (g *Graph) CountEdges(u, v NodeID) int {
	sh := &g.shards[g.shardOf(u)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	n := 0
	if r := sh.row(u, g.slotBits); r != nil {
		for _, x := range r.out {
			if x == v {
				n++
			}
		}
	}
	return n
}

// HasNode reports whether v is present.
func (g *Graph) HasNode(v NodeID) bool {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	ok := sh.row(v, g.slotBits) != nil
	sh.mu.RUnlock()
	return ok
}

// NumNodes returns the number of nodes. With concurrent writers the result
// is a per-shard-consistent snapshot.
func (g *Graph) NumNodes() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		n += sh.nodes
		sh.mu.RUnlock()
	}
	return n
}

// NumEdges returns the number of edges (counting multiplicity).
func (g *Graph) NumEdges() int {
	return int(g.edges.Load())
}

// ShardEdges returns, per shard, the number of edges whose source node lives
// on that shard — the load-balance view a sharded deployment would monitor.
func (g *Graph) ShardEdges() []int64 {
	out := make([]int64, len(g.shards))
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		out[i] = sh.edges
		sh.mu.RUnlock()
	}
	return out
}

// OutDegree returns the out-degree of v (0 for unknown nodes).
func (g *Graph) OutDegree(v NodeID) int {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	d := 0
	if r := sh.row(v, g.slotBits); r != nil {
		d = len(r.out)
	}
	sh.mu.RUnlock()
	return d
}

// InDegree returns the in-degree of v (0 for unknown nodes).
func (g *Graph) InDegree(v NodeID) int {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	d := 0
	if r := sh.row(v, g.slotBits); r != nil {
		d = len(r.in)
	}
	sh.mu.RUnlock()
	return d
}

// OutNeighbors returns a copy of v's out-neighbor list.
func (g *Graph) OutNeighbors(v NodeID) []NodeID {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if r := sh.row(v, g.slotBits); r != nil {
		return append([]NodeID(nil), r.out...)
	}
	return nil
}

// InNeighbors returns a copy of v's in-neighbor list.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if r := sh.row(v, g.slotBits); r != nil {
		return append([]NodeID(nil), r.in...)
	}
	return nil
}

// RandomOutNeighbor returns a uniformly random out-neighbor of v. ok is false
// when v has no outgoing edges (a dangling node).
func (g *Graph) RandomOutNeighbor(v NodeID, rng *rand.Rand) (w NodeID, ok bool) {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r := sh.row(v, g.slotBits)
	if r == nil || len(r.out) == 0 {
		return 0, false
	}
	return r.out[rng.IntN(len(r.out))], true
}

// RandomInNeighbor returns a uniformly random in-neighbor of v. ok is false
// when v has no incoming edges.
func (g *Graph) RandomInNeighbor(v NodeID, rng *rand.Rand) (w NodeID, ok bool) {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r := sh.row(v, g.slotBits)
	if r == nil || len(r.in) == 0 {
		return 0, false
	}
	return r.in[rng.IntN(len(r.in))], true
}

// Batcher amortizes shard-lock acquisition over a burst of lockstep walkers.
// Each worker goroutine owns one Batcher (it carries reusable per-shard
// scratch and must not be shared); sampling a burst of B walkers costs at
// most NumShards lock acquisitions instead of B.
type Batcher struct {
	g       *Graph
	buckets [][]int32
}

// NewBatcher returns a Batcher for g. Not safe for concurrent use; create
// one per worker.
func (g *Graph) NewBatcher() *Batcher {
	return &Batcher{g: g, buckets: make([][]int32, len(g.shards))}
}

// RandomOutNeighbors samples, for each i, a uniformly random out-neighbor of
// cur[i] into next[i], setting ok[i] to false when cur[i] is dangling. The
// three slices must have equal length. Walkers are grouped by shard so each
// shard's read lock is taken once per call.
func (b *Batcher) RandomOutNeighbors(cur, next []NodeID, ok []bool, rng *rand.Rand) {
	if len(next) != len(cur) || len(ok) != len(cur) {
		panic("graph: Batcher slice lengths disagree")
	}
	for s := range b.buckets {
		b.buckets[s] = b.buckets[s][:0]
	}
	for i, v := range cur {
		s := b.g.shardOf(v)
		b.buckets[s] = append(b.buckets[s], int32(i))
	}
	for s, idx := range b.buckets {
		if len(idx) == 0 {
			continue
		}
		sh := &b.g.shards[s]
		sh.mu.RLock()
		for _, i := range idx {
			r := sh.row(cur[i], b.g.slotBits)
			if r == nil || len(r.out) == 0 {
				ok[i] = false
				continue
			}
			next[i] = r.out[rng.IntN(len(r.out))]
			ok[i] = true
		}
		sh.mu.RUnlock()
	}
}

// Nodes returns all node IDs in ascending order. The slice is freshly
// allocated.
func (g *Graph) Nodes() []NodeID {
	nodes := make([]NodeID, 0, g.NumNodes())
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		sh.each(i, g.slotBits, func(v NodeID, _ *adjRow) {
			nodes = append(nodes, v)
		})
		sh.mu.RUnlock()
	}
	slices.Sort(nodes)
	return nodes
}

// Edges returns every edge (with multiplicity) in unspecified order, as a
// globally consistent snapshot.
func (g *Graph) Edges() []Edge {
	g.rlockAll()
	defer g.runlockAll()
	edges := make([]Edge, 0, g.edges.Load())
	for i := range g.shards {
		g.shards[i].each(i, g.slotBits, func(u NodeID, r *adjRow) {
			for _, v := range r.out {
				edges = append(edges, Edge{u, v})
			}
		})
	}
	return edges
}

// Clone returns a deep copy of the graph (same shard count).
func (g *Graph) Clone() *Graph {
	g.rlockAll()
	defer g.runlockAll()
	c := &Graph{mask: g.mask, slotBits: g.slotBits}
	c.shards = make([]shard, len(g.shards))
	var total int64
	for i := range g.shards {
		src, dst := &g.shards[i], &c.shards[i]
		dst.dense = make([]adjRow, len(src.dense))
		for slot := range src.dense {
			r := &src.dense[slot]
			if !r.present {
				continue
			}
			dst.dense[slot] = adjRow{
				out:     append([]NodeID(nil), r.out...),
				in:      append([]NodeID(nil), r.in...),
				present: true,
			}
		}
		dst.sparse = make(map[NodeID]*adjRow, len(src.sparse))
		for v, r := range src.sparse {
			dst.sparse[v] = &adjRow{
				out:     append([]NodeID(nil), r.out...),
				in:      append([]NodeID(nil), r.in...),
				present: true,
			}
		}
		dst.nodes = src.nodes
		dst.edges = src.edges
		total += src.edges
	}
	c.edges.Store(total)
	return c
}

// RandomEdge returns a uniformly random edge (by multiplicity). ok is false
// on an empty graph. Sampling is proportional to out-degree: pick a node by
// linear scan over cumulative degree. O(n); intended for experiment setup,
// not hot paths.
func (g *Graph) RandomEdge(rng *rand.Rand) (e Edge, ok bool) {
	g.rlockAll()
	defer g.runlockAll()
	total := int(g.edges.Load())
	if total == 0 {
		return Edge{}, false
	}
	k := rng.IntN(total)
	found := false
	for i := range g.shards {
		if found {
			break
		}
		g.shards[i].each(i, g.slotBits, func(u NodeID, r *adjRow) {
			if found {
				return
			}
			if k < len(r.out) {
				e = Edge{u, r.out[k]}
				found = true
				return
			}
			k -= len(r.out)
		})
	}
	if !found {
		panic("graph: edge count out of sync")
	}
	return e, true
}

// Validate checks internal invariants (forward/backward adjacency agreement,
// shard/slot placement, and the edge counters). Intended for tests and
// debugging; O(m log m).
func (g *Graph) Validate() error {
	g.rlockAll()
	defer g.runlockAll()
	fwd, bwd := 0, 0
	var err error
	count := make(map[Edge]int)
	for i := range g.shards {
		sh := &g.shards[i]
		var shFwd int64
		nodes := 0
		sh.each(i, g.slotBits, func(v NodeID, r *adjRow) {
			nodes++
			if err == nil && g.shardOf(v) != i {
				err = fmt.Errorf("graph: node %d row on shard %d, want %d", v, i, g.shardOf(v))
			}
			if err == nil && uint64(v) >= denseLimit {
				if _, ok := sh.sparse[v]; !ok {
					err = fmt.Errorf("graph: node %d outside dense range but not in sparse table", v)
				}
			}
			shFwd += int64(len(r.out))
			bwd += len(r.in)
			for _, w := range r.out {
				count[Edge{v, w}]++
			}
			for _, u := range r.in {
				count[Edge{u, v}]--
			}
		})
		if err != nil {
			return err
		}
		if nodes != sh.nodes {
			return fmt.Errorf("graph: shard %d tracks %d nodes, found %d", i, sh.nodes, nodes)
		}
		if shFwd != sh.edges {
			return fmt.Errorf("graph: shard %d counter=%d want %d", i, sh.edges, shFwd)
		}
		fwd += int(shFwd)
	}
	if fwd != bwd || int64(fwd) != g.edges.Load() {
		return fmt.Errorf("graph: edge counts disagree: out=%d in=%d counter=%d", fwd, bwd, g.edges.Load())
	}
	for e, c := range count {
		if c != 0 {
			return fmt.Errorf("graph: edge %v multiplicity mismatch (%+d)", e, c)
		}
	}
	return nil
}
