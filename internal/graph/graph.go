// Package graph provides a dynamic directed graph with O(1) random
// out-neighbor sampling, the substrate underneath every random-walk
// component in this repository.
//
// The graph supports concurrent readers and exclusive writers. Node IDs are
// opaque 64-bit integers, matching the ID space of a large social network.
// Adjacency is stored as append-only slices with swap-delete removal, so a
// uniformly random out-neighbor is a single slice index — the operation the
// Monte Carlo walkers perform billions of times.
package graph

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
)

// NodeID identifies a node. IDs need not be dense or contiguous.
type NodeID int64

// Edge is a directed edge From -> To.
type Edge struct {
	From, To NodeID
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// Graph is a dynamic directed multigraph. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Graph struct {
	mu    sync.RWMutex
	out   map[NodeID][]NodeID
	in    map[NodeID][]NodeID
	edges int
}

// New returns an empty graph. sizeHint pre-sizes the node tables and may be
// zero.
func New(sizeHint int) *Graph {
	return &Graph{
		out: make(map[NodeID][]NodeID, sizeHint),
		in:  make(map[NodeID][]NodeID, sizeHint),
	}
}

// AddNode ensures v exists (possibly with no edges). Adding an existing node
// is a no-op.
func (g *Graph) AddNode(v NodeID) {
	g.mu.Lock()
	g.addNodeLocked(v)
	g.mu.Unlock()
}

func (g *Graph) addNodeLocked(v NodeID) {
	if _, ok := g.out[v]; !ok {
		g.out[v] = nil
	}
	if _, ok := g.in[v]; !ok {
		g.in[v] = nil
	}
}

// AddEdge inserts the directed edge u -> v, implicitly adding missing
// endpoints. Parallel edges are permitted (the graph is a multigraph); the
// caller decides whether duplicates make sense for its workload.
func (g *Graph) AddEdge(u, v NodeID) {
	g.mu.Lock()
	g.addNodeLocked(u)
	g.addNodeLocked(v)
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.edges++
	g.mu.Unlock()
}

// RemoveEdge deletes one occurrence of u -> v. It reports whether an edge was
// removed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !removeOne(g.out, u, v) {
		return false
	}
	if !removeOne(g.in, v, u) {
		// The two adjacency tables are updated together, so a missing
		// reverse entry means internal corruption.
		panic("graph: adjacency tables out of sync")
	}
	g.edges--
	return true
}

// removeOne swap-deletes the first occurrence of target in adj[key].
func removeOne(adj map[NodeID][]NodeID, key, target NodeID) bool {
	s := adj[key]
	for i, x := range s {
		if x == target {
			s[i] = s[len(s)-1]
			adj[key] = s[:len(s)-1]
			return true
		}
	}
	return false
}

// HasEdge reports whether at least one edge u -> v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, x := range g.out[u] {
		if x == v {
			return true
		}
	}
	return false
}

// HasNode reports whether v is present.
func (g *Graph) HasNode(v NodeID) bool {
	g.mu.RLock()
	_, ok := g.out[v]
	g.mu.RUnlock()
	return ok
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	n := len(g.out)
	g.mu.RUnlock()
	return n
}

// NumEdges returns the number of edges (counting multiplicity).
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	m := g.edges
	g.mu.RUnlock()
	return m
}

// OutDegree returns the out-degree of v (0 for unknown nodes).
func (g *Graph) OutDegree(v NodeID) int {
	g.mu.RLock()
	d := len(g.out[v])
	g.mu.RUnlock()
	return d
}

// InDegree returns the in-degree of v (0 for unknown nodes).
func (g *Graph) InDegree(v NodeID) int {
	g.mu.RLock()
	d := len(g.in[v])
	g.mu.RUnlock()
	return d
}

// OutNeighbors returns a copy of v's out-neighbor list.
func (g *Graph) OutNeighbors(v NodeID) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]NodeID(nil), g.out[v]...)
}

// InNeighbors returns a copy of v's in-neighbor list.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]NodeID(nil), g.in[v]...)
}

// RandomOutNeighbor returns a uniformly random out-neighbor of v. ok is false
// when v has no outgoing edges (a dangling node).
func (g *Graph) RandomOutNeighbor(v NodeID, rng *rand.Rand) (w NodeID, ok bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := g.out[v]
	if len(s) == 0 {
		return 0, false
	}
	return s[rng.IntN(len(s))], true
}

// RandomInNeighbor returns a uniformly random in-neighbor of v. ok is false
// when v has no incoming edges.
func (g *Graph) RandomInNeighbor(v NodeID, rng *rand.Rand) (w NodeID, ok bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := g.in[v]
	if len(s) == 0 {
		return 0, false
	}
	return s[rng.IntN(len(s))], true
}

// Nodes returns all node IDs in ascending order. The slice is freshly
// allocated.
func (g *Graph) Nodes() []NodeID {
	g.mu.RLock()
	nodes := make([]NodeID, 0, len(g.out))
	for v := range g.out {
		nodes = append(nodes, v)
	}
	g.mu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// Edges returns every edge (with multiplicity) in unspecified order.
func (g *Graph) Edges() []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	edges := make([]Edge, 0, g.edges)
	for u, outs := range g.out {
		for _, v := range outs {
			edges = append(edges, Edge{u, v})
		}
	}
	return edges
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c := New(len(g.out))
	for u, outs := range g.out {
		c.out[u] = append([]NodeID(nil), outs...)
	}
	for v, ins := range g.in {
		c.in[v] = append([]NodeID(nil), ins...)
	}
	c.edges = g.edges
	return c
}

// RandomEdge returns a uniformly random edge (by multiplicity). ok is false
// on an empty graph. Sampling is proportional to out-degree: pick a node by
// linear scan over cumulative degree. O(n); intended for experiment setup,
// not hot paths.
func (g *Graph) RandomEdge(rng *rand.Rand) (e Edge, ok bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.edges == 0 {
		return Edge{}, false
	}
	k := rng.IntN(g.edges)
	for u, outs := range g.out {
		if k < len(outs) {
			return Edge{u, outs[k]}, true
		}
		k -= len(outs)
	}
	panic("graph: edge count out of sync")
}

// Validate checks internal invariants (forward/backward adjacency agreement
// and the edge counter). Intended for tests and debugging; O(m log m).
func (g *Graph) Validate() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	fwd := 0
	for _, outs := range g.out {
		fwd += len(outs)
	}
	bwd := 0
	for _, ins := range g.in {
		bwd += len(ins)
	}
	if fwd != bwd || fwd != g.edges {
		return fmt.Errorf("graph: edge counts disagree: out=%d in=%d counter=%d", fwd, bwd, g.edges)
	}
	type pair = Edge
	count := make(map[pair]int, fwd)
	for u, outs := range g.out {
		for _, v := range outs {
			count[pair{u, v}]++
		}
	}
	for v, ins := range g.in {
		for _, u := range ins {
			count[pair{u, v}]--
		}
	}
	for e, c := range count {
		if c != 0 {
			return fmt.Errorf("graph: edge %v multiplicity mismatch (%+d)", e, c)
		}
	}
	return nil
}
