package graph

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node. IDs need not be dense or contiguous.
type NodeID int64

// Edge is a directed edge From -> To.
type Edge struct {
	From, To NodeID
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// shard holds the adjacency rows of the nodes that hash to it. Both the
// out-row and in-row of a node live on the node's own shard, so a single
// shard lock covers every per-node read. The edges counter counts out-edges
// whose source is on this shard (so the per-shard counters sum to the global
// edge count).
type shard struct {
	mu    sync.RWMutex
	out   map[NodeID][]NodeID
	in    map[NodeID][]NodeID
	edges int64
	// Pad shards apart so the mutexes of neighboring shards do not share a
	// cache line under write contention.
	_ [48]byte
}

// Graph is a dynamic directed multigraph, hash-sharded by node. The zero
// value is not usable; use New or NewWithShards. All methods are safe for
// concurrent use.
type Graph struct {
	shards []shard
	shift  uint // 64 - log2(len(shards)), for Fibonacci-hash shard selection
	edges  atomic.Int64
}

// New returns an empty graph with a shard count derived from GOMAXPROCS.
// sizeHint pre-sizes the per-shard node tables and may be zero.
func New(sizeHint int) *Graph {
	p := runtime.GOMAXPROCS(0)
	n := nextPow2(4 * p)
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return NewWithShards(sizeHint, n)
}

// NewWithShards returns an empty graph with an explicit shard count, rounded
// up to a power of two. sizeHint pre-sizes the node tables and may be zero.
func NewWithShards(sizeHint, shards int) *Graph {
	if shards < 1 {
		shards = 1
	}
	n := nextPow2(shards)
	g := &Graph{
		shards: make([]shard, n),
		shift:  uint(64 - bits.TrailingZeros(uint(n))),
	}
	per := sizeHint / n
	for i := range g.shards {
		g.shards[i].out = make(map[NodeID][]NodeID, per)
		g.shards[i].in = make(map[NodeID][]NodeID, per)
	}
	return g
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// NumShards returns the number of lock-striped shards.
func (g *Graph) NumShards() int { return len(g.shards) }

func (g *Graph) shardOf(v NodeID) int {
	// Fibonacci hashing spreads sequential IDs across shards; the high bits
	// select the shard.
	return int((uint64(v) * 0x9e3779b97f4a7c15) >> g.shift)
}

// lockAll / runlockAll acquire every shard in index order, the global lock
// order that makes multi-shard operations deadlock-free.
func (g *Graph) lockAll() {
	for i := range g.shards {
		g.shards[i].mu.Lock()
	}
}

func (g *Graph) unlockAll() {
	for i := range g.shards {
		g.shards[i].mu.Unlock()
	}
}

func (g *Graph) rlockAll() {
	for i := range g.shards {
		g.shards[i].mu.RLock()
	}
}

func (g *Graph) runlockAll() {
	for i := range g.shards {
		g.shards[i].mu.RUnlock()
	}
}

// AddNode ensures v exists (possibly with no edges). Adding an existing node
// is a no-op.
func (g *Graph) AddNode(v NodeID) {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.Lock()
	addNodeLocked(sh, v)
	sh.mu.Unlock()
}

func addNodeLocked(sh *shard, v NodeID) {
	if _, ok := sh.out[v]; !ok {
		sh.out[v] = nil
	}
	if _, ok := sh.in[v]; !ok {
		sh.in[v] = nil
	}
}

// lockPair locks the shards of u and v in index order and returns them.
// When both nodes share a shard only one lock is taken.
func (g *Graph) lockPair(u, v NodeID) (su, sv *shard) {
	i, j := g.shardOf(u), g.shardOf(v)
	su, sv = &g.shards[i], &g.shards[j]
	if i == j {
		su.mu.Lock()
		return su, su
	}
	if i < j {
		su.mu.Lock()
		sv.mu.Lock()
	} else {
		sv.mu.Lock()
		su.mu.Lock()
	}
	return su, sv
}

func unlockPair(su, sv *shard) {
	su.mu.Unlock()
	if sv != su {
		sv.mu.Unlock()
	}
}

// AddEdge inserts the directed edge u -> v, implicitly adding missing
// endpoints. Parallel edges are permitted (the graph is a multigraph); the
// caller decides whether duplicates make sense for its workload.
func (g *Graph) AddEdge(u, v NodeID) {
	su, sv := g.lockPair(u, v)
	addNodeLocked(su, u)
	addNodeLocked(sv, v)
	su.out[u] = append(su.out[u], v)
	sv.in[v] = append(sv.in[v], u)
	su.edges++
	g.edges.Add(1)
	unlockPair(su, sv)
}

// RemoveEdge deletes one occurrence of u -> v. It reports whether an edge was
// removed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	su, sv := g.lockPair(u, v)
	defer unlockPair(su, sv)
	if !removeOne(su.out, u, v) {
		return false
	}
	if !removeOne(sv.in, v, u) {
		// The two adjacency tables are updated together, so a missing
		// reverse entry means internal corruption.
		panic("graph: adjacency tables out of sync")
	}
	su.edges--
	g.edges.Add(-1)
	return true
}

// removeOne swap-deletes the first occurrence of target in adj[key].
func removeOne(adj map[NodeID][]NodeID, key, target NodeID) bool {
	s := adj[key]
	for i, x := range s {
		if x == target {
			s[i] = s[len(s)-1]
			adj[key] = s[:len(s)-1]
			return true
		}
	}
	return false
}

// HasEdge reports whether at least one edge u -> v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	sh := &g.shards[g.shardOf(u)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, x := range sh.out[u] {
		if x == v {
			return true
		}
	}
	return false
}

// HasNode reports whether v is present.
func (g *Graph) HasNode(v NodeID) bool {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	_, ok := sh.out[v]
	sh.mu.RUnlock()
	return ok
}

// NumNodes returns the number of nodes. With concurrent writers the result
// is a per-shard-consistent snapshot.
func (g *Graph) NumNodes() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		n += len(sh.out)
		sh.mu.RUnlock()
	}
	return n
}

// NumEdges returns the number of edges (counting multiplicity).
func (g *Graph) NumEdges() int {
	return int(g.edges.Load())
}

// ShardEdges returns, per shard, the number of edges whose source node lives
// on that shard — the load-balance view a sharded deployment would monitor.
func (g *Graph) ShardEdges() []int64 {
	out := make([]int64, len(g.shards))
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		out[i] = sh.edges
		sh.mu.RUnlock()
	}
	return out
}

// OutDegree returns the out-degree of v (0 for unknown nodes).
func (g *Graph) OutDegree(v NodeID) int {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	d := len(sh.out[v])
	sh.mu.RUnlock()
	return d
}

// InDegree returns the in-degree of v (0 for unknown nodes).
func (g *Graph) InDegree(v NodeID) int {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	d := len(sh.in[v])
	sh.mu.RUnlock()
	return d
}

// OutNeighbors returns a copy of v's out-neighbor list.
func (g *Graph) OutNeighbors(v NodeID) []NodeID {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]NodeID(nil), sh.out[v]...)
}

// InNeighbors returns a copy of v's in-neighbor list.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]NodeID(nil), sh.in[v]...)
}

// RandomOutNeighbor returns a uniformly random out-neighbor of v. ok is false
// when v has no outgoing edges (a dangling node).
func (g *Graph) RandomOutNeighbor(v NodeID, rng *rand.Rand) (w NodeID, ok bool) {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.out[v]
	if len(s) == 0 {
		return 0, false
	}
	return s[rng.IntN(len(s))], true
}

// RandomInNeighbor returns a uniformly random in-neighbor of v. ok is false
// when v has no incoming edges.
func (g *Graph) RandomInNeighbor(v NodeID, rng *rand.Rand) (w NodeID, ok bool) {
	sh := &g.shards[g.shardOf(v)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.in[v]
	if len(s) == 0 {
		return 0, false
	}
	return s[rng.IntN(len(s))], true
}

// Batcher amortizes shard-lock acquisition over a burst of lockstep walkers.
// Each worker goroutine owns one Batcher (it carries reusable per-shard
// scratch and must not be shared); sampling a burst of B walkers costs at
// most NumShards lock acquisitions instead of B.
type Batcher struct {
	g       *Graph
	buckets [][]int32
}

// NewBatcher returns a Batcher for g. Not safe for concurrent use; create
// one per worker.
func (g *Graph) NewBatcher() *Batcher {
	return &Batcher{g: g, buckets: make([][]int32, len(g.shards))}
}

// RandomOutNeighbors samples, for each i, a uniformly random out-neighbor of
// cur[i] into next[i], setting ok[i] to false when cur[i] is dangling. The
// three slices must have equal length. Walkers are grouped by shard so each
// shard's read lock is taken once per call.
func (b *Batcher) RandomOutNeighbors(cur, next []NodeID, ok []bool, rng *rand.Rand) {
	if len(next) != len(cur) || len(ok) != len(cur) {
		panic("graph: Batcher slice lengths disagree")
	}
	for s := range b.buckets {
		b.buckets[s] = b.buckets[s][:0]
	}
	for i, v := range cur {
		s := b.g.shardOf(v)
		b.buckets[s] = append(b.buckets[s], int32(i))
	}
	for s, idx := range b.buckets {
		if len(idx) == 0 {
			continue
		}
		sh := &b.g.shards[s]
		sh.mu.RLock()
		for _, i := range idx {
			outs := sh.out[cur[i]]
			if len(outs) == 0 {
				ok[i] = false
				continue
			}
			next[i] = outs[rng.IntN(len(outs))]
			ok[i] = true
		}
		sh.mu.RUnlock()
	}
}

// Nodes returns all node IDs in ascending order. The slice is freshly
// allocated.
func (g *Graph) Nodes() []NodeID {
	nodes := make([]NodeID, 0, g.NumNodes())
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		for v := range sh.out {
			nodes = append(nodes, v)
		}
		sh.mu.RUnlock()
	}
	slices.Sort(nodes)
	return nodes
}

// Edges returns every edge (with multiplicity) in unspecified order, as a
// globally consistent snapshot.
func (g *Graph) Edges() []Edge {
	g.rlockAll()
	defer g.runlockAll()
	edges := make([]Edge, 0, g.edges.Load())
	for i := range g.shards {
		for u, outs := range g.shards[i].out {
			for _, v := range outs {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	return edges
}

// Clone returns a deep copy of the graph (same shard count).
func (g *Graph) Clone() *Graph {
	g.rlockAll()
	defer g.runlockAll()
	c := &Graph{shards: make([]shard, len(g.shards)), shift: g.shift}
	var total int64
	for i := range g.shards {
		src, dst := &g.shards[i], &c.shards[i]
		dst.out = make(map[NodeID][]NodeID, len(src.out))
		for u, outs := range src.out {
			dst.out[u] = append([]NodeID(nil), outs...)
		}
		dst.in = make(map[NodeID][]NodeID, len(src.in))
		for v, ins := range src.in {
			dst.in[v] = append([]NodeID(nil), ins...)
		}
		dst.edges = src.edges
		total += src.edges
	}
	c.edges.Store(total)
	return c
}

// RandomEdge returns a uniformly random edge (by multiplicity). ok is false
// on an empty graph. Sampling is proportional to out-degree: pick a node by
// linear scan over cumulative degree. O(n); intended for experiment setup,
// not hot paths.
func (g *Graph) RandomEdge(rng *rand.Rand) (e Edge, ok bool) {
	g.rlockAll()
	defer g.runlockAll()
	total := int(g.edges.Load())
	if total == 0 {
		return Edge{}, false
	}
	k := rng.IntN(total)
	for i := range g.shards {
		for u, outs := range g.shards[i].out {
			if k < len(outs) {
				return Edge{u, outs[k]}, true
			}
			k -= len(outs)
		}
	}
	panic("graph: edge count out of sync")
}

// Validate checks internal invariants (forward/backward adjacency agreement,
// shard placement, and the edge counters). Intended for tests and debugging;
// O(m log m).
func (g *Graph) Validate() error {
	g.rlockAll()
	defer g.runlockAll()
	fwd, bwd := 0, 0
	var perShard int64
	for i := range g.shards {
		sh := &g.shards[i]
		var shFwd int64
		for u, outs := range sh.out {
			if g.shardOf(u) != i {
				return fmt.Errorf("graph: node %d out-row on shard %d, want %d", u, i, g.shardOf(u))
			}
			shFwd += int64(len(outs))
		}
		for v := range sh.in {
			if g.shardOf(v) != i {
				return fmt.Errorf("graph: node %d in-row on shard %d, want %d", v, i, g.shardOf(v))
			}
			bwd += len(sh.in[v])
		}
		if shFwd != sh.edges {
			return fmt.Errorf("graph: shard %d counter=%d want %d", i, sh.edges, shFwd)
		}
		fwd += int(shFwd)
		perShard += sh.edges
		// Every node must have both rows present on its shard.
		if len(sh.out) != len(sh.in) {
			return fmt.Errorf("graph: shard %d has %d out-rows, %d in-rows", i, len(sh.out), len(sh.in))
		}
	}
	if fwd != bwd || int64(fwd) != g.edges.Load() {
		return fmt.Errorf("graph: edge counts disagree: out=%d in=%d counter=%d", fwd, bwd, g.edges.Load())
	}
	count := make(map[Edge]int, fwd)
	for i := range g.shards {
		for u, outs := range g.shards[i].out {
			for _, v := range outs {
				count[Edge{u, v}]++
			}
		}
		for v, ins := range g.shards[i].in {
			for _, u := range ins {
				count[Edge{u, v}]--
			}
		}
	}
	for e, c := range count {
		if c != 0 {
			return fmt.Errorf("graph: edge %v multiplicity mismatch (%+d)", e, c)
		}
	}
	return nil
}
