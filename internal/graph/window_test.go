package graph

import (
	"slices"
	"testing"
)

func TestCountEdges(t *testing.T) {
	g := New(0)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	if got := g.CountEdges(1, 2); got != 2 {
		t.Fatalf("CountEdges(1,2)=%d want 2", got)
	}
	if got := g.CountEdges(1, 3); got != 1 {
		t.Fatalf("CountEdges(1,3)=%d want 1", got)
	}
	if got := g.CountEdges(1, 4); got != 0 {
		t.Fatalf("CountEdges(1,4)=%d want 0", got)
	}
	if got := g.CountEdges(9, 1); got != 0 {
		t.Fatalf("CountEdges of unknown source = %d want 0", got)
	}
	g.RemoveEdge(1, 2)
	if got := g.CountEdges(1, 2); got != 1 {
		t.Fatalf("CountEdges(1,2) after removal = %d want 1", got)
	}
}

func TestWindowFIFO(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 {
		t.Fatalf("fresh window Cap=%d Len=%d", w.Cap(), w.Len())
	}
	for i := 0; i < 3; i++ {
		if _, ev := w.Push(Edge{From: NodeID(i), To: NodeID(i + 1)}); ev {
			t.Fatalf("push %d evicted before capacity", i)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len=%d want 3", w.Len())
	}
	// Each further push slides out the oldest arrival, in order.
	for i := 3; i < 10; i++ {
		old, ev := w.Push(Edge{From: NodeID(i), To: NodeID(i + 1)})
		if !ev {
			t.Fatalf("push %d did not evict at capacity", i)
		}
		want := Edge{From: NodeID(i - 3), To: NodeID(i - 2)}
		if old != want {
			t.Fatalf("push %d expired %v want %v", i, old, want)
		}
	}
	want := []Edge{{From: 7, To: 8}, {From: 8, To: 9}, {From: 9, To: 10}}
	if got := w.Edges(); !slices.Equal(got, want) {
		t.Fatalf("Edges=%v want %v", got, want)
	}
}

func TestWindowCapacityOne(t *testing.T) {
	w := NewWindow(1)
	if _, ev := w.Push(Edge{From: 1, To: 2}); ev {
		t.Fatal("first push evicted")
	}
	old, ev := w.Push(Edge{From: 2, To: 3})
	if !ev || old != (Edge{From: 1, To: 2}) {
		t.Fatalf("second push expired %v evicted=%v", old, ev)
	}
}
