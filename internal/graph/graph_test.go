package graph

import (
	"math/rand/v2"
	"slices"
	"sync"
	"testing"
)

func TestAddRemoveRoundTrip(t *testing.T) {
	g := New(0)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(1, 2) // parallel edge
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges=%d want 4", got)
	}
	if got := g.NumNodes(); got != 3 {
		t.Fatalf("NumNodes=%d want 3", got)
	}
	if got := g.OutDegree(1); got != 3 {
		t.Fatalf("OutDegree(1)=%d want 3", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Fatalf("InDegree(3)=%d want 2", got)
	}
	if !g.HasEdge(1, 2) || g.HasEdge(3, 1) {
		t.Fatal("HasEdge wrong")
	}
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) reported missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("one parallel edge should remain")
	}
	if !g.RemoveEdge(1, 2) {
		t.Fatal("second RemoveEdge(1,2) reported missing")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("third RemoveEdge(1,2) should report missing")
	}
	if g.RemoveEdge(9, 9) {
		t.Fatal("RemoveEdge of unknown edge should report missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges=%d want 2", got)
	}
	// Nodes survive edge removal.
	if !g.HasNode(2) {
		t.Fatal("node 2 vanished")
	}
	wantNodes := []NodeID{1, 2, 3}
	if got := g.Nodes(); !slices.Equal(got, wantNodes) {
		t.Fatalf("Nodes=%v want %v", got, wantNodes)
	}
}

func TestShardEdgeCounters(t *testing.T) {
	g := NewWithShards(0, 8)
	if g.NumShards() != 8 {
		t.Fatalf("NumShards=%d want 8", g.NumShards())
	}
	rng := rand.New(rand.NewPCG(7, 0))
	for i := 0; i < 500; i++ {
		g.AddEdge(NodeID(rng.IntN(100)), NodeID(rng.IntN(100)))
	}
	var sum int64
	for _, c := range g.ShardEdges() {
		sum += c
	}
	if sum != int64(g.NumEdges()) {
		t.Fatalf("per-shard counters sum to %d, NumEdges=%d", sum, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOutNeighborDistribution(t *testing.T) {
	g := New(0)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	rng := rand.New(rand.NewPCG(1, 2))
	seen := map[NodeID]int{}
	for i := 0; i < 2000; i++ {
		w, ok := g.RandomOutNeighbor(1, rng)
		if !ok {
			t.Fatal("node 1 has out-edges")
		}
		seen[w]++
	}
	if seen[2] == 0 || seen[3] == 0 {
		t.Fatalf("sampling never hit a neighbor: %v", seen)
	}
	if _, ok := g.RandomOutNeighbor(3, rng); ok {
		t.Fatal("dangling node should report ok=false")
	}
}

func TestBatcherMatchesSingleSampling(t *testing.T) {
	g := New(0)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 50; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%50))
		g.AddEdge(NodeID(i), NodeID((i+7)%50))
	}
	g.AddNode(1000) // dangling
	b := g.NewBatcher()
	cur := []NodeID{0, 13, 1000, 49, 13}
	next := make([]NodeID, len(cur))
	ok := make([]bool, len(cur))
	b.RandomOutNeighbors(cur, next, ok, rng)
	for i, v := range cur {
		if v == 1000 {
			if ok[i] {
				t.Fatal("dangling walker got a neighbor")
			}
			continue
		}
		if !ok[i] {
			t.Fatalf("walker %d at node %d got no neighbor", i, v)
		}
		if !g.HasEdge(v, next[i]) {
			t.Fatalf("sampled non-edge %d->%d", v, next[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(0)
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatalf("clone not independent: g=%d c=%d", g.NumEdges(), c.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWalkersAndWriter is the race stress test: many walker
// goroutines hammer the sampling hot path (single and batched) while a
// writer mutates edges. Run with -race.
func TestConcurrentWalkersAndWriter(t *testing.T) {
	g := NewWithShards(0, 16)
	const n = 200
	for i := 0; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%n))
		g.AddEdge(NodeID(i), NodeID((i*7+3)%n))
	}
	var walkers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		walkers.Add(1)
		go func(seed uint64) {
			defer walkers.Done()
			rng := rand.New(rand.NewPCG(seed, 0))
			b := g.NewBatcher()
			cur := make([]NodeID, 32)
			next := make([]NodeID, 32)
			ok := make([]bool, 32)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := NodeID(rng.IntN(n))
				for step := 0; step < 20; step++ {
					w, ok := g.RandomOutNeighbor(v, rng)
					if !ok {
						break
					}
					v = w
				}
				for i := range cur {
					cur[i] = NodeID(rng.IntN(n))
				}
				b.RandomOutNeighbors(cur, next, ok, rng)
			}
		}(uint64(w) + 1)
	}
	// The writer runs to completion on this goroutine, then the walkers are
	// released.
	rng := rand.New(rand.NewPCG(99, 0))
	for i := 0; i < 3000; i++ {
		u, v := NodeID(rng.IntN(n)), NodeID(rng.IntN(n))
		if rng.IntN(2) == 0 {
			g.AddEdge(u, v)
		} else {
			g.RemoveEdge(u, v)
		}
	}
	close(stop)
	walkers.Wait()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
