// Package graph provides a dynamic directed multigraph with O(1) random
// neighbor sampling — the substrate every random-walk component in this
// reproduction of Bahmani, Chowdhury & Goel, "Fast Incremental and
// Personalized PageRank" (PVLDB 2010) stands on. It plays the role of the
// social graph G = (V, E) of the paper's Section 2, with the random
// out-neighbor (and, for SALSA, in-neighbor) access the Monte Carlo walkers
// of Sections 2.1-2.3 perform billions of times.
//
// The graph supports concurrent readers and writers. Node IDs are opaque
// 64-bit integers, matching the ID space of a large social network.
// Adjacency is stored as append-only slices with swap-delete removal, so a
// uniformly random neighbor is a single slice index.
//
// To keep that hot path scalable the adjacency rows are partitioned by the
// node ID's low bits into a power-of-two number of lock-striped shards, and
// within a shard rows for dense IDs (the normal case — every generator and
// the production allocator assign 0..n-1) live in a flat slot array, so a
// degree read or neighbor pick is a slice index rather than a map lookup;
// walkers whose current nodes land on different shards never contend, and a
// Batcher amortizes even the uncontended lock acquisition over a whole
// burst of lockstep walkers. Operations that need a consistent global view (Edges,
// Clone, Validate, RandomEdge) lock every shard in index order. The shard
// locks are the leaf level of the system-wide lock order
// (docs/DESIGN.md#6-concurrency-model); the graph's place in the data flow
// is docs/DESIGN.md#1-data-flow.
//
// The graph shrinks as well as grows: RemoveEdge deletes one copy of a
// multigraph edge by swap-delete (first occurrence, so typed replay of an
// event stream reproduces adjacency row order bitwise), the primitive
// under the reverse reroute rule of docs/DESIGN.md#10-deletions--windows.
// Event tags an edge as an arrival or a deletion for mixed churn streams,
// and Window is the fixed-capacity FIFO ring the engine's sliding-window
// driver expires old arrivals through.
package graph
