package graph

// Event is one mutation in a churn stream: an edge arrival or an edge
// deletion. Streams of Events are the input to the maintainers' ApplyEvents
// and to the sliding-window driver, which turns expiring arrivals into
// deletions.
type Event struct {
	Edge Edge
	// Del marks the event as a deletion of one copy of Edge.
	Del bool
}

// Window is a fixed-capacity FIFO over edge arrivals, the bookkeeping behind
// sliding-window graphs where only the last T arrivals count. Push admits a
// new arrival and, once the window is full, yields the arrival that just
// slid out — the caller feeds it back through the deletion path. Window is a
// plain ring buffer with no locking: one driver owns it, mirroring the
// serialized maintainer paths it feeds.
type Window struct {
	buf  []Edge
	head int // index of the oldest edge
	n    int // live edges, <= len(buf)
}

// NewWindow returns a window holding the last capacity arrivals
// (capacity >= 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		panic("graph: Window capacity must be >= 1")
	}
	return &Window{buf: make([]Edge, capacity)}
}

// Push admits e into the window. When the window was already full it returns
// the expired oldest arrival and evicted=true; the caller must delete that
// edge from the graph to keep the window invariant.
func (w *Window) Push(e Edge) (expired Edge, evicted bool) {
	if w.n == len(w.buf) {
		expired = w.buf[w.head]
		w.buf[w.head] = e
		w.head = (w.head + 1) % len(w.buf)
		return expired, true
	}
	w.buf[(w.head+w.n)%len(w.buf)] = e
	w.n++
	return Edge{}, false
}

// Len returns the number of arrivals currently in the window.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity T.
func (w *Window) Cap() int { return len(w.buf) }

// Edges returns the windowed arrivals oldest-first (a copy).
func (w *Window) Edges() []Edge {
	out := make([]Edge, 0, w.n)
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(w.head+i)%len(w.buf)])
	}
	return out
}
