package salsa

import (
	"math/rand/v2"
	"sync"
	"testing"

	"fastppr/internal/exact"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
)

// TestParallelSalsaStormConvergesToOracle consumes the half-graph stream
// with UpdateWorkers=4: the bipartite repair must still converge to the
// exact chain, both revival laws and the lossless fast path must hold per
// stripe (SlowNoops == 0), and the striped store must validate.
func TestParallelSalsaStormConvergesToOracle(t *testing.T) {
	n, r := 150, 50
	if testing.Short() {
		n, r = 90, 30
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(241, 0))
	full := gen.PreferentialAttachment(n, 4, rng)
	stream := gen.RandomPermutationStream(full, rng)
	prefix, suffix := gen.SplitStream(stream, 0.5)

	g := gen.BuildFromStream(prefix)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	mt, soc := newMaintainer(g, Config{Eps: eps, R: r, Workers: 2, UpdateWorkers: 4, Seed: 242})
	mt.Bootstrap()
	mt.ApplyEdges(suffix)
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}

	c := mt.Counters()
	if c.Arrivals != int64(len(suffix)) {
		t.Fatalf("arrivals=%d want %d", c.Arrivals, len(suffix))
	}
	if c.FastSkips+c.EmptySkips+c.SlowPaths != 2*c.Arrivals {
		t.Fatalf("phase counters do not partition arrivals: %+v", c)
	}
	if c.SlowNoops != 0 {
		t.Fatalf("parallel storm recorded %d no-op slow paths", c.SlowNoops)
	}
	if c.Rerouted+c.Revived == 0 {
		t.Fatal("parallel storm perturbed no stored walks")
	}

	auth, hub := exact.Salsa(soc.Graph(), eps, oracleTol)
	if d := exact.L1(mt.AuthorityAll(), auth); d > 0.2 {
		t.Fatalf("parallel-storm authority L1 vs oracle=%v", d)
	}
	if d := exact.L1(mt.HubAll(), hub); d > 0.2 {
		t.Fatalf("parallel-storm hub L1 vs oracle=%v", d)
	}
}

// TestQueriesRaceArrivals is the read-mostly query path's -race stress:
// personalized queries run while a parallel storm consumes arrivals. Every
// query must keep exact per-session call accounting (StoreCalls ==
// BareSteps), respect the Theorem 8 ceiling, produce probability-normalized
// scores, and observe a monotone store epoch.
func TestQueriesRaceArrivals(t *testing.T) {
	n, q := 300, 800
	if testing.Short() {
		n, q = 150, 300
	}
	const eps = 0.2
	const r = 6
	rng := rand.New(rand.NewPCG(251, 0))
	base := gen.PreferentialAttachment(n, 5, rng)
	mt, _ := newMaintainer(base, Config{Eps: eps, R: r, UpdateWorkers: 4, Seed: 252, QueryWalks: q})
	mt.Bootstrap()

	storm := make([]graph.Edge, 0, 2000)
	for len(storm) < cap(storm) {
		u := graph.NodeID(rng.IntN(n))
		v := graph.NodeID(rng.IntN(n))
		if u != v {
			storm = append(storm, graph.Edge{From: u, To: v})
		}
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qrng := rand.New(rand.NewPCG(253, uint64(i)))
			for {
				select {
				case <-done:
					return
				default:
				}
				src := graph.NodeID(qrng.IntN(n))
				res := mt.Personalized(src)
				st := res.Stats()
				if st.StoreCalls != st.BareSteps {
					t.Errorf("source %d: measured calls %d != bare steps %d under storm", src, st.StoreCalls, st.BareSteps)
					return
				}
				if float64(st.StoreCalls) > st.Theorem8Bound {
					t.Errorf("source %d: %d calls exceed ceiling %.0f under storm", src, st.StoreCalls, st.Theorem8Bound)
					return
				}
				if st.EndEpoch < st.StartEpoch {
					t.Errorf("source %d: epoch went backwards: %d -> %d", src, st.StartEpoch, st.EndEpoch)
					return
				}
				var sum float64
				for _, s := range res.AuthorityAll() {
					sum += s
				}
				if len(res.AuthorityAll()) > 0 && (sum < 0.999999 || sum > 1.000001) {
					t.Errorf("source %d: authority scores sum to %v under storm", src, sum)
					return
				}
			}
		}(i)
	}
	mt.ApplyEdges(storm)
	close(done)
	wg.Wait()
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	c := mt.Counters()
	if c.SlowNoops != 0 {
		t.Fatalf("storm under concurrent queries recorded %d no-op slow paths", c.SlowNoops)
	}
	if c.Queries == 0 {
		t.Fatal("no queries completed during the storm")
	}
}

// TestQueryEpochStampsQuietStore pins the snapshot stamps on a quiet store:
// with no concurrent arrivals a query must observe zero epoch drift, and a
// query issued after a storm must observe the post-storm epoch.
func TestQueryEpochStampsQuietStore(t *testing.T) {
	rng := rand.New(rand.NewPCG(261, 0))
	g := gen.PreferentialAttachment(100, 4, rng)
	mt, _ := newMaintainer(g, Config{Eps: 0.2, R: 4, Seed: 262, QueryWalks: 200})
	mt.Bootstrap()
	st := mt.Personalized(3).Stats()
	if st.StartEpoch != st.EndEpoch {
		t.Fatalf("quiet-store query drifted: %d -> %d", st.StartEpoch, st.EndEpoch)
	}
	if st.StartEpoch != mt.Store().Epoch() {
		t.Fatalf("query stamp %d != store epoch %d", st.StartEpoch, mt.Store().Epoch())
	}
	// Distinct queries draw distinct RNG streams but identical stitching
	// state, so walk/step accounting identities hold for each independently.
	st2 := mt.Personalized(3).Stats()
	if st2.StoreCalls != st2.BareSteps {
		t.Fatalf("second query accounting drifted: %+v", st2)
	}
}

// TestParallelMatchesSerialDistribution pins the documented relaxation: a
// parallel storm must land on the same estimate distribution as the
// serialized one (compared through the oracle metric, not per-seed
// equality).
func TestParallelMatchesSerialDistribution(t *testing.T) {
	n, r := 120, 40
	if testing.Short() {
		n, r = 80, 25
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(271, 0))
	full := gen.PreferentialAttachment(n, 4, rng)
	stream := gen.RandomPermutationStream(full, rng)
	prefix, suffix := gen.SplitStream(stream, 0.5)

	build := func(workers int, seed uint64) *Maintainer {
		g := gen.BuildFromStream(prefix)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		mt, _ := newMaintainer(g, Config{Eps: eps, R: r, UpdateWorkers: workers, Seed: seed})
		mt.Bootstrap()
		mt.ApplyEdges(suffix)
		return mt
	}
	serial := build(1, 281)
	parallel := build(4, 282)
	if d := exact.L1(serial.AuthorityAll(), parallel.AuthorityAll()); d > 0.25 {
		t.Fatalf("serial vs parallel authority L1=%v — parallel arrivals biased the distribution", d)
	}
}
