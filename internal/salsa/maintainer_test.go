package salsa

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/exact"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/socialstore"
)

const oracleTol = 1e-11

func newMaintainer(g *graph.Graph, cfg Config) (*Maintainer, *socialstore.Store) {
	soc := socialstore.New(g)
	return New(soc, cfg), soc
}

// TestBootstrapMatchesOracle checks the statistical ground truth of the
// stored state itself: after Bootstrap on a power-law graph, the global
// authority and hub estimates must match the exact bipartite chain.
func TestBootstrapMatchesOracle(t *testing.T) {
	n, r := 200, 60
	if testing.Short() {
		n, r = 120, 30
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(31, 0))
	g := gen.PreferentialAttachment(n, 5, rng)
	mt, _ := newMaintainer(g, Config{Eps: eps, R: r, Workers: 4, Seed: 32})
	steps := mt.Bootstrap()
	if steps == 0 {
		t.Fatal("bootstrap stored no steps")
	}
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		if got := len(mt.Store().OwnedSided(v, 0)); got != r {
			t.Fatalf("node %d owns %d forward segments, want %d", v, got, r)
		}
		if got := len(mt.Store().OwnedSided(v, 1)); got != r {
			t.Fatalf("node %d owns %d backward segments, want %d", v, got, r)
		}
	}
	auth, hub := exact.Salsa(g, eps, oracleTol)
	if d := exact.L1(mt.AuthorityAll(), auth); d > 0.2 {
		t.Fatalf("authority L1 vs oracle=%v", d)
	}
	if d := exact.L1(mt.HubAll(), hub); d > 0.2 {
		t.Fatalf("hub L1 vs oracle=%v", d)
	}
}

// TestStreamConvergesToOracle is the incremental correctness test: bootstrap
// on half a power-law graph's edges, stream the other half through the
// bipartite reroute rule, and require the maintained estimates to match the
// exact chain on the final graph — and to agree with a maintainer
// bootstrapped directly on that final graph.
func TestStreamConvergesToOracle(t *testing.T) {
	n, r := 150, 50
	if testing.Short() {
		n, r = 90, 30
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(41, 0))
	full := gen.PreferentialAttachment(n, 4, rng)
	stream := gen.RandomPermutationStream(full, rng)
	prefix, suffix := gen.SplitStream(stream, 0.5)

	g := gen.BuildFromStream(prefix)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i)) // all nodes known up front
	}
	mt, soc := newMaintainer(g, Config{Eps: eps, R: r, Workers: 2, Seed: 42})
	mt.Bootstrap()
	mt.ApplyEdges(suffix)
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}

	auth, hub := exact.Salsa(soc.Graph(), eps, oracleTol)
	if d := exact.L1(mt.AuthorityAll(), auth); d > 0.2 {
		t.Fatalf("streamed authority L1 vs oracle=%v", d)
	}
	if d := exact.L1(mt.HubAll(), hub); d > 0.2 {
		t.Fatalf("streamed hub L1 vs oracle=%v", d)
	}

	// A maintainer bootstrapped on the final graph must land on the same
	// distribution: streaming may not bias the stored walks.
	fresh, _ := newMaintainer(soc.Graph().Clone(), Config{Eps: eps, R: r, Workers: 2, Seed: 43})
	fresh.Bootstrap()
	if d := exact.L1(mt.AuthorityAll(), fresh.AuthorityAll()); d > 0.25 {
		t.Fatalf("streamed vs fresh authority L1=%v", d)
	}

	c := mt.Counters()
	if c.Arrivals != int64(len(suffix)) {
		t.Fatalf("arrivals=%d want %d", c.Arrivals, len(suffix))
	}
	if c.Rerouted+c.Revived == 0 {
		t.Fatal("stream perturbed no stored walks")
	}
	if met := soc.Metrics(); met.Writes != int64(len(suffix)) {
		t.Fatalf("store writes=%d want %d", met.Writes, len(suffix))
	}
}

// TestFastPathInvariants pins the lossless-skip accounting on both update
// phases: with the fast path on, a slow path always performs work
// (SlowNoops == 0); with it off, no skips happen and all-miss arrivals do.
func TestFastPathInvariants(t *testing.T) {
	n, m, r := 80, 1500, 30
	if testing.Short() {
		n, m, r = 60, 800, 20
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(51, 0))
	stream := gen.DirichletStream(n, m, rng)

	run := func(disable bool) (*Maintainer, Counters) {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		mt, _ := newMaintainer(g, Config{Eps: eps, R: r, Workers: 2, Seed: 52, DisableFastPath: disable})
		mt.Bootstrap()
		mt.ApplyEdges(stream)
		if err := mt.Store().Validate(); err != nil {
			t.Fatal(err)
		}
		return mt, mt.Counters()
	}
	fast, fc := run(false)
	_, sc := run(true)

	// Each arrival runs exactly two repair phases.
	if fc.FastSkips+fc.EmptySkips+fc.SlowPaths != 2*fc.Arrivals {
		t.Fatalf("phase counters do not partition arrivals: %+v", fc)
	}
	if fc.SlowNoops != 0 {
		t.Fatalf("fast path took %d slow paths that sampled no work", fc.SlowNoops)
	}
	if fc.Rerouted+fc.Revived < fc.SlowPaths {
		t.Fatalf("slow paths=%d but only %d reroutes+revivals", fc.SlowPaths, fc.Rerouted+fc.Revived)
	}
	if sc.FastSkips != 0 {
		t.Fatalf("disabled fast path recorded %d skips", sc.FastSkips)
	}

	auth, _ := exact.Salsa(fast.Social().Graph(), eps, oracleTol)
	if d := exact.L1(fast.AuthorityAll(), auth); d > 0.25 {
		t.Fatalf("fast-path authority L1 vs oracle=%v", d)
	}
}

// TestSkipCoinFiresOnHighDegreeSource grows a star whose hub's out-degree
// outpaces its stored candidate count — the regime the W(v) fast path is
// designed for (an alternating walk visits a hub on every other step, so
// candidates grow with R·walk-length while degree grows with every arrival;
// skips appear once (1-1/d)^k is non-negligible). On a dense stream with
// large R the coin is correctly almost never tails — that case is covered by
// TestFastPathInvariants' partition identity.
func TestSkipCoinFiresOnHighDegreeSource(t *testing.T) {
	const leaves = 400
	hub := graph.NodeID(0)
	run := func(disable bool) Counters {
		g := graph.New(0)
		g.AddNode(hub)
		for i := 1; i <= leaves; i++ {
			g.AddNode(graph.NodeID(i))
		}
		mt, _ := newMaintainer(g, Config{Eps: 0.5, R: 1, Workers: 1, Seed: 53, DisableFastPath: disable})
		mt.Bootstrap()
		for i := 1; i <= leaves; i++ {
			mt.ApplyEdge(graph.Edge{From: hub, To: graph.NodeID(i)})
		}
		if err := mt.Store().Validate(); err != nil {
			t.Fatal(err)
		}
		return mt.Counters()
	}
	c := run(false)
	if c.FastSkips == 0 {
		t.Fatalf("skip coin never fired on a %d-degree source: %+v", leaves, c)
	}
	if c.SlowNoops != 0 {
		t.Fatalf("lossless fast path recorded %d no-op slow paths", c.SlowNoops)
	}
	// The naive path flips every coin itself; in this regime plenty of
	// arrivals miss every candidate, which the skip coin would have
	// dismissed for one counter read.
	nc := run(true)
	if nc.SlowNoops == 0 {
		t.Fatal("naive path never sampled an all-miss arrival in the skip regime")
	}
}

// TestBackwardRevival pins the backward half of the revival rule: a node
// with no in-edges accumulates backward-pending terminals, and its first
// in-edge must revive every one of them (the backward step has no reset
// coin, so revival is certain, and each revived walk must step to the sole
// in-neighbor).
func TestBackwardRevival(t *testing.T) {
	const n = 64
	const r = 8
	g := graph.New(0)
	x := graph.NodeID(1000)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n)) // cycle keeps walks alive
	}
	g.AddEdge(x, 0) // x: out-edge into the cycle, no in-edges
	mt, _ := newMaintainer(g, Config{Eps: 0.2, R: r, Workers: 1, Seed: 61})
	mt.Bootstrap()

	terminals := mt.Store().PendingTerminals(x, 1)
	if terminals < int64(r) {
		t.Fatalf("expected >= %d backward-pending terminals at x, got %d", r, terminals)
	}
	mt.ApplyEdge(graph.Edge{From: 0, To: x})
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	c := mt.Counters()
	if c.Revived < terminals {
		t.Fatalf("revived %d walks, want every one of %d backward terminals", c.Revived, terminals)
	}
	if left := mt.Store().PendingTerminals(x, 1); left != 0 {
		t.Fatalf("%d backward terminals left at x after its first in-edge", left)
	}
	// Each revived walk's backward step from x must go to its only
	// in-neighbor, node 0.
	for _, id := range mt.Store().Visitors(x) {
		p := mt.Store().Path(id)
		side := mt.Store().SideOf(id)
		for i := 0; i < len(p)-1; i++ {
			if p[i] == x && side.PendingAt(i) == 1 && p[i+1] != 0 {
				t.Fatalf("segment %d takes backward step x->%d, only in-neighbor is 0", id, p[i+1])
			}
		}
	}
}

// TestForwardRevival pins the forward half: walks that died at a dangling
// node continue through its first out-edge at rate ~(1-eps), the same law
// the PageRank maintainer enforces.
func TestForwardRevival(t *testing.T) {
	const spokes = 200
	const eps = 0.2
	g := graph.New(0)
	for i := 1; i <= spokes; i++ {
		g.AddEdge(graph.NodeID(i), 0) // node 0 is a forward-dangling sink
	}
	mt, _ := newMaintainer(g, Config{Eps: eps, R: 4, Workers: 1, Seed: 62})
	mt.Bootstrap()
	terminals := mt.Store().PendingTerminals(0, 0)
	if terminals == 0 {
		t.Fatal("no forward-pending terminals at the sink; setup broken")
	}
	mt.ApplyEdge(graph.Edge{From: 0, To: 1})
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	c := mt.Counters()
	want := (1 - eps) * float64(terminals)
	sigma := math.Sqrt(float64(terminals) * eps * (1 - eps))
	if math.Abs(float64(c.Revived)-want) > 5*sigma+1 {
		t.Fatalf("revived %d walks, want ~%.0f (+-%.0f)", c.Revived, want, 5*sigma)
	}
}

// TestSeedsNewNodesMidStream replays a power-law graph edge by edge into a
// maintainer that starts empty: every endpoint must end up owning R
// segments per side and the estimates must still track the oracle.
func TestSeedsNewNodesMidStream(t *testing.T) {
	n, r := 150, 40
	if testing.Short() {
		n, r = 90, 25
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(71, 0))
	base := gen.PreferentialAttachment(n, 4, rng)
	stream := gen.RandomPermutationStream(base, rng)

	mt, soc := newMaintainer(graph.New(0), Config{Eps: eps, R: r, Workers: 1, Seed: 72})
	mt.Bootstrap() // no nodes yet
	mt.ApplyEdges(stream)
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := soc.Graph().Nodes()
	if len(nodes) != n {
		t.Fatalf("replayed graph has %d nodes, want %d", len(nodes), n)
	}
	for _, v := range nodes {
		if got := len(mt.Store().OwnedSided(v, 0)); got != r {
			t.Fatalf("node %d owns %d forward segments, want %d", v, got, r)
		}
		if got := len(mt.Store().OwnedSided(v, 1)); got != r {
			t.Fatalf("node %d owns %d backward segments, want %d", v, got, r)
		}
	}
	if c := mt.Counters(); c.Seeded != int64(2*n*r) {
		t.Fatalf("seeded %d segments, want %d", c.Seeded, 2*n*r)
	}
	auth, hub := exact.Salsa(soc.Graph(), eps, oracleTol)
	if d := exact.L1(mt.AuthorityAll(), auth); d > 0.2 {
		t.Fatalf("authority L1 vs oracle=%v", d)
	}
	if d := exact.L1(mt.HubAll(), hub); d > 0.2 {
		t.Fatalf("hub L1 vs oracle=%v", d)
	}
}

// TestEmptyMaintainer covers the before-any-data edge cases.
func TestEmptyMaintainer(t *testing.T) {
	mt, _ := newMaintainer(graph.New(0), Config{Eps: 0.5, R: 3, QueryWalks: 16})
	if got := mt.AuthorityEstimate(1); got != 0 {
		t.Fatalf("AuthorityEstimate on empty store=%v", got)
	}
	if got := mt.AuthorityAll(); len(got) != 0 {
		t.Fatalf("AuthorityAll on empty store=%v", got)
	}
	q := mt.Personalized(7)
	if got := q.Authority(7); got != 0 {
		t.Fatalf("personalized authority on empty graph=%v", got)
	}
	if st := q.Stats(); st.StoreCalls != st.BareSteps {
		t.Fatalf("call accounting drifted on empty graph: %+v", st)
	}
}
