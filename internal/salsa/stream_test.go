package salsa

import (
	"reflect"
	"testing"

	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

// sameResult compares the parts of two queries that are a function of (store
// state, source, RNG stream): the visit distributions and the cost
// accounting. Epoch stamps are deliberately excluded — they record when the
// query ran, not what it computed.
func sameResult(a, b *Query) bool {
	return reflect.DeepEqual(a.auth, b.auth) &&
		reflect.DeepEqual(a.hub, b.hub) &&
		a.authTotal == b.authTotal && a.hubTotal == b.hubTotal &&
		a.stats.Steps == b.stats.Steps &&
		a.stats.StitchedSegments == b.stats.StitchedSegments &&
		a.stats.StitchedSteps == b.stats.StitchedSteps &&
		a.stats.BareSteps == b.stats.BareSteps &&
		a.stats.StoreCalls == b.stats.StoreCalls &&
		a.stats.Stream == b.stats.Stream &&
		a.stats.StripeMask == b.stats.StripeMask
}

// TestQueryStreamDistinct pins the stream derivation: same (counter, epoch)
// pair maps to the same stream, and moving either coordinate moves the
// stream. The old counter-only seeding failed the epoch axis — a recovered
// process replayed pre-crash streams verbatim.
func TestQueryStreamDistinct(t *testing.T) {
	seen := map[uint64][2]int{}
	for qi := 0; qi < 50; qi++ {
		for ep := 0; ep < 50; ep++ {
			s := QueryStream(uint64(qi), int64(ep))
			if s != QueryStream(uint64(qi), int64(ep)) {
				t.Fatal("QueryStream is not deterministic")
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("stream collision: (%d,%d) and (%d,%d) both map to %#x", qi, ep, prev[0], prev[1], s)
			}
			seen[s] = [2]int{qi, ep}
		}
	}
}

// TestPersonalizedStreamReplay pins the replay contract: against an
// unchanged store, PersonalizedStream with the same stream is bitwise
// identical, and the auto-assigned streams of consecutive queries differ (so
// independent queries do not share RNG sequences).
func TestPersonalizedStreamReplay(t *testing.T) {
	g := graph.New(0)
	for i := int64(0); i < 10; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%10))
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+3)%10))
	}
	mt, _ := newMaintainer(g, Config{Eps: 0.2, R: 4, Workers: 1, Seed: 11, QueryWalks: 64})
	mt.Bootstrap()

	q1 := mt.Personalized(3)
	q2 := mt.Personalized(3)
	if q1.Stats().Stream == q2.Stats().Stream {
		t.Fatalf("consecutive queries share stream %#x", q1.Stats().Stream)
	}
	if want := QueryStream(1, q1.Stats().StartEpoch); q1.Stats().Stream != want {
		t.Fatalf("first query stream %#x, want QueryStream(1, epoch) = %#x", q1.Stats().Stream, want)
	}
	re := mt.PersonalizedStream(3, q1.Stats().Stream)
	if !sameResult(q1, re) {
		t.Fatalf("replay on stream %#x diverged from the original", q1.Stats().Stream)
	}
}

// TestRecoveredQueriesDoNotReplayStreams pins the post-recovery RNG bugfix:
// the query counter is process-lifetime, so after Recover it restarts at 1
// and counter-only stream seeding would hand the first post-crash query the
// exact RNG sequence of the first pre-crash query. Salting with the store
// epoch breaks the reuse — the store has moved since the original counter=1
// query ran.
func TestRecoveredQueriesDoNotReplayStreams(t *testing.T) {
	g := graph.New(0)
	for i := int64(0); i < 20; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%20))
	}
	cfg := Config{Eps: 0.2, R: 4, Workers: 1, Seed: 17, QueryWalks: 64}
	mt, soc := newMaintainer(g, cfg)
	mt.Bootstrap()
	first := mt.Personalized(5)

	// The store moves (a storm of chord arrivals), then the process "crashes"
	// and a fresh maintainer recovers over the surviving walk store.
	for i := int64(0); i < 20; i++ {
		mt.ApplyEdge(graph.Edge{From: graph.NodeID(i), To: graph.NodeID((i + 7) % 20)})
	}
	rec := Recover(soc, cfg, mt.Store())
	again := rec.Personalized(5)

	if first.Stats().Stream == again.Stats().Stream {
		t.Fatalf("post-recovery query replayed pre-crash stream %#x", first.Stats().Stream)
	}
	if want := QueryStream(1, again.Stats().StartEpoch); again.Stats().Stream != want {
		t.Fatalf("recovered stream %#x, want QueryStream(1, recovered epoch) = %#x", again.Stats().Stream, want)
	}
	// Determinism survives the salt: replaying the recovered query's stream
	// against the recovered store is still bitwise.
	if !sameResult(again, rec.PersonalizedStream(5, again.Stats().Stream)) {
		t.Fatal("recovered query replay diverged")
	}
}

// TestStripeMaskUnaffectedByDisjointStorm pins the mask's soundness as a
// cache key: a query whose walks live entirely in component A must carry a
// mask disjoint from component B's stripes, a storm confined to B must not
// move any masked stripe epoch, and the replayed query after the storm must
// be bitwise identical. This is exactly the serving tier's "unrelated storm
// keeps the cache warm" property.
func TestStripeMaskUnaffectedByDisjointStorm(t *testing.T) {
	// Component A: nodes 0..9 (stripes 0..9). Component B: nodes 80..89
	// (stripes 16..25, disjoint from A under the low-bit striping).
	g := graph.New(0)
	for i := int64(0); i < 10; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%10))
		g.AddEdge(graph.NodeID(80+i), graph.NodeID(80+(i+1)%10))
	}
	mt, _ := newMaintainer(g, Config{Eps: 0.2, R: 4, Workers: 1, Seed: 29, QueryWalks: 128})
	mt.Bootstrap()

	var maskB uint64
	for i := int64(0); i < 10; i++ {
		maskB |= 1 << uint(walkstore.StripeOf(graph.NodeID(80+i)))
	}

	const stream = 0xfeed
	q1 := mt.PersonalizedStream(3, stream)
	mask := q1.Stats().StripeMask
	if mask == 0 {
		t.Fatal("query recorded an empty stripe mask")
	}
	if mask&maskB != 0 {
		t.Fatalf("component-A query mask %#x overlaps component-B stripes %#x", mask, maskB)
	}

	before := mt.Store().AppendStripeEpochs(nil)
	for i := int64(0); i < 10; i++ {
		mt.ApplyEdge(graph.Edge{From: graph.NodeID(80 + i), To: graph.NodeID(80 + (i+4)%10)})
	}
	after := mt.Store().AppendStripeEpochs(nil)

	moved := false
	for i := range after {
		if after[i] == before[i] {
			continue
		}
		moved = true
		if mask&(1<<uint(i)) != 0 {
			t.Fatalf("B-storm moved masked stripe %d", i)
		}
	}
	if !moved {
		t.Fatal("storm moved no stripe epochs — test is vacuous")
	}
	if !sameResult(q1, mt.PersonalizedStream(3, stream)) {
		t.Fatal("disjoint storm changed the replayed query result")
	}
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
}
