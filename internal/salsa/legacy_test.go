package salsa

import (
	"math/rand/v2"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
)

// TestIndexedScanMatchesLegacy pins the strongest property of the
// pending-position index rewrite: the indexed repair scans enumerate
// candidates in exactly the (segment, position) order the legacy full-path
// scans did and consume the RNG identically, so a fixed-seed serialized
// storm must produce bitwise-identical stores, score vectors, and update
// counters with the index on or off — not merely the same distribution.
func TestIndexedScanMatchesLegacy(t *testing.T) {
	n, updates := 120, 500
	if testing.Short() {
		n, updates = 60, 200
	}
	run := func(legacy bool) (map[graph.NodeID]float64, map[graph.NodeID]float64, Counters) {
		rng := rand.New(rand.NewPCG(91, 0))
		full := gen.PreferentialAttachment(n, 4, rng)
		stream := gen.RandomPermutationStream(full, rng)
		prefix, suffix := gen.SplitStream(stream, 0.5)
		if len(suffix) > updates {
			suffix = suffix[:updates]
		}
		g := gen.BuildFromStream(prefix)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		mt, _ := newMaintainer(g, Config{Eps: 0.2, R: 6, Workers: 1, Seed: 92, LegacyScan: legacy})
		mt.Bootstrap()
		mt.ApplyEdges(suffix)
		if err := mt.Store().Validate(); err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		return mt.AuthorityAll(), mt.HubAll(), mt.Counters()
	}

	authIdx, hubIdx, cntIdx := run(false)
	authLeg, hubLeg, cntLeg := run(true)
	if cntIdx != cntLeg {
		t.Fatalf("counters diverged:\nindexed %+v\nlegacy  %+v", cntIdx, cntLeg)
	}
	if cntIdx.SlowNoops != 0 {
		t.Fatalf("SlowNoops=%d, want 0", cntIdx.SlowNoops)
	}
	for name, pair := range map[string][2]map[graph.NodeID]float64{
		"authority": {authIdx, authLeg},
		"hub":       {hubIdx, hubLeg},
	} {
		got, want := pair[0], pair[1]
		if len(got) != len(want) {
			t.Fatalf("%s vectors differ in size: %d vs %d", name, len(got), len(want))
		}
		for v, x := range want {
			if got[v] != x {
				t.Fatalf("%s[%d]=%v indexed, %v legacy", name, v, got[v], x)
			}
		}
	}
}
