package salsa

import (
	"math"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"fastppr/internal/graph"
	"fastppr/internal/socialstore"
	"fastppr/internal/stats"
	"fastppr/internal/stripes"
	"fastppr/internal/topk"
	"fastppr/internal/walk"
	"fastppr/internal/walkstore"
)

// Config parameterizes a Maintainer.
type Config struct {
	// Eps is the reset probability flipped before every forward step, in
	// (0, 1]. Expected segment length is 1 + 2(1-Eps)/Eps nodes.
	Eps float64
	// R is the number of stored segments per node per side (the paper's R):
	// every node owns R forward-first (hub-start) and R backward-first
	// (authority-start) walks.
	R int
	// Workers sizes the Bootstrap worker pool; 0 means GOMAXPROCS.
	Workers int
	// UpdateWorkers sizes the pool ApplyEdges uses to consume arrivals
	// concurrently under (source, target) stripe-pair locks; 0 or 1 keeps
	// the fully serialized, per-seed-reproducible path. See
	// docs/DESIGN.md#6-concurrency-model for the relaxation to
	// distributional reproducibility.
	UpdateWorkers int
	// Seed seeds bootstrap walk generation, the update RNG, and the
	// per-query RNG streams. Walk contents are chunk-deterministic for any
	// worker count; with Workers=1 and UpdateWorkers<=1 a run is fully
	// reproducible including segment IDs.
	Seed uint64
	// QueryWalks is the number of Monte Carlo walks a personalized query
	// runs; 0 means 1024.
	QueryWalks int
	// DisableFastPath turns the skip coins off: every arrival fetches the
	// affected segments and flips per-step coins unconditionally. Estimates
	// are drawn from the same distribution either way.
	DisableFastPath bool
	// LegacyScan makes the four repair phases enumerate candidates the
	// pre-index way: fetch every visitor of the phase's endpoint and walk
	// each full path, filtering by side and parity. The default consumes the
	// store's pending-position index — O(hits) per phase instead of
	// O(visitors × path length), which is the difference between the SALSA
	// storm and the pagerank storm's throughput. Both paths enumerate the
	// identical (segment, position) order and consume the RNG identically,
	// so a fixed-seed serialized run is bitwise the same either way; the
	// flag exists for benchmarks and the equivalence test.
	LegacyScan bool
	// CompactEvery, when positive, checks the arena every CompactEvery-th
	// completed mutation (arrival or deletion) and runs Store.Compact when
	// at least a quarter of it is garbage (Store.MaybeCompact), reclaiming
	// what ReplaceTail leaves behind without repeatedly copying a
	// mostly-live arena. Compaction changes no logical state — estimates,
	// epochs, and the mutation log are all untouched — so fixed-seed runs
	// are bitwise identical with it on or off. See
	// docs/DESIGN.md#11-batching--compaction.
	CompactEvery int
	// UnbatchedWrites routes every repair-phase tail write through an
	// immediate per-segment ReplaceTail instead of the phase-batched
	// ReplaceTailBatch flush. The batched path samples each fresh tail
	// inline (consuming the RNG exactly where the unbatched path would)
	// and only coalesces the store writes, so fixed-seed serialized runs
	// are bitwise identical either way; the flag exists for benchmarks and
	// the equivalence tests.
	UnbatchedWrites bool
}

func (c Config) queryWalks() int {
	if c.QueryWalks <= 0 {
		return 1024
	}
	return c.QueryWalks
}

// Counters is a snapshot of the maintainer's update-path accounting. An
// arrival runs two repair phases (forward steps of the edge's source,
// backward steps of its target), so FastSkips+EmptySkips+SlowPaths sums to
// 2*Arrivals.
type Counters struct {
	Arrivals   int64 // edges consumed
	FastSkips  int64 // repair phases dismissed by a skip coin alone
	EmptySkips int64 // repair phases with no stored step to perturb
	SlowPaths  int64 // repair phases that fetched segments from the store
	SlowNoops  int64 // slow paths that sampled no reroute (0 while the fast path is on)
	Rerouted   int64 // segments redirected through a new edge mid-path
	Revived    int64 // segments extended past a terminal that gained its needed edge
	Seeded     int64 // segments generated for nodes first seen mid-stream
	StepsIn    int64 // visits added by reroutes, revivals, and seeding
	StepsOut   int64 // visits removed by reroutes
	Queries    int64 // personalized queries served

	// Deletion-path accounting. Deletions have no skip coin (no counter
	// tracks steps through one specific edge), so they never touch the
	// arrival counters above — the FastSkips+EmptySkips+SlowPaths ==
	// 2*Arrivals identity and SlowNoops == 0 both survive churn streams.
	Deletions    int64 // edge deletions consumed
	DelMisses    int64 // deletions of edges not present in the graph
	DelRerouted  int64 // segments re-sampled through a surviving edge (either side)
	DelTruncated int64 // segments cut short by a reverse revival (either side)
}

// SkipRate returns the fraction of repair phases the fast path skipped
// outright.
func (c Counters) SkipRate() float64 {
	if c.Arrivals == 0 {
		return 0
	}
	return float64(c.FastSkips) / float64(2*c.Arrivals)
}

// counters is the live atomic accounting shared by the serialized and
// parallel update paths and the concurrent query layer.
type counters struct {
	arrivals, fastSkips, emptySkips, slowPaths, slowNoops atomic.Int64
	rerouted, revived, seeded, stepsIn, stepsOut          atomic.Int64
	queries                                               atomic.Int64
	deletions, delMisses, delRerouted, delTruncated       atomic.Int64
}

func (c *counters) snapshot() Counters {
	return Counters{
		Arrivals:     c.arrivals.Load(),
		FastSkips:    c.fastSkips.Load(),
		EmptySkips:   c.emptySkips.Load(),
		SlowPaths:    c.slowPaths.Load(),
		SlowNoops:    c.slowNoops.Load(),
		Rerouted:     c.rerouted.Load(),
		Revived:      c.revived.Load(),
		Seeded:       c.seeded.Load(),
		StepsIn:      c.stepsIn.Load(),
		StepsOut:     c.stepsOut.Load(),
		Queries:      c.queries.Load(),
		Deletions:    c.deletions.Load(),
		DelMisses:    c.delMisses.Load(),
		DelRerouted:  c.delRerouted.Load(),
		DelTruncated: c.delTruncated.Load(),
	}
}

const (
	// endpointStripes serializes arrivals by endpoint: out-degree moves only
	// on arrivals from a source, in-degree only on arrivals to a target, so
	// locking the (source, target) stripe pair makes both degree reads and
	// both repair phases atomic per endpoint.
	endpointStripes = 256
	// segmentStripes freezes the segments a repair phase scans.
	segmentStripes = 512
)

// updater is one update goroutine's private state: RNG, reusable buffers,
// and the per-arrival touched map (segments whose tail this arrival already
// regenerated; the backward phase must not flip coins on freshly sampled
// steps).
type updater struct {
	rng     *rand.Rand
	tail    []graph.NodeID
	keys    []uint64
	idx     []int
	hits    []walkstore.PosHit
	segs    []walkstore.SegmentID
	paths   [][]graph.NodeID
	touched touchedSet

	// Deferred-write state: redirect samples fresh tails into tailBuf and
	// records a pendingMut per mutation; flushMuts applies the whole
	// phase's mutations through one stripe-grouped ReplaceTailBatch pass.
	tailBuf []graph.NodeID
	muts    []pendingMut
	tms     []walkstore.TailMutation
}

func newUpdater(rng *rand.Rand) *updater { return &updater{rng: rng} }

// pendingMut is one deferred ReplaceTail: the repair phase samples the fresh
// tail inline (preserving the exact RNG consumption order) into w.tailBuf and
// defers the store write until the phase's flush. start == end records a pure
// truncation (deletion-path revival in reverse).
type pendingMut struct {
	id         walkstore.SegmentID
	keep       int
	start, end int // w.tailBuf[start:end] is the fresh tail
}

// touchedSet records the segments whose tail this arrival already
// regenerated (id -> first fresh path position). A flat pair of parallel
// slices, not a map: an arrival touches a handful of segments and the map's
// per-lookup hashing was visible in the storm profile.
type touchedSet struct {
	ids   []walkstore.SegmentID
	keeps []int
}

func (t *touchedSet) reset() {
	t.ids = t.ids[:0]
	t.keeps = t.keeps[:0]
}

func (t *touchedSet) set(id walkstore.SegmentID, keep int) {
	t.ids = append(t.ids, id)
	t.keeps = append(t.keeps, keep)
}

func (t *touchedSet) get(id walkstore.SegmentID) (int, bool) {
	for i, x := range t.ids {
		if x == id {
			return t.keeps[i], true
		}
	}
	return 0, false
}

func (w *updater) lockSegments(set *stripes.MutexSet, ids []walkstore.SegmentID) []int {
	w.keys = w.keys[:0]
	for _, id := range ids {
		w.keys = append(w.keys, uint64(id))
	}
	w.idx = set.LockKeys(w.keys, w.idx)
	return w.idx
}

// Maintainer keeps R alternating walk segments per node per side fresh under
// an edge stream and serves global and personalized SALSA scores from them.
// Global reads and personalized queries may run concurrently with updates;
// updates run serialized by default and concurrently under striped locks
// with Config.UpdateWorkers > 1.
type Maintainer struct {
	soc   *socialstore.Store
	walks *walkstore.Store
	cfg   Config

	mu        sync.Mutex // serializes ApplyEdge and the serialized ApplyEdges path
	serial    *updater   // guarded by mu
	serialPCG *rand.PCG  // source behind serial's RNG, retained for state capture

	knownMu sync.Mutex
	known   map[graph.NodeID]bool // nodes owning their 2R segments

	endMu *stripes.MutexSet
	segMu *stripes.MutexSet
	cnt   counters

	// compactTick counts completed mutations toward Config.CompactEvery.
	compactTick atomic.Int64

	// arrivalObs, when set, is called after each graph mutation's repair
	// completes — arrivals (edge written, both repair phases done, endpoints
	// seeded) and deletions (edge removed, both unroute phases done) alike.
	// Under UpdateWorkers > 1 it is called concurrently from every worker;
	// the observer must be safe for that. See SetArrivalObserver.
	arrivalObs func(graph.Edge)
}

// SetArrivalObserver registers f to run after every graph mutation —
// arrival or deletion — finishes its repair. The serving tier uses it to
// advance its per-stripe edge revisions: a graph change can alter query
// results without any walk-store mutation (an arrival's repair phases may
// fast-skip; a deletion may capture no stored step), so walk-store epochs
// alone cannot invalidate cached results. The observer receives the mutated
// edge; it is not told whether the mutation added or removed it, because
// invalidation only needs the endpoints. Set it before the first
// ApplyEdge/ApplyDeletion; under UpdateWorkers > 1 the observer runs
// concurrently from every worker.
func (m *Maintainer) SetArrivalObserver(f func(graph.Edge)) { m.arrivalObs = f }

// New returns a maintainer over the social store's graph with an empty walk
// store. Call Bootstrap once to seed 2R segments per existing node before
// streaming edges.
func New(soc *socialstore.Store, cfg Config) *Maintainer {
	return NewWithStore(soc, cfg, walkstore.New())
}

// NewWithStore is New over a caller-supplied walk store — typically one
// recovered by internal/persist, so the maintainer journals into (and
// resumes from) durable state. The store must have been populated by a
// maintainer with the same Config, or be empty.
func NewWithStore(soc *socialstore.Store, cfg Config, walks *walkstore.Store) *Maintainer {
	if cfg.Eps <= 0 || cfg.Eps > 1 {
		panic("salsa: Eps must be in (0, 1]")
	}
	if cfg.R <= 0 {
		cfg.R = 1
	}
	pcg := rand.NewPCG(cfg.Seed, 0x5a15a)
	return &Maintainer{
		soc:       soc,
		walks:     walks,
		cfg:       cfg,
		serial:    newUpdater(rand.New(pcg)),
		serialPCG: pcg,
		known:     make(map[graph.NodeID]bool),
		endMu:     stripes.NewMutexSet(endpointStripes),
		segMu:     stripes.NewMutexSet(segmentStripes),
	}
}

// Recover returns a maintainer resuming over a recovered walk store: every
// node already in the graph is marked known (they owned their 2R sided
// segments when the store was persisted), so no Bootstrap runs and no
// arrival re-seeds them. Restore the update RNG with RestoreUpdateRNGState
// before applying edges to continue the persisted run bitwise.
func Recover(soc *socialstore.Store, cfg Config, walks *walkstore.Store) *Maintainer {
	m := NewWithStore(soc, cfg, walks)
	m.knownMu.Lock()
	for _, v := range soc.Graph().Nodes() {
		m.known[v] = true
	}
	m.knownMu.Unlock()
	return m
}

// UpdateRNGState serializes the serialized-path update RNG. Persisted in a
// commit marker alongside the edge cursor, it is the missing half of an
// exact resume: the walk store fixes the segments, this fixes the coin
// flips the next repair will draw.
func (m *Maintainer) UpdateRNGState() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.serialPCG.MarshalBinary()
	if err != nil { // the PCG marshaler cannot fail
		panic(err)
	}
	return b
}

// RestoreUpdateRNGState rewinds the serialized-path update RNG to a state
// captured by UpdateRNGState.
func (m *Maintainer) RestoreUpdateRNGState(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.serialPCG.UnmarshalBinary(b)
}

// Store returns the maintainer's walk store.
func (m *Maintainer) Store() *walkstore.Store { return m.walks }

// Social returns the call-accounted graph store.
func (m *Maintainer) Social() *socialstore.Store { return m.soc }

// Bootstrap generates R forward-first and R backward-first segments for
// every node currently in the graph and marks those nodes as owned. It
// returns the number of walk steps stored. Like the PageRank bootstrap this
// is the offline preprocessing pass: it walks the graph directly and is not
// call-accounted. Nodes are claimed in fixed-size chunks, each walked with
// its own PCG(Seed, chunkIndex) source, so the generated paths are identical
// for any worker count. Call it exactly once, before the first ApplyEdge.
func (m *Maintainer) Bootstrap() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.soc.Graph()
	nodes := g.Nodes()
	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const chunk = 256
	var cursor, steps atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pathsF, pathsB [][]graph.NodeID
			var local int64
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(nodes) {
					break
				}
				hi := min(lo+chunk, len(nodes))
				rng := rand.New(rand.NewPCG(m.cfg.Seed, uint64(lo/chunk)))
				pathsF, pathsB = pathsF[:0], pathsB[:0]
				for _, v := range nodes[lo:hi] {
					for i := 0; i < m.cfg.R; i++ {
						seg := walk.Salsa(g, v, walk.Forward, m.cfg.Eps, rng)
						pathsF = append(pathsF, seg.Path)
						local += int64(len(seg.Path))
					}
					for i := 0; i < m.cfg.R; i++ {
						seg := walk.Salsa(g, v, walk.Backward, m.cfg.Eps, rng)
						pathsB = append(pathsB, seg.Path)
						local += int64(len(seg.Path))
					}
				}
				m.walks.AddBatchSided(pathsF, walkstore.SideForward)
				m.walks.AddBatchSided(pathsB, walkstore.SideBackward)
			}
			steps.Add(local)
		}()
	}
	wg.Wait()
	m.knownMu.Lock()
	for _, v := range nodes {
		m.known[v] = true
	}
	m.knownMu.Unlock()
	return steps.Load()
}

// ApplyEdge consumes one edge arrival: it writes the edge through the social
// store, repairs the stored walks whose forward steps leave the source or
// whose backward steps leave the target (the paper's reroute rule adapted to
// bipartite alternation), and seeds 2R fresh segments for any endpoint seen
// for the first time. Always serialized; use ApplyEdges with UpdateWorkers
// for concurrent consumption.
func (m *Maintainer) ApplyEdge(ed graph.Edge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applyOne(ed, m.serial)
}

// ApplyEdges consumes a batch of arrivals. With Config.UpdateWorkers <= 1
// they are applied in order by one goroutine; with more workers they are
// claimed from a shared cursor and applied concurrently — arrivals sharing a
// source or target stripe stay mutually ordered by the stripe-pair locks,
// and the result is reproducible in distribution rather than per seed.
func (m *Maintainer) ApplyEdges(edges []graph.Edge) {
	if m.cfg.UpdateWorkers > 1 {
		m.applyParallel(edges, m.cfg.UpdateWorkers)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ed := range edges {
		m.applyOne(ed, m.serial)
	}
}

func (m *Maintainer) applyParallel(edges []graph.Edge, workers int) {
	// Pre-group the storm by source stripe: consecutive claims then hit the
	// same counter stripe and endpoint locks, so each worker's cache lines
	// stay warm. Same-stripe arrivals keep their relative stream order (the
	// grouping is a stable permutation); cross-stripe order was never
	// guaranteed on the parallel path.
	order := walkstore.GroupByStripe(len(edges), func(i int) graph.NodeID { return edges[i].From })
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			w := newUpdater(rand.New(rand.NewPCG(m.cfg.Seed, 0x5a15a0000+uint64(wk))))
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(edges) {
					break
				}
				m.applyOne(edges[order[i]], w)
			}
		}(wk)
	}
	wg.Wait()
}

func (m *Maintainer) applyOne(ed graph.Edge, w *updater) {
	m.cnt.arrivals.Add(1)
	u, v := ed.From, ed.To
	// One arrival holds its source and target endpoint stripes for both
	// repair phases: out-degree moves only on arrivals from u and in-degree
	// only on arrivals to v, so both degree reads stay exact, and the
	// forward-then-backward phase pair of one arrival never interleaves with
	// another arrival sharing an endpoint stripe. Source-role and
	// target-role keys are kept in disjoint key spaces (2u vs 2v+1) so an
	// arrival from a node does not falsely serialize with one into it.
	li, lj := m.endMu.LockPair(2*uint64(u), 2*uint64(v)+1)
	m.soc.AddEdge(u, v)
	dout := m.soc.OutDegree(u)
	din := m.soc.InDegree(v)
	w.touched.reset()
	// Forward phase: stored forward steps from u now have a d-th choice.
	if dout == 1 {
		m.reviveForward(u, v, w)
	} else {
		m.rerouteForward(u, v, dout, w)
	}
	// Backward phase: stored backward steps from v now have a d-th choice.
	// Runs after the forward phase so it can exclude the positions that
	// phase just regenerated (they already sampled the new edge).
	if din == 1 {
		m.reviveBackward(v, u, w)
	} else {
		m.rerouteBackward(v, u, din, w)
	}
	m.endMu.UnlockPair(li, lj)
	// Seed new endpoints last: freshly seeded walks already sample the new
	// edge, so repairing them too would over-weight it.
	m.ensureNode(u, w)
	m.ensureNode(v, w)
	// Bump-after ordering: the observer fires only once every store and
	// graph effect of the arrival is visible, so a cache entry validated
	// after the bump cannot have missed this arrival.
	if m.arrivalObs != nil {
		m.arrivalObs(ed)
	}
	m.maybeCompact()
}

// freeze prepares one repair phase's candidate enumeration at node n for
// pending direction dir: it reads the candidate source (the sided
// pending-position index by default, the full visitor set with LegacyScan),
// locks the involved segments under the SegmentID stripes, and — on the
// parallel path — re-reads the index under those locks so every hit position
// is exact, dropping hits of segments another worker mutated into n after
// the probe (they are simply not part of this arrival's frozen enumeration,
// exactly like a segment missing from the pre-index frozen visitor set).
// Exactly one of ids/hits is non-nil.
func (m *Maintainer) freeze(n graph.NodeID, dir walkstore.Side, w *updater) (ids []walkstore.SegmentID, hits []walkstore.PosHit, held []int) {
	if m.cfg.LegacyScan {
		ids = sortedVisitors(m.walks, n)
		return ids, nil, w.lockSegments(m.segMu, ids)
	}
	w.hits = m.walks.AppendPendingPositions(w.hits[:0], n, dir)
	w.segs = walkstore.DistinctSegments(w.segs, w.hits)
	held = w.lockSegments(m.segMu, w.segs)
	if m.cfg.UpdateWorkers > 1 {
		// Another worker may have mutated a probed segment between the probe
		// and the freeze; re-read now that the segments cannot move.
		w.hits = m.walks.AppendPendingPositions(w.hits[:0], n, dir)
		w.hits = walkstore.KeepSegments(w.hits, w.segs)
	}
	// Bulk-fetch the frozen segments' paths under one segment-lock
	// acquisition; the scans walk them via a cursor over w.segs.
	w.paths = m.walks.AppendPaths(w.paths, w.segs)
	return nil, w.hits, held
}

// groupPath returns the frozen path of segment id, advancing the scan's
// cursor over the (sorted) frozen segment set. Hit groups arrive in
// ascending segment order, so the cursor only ever moves forward.
func groupPath(w *updater, g *int, id walkstore.SegmentID) []graph.NodeID {
	for w.segs[*g] != id {
		*g++
	}
	return w.paths[*g]
}

// rerouteForward repairs stored walks after u's out-degree rose to d >= 2:
// every stored forward step from u independently switches to the new edge
// with probability 1/d; a switched segment keeps its prefix, steps to v, and
// continues with a fresh alternating tail (backward next). The skip coin
// flips against the stripe-consistent sided candidate counter; the scan runs
// over segments frozen under SegmentID stripe locks and retries against the
// frozen enumeration if cross-stripe interference shifted the count, so
// SlowNoops == 0 holds under parallel arrivals too.
func (m *Maintainer) rerouteForward(u, v graph.NodeID, d int, w *updater) {
	k := m.walks.PendingCandidates(u, walkstore.SideForward)
	// <= 0: under parallel arrivals a cross-stripe mutation mid-index can
	// transiently read the counter pair as negative; classify as empty.
	if k <= 0 {
		m.cnt.emptySkips.Add(1)
		return
	}
	inv := 1.0 / float64(d)
	// first is the global index (over the fixed enumeration of all k
	// candidate steps) of the first switch, pre-sampled when the skip coin
	// came up heads; -1 means flip every candidate unconditionally.
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if w.rng.Float64() < math.Pow(1-inv, float64(k)) {
			m.cnt.fastSkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, inv, k)
	}
	ids, hits, held := m.freeze(u, walkstore.SideForward, w)
	defer m.segMu.UnlockSet(held)
	defer m.flushMuts(w)
	for {
		var rerouted, seen int64
		if m.cfg.LegacyScan {
			rerouted, seen = m.forwardScan(ids, u, v, inv, first, w)
		} else {
			rerouted, seen = m.forwardScanIndexed(hits, v, inv, first, w)
		}
		switch {
		case rerouted > 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.rerouted.Add(rerouted)
			return
		case first < 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.slowNoops.Add(1)
			return
		case seen == 0:
			m.cnt.emptySkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, inv, seen)
	}
}

// forwardScan runs one coin-flip pass over the frozen segments' forward
// steps from u, returning reroutes performed and candidates enumerated.
func (m *Maintainer) forwardScan(ids []walkstore.SegmentID, u, v graph.NodeID, inv float64, first int64, w *updater) (rerouted, seen int64) {
	idx := int64(0)
	for _, id := range ids {
		side := m.walks.SideOf(id)
		p := m.walks.Path(id) // stable: ReplaceTail relocates, never mutates
		pos := -1
		for i := 0; i < len(p)-1 && pos < 0; i++ {
			if p[i] != u || side.PendingAt(i) != walkstore.SideForward {
				continue
			}
			if stats.FirstSuccessHit(w.rng, first, idx, inv) {
				pos = i
			}
			idx++
		}
		if pos < 0 {
			continue
		}
		// The segment's remaining candidates are superseded by the reroute,
		// but they still occupy slots in the enumeration `first` was drawn
		// over.
		for i := pos + 1; i < len(p)-1; i++ {
			if p[i] == u && side.PendingAt(i) == walkstore.SideForward {
				idx++
			}
		}
		m.redirect(id, pos+1, v, walk.Backward, w)
		w.touched.set(id, pos+1)
		rerouted++
	}
	return rerouted, idx
}

// forwardScanIndexed runs the forward-phase coin pass over the frozen
// forward-pending position hits of u: every non-terminal hit is one stored
// forward step (the index guarantees node and parity), enumerated in the
// same (segment, position) order as the legacy full-path scan, so the
// pre-sampled first-switch index means the same candidate under either scan.
// A segment's hits after its own reroute this pass are superseded but keep
// their enumeration slots.
func (m *Maintainer) forwardScanIndexed(hits []walkstore.PosHit, v graph.NodeID, inv float64, first int64, w *updater) (rerouted, seen int64) {
	idx := int64(0)
	g := 0
	for i := 0; i < len(hits); {
		id := hits[i].Seg
		j := i
		for j < len(hits) && hits[j].Seg == id {
			j++
		}
		p := groupPath(w, &g, id) // stable: ReplaceTail relocates, never mutates
		pos := -1
		for _, h := range hits[i:j] {
			hp := int(h.Pos)
			if hp >= len(p)-1 {
				continue // terminal visit: no stored step to capture
			}
			if pos >= 0 {
				idx++ // superseded by this segment's reroute; slot still counts
				continue
			}
			if stats.FirstSuccessHit(w.rng, first, idx, inv) {
				pos = hp
			}
			idx++
		}
		i = j
		if pos < 0 {
			continue
		}
		m.redirect(id, pos+1, v, walk.Backward, w)
		w.touched.set(id, pos+1)
		rerouted++
	}
	return rerouted, idx
}

// reviveForward repairs stored walks after u gained its very first out-edge.
// While u had no out-edges every walk pausing there before a forward step
// ended — by the reset coin with probability eps, by the missing edge
// otherwise — so each stored forward-pending terminal at u now continues
// with probability 1-eps, necessarily through the new edge.
func (m *Maintainer) reviveForward(u, v graph.NodeID, w *updater) {
	t := m.walks.PendingTerminals(u, walkstore.SideForward)
	if t <= 0 {
		m.cnt.emptySkips.Add(1)
		return
	}
	eps := m.cfg.Eps
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if w.rng.Float64() < math.Pow(eps, float64(t)) {
			m.cnt.fastSkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, 1-eps, t)
	}
	ids, hits, held := m.freeze(u, walkstore.SideForward, w)
	defer m.segMu.UnlockSet(held)
	defer m.flushMuts(w)
	for {
		var revived, seen int64
		if m.cfg.LegacyScan {
			revived, seen = m.reviveForwardScan(ids, u, v, eps, first, w)
		} else {
			revived, seen = m.reviveForwardScanIndexed(hits, v, eps, first, w)
		}
		switch {
		case revived > 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.revived.Add(revived)
			return
		case first < 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.slowNoops.Add(1)
			return
		case seen == 0:
			m.cnt.emptySkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, 1-eps, seen)
	}
}

func (m *Maintainer) reviveForwardScan(ids []walkstore.SegmentID, u, v graph.NodeID, eps float64, first int64, w *updater) (revived, seen int64) {
	idx := int64(0)
	for _, id := range ids {
		side := m.walks.SideOf(id)
		p := m.walks.Path(id)
		last := len(p) - 1
		if p[last] != u || side.PendingAt(last) != walkstore.SideForward {
			continue
		}
		cont := stats.FirstSuccessHit(w.rng, first, idx, 1-eps)
		idx++
		if !cont {
			continue
		}
		m.redirect(id, len(p), v, walk.Backward, w)
		w.touched.set(id, len(p))
		revived++
	}
	return revived, idx
}

// reviveForwardScanIndexed is reviveForwardScan over frozen forward-pending
// hits: the revival candidates are exactly the terminal hits (position ==
// last path index), enumerated in ascending-segment order like the legacy
// visitor scan.
func (m *Maintainer) reviveForwardScanIndexed(hits []walkstore.PosHit, v graph.NodeID, eps float64, first int64, w *updater) (revived, seen int64) {
	idx := int64(0)
	g := 0
	for i := 0; i < len(hits); {
		id := hits[i].Seg
		j := i
		for j < len(hits) && hits[j].Seg == id {
			j++
		}
		p := groupPath(w, &g, id)
		if int(hits[j-1].Pos) == len(p)-1 { // terminal hit: forward-pending end at u
			cont := stats.FirstSuccessHit(w.rng, first, idx, 1-eps)
			idx++
			if cont {
				m.redirect(id, len(p), v, walk.Backward, w)
				w.touched.set(id, len(p))
				revived++
			}
		}
		i = j
	}
	return revived, idx
}

// rerouteBackward repairs stored walks after v's in-degree rose to d >= 2:
// every stored backward step from v switches to the new in-neighbor u with
// probability 1/d. Only steps stored before this arrival participate:
// positions the forward phase just regenerated were sampled on the new graph
// and are excluded from both the skip-coin exponent and the scan.
func (m *Maintainer) rerouteBackward(v, u graph.NodeID, d int, w *updater) {
	k := m.walks.PendingCandidates(v, walkstore.SideBackward)
	for ti, id := range w.touched.ids {
		keep := w.touched.keeps[ti]
		side := m.walks.SideOf(id)
		p := m.walks.Path(id)
		for i := keep; i < len(p)-1; i++ {
			if p[i] == v && side.PendingAt(i) == walkstore.SideBackward {
				k--
			}
		}
	}
	if k <= 0 {
		m.cnt.emptySkips.Add(1)
		return
	}
	inv := 1.0 / float64(d)
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if w.rng.Float64() < math.Pow(1-inv, float64(k)) {
			m.cnt.fastSkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, inv, k)
	}
	ids, hits, held := m.freeze(v, walkstore.SideBackward, w)
	defer m.segMu.UnlockSet(held)
	defer m.flushMuts(w)
	for {
		var rerouted, seen int64
		if m.cfg.LegacyScan {
			rerouted, seen = m.backwardScan(ids, v, u, inv, first, w)
		} else {
			rerouted, seen = m.backwardScanIndexed(hits, u, inv, first, w)
		}
		switch {
		case rerouted > 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.rerouted.Add(rerouted)
			return
		case first < 0:
			m.cnt.slowPaths.Add(1)
			m.cnt.slowNoops.Add(1)
			return
		case seen == 0:
			m.cnt.emptySkips.Add(1)
			return
		}
		first = stats.TruncatedGeometric(w.rng, inv, seen)
	}
}

func (m *Maintainer) backwardScan(ids []walkstore.SegmentID, v, u graph.NodeID, inv float64, first int64, w *updater) (rerouted, seen int64) {
	idx := int64(0)
	for _, id := range ids {
		side := m.walks.SideOf(id)
		p := m.walks.Path(id)
		end := len(p) - 1 // candidates are non-terminal visits
		if keep, ok := w.touched.get(id); ok && keep < end {
			end = keep // positions >= keep are fresh
		}
		pos := -1
		for i := 0; i < end && pos < 0; i++ {
			if p[i] != v || side.PendingAt(i) != walkstore.SideBackward {
				continue
			}
			if stats.FirstSuccessHit(w.rng, first, idx, inv) {
				pos = i
			}
			idx++
		}
		if pos < 0 {
			continue
		}
		for i := pos + 1; i < end; i++ {
			if p[i] == v && side.PendingAt(i) == walkstore.SideBackward {
				idx++
			}
		}
		m.redirect(id, pos+1, u, walk.Forward, w)
		rerouted++
	}
	return rerouted, idx
}

// backwardScanIndexed runs the backward-phase coin pass over the frozen
// backward-pending hits of v, excluding terminal hits and — for segments the
// forward phase just regenerated — hits at or beyond the first fresh
// position (those steps were sampled on the new graph).
func (m *Maintainer) backwardScanIndexed(hits []walkstore.PosHit, u graph.NodeID, inv float64, first int64, w *updater) (rerouted, seen int64) {
	idx := int64(0)
	g := 0
	for i := 0; i < len(hits); {
		id := hits[i].Seg
		j := i
		for j < len(hits) && hits[j].Seg == id {
			j++
		}
		p := groupPath(w, &g, id)
		end := len(p) - 1 // candidates are non-terminal visits
		if keep, ok := w.touched.get(id); ok && keep < end {
			end = keep // positions >= keep are fresh
		}
		pos := -1
		for _, h := range hits[i:j] {
			hp := int(h.Pos)
			if hp >= end {
				continue
			}
			if pos >= 0 {
				idx++ // superseded slot
				continue
			}
			if stats.FirstSuccessHit(w.rng, first, idx, inv) {
				pos = hp
			}
			idx++
		}
		i = j
		if pos < 0 {
			continue
		}
		m.redirect(id, pos+1, u, walk.Forward, w)
		rerouted++
	}
	return rerouted, idx
}

// reviveBackward repairs stored walks after v gained its very first in-edge.
// A walk pauses before a backward step with no reset coin, so while v had no
// in-edges every such walk died there deterministically — and now every one
// of them continues, necessarily to u, with probability 1: the backward
// analogue of revival has no coin to flip. An interference-emptied terminal
// set downgrades to EmptySkips; there is no coin whose promise could be
// broken.
func (m *Maintainer) reviveBackward(v, u graph.NodeID, w *updater) {
	t := m.walks.PendingTerminals(v, walkstore.SideBackward)
	if t <= 0 {
		m.cnt.emptySkips.Add(1)
		return
	}
	ids, hits, held := m.freeze(v, walkstore.SideBackward, w)
	defer m.segMu.UnlockSet(held)
	defer m.flushMuts(w)
	revived := int64(0)
	if m.cfg.LegacyScan {
		for _, id := range ids {
			side := m.walks.SideOf(id)
			p := m.walks.Path(id)
			last := len(p) - 1
			if p[last] != v || side.PendingAt(last) != walkstore.SideBackward {
				continue
			}
			// A tail regenerated this arrival cannot end backward-pending at
			// v (v already has the new in-edge), so this guard is
			// unreachable; it keeps the phase safe against double-sampling
			// regardless.
			if keep, ok := w.touched.get(id); ok && last >= keep {
				continue
			}
			m.redirect(id, len(p), u, walk.Forward, w)
			revived++
		}
	} else {
		g := 0
		for i := 0; i < len(hits); {
			id := hits[i].Seg
			j := i
			for j < len(hits) && hits[j].Seg == id {
				j++
			}
			p := groupPath(w, &g, id)
			last := len(p) - 1
			if int(hits[j-1].Pos) == last { // terminal hit: backward-pending end at v
				if keep, ok := w.touched.get(id); !ok || last < keep {
					m.redirect(id, len(p), u, walk.Forward, w)
					revived++
				}
			}
			i = j
		}
	}
	if revived > 0 {
		m.cnt.slowPaths.Add(1)
		m.cnt.revived.Add(revived)
	} else {
		m.cnt.emptySkips.Add(1)
	}
}

// redirect truncates segment id to keep nodes, steps it to `to`, and extends
// it with a fresh alternating tail whose next step has direction nextDir,
// sampled through the social store. Parity is preserved: position keep's
// pending direction is automatically nextDir. Callers hold the segment's
// stripe lock. The tail is always sampled here, inline — only the store
// write is deferred to the phase's flushMuts unless UnbatchedWrites — so
// the RNG sequence is identical on both paths.
func (m *Maintainer) redirect(id walkstore.SegmentID, keep int, to graph.NodeID, nextDir walk.Direction, w *updater) {
	if m.cfg.UnbatchedWrites {
		w.tail = append(w.tail[:0], to)
		w.tail = walk.AppendContinueSalsa(m.soc, to, nextDir, m.cfg.Eps, w.rng, w.tail)
		removed, added := m.walks.ReplaceTail(id, keep, w.tail)
		m.cnt.stepsOut.Add(int64(removed))
		m.cnt.stepsIn.Add(int64(added))
		return
	}
	start := len(w.tailBuf)
	w.tailBuf = append(w.tailBuf, to)
	w.tailBuf = walk.AppendContinueSalsa(m.soc, to, nextDir, m.cfg.Eps, w.rng, w.tailBuf)
	w.muts = append(w.muts, pendingMut{id: id, keep: keep, start: start, end: len(w.tailBuf)})
}

// truncate cuts segment id down to keep nodes with no replacement tail (the
// deletion path's reverse revival), deferred alongside the phase's redirects.
func (m *Maintainer) truncate(id walkstore.SegmentID, keep int, w *updater) {
	if m.cfg.UnbatchedWrites {
		removed, _ := m.walks.ReplaceTail(id, keep, nil)
		m.cnt.stepsOut.Add(int64(removed))
		return
	}
	w.muts = append(w.muts, pendingMut{id: id, keep: keep})
}

// flushMuts applies every tail mutation the current repair phase deferred
// through one stripe-grouped ReplaceTailBatch pass: one arena relocation
// critical section and one counter-stripe lock acquisition per touched
// stripe, instead of one of each per rerouted segment. Phases register it
// with defer immediately after the UnlockSet defer, so it runs (LIFO) while
// the segment stripe locks are still held; a phase's writes are therefore
// fully visible before the next phase probes the store, exactly as on the
// unbatched path.
func (m *Maintainer) flushMuts(w *updater) {
	if len(w.muts) == 0 {
		return
	}
	w.tms = w.tms[:0]
	for _, mu := range w.muts {
		var tail []graph.NodeID
		if mu.end > mu.start {
			tail = w.tailBuf[mu.start:mu.end:mu.end]
		}
		w.tms = append(w.tms, walkstore.TailMutation{ID: mu.id, Keep: mu.keep, NewTail: tail})
	}
	removed, added := m.walks.ReplaceTailBatch(w.tms)
	m.cnt.stepsOut.Add(int64(removed))
	m.cnt.stepsIn.Add(int64(added))
	w.muts = w.muts[:0]
	w.tailBuf = w.tailBuf[:0]
}

// maybeCompact checks the arena's garbage ratio every CompactEvery-th
// completed mutation and compacts when it is worth the copy
// (Store.MaybeCompact). Compact changes no logical state (no epoch,
// stripe-epoch, or journal movement), so its placement relative to the
// arrival observer and to concurrent queries is unconstrained; callers
// just must not hold segment stripe locks across it (they don't — it runs
// after the repair).
func (m *Maintainer) maybeCompact() {
	if m.cfg.CompactEvery <= 0 {
		return
	}
	if m.compactTick.Add(1)%int64(m.cfg.CompactEvery) == 0 {
		m.walks.MaybeCompact()
	}
}

// ensureNode seeds R segments per side for a node first seen mid-stream,
// preserving the invariant that every known node owns 2R walks. The claim is
// made under knownMu so exactly one arrival seeds a node; the walks are
// sampled outside the lock.
func (m *Maintainer) ensureNode(v graph.NodeID, w *updater) {
	m.knownMu.Lock()
	if m.known[v] {
		m.knownMu.Unlock()
		return
	}
	m.known[v] = true
	m.knownMu.Unlock()
	pathsF := make([][]graph.NodeID, m.cfg.R)
	pathsB := make([][]graph.NodeID, m.cfg.R)
	for i := 0; i < m.cfg.R; i++ {
		segF := walk.Salsa(m.soc, v, walk.Forward, m.cfg.Eps, w.rng)
		pathsF[i] = segF.Path
		segB := walk.Salsa(m.soc, v, walk.Backward, m.cfg.Eps, w.rng)
		pathsB[i] = segB.Path
		m.cnt.stepsIn.Add(int64(len(segF.Path) + len(segB.Path)))
	}
	m.walks.AddBatchSided(pathsF, walkstore.SideForward)
	m.walks.AddBatchSided(pathsB, walkstore.SideBackward)
	m.cnt.seeded.Add(int64(2 * m.cfg.R))
}

// sortedVisitors returns the segments visiting u in ascending ID order,
// making a fixed-seed serialized run reproducible regardless of the visitor
// set's internal representation, and giving every worker one canonical
// enumeration order.
func sortedVisitors(walks *walkstore.Store, u graph.NodeID) []walkstore.SegmentID {
	ids := walks.Visitors(u)
	slices.Sort(ids)
	return ids
}

// AuthorityEstimate returns v's global authority score: the fraction of all
// stored authority-side visits (visits pending a backward step) that land on
// v. Safe to call concurrently with updates; the numerator is read under v's
// counter stripe and the denominator atomically.
func (m *Maintainer) AuthorityEstimate(v graph.NodeID) float64 {
	m.soc.CountFetch()
	visits, total := m.walks.PendingVisitFraction(v, walkstore.SideBackward)
	if total == 0 {
		return 0
	}
	return float64(visits) / float64(total)
}

// HubEstimate returns v's global hub score: the fraction of all stored
// hub-side visits (visits pending a forward step) that land on v.
func (m *Maintainer) HubEstimate(v graph.NodeID) float64 {
	m.soc.CountFetch()
	visits, total := m.walks.PendingVisitFraction(v, walkstore.SideForward)
	if total == 0 {
		return 0
	}
	return float64(visits) / float64(total)
}

// AuthorityAll returns the full global authority score vector as one
// per-stripe-consistent snapshot. Nodes with no authority-side visits are
// absent.
func (m *Maintainer) AuthorityAll() map[graph.NodeID]float64 {
	m.soc.CountFetch()
	return normalizedCounts(m.walks.PendingVisitCounts(walkstore.SideBackward))
}

// HubAll returns the full global hub score vector as one
// per-stripe-consistent snapshot. Nodes with no hub-side visits are absent.
func (m *Maintainer) HubAll() map[graph.NodeID]float64 {
	m.soc.CountFetch()
	return normalizedCounts(m.walks.PendingVisitCounts(walkstore.SideForward))
}

// TopKAuthorities returns the k highest global authority scores, descending,
// ties toward lower IDs.
func (m *Maintainer) TopKAuthorities(k int) []topk.Item {
	return topk.TopK(m.AuthorityAll(), k)
}

func normalizedCounts(counts map[graph.NodeID]int64, total int64) map[graph.NodeID]float64 {
	scores := make(map[graph.NodeID]float64, len(counts))
	if total == 0 {
		return scores
	}
	for v, x := range counts {
		scores[v] = float64(x) / float64(total)
	}
	return scores
}

// Counters returns a snapshot of the update-path accounting.
func (m *Maintainer) Counters() Counters {
	return m.cnt.snapshot()
}
