package salsa

import (
	"math"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"fastppr/internal/graph"
	"fastppr/internal/socialstore"
	"fastppr/internal/stats"
	"fastppr/internal/topk"
	"fastppr/internal/walk"
	"fastppr/internal/walkstore"
)

// Config parameterizes a Maintainer.
type Config struct {
	// Eps is the reset probability flipped before every forward step, in
	// (0, 1]. Expected segment length is 1 + 2(1-Eps)/Eps nodes.
	Eps float64
	// R is the number of stored segments per node per side (the paper's R):
	// every node owns R forward-first (hub-start) and R backward-first
	// (authority-start) walks.
	R int
	// Workers sizes the Bootstrap worker pool; 0 means GOMAXPROCS. The
	// incremental update path and queries are serialized.
	Workers int
	// Seed seeds bootstrap walk generation and the update/query RNG. Walk
	// contents are chunk-deterministic for any worker count; with Workers=1
	// a run is fully reproducible including segment IDs.
	Seed uint64
	// QueryWalks is the number of Monte Carlo walks a personalized query
	// runs; 0 means 1024.
	QueryWalks int
	// DisableFastPath turns the skip coins off: every arrival fetches the
	// affected segments and flips per-step coins unconditionally. Estimates
	// are drawn from the same distribution either way.
	DisableFastPath bool
}

func (c Config) queryWalks() int {
	if c.QueryWalks <= 0 {
		return 1024
	}
	return c.QueryWalks
}

// Counters is a snapshot of the maintainer's update-path accounting. An
// arrival runs two repair phases (forward steps of the edge's source,
// backward steps of its target), so FastSkips+EmptySkips+SlowPaths sums to
// 2*Arrivals.
type Counters struct {
	Arrivals   int64 // edges consumed
	FastSkips  int64 // repair phases dismissed by a skip coin alone
	EmptySkips int64 // repair phases with no stored step to perturb
	SlowPaths  int64 // repair phases that fetched segments from the store
	SlowNoops  int64 // slow paths that sampled no reroute (0 while the fast path is on)
	Rerouted   int64 // segments redirected through a new edge mid-path
	Revived    int64 // segments extended past a terminal that gained its needed edge
	Seeded     int64 // segments generated for nodes first seen mid-stream
	StepsIn    int64 // visits added by reroutes, revivals, and seeding
	StepsOut   int64 // visits removed by reroutes
	Queries    int64 // personalized queries served
}

// SkipRate returns the fraction of repair phases the fast path skipped
// outright.
func (c Counters) SkipRate() float64 {
	if c.Arrivals == 0 {
		return 0
	}
	return float64(c.FastSkips) / float64(2*c.Arrivals)
}

// Maintainer keeps R alternating walk segments per node per side fresh under
// an edge stream and serves global and personalized SALSA scores from them.
// Global reads may run concurrently with updates; updates and personalized
// queries are serialized.
type Maintainer struct {
	soc   *socialstore.Store
	walks *walkstore.Store
	cfg   Config

	mu      sync.Mutex // serializes updates and queries; guards rng, known, c
	rng     *rand.Rand
	known   map[graph.NodeID]bool // nodes owning their 2R segments
	c       Counters
	tailBuf []graph.NodeID
	// touched records, per arrival, the segments whose tail this arrival
	// already regenerated (id -> first fresh path position). The backward
	// repair phase must not flip coins on freshly sampled steps: they were
	// drawn on the graph that already contains the new edge.
	touched map[walkstore.SegmentID]int
}

// New returns a maintainer over the social store's graph with an empty walk
// store. Call Bootstrap once to seed 2R segments per existing node before
// streaming edges.
func New(soc *socialstore.Store, cfg Config) *Maintainer {
	if cfg.Eps <= 0 || cfg.Eps > 1 {
		panic("salsa: Eps must be in (0, 1]")
	}
	if cfg.R <= 0 {
		cfg.R = 1
	}
	return &Maintainer{
		soc:     soc,
		walks:   walkstore.New(),
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x5a15a)),
		known:   make(map[graph.NodeID]bool),
		touched: make(map[walkstore.SegmentID]int),
	}
}

// Store returns the maintainer's walk store.
func (m *Maintainer) Store() *walkstore.Store { return m.walks }

// Social returns the call-accounted graph store.
func (m *Maintainer) Social() *socialstore.Store { return m.soc }

// Bootstrap generates R forward-first and R backward-first segments for
// every node currently in the graph and marks those nodes as owned. It
// returns the number of walk steps stored. Like the PageRank bootstrap this
// is the offline preprocessing pass: it walks the graph directly and is not
// call-accounted. Nodes are claimed in fixed-size chunks, each walked with
// its own PCG(Seed, chunkIndex) source, so the generated paths are identical
// for any worker count. Call it exactly once, before the first ApplyEdge.
func (m *Maintainer) Bootstrap() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.soc.Graph()
	nodes := g.Nodes()
	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const chunk = 256
	var cursor, steps atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pathsF, pathsB [][]graph.NodeID
			var local int64
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(nodes) {
					break
				}
				hi := min(lo+chunk, len(nodes))
				rng := rand.New(rand.NewPCG(m.cfg.Seed, uint64(lo/chunk)))
				pathsF, pathsB = pathsF[:0], pathsB[:0]
				for _, v := range nodes[lo:hi] {
					for i := 0; i < m.cfg.R; i++ {
						seg := walk.Salsa(g, v, walk.Forward, m.cfg.Eps, rng)
						pathsF = append(pathsF, seg.Path)
						local += int64(len(seg.Path))
					}
					for i := 0; i < m.cfg.R; i++ {
						seg := walk.Salsa(g, v, walk.Backward, m.cfg.Eps, rng)
						pathsB = append(pathsB, seg.Path)
						local += int64(len(seg.Path))
					}
				}
				m.walks.AddBatchSided(pathsF, walkstore.SideForward)
				m.walks.AddBatchSided(pathsB, walkstore.SideBackward)
			}
			steps.Add(local)
		}()
	}
	wg.Wait()
	for _, v := range nodes {
		m.known[v] = true
	}
	return steps.Load()
}

// ApplyEdge consumes one edge arrival: it writes the edge through the social
// store, repairs the stored walks whose forward steps leave the source or
// whose backward steps leave the target (the paper's reroute rule adapted to
// bipartite alternation), and seeds 2R fresh segments for any endpoint seen
// for the first time.
func (m *Maintainer) ApplyEdge(ed graph.Edge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applyLocked(ed)
}

// ApplyEdges consumes a stream of arrivals in order.
func (m *Maintainer) ApplyEdges(edges []graph.Edge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ed := range edges {
		m.applyLocked(ed)
	}
}

func (m *Maintainer) applyLocked(ed graph.Edge) {
	m.c.Arrivals++
	u, v := ed.From, ed.To
	m.soc.AddEdge(u, v)
	dout := m.soc.OutDegree(u)
	din := m.soc.InDegree(v)
	clear(m.touched)
	// Forward phase: stored forward steps from u now have a d-th choice.
	if dout == 1 {
		m.reviveForwardLocked(u, v)
	} else {
		m.rerouteForwardLocked(u, v, dout)
	}
	// Backward phase: stored backward steps from v now have a d-th choice.
	// Runs after the forward phase so it can exclude the positions that
	// phase just regenerated (they already sampled the new edge).
	if din == 1 {
		m.reviveBackwardLocked(v, u)
	} else {
		m.rerouteBackwardLocked(v, u, din)
	}
	// Seed new endpoints last: freshly seeded walks already sample the new
	// edge, so repairing them too would over-weight it.
	m.ensureNodeLocked(u)
	m.ensureNodeLocked(v)
}

// rerouteForwardLocked repairs stored walks after u's out-degree rose to
// d >= 2: every stored forward step from u independently switches to the new
// edge with probability 1/d; a switched segment keeps its prefix, steps to
// v, and continues with a fresh alternating tail (backward next).
func (m *Maintainer) rerouteForwardLocked(u, v graph.NodeID, d int) {
	k := m.walks.PendingCandidates(u, walkstore.SideForward)
	if k == 0 {
		m.c.EmptySkips++
		return
	}
	inv := 1.0 / float64(d)
	// first is the global index (over the fixed enumeration of all k
	// candidate steps) of the first switch, pre-sampled when the skip coin
	// came up heads; -1 means flip every candidate unconditionally.
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if m.rng.Float64() < math.Pow(1-inv, float64(k)) {
			m.c.FastSkips++
			return
		}
		first = stats.TruncatedGeometric(m.rng, inv, k)
	}
	m.c.SlowPaths++
	rerouted := int64(0)
	idx := int64(0)
	for _, id := range m.sortedVisitorsLocked(u) {
		side := m.walks.SideOf(id)
		p := m.walks.Path(id) // stable: ReplaceTail relocates, never mutates
		pos := -1
		for i := 0; i < len(p)-1 && pos < 0; i++ {
			if p[i] != u || side.PendingAt(i) != walkstore.SideForward {
				continue
			}
			if m.candidateHit(first, idx, inv) {
				pos = i
			}
			idx++
		}
		if pos < 0 {
			continue
		}
		// The segment's remaining candidates are superseded by the reroute,
		// but they still occupy slots in the enumeration `first` was drawn
		// over.
		for i := pos + 1; i < len(p)-1; i++ {
			if p[i] == u && side.PendingAt(i) == walkstore.SideForward {
				idx++
			}
		}
		m.redirectLocked(id, pos+1, v, walk.Backward)
		m.touched[id] = pos + 1
		rerouted++
	}
	m.c.Rerouted += rerouted
	if rerouted == 0 {
		m.c.SlowNoops++
	}
}

// reviveForwardLocked repairs stored walks after u gained its very first
// out-edge. While u had no out-edges every walk pausing there before a
// forward step ended — by the reset coin with probability eps, by the
// missing edge otherwise — so each stored forward-pending terminal at u now
// continues with probability 1-eps, necessarily through the new edge.
func (m *Maintainer) reviveForwardLocked(u, v graph.NodeID) {
	t := m.walks.PendingTerminals(u, walkstore.SideForward)
	if t == 0 {
		m.c.EmptySkips++
		return
	}
	eps := m.cfg.Eps
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if m.rng.Float64() < math.Pow(eps, float64(t)) {
			m.c.FastSkips++
			return
		}
		first = stats.TruncatedGeometric(m.rng, 1-eps, t)
	}
	m.c.SlowPaths++
	revived := int64(0)
	idx := int64(0)
	for _, id := range m.sortedVisitorsLocked(u) {
		side := m.walks.SideOf(id)
		p := m.walks.Path(id)
		last := len(p) - 1
		if p[last] != u || side.PendingAt(last) != walkstore.SideForward {
			continue
		}
		cont := m.candidateHit(first, idx, 1-eps)
		idx++
		if !cont {
			continue
		}
		m.redirectLocked(id, len(p), v, walk.Backward)
		m.touched[id] = len(p)
		revived++
	}
	m.c.Revived += revived
	if revived == 0 {
		m.c.SlowNoops++
	}
}

// rerouteBackwardLocked repairs stored walks after v's in-degree rose to
// d >= 2: every stored backward step from v independently switches to the
// new in-neighbor u with probability 1/d. Only steps stored before this
// arrival participate: positions the forward phase just regenerated were
// sampled on the new graph and are excluded from both the skip-coin exponent
// and the scan.
func (m *Maintainer) rerouteBackwardLocked(v, u graph.NodeID, d int) {
	k := m.walks.PendingCandidates(v, walkstore.SideBackward)
	for id, keep := range m.touched {
		side := m.walks.SideOf(id)
		p := m.walks.Path(id)
		for i := keep; i < len(p)-1; i++ {
			if p[i] == v && side.PendingAt(i) == walkstore.SideBackward {
				k--
			}
		}
	}
	if k == 0 {
		m.c.EmptySkips++
		return
	}
	inv := 1.0 / float64(d)
	first := int64(-1)
	if !m.cfg.DisableFastPath {
		if m.rng.Float64() < math.Pow(1-inv, float64(k)) {
			m.c.FastSkips++
			return
		}
		first = stats.TruncatedGeometric(m.rng, inv, k)
	}
	m.c.SlowPaths++
	rerouted := int64(0)
	idx := int64(0)
	for _, id := range m.sortedVisitorsLocked(v) {
		side := m.walks.SideOf(id)
		p := m.walks.Path(id)
		end := len(p) - 1 // candidates are non-terminal visits
		if keep, ok := m.touched[id]; ok && keep < end {
			end = keep // positions >= keep are fresh
		}
		pos := -1
		for i := 0; i < end && pos < 0; i++ {
			if p[i] != v || side.PendingAt(i) != walkstore.SideBackward {
				continue
			}
			if m.candidateHit(first, idx, inv) {
				pos = i
			}
			idx++
		}
		if pos < 0 {
			continue
		}
		for i := pos + 1; i < end; i++ {
			if p[i] == v && side.PendingAt(i) == walkstore.SideBackward {
				idx++
			}
		}
		m.redirectLocked(id, pos+1, u, walk.Forward)
		rerouted++
	}
	m.c.Rerouted += rerouted
	if rerouted == 0 {
		m.c.SlowNoops++
	}
}

// reviveBackwardLocked repairs stored walks after v gained its very first
// in-edge. A walk pauses before a backward step with no reset coin, so while
// v had no in-edges every such walk died there deterministically — and now
// every one of them continues, necessarily to u, with probability 1: the
// backward analogue of revival has no coin to flip.
func (m *Maintainer) reviveBackwardLocked(v, u graph.NodeID) {
	t := m.walks.PendingTerminals(v, walkstore.SideBackward)
	if t == 0 {
		m.c.EmptySkips++
		return
	}
	m.c.SlowPaths++
	revived := int64(0)
	for _, id := range m.sortedVisitorsLocked(v) {
		side := m.walks.SideOf(id)
		p := m.walks.Path(id)
		last := len(p) - 1
		if p[last] != v || side.PendingAt(last) != walkstore.SideBackward {
			continue
		}
		// A tail regenerated this arrival cannot end backward-pending at v
		// (v already has the new in-edge), so this guard is unreachable; it
		// keeps the phase safe against double-sampling regardless.
		if keep, ok := m.touched[id]; ok && last >= keep {
			continue
		}
		m.redirectLocked(id, len(p), u, walk.Forward)
		revived++
	}
	m.c.Revived += revived
	if revived == 0 {
		m.c.SlowNoops++
	}
}

// candidateHit decides whether the idx-th enumerated candidate switches,
// given the pre-sampled first-success index (or -1 for unconditional flips
// with the fast path disabled).
func (m *Maintainer) candidateHit(first, idx int64, p float64) bool {
	switch {
	case first < 0:
		return m.rng.Float64() < p
	case idx < first:
		return false
	case idx == first:
		return true
	default:
		return m.rng.Float64() < p
	}
}

// redirectLocked truncates segment id to keep nodes, steps it to `to`, and
// extends it with a fresh alternating tail whose next step has direction
// nextDir, sampled through the social store. Parity is preserved: position
// keep's pending direction is automatically nextDir.
func (m *Maintainer) redirectLocked(id walkstore.SegmentID, keep int, to graph.NodeID, nextDir walk.Direction) {
	m.tailBuf = append(m.tailBuf[:0], to)
	m.tailBuf = walk.AppendContinueSalsa(m.soc, to, nextDir, m.cfg.Eps, m.rng, m.tailBuf)
	removed, added := m.walks.ReplaceTail(id, keep, m.tailBuf)
	m.c.StepsOut += int64(removed)
	m.c.StepsIn += int64(added)
}

// ensureNodeLocked seeds R segments per side for a node first seen
// mid-stream, preserving the invariant that every known node owns 2R walks.
func (m *Maintainer) ensureNodeLocked(v graph.NodeID) {
	if m.known[v] {
		return
	}
	m.known[v] = true
	pathsF := make([][]graph.NodeID, m.cfg.R)
	pathsB := make([][]graph.NodeID, m.cfg.R)
	for i := 0; i < m.cfg.R; i++ {
		segF := walk.Salsa(m.soc, v, walk.Forward, m.cfg.Eps, m.rng)
		pathsF[i] = segF.Path
		segB := walk.Salsa(m.soc, v, walk.Backward, m.cfg.Eps, m.rng)
		pathsB[i] = segB.Path
		m.c.StepsIn += int64(len(segF.Path) + len(segB.Path))
	}
	m.walks.AddBatchSided(pathsF, walkstore.SideForward)
	m.walks.AddBatchSided(pathsB, walkstore.SideBackward)
	m.c.Seeded += int64(2 * m.cfg.R)
}

// sortedVisitorsLocked returns the segments visiting u in ascending ID
// order, making a fixed-seed run reproducible regardless of the visitor
// set's internal representation.
func (m *Maintainer) sortedVisitorsLocked(u graph.NodeID) []walkstore.SegmentID {
	ids := m.walks.Visitors(u)
	slices.Sort(ids)
	return ids
}

// AuthorityEstimate returns v's global authority score: the fraction of all
// stored authority-side visits (visits pending a backward step) that land on
// v. Safe to call concurrently with updates; numerator and denominator are
// read under one store lock.
func (m *Maintainer) AuthorityEstimate(v graph.NodeID) float64 {
	m.soc.CountFetch()
	visits, total := m.walks.PendingVisitFraction(v, walkstore.SideBackward)
	if total == 0 {
		return 0
	}
	return float64(visits) / float64(total)
}

// HubEstimate returns v's global hub score: the fraction of all stored
// hub-side visits (visits pending a forward step) that land on v.
func (m *Maintainer) HubEstimate(v graph.NodeID) float64 {
	m.soc.CountFetch()
	visits, total := m.walks.PendingVisitFraction(v, walkstore.SideForward)
	if total == 0 {
		return 0
	}
	return float64(visits) / float64(total)
}

// AuthorityAll returns the full global authority score vector as one
// consistent snapshot. Nodes with no authority-side visits are absent.
func (m *Maintainer) AuthorityAll() map[graph.NodeID]float64 {
	m.soc.CountFetch()
	return normalizedCounts(m.walks.PendingVisitCounts(walkstore.SideBackward))
}

// HubAll returns the full global hub score vector as one consistent
// snapshot. Nodes with no hub-side visits are absent.
func (m *Maintainer) HubAll() map[graph.NodeID]float64 {
	m.soc.CountFetch()
	return normalizedCounts(m.walks.PendingVisitCounts(walkstore.SideForward))
}

// TopKAuthorities returns the k highest global authority scores, descending,
// ties toward lower IDs.
func (m *Maintainer) TopKAuthorities(k int) []topk.Item {
	return topk.TopK(m.AuthorityAll(), k)
}

func normalizedCounts(counts map[graph.NodeID]int64, total int64) map[graph.NodeID]float64 {
	scores := make(map[graph.NodeID]float64, len(counts))
	if total == 0 {
		return scores
	}
	for v, x := range counts {
		scores[v] = float64(x) / float64(total)
	}
	return scores
}

// Counters returns a snapshot of the update-path accounting.
func (m *Maintainer) Counters() Counters {
	m.mu.Lock()
	c := m.c
	m.mu.Unlock()
	return c
}
