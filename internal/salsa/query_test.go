package salsa

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/exact"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/stats"
)

// TestPersonalizedSingleEdge is the hand-computable case: on the graph
// {1 -> 2}, every authority-side visit of a walk from 1 lands on 2 and every
// hub-side visit on 1, regardless of eps.
func TestPersonalizedSingleEdge(t *testing.T) {
	g := graph.New(0)
	g.AddEdge(1, 2)
	mt, _ := newMaintainer(g, Config{Eps: 0.5, R: 2, Workers: 1, Seed: 81, QueryWalks: 200})
	mt.Bootstrap()

	if got := mt.Authority(1, 2); got != 1 {
		t.Fatalf("Authority(1,2)=%v want 1", got)
	}
	q := mt.Personalized(1)
	if got := q.Hub(1); got != 1 {
		t.Fatalf("Hub(1)=%v want 1", got)
	}
	if got := q.Authority(1); got != 0 {
		t.Fatalf("Authority(1)=%v want 0 (source is hub-side only here)", got)
	}
	items := q.TopK(3)
	if len(items) != 1 || items[0].Node != 2 || items[0].Score != 1 {
		t.Fatalf("TopK=%v want [{2 1}]", items)
	}
	// Exact oracle agreement on the same graph.
	auth, hub := exact.SalsaPersonalized(g, 1, 0.5, oracleTol)
	if auth[2] != 1 || hub[1] != 1 {
		t.Fatalf("oracle disagrees: auth=%v hub=%v", auth, hub)
	}
}

// TestQueryCallsWithinTheorem8Bound is the acceptance-criterion test: the
// measured Social Store calls of personalized queries must stay within the
// Theorem 8 accounting ceiling, and the measured count must equal the
// query's own bare-step tally (every bare step is exactly one round trip).
func TestQueryCallsWithinTheorem8Bound(t *testing.T) {
	n, q := 400, 2000
	if testing.Short() {
		n, q = 200, 600
	}
	const r = 8
	const eps = 0.2
	rng := rand.New(rand.NewPCG(91, 0))
	g := gen.PreferentialAttachment(n, 6, rng)
	mt, _ := newMaintainer(g, Config{Eps: eps, R: r, Workers: 1, Seed: 92, QueryWalks: q})
	mt.Bootstrap()

	for _, src := range []graph.NodeID{0, 1, graph.NodeID(n / 2), graph.NodeID(n - 1)} {
		res := mt.Personalized(src)
		st := res.Stats()
		if st.Walks != q {
			t.Fatalf("source %d ran %d walks, want %d", src, st.Walks, q)
		}
		if st.StoreCalls != st.BareSteps {
			t.Fatalf("source %d: measured calls %d != bare steps %d — accounting drifted",
				src, st.StoreCalls, st.BareSteps)
		}
		if want := Theorem8Bound(q, r, eps); st.Theorem8Bound != want {
			t.Fatalf("source %d: bound=%v want %v", src, st.Theorem8Bound, want)
		}
		if float64(st.StoreCalls) > st.Theorem8Bound {
			t.Fatalf("source %d: %d store calls exceed Theorem 8 ceiling %.0f",
				src, st.StoreCalls, st.Theorem8Bound)
		}
		if st.StitchedSegments == 0 {
			t.Fatalf("source %d: no segments stitched — query layer not using the store", src)
		}
		if st.Steps != st.StitchedSteps+st.BareSteps-failedProbes(st) {
			// Steps = stitched + successful bare steps; failed probes (dead
			// ends) cost a call but add no step.
			t.Fatalf("source %d: step accounting inconsistent: %+v", src, st)
		}
	}

	// A query that needs no more walks than the source's stored segments
	// makes zero round trips, and the bound collapses to zero with it.
	small, _ := newMaintainer(g.Clone(), Config{Eps: eps, R: r, Workers: 1, Seed: 93, QueryWalks: r})
	small.Bootstrap()
	st := small.Personalized(0).Stats()
	if st.StoreCalls != 0 || st.Theorem8Bound != 0 {
		t.Fatalf("R-walk query should be free: calls=%d bound=%v", st.StoreCalls, st.Theorem8Bound)
	}
	if c := small.Counters(); c.Queries != 1 {
		t.Fatalf("query counter=%d want 1", c.Queries)
	}
}

// failedProbes recovers the dead-end probes from the stats identity:
// BareSteps = successful bare steps + failed probes, Steps = StitchedSteps +
// successful bare steps.
func failedProbes(st QueryStats) int64 {
	return st.BareSteps - (st.Steps - st.StitchedSteps)
}

// TestPersonalizedMatchesOracle checks the personalized estimates against
// the exact source-seeded bipartite chain, including top-k precision on the
// power-law skew.
func TestPersonalizedMatchesOracle(t *testing.T) {
	n, q := 120, 40000
	if testing.Short() {
		n, q = 80, 8000
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(95, 0))
	g := gen.PreferentialAttachment(n, 4, rng)
	mt, _ := newMaintainer(g, Config{Eps: eps, R: 10, Workers: 1, Seed: 96, QueryWalks: q})
	mt.Bootstrap()

	src := graph.NodeID(n - 1) // a late node: full out-degree, light in-degree
	res := mt.Personalized(src)
	auth, hub := exact.SalsaPersonalized(g, src, eps, oracleTol)
	if d := exact.L1(res.AuthorityAll(), auth); d > 0.15 {
		t.Fatalf("personalized authority L1 vs oracle=%v", d)
	}
	var hubAll = make(map[graph.NodeID]float64)
	for v := range hub {
		if s := res.Hub(v); s != 0 {
			hubAll[v] = s
		}
	}
	if d := exact.L1(hubAll, hub); d > 0.15 {
		t.Fatalf("personalized hub L1 vs oracle=%v", d)
	}

	const k = 10
	relevant := make(map[graph.NodeID]bool, k)
	for _, v := range exact.Ranking(auth)[:k] {
		relevant[v] = true
	}
	var retrieved []graph.NodeID
	for _, it := range mt.PersonalizedTopK(src, k) {
		retrieved = append(retrieved, it.Node)
	}
	curve := stats.PrecisionRecallCurve(retrieved, relevant)
	if p := curve[len(curve)-1].Precision; p < 0.5 {
		t.Fatalf("personalized precision@%d=%v below floor", k, p)
	}

	// The estimates are probabilities.
	var sum float64
	for _, s := range res.AuthorityAll() {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("authority scores sum to %v", sum)
	}
}

// TestQueryAfterStream runs personalized queries against a store that has
// been maintained through an edge storm: stitching must still be exact (the
// repaired segments are distributed as fresh ones) and the call ceiling must
// still hold.
func TestQueryAfterStream(t *testing.T) {
	n, m, q := 100, 1500, 12000
	if testing.Short() {
		n, m, q = 70, 700, 4000
	}
	const eps = 0.2
	const r = 8
	rng := rand.New(rand.NewPCG(97, 0))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	mt, _ := newMaintainer(g, Config{Eps: eps, R: r, Workers: 1, Seed: 98, QueryWalks: q})
	mt.Bootstrap()
	mt.ApplyEdges(gen.DirichletStream(n, m, rng))
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}

	src := graph.NodeID(3)
	res := mt.Personalized(src)
	st := res.Stats()
	if float64(st.StoreCalls) > st.Theorem8Bound {
		t.Fatalf("%d calls exceed ceiling %.0f after stream", st.StoreCalls, st.Theorem8Bound)
	}
	auth, _ := exact.SalsaPersonalized(mt.Social().Graph(), src, eps, oracleTol)
	if d := exact.L1(res.AuthorityAll(), auth); d > 0.2 {
		t.Fatalf("post-stream personalized authority L1 vs oracle=%v", d)
	}
}
