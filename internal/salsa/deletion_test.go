package salsa

import (
	"math"
	"math/rand/v2"
	"testing"

	"fastppr/internal/exact"
	"fastppr/internal/gen"
	"fastppr/internal/graph"
)

// nodeGraph returns an edgeless graph holding nodes 0..n-1.
func nodeGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	return g
}

// validateAll runs the full store recount plus the deletion invariant: no
// stored step (forward or backward — ValidateSteps orients backward steps
// against the graph) may traverse a missing edge.
func validateAll(t *testing.T, mt *Maintainer) {
	t.Helper()
	if err := mt.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	g := mt.Social().Graph()
	if err := mt.Store().ValidateSteps(g.HasEdge); err != nil {
		t.Fatal(err)
	}
}

// TestConvergesToOracleOnShrinkGrowStream is the deletion-side ground-truth
// test for the sided variant: interleaved grow and shrink phases must leave
// both the authority and hub estimates tracking the exact chain on whatever
// graph survives.
func TestConvergesToOracleOnShrinkGrowStream(t *testing.T) {
	n, r := 120, 50
	if testing.Short() {
		n, r = 80, 30
	}
	const eps = 0.2
	rng := rand.New(rand.NewPCG(81, 0))
	full := gen.PreferentialAttachment(n, 4, rng)
	arrivals := gen.RandomPermutationStream(full, rng)
	events := gen.ShrinkGrowStream(arrivals, 5, 0.25, rng)

	mt, soc := newMaintainer(nodeGraph(n), Config{Eps: eps, R: r, Workers: 4, Seed: 82})
	mt.Bootstrap()
	mt.ApplyEvents(events)

	validateAll(t, mt)
	cnt := mt.Counters()
	if cnt.Deletions == 0 || cnt.DelRerouted == 0 {
		t.Fatalf("shrink phases did no deletion work: %+v", cnt)
	}
	if cnt.DelMisses != 0 {
		t.Fatalf("DelMisses=%d on an in-order only-live churn stream", cnt.DelMisses)
	}
	if cnt.SlowNoops != 0 {
		t.Fatalf("SlowNoops=%d, want 0", cnt.SlowNoops)
	}
	if cnt.FastSkips+cnt.EmptySkips+cnt.SlowPaths != 2*cnt.Arrivals {
		t.Fatalf("deletions leaked into the arrival phase partition: %+v", cnt)
	}

	auth, hub := exact.Salsa(soc.Graph(), eps, oracleTol)
	if d := exact.L1(mt.AuthorityAll(), auth); d > 0.25 {
		t.Fatalf("churned authority L1 vs oracle=%v", d)
	}
	if d := exact.L1(mt.HubAll(), hub); d > 0.25 {
		t.Fatalf("churned hub L1 vs oracle=%v", d)
	}
}

// TestDeletionLegacyScanBitwise pins both unroute phases at their strongest:
// a fixed-seed serialized churn storm must produce bitwise-identical
// estimates and counters with the pending-position index on and off.
func TestDeletionLegacyScanBitwise(t *testing.T) {
	n, m := 100, 700
	if testing.Short() {
		n, m = 60, 300
	}
	run := func(legacy bool) (map[graph.NodeID]float64, map[graph.NodeID]float64, Counters) {
		mt, _ := newMaintainer(nodeGraph(n), Config{Eps: 0.2, R: 5, Workers: 1, Seed: 91, LegacyScan: legacy})
		mt.Bootstrap()
		rng := rand.New(rand.NewPCG(92, 0))
		events := gen.PowerLawChurnStream(n, m, 0.8, 0.35, rng)
		mt.ApplyEvents(events)
		validateAll(t, mt)
		return mt.AuthorityAll(), mt.HubAll(), mt.Counters()
	}

	authIdx, hubIdx, cntIdx := run(false)
	authLeg, hubLeg, cntLeg := run(true)
	if cntIdx != cntLeg {
		t.Fatalf("counters diverged:\nindexed %+v\nlegacy  %+v", cntIdx, cntLeg)
	}
	if cntIdx.Deletions == 0 || cntIdx.DelRerouted+cntIdx.DelTruncated == 0 {
		t.Fatalf("churn stream exercised no deletion repair: %+v", cntIdx)
	}
	for v, x := range authLeg {
		if authIdx[v] != x {
			t.Fatalf("authority[%d]=%v indexed, %v legacy", v, authIdx[v], x)
		}
	}
	for v, x := range hubLeg {
		if hubIdx[v] != x {
			t.Fatalf("hub[%d]=%v indexed, %v legacy", v, hubIdx[v], x)
		}
	}
}

// TestBackwardTruncation pins the backward half of the reverse revival as the
// exact inverse of TestBackwardRevival: revive x's backward terminals through
// its first in-edge, then delete that in-edge — every backward step x -> 0
// must truncate deterministically (the backward law has no coin), restoring
// x's backward-pending terminals.
func TestBackwardTruncation(t *testing.T) {
	const n = 64
	const r = 8
	g := graph.New(0)
	x := graph.NodeID(1000)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	g.AddEdge(x, 0) // x: out-edge into the cycle, no in-edges
	mt, _ := newMaintainer(g, Config{Eps: 0.2, R: r, Workers: 1, Seed: 93})
	mt.Bootstrap()

	mt.ApplyEdge(graph.Edge{From: 0, To: x})
	revived := mt.Counters().Revived
	if revived == 0 {
		t.Fatal("first in-edge revived nothing; setup broken")
	}
	mt.ApplyDeletion(graph.Edge{From: 0, To: x})
	validateAll(t, mt)
	cnt := mt.Counters()
	if cnt.DelTruncated == 0 {
		t.Fatalf("losing the only in-edge truncated nothing: %+v", cnt)
	}
	if got := mt.Store().PendingTerminals(x, 1); got < int64(r) {
		t.Fatalf("%d backward-pending terminals at x after deletion, want >= %d", got, r)
	}
	// No stored backward step out of x may survive: its in-neighborhood is
	// empty again.
	for _, id := range mt.Store().Visitors(x) {
		p := mt.Store().Path(id)
		side := mt.Store().SideOf(id)
		for i := 0; i < len(p)-1; i++ {
			if p[i] == x && side.PendingAt(i) == 1 {
				t.Fatalf("segment %d still takes backward step x->%d with no in-edges", id, p[i+1])
			}
		}
	}
}

// TestForwardTruncation pins the forward half: deleting a node's only
// out-edge leaves its stored forward steps nowhere to go, so they truncate
// into forward-pending terminals that the next out-edge revives under 1-eps.
func TestForwardTruncation(t *testing.T) {
	const spokes = 100
	g := graph.New(0)
	for i := 1; i <= spokes; i++ {
		g.AddEdge(graph.NodeID(i), 0)
	}
	mt, _ := newMaintainer(g, Config{Eps: 0.2, R: 4, Workers: 1, Seed: 94})
	mt.Bootstrap()

	mt.ApplyDeletion(graph.Edge{From: 7, To: 0})
	validateAll(t, mt)
	cnt := mt.Counters()
	if cnt.DelTruncated == 0 {
		t.Fatalf("losing the only out-edge truncated nothing: %+v", cnt)
	}
	if got := mt.Store().PendingTerminals(7, 0); got == 0 {
		t.Fatal("no forward-pending terminals at node 7 after its last out-edge left")
	}
	// The re-add must revive them under the usual forward 1-eps law.
	mt.ApplyEdge(graph.Edge{From: 7, To: 0})
	validateAll(t, mt)
	if mt.Counters().Revived == 0 {
		t.Fatal("re-adding the out-edge revived nothing")
	}
}

// TestDegenerateDeletions sweeps the remaining edge cases for the sided
// variant.
func TestDegenerateDeletions(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"missing edge is a counted no-op", func(t *testing.T) {
			mt, _ := newMaintainer(nodeGraph(2), Config{Eps: 0.2, R: 5, Workers: 1, Seed: 95})
			mt.Bootstrap()
			mt.ApplyDeletion(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			cnt := mt.Counters()
			if cnt.Deletions != 1 || cnt.DelMisses != 1 {
				t.Fatalf("miss not counted: %+v", cnt)
			}
		}},
		{"never-bootstrapped store", func(t *testing.T) {
			g := nodeGraph(2)
			g.AddEdge(0, 1)
			mt, soc := newMaintainer(g, Config{Eps: 0.2, R: 5, Workers: 1, Seed: 96})
			mt.ApplyDeletion(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			if soc.Graph().HasEdge(0, 1) {
				t.Fatal("edge survived deletion")
			}
			cnt := mt.Counters()
			if cnt.Deletions != 1 || cnt.DelMisses != 0 || cnt.DelRerouted != 0 || cnt.DelTruncated != 0 {
				t.Fatalf("unexpected accounting: %+v", cnt)
			}
		}},
		{"multigraph copy survives", func(t *testing.T) {
			g := nodeGraph(3)
			g.AddEdge(0, 1)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(2, 0)
			mt, soc := newMaintainer(g, Config{Eps: 0.2, R: 10, Workers: 1, Seed: 97})
			mt.Bootstrap()
			mt.ApplyDeletion(graph.Edge{From: 0, To: 1})
			validateAll(t, mt)
			if c := soc.CountEdges(0, 1); c != 1 {
				t.Fatalf("CountEdges=%d after removal, want 1", c)
			}
			// A copy survives on both sides, so nothing may truncate.
			if cnt := mt.Counters(); cnt.DelTruncated != 0 {
				t.Fatalf("truncated despite a surviving copy: %+v", cnt)
			}
		}},
		{"delete then re-add round trip", func(t *testing.T) {
			g := nodeGraph(3)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(2, 0)
			mt, _ := newMaintainer(g, Config{Eps: 0.2, R: 20, Workers: 1, Seed: 98})
			mt.Bootstrap()
			mt.ApplyDeletion(graph.Edge{From: 1, To: 2})
			validateAll(t, mt)
			mt.ApplyEdge(graph.Edge{From: 1, To: 2})
			validateAll(t, mt)
			for _, v := range []graph.NodeID{0, 1, 2} {
				if a := mt.AuthorityEstimate(v); math.IsNaN(a) || a < 0 {
					t.Fatalf("authority[%d]=%v after round trip", v, a)
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestChurnFuzz is the sided shrink-grow fuzz harness: random interleaved
// add/delete batches with per-batch recounts and the missing-edge-step
// invariant, serialized and with the parallel worker pool.
func TestChurnFuzz(t *testing.T) {
	rounds, batch := 10, 120
	if testing.Short() {
		rounds, batch = 5, 60
	}
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "serialized", 4: "parallel"}[workers], func(t *testing.T) {
			const n = 60
			mt, _ := newMaintainer(nodeGraph(n), Config{
				Eps: 0.2, R: 10, Workers: 4, Seed: 99, UpdateWorkers: workers,
			})
			mt.Bootstrap()
			rng := rand.New(rand.NewPCG(100, uint64(workers)))
			for round := 0; round < rounds; round++ {
				events := gen.PowerLawChurnStream(n, batch, 0.9, 0.4, rng)
				mt.ApplyEvents(events)
				validateAll(t, mt)
			}
			cnt := mt.Counters()
			if cnt.Deletions == 0 || cnt.Arrivals == 0 {
				t.Fatalf("fuzz stream was one-sided: %+v", cnt)
			}
			if cnt.SlowNoops != 0 {
				t.Fatalf("SlowNoops=%d, want 0", cnt.SlowNoops)
			}
			if cnt.FastSkips+cnt.EmptySkips+cnt.SlowPaths != 2*cnt.Arrivals {
				t.Fatalf("phase counters do not partition arrivals: %+v", cnt)
			}
			if workers == 1 && cnt.DelMisses != 0 {
				t.Fatalf("DelMisses=%d on a serialized only-live stream", cnt.DelMisses)
			}
			for v, x := range mt.AuthorityAll() {
				if math.IsNaN(x) || x < 0 {
					t.Fatalf("authority[%d]=%v", v, x)
				}
			}
		})
	}
}
