package salsa

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
	"fastppr/internal/persist"
	"fastppr/internal/socialstore"
)

// TestRecoveryResumesFromEarlierCommit exercises the batched-fsync resume
// path: commit markers go out every edge but fsync only every 16 records, so
// abandoning the manager mid-storm (the in-process stand-in for kill -9 —
// everything still sitting in the user-space WAL buffer is gone) recovers to
// some earlier committed cursor. Replaying the storm from that cursor with
// the restored update RNG must still land bitwise on the uninterrupted run:
// correctness may not depend on WHERE the durable prefix ends.
func TestRecoveryResumesFromEarlierCommit(t *testing.T) {
	const n, m, cut = 50, 300, 211
	cfg := Config{Eps: 0.2, R: 10, Workers: 1, Seed: 23}
	storm := gen.DirichletStream(n, m, rand.New(rand.NewPCG(9, 0)))

	nodes := func() *socialstore.Store {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		return socialstore.New(g)
	}

	ref := New(nodes(), cfg)
	ref.Bootstrap()
	ref.ApplyEdges(storm)
	want := ref.Store().VisitCounts()

	dir := t.TempDir()
	pcfg := persist.Config{Dir: dir, Policy: persist.SyncEveryN, SyncEveryN: 16}
	pm, walks, _, err := persist.Open(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	mt := NewWithStore(nodes(), cfg, walks)
	mt.Bootstrap()
	if err := pm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= cut; i++ {
		mt.ApplyEdge(storm[i])
		if err := pm.Commit(int64(i), mt.UpdateRNGState()); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon pm without Close. The WAL's durable prefix ends at
	// whatever the last buffer flush happened to cover.

	pm2, walks2, info, err := persist.Open(persist.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	if info.Cursor < 0 || info.Cursor > cut {
		t.Fatalf("recovered cursor %d outside [0, %d]", info.Cursor, cut)
	}
	soc2 := nodes()
	for _, ed := range storm[:info.Cursor+1] {
		soc2.AddEdge(ed.From, ed.To)
	}
	mt2 := Recover(soc2, cfg, walks2)
	if err := mt2.RestoreUpdateRNGState(info.State); err != nil {
		t.Fatal(err)
	}
	mt2.ApplyEdges(storm[info.Cursor+1:])

	if err := mt2.Store().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := mt2.Store().VisitCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed visit counts diverge from the uninterrupted run (recovered cursor %d of %d)", info.Cursor, cut)
	}
	if g, w := mt2.Store().Epoch(), ref.Store().Epoch(); g != w {
		t.Fatalf("resumed epoch %d, want %d", g, w)
	}
}
