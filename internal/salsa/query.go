package salsa

import (
	"math/rand/v2"

	"fastppr/internal/graph"
	"fastppr/internal/topk"
	"fastppr/internal/walk"
	"fastppr/internal/walkstore"
)

// QueryStats is the per-query cost accounting the paper's Theorem 8 is
// about: how many Social Store round trips one personalized query needed.
type QueryStats struct {
	Source graph.NodeID
	// Walks is the number of Monte Carlo walks the query ran (Config.QueryWalks).
	Walks int
	// Steps is the total number of walk steps taken, stitched or bare.
	Steps int64
	// StitchedSegments counts the stored segments spliced into query walks;
	// StitchedSteps the steps those splices covered for free.
	StitchedSegments int64
	StitchedSteps    int64
	// BareSteps counts the alternating steps attempted through the Social
	// Store, one read call each (including the final probe of a walk that
	// dies at a node with no edge in the pending direction).
	BareSteps int64
	// StoreCalls is the measured Social Store read count across the query,
	// tallied by the query's own store session — exact even while maintainer
	// arrivals and other queries run concurrently. It equals BareSteps by
	// construction, and tests assert the two never drift.
	StoreCalls int64
	// Theorem8Bound is the accounting-model ceiling on the expected store
	// calls for this query: max(0, Walks - storedSegments(source)) walks
	// start without a stored segment, and each costs at most its full
	// expected length 2(1-eps)/eps in store calls. Stitching typically lands
	// far below it; see Theorem8Bound.
	Theorem8Bound float64
	// Stream is the PCG stream index this query's RNG ran on: the replayable
	// half of the query's identity. Re-running the query with
	// PersonalizedStream(Source, Stream) against an unchanged store
	// reproduces the result bitwise — the serving tier's cache-correctness
	// tests are built on this.
	Stream uint64
	// StripeMask is the query's read footprint over the walk store's counter
	// stripes: bit i is set iff the query read any per-node state (stored
	// segment lists, spliced paths) or Social Store adjacency of a node in
	// stripe i. The result can only change if a mutation lands in a masked
	// stripe, so the mask is the cache invalidation key: compare the masked
	// stripes' StripeEpoch stamps (and the serving tier's per-stripe edge
	// revisions) before reusing a cached result.
	StripeMask uint64
	// StartEpoch and EndEpoch bracket the query against the walk store's
	// mutation epoch: EndEpoch - StartEpoch is how many segment mutations
	// landed while the query ran. Equal under a quiet store; under a live
	// storm the gap quantifies the snapshot drift the stitched segments may
	// span (each individual splice is still a coherent stored path thanks to
	// the arena's stable slices).
	StartEpoch int64
	EndEpoch   int64
}

// Query holds the outcome of one personalized SALSA query: empirical
// authority- and hub-side visit distributions of QueryWalks alternating
// eps-reset walks from the source, plus the store-call accounting.
type Query struct {
	auth      map[graph.NodeID]int64
	hub       map[graph.NodeID]int64
	authTotal int64
	hubTotal  int64
	stats     QueryStats
}

// Stats returns the query's cost accounting.
func (q *Query) Stats() QueryStats { return q.stats }

// Authority returns the personalized authority score of v relative to the
// query source: the fraction of authority-side visits that landed on v.
func (q *Query) Authority(v graph.NodeID) float64 {
	if q.authTotal == 0 {
		return 0
	}
	return float64(q.auth[v]) / float64(q.authTotal)
}

// Hub returns the personalized hub score of v relative to the query source.
func (q *Query) Hub(v graph.NodeID) float64 {
	if q.hubTotal == 0 {
		return 0
	}
	return float64(q.hub[v]) / float64(q.hubTotal)
}

// AuthorityAll returns the full personalized authority distribution. Nodes
// never visited on the authority side are absent.
func (q *Query) AuthorityAll() map[graph.NodeID]float64 {
	out := make(map[graph.NodeID]float64, len(q.auth))
	if q.authTotal == 0 {
		return out
	}
	for v, x := range q.auth {
		out[v] = float64(x) / float64(q.authTotal)
	}
	return out
}

// TopK returns the k highest personalized authority scores, descending,
// ties toward lower IDs.
func (q *Query) TopK(k int) []topk.Item {
	return topk.TopK(q.AuthorityAll(), k)
}

// Theorem8Bound is the query layer's accounting model for the paper's
// Theorem 8: with `stored` unused stored segments at the source, only the
// walks beyond them ever touch the Social Store, and a walk's store calls
// are bounded by its attempted steps, 2(1-eps)/eps in expectation. The
// returned value therefore bounds the expected store calls of a q-walk
// query; the measured count sits far below it because bare walks stitch
// back onto stored segments after a step or two.
func Theorem8Bound(q, stored int, eps float64) float64 {
	bare := q - stored
	if bare < 0 {
		bare = 0
	}
	return float64(bare) * 2 * (1 - eps) / eps
}

// sideKey addresses the per-query stitching cursor: stored segments of one
// node usable when the pending step has one direction.
type sideKey struct {
	v graph.NodeID
	d walkstore.Side
}

// Personalized runs a personalized SALSA query from source: QueryWalks
// alternating eps-reset walks, starting forward (source on the hub side).
// Each walk greedily splices a stored, not-yet-used segment of its current
// node — by memorylessness the splice finishes the walk exactly as fresh
// sampling would — and only when the current node's segments are exhausted
// does it take single steps through the call-accounted Social Store. Every
// stored segment is used at most once per query, so the q walks stay
// independent.
//
// Queries are read-mostly and run concurrently with updates and with each
// other: the per-node segment lists and every spliced path are counter-
// stripe/stable-slice snapshots, the store calls are tallied by a private
// session, and the walk store's mutation epoch is stamped into QueryStats so
// callers can see how much the store moved mid-query. Each query draws from
// its own PCG stream keyed by (Seed, query index), so a query is
// reproducible given its index even though queries interleave freely.
func (m *Maintainer) Personalized(source graph.NodeID) *Query {
	qi := m.cnt.queries.Add(1)
	return m.PersonalizedStream(source, QueryStream(uint64(qi), m.walks.Epoch()))
}

// PersonalizedStream is Personalized on an explicit PCG stream index instead
// of the auto-assigned QueryStream. Two calls with the same stream against an
// unchanged store are bitwise identical — this is the replay entry point the
// serving tier and the cache-correctness tests use to recompute a cached
// result for comparison.
func (m *Maintainer) PersonalizedStream(source graph.NodeID, stream uint64) *Query {
	rng := rand.New(rand.NewPCG(m.cfg.Seed, stream))
	q := m.personalized(source, rng)
	q.stats.Stream = stream
	return q
}

// QueryStream derives the PCG stream index for the qi-th query issued while
// the walk store's mutation epoch was epoch. Salting with the epoch fixes the
// post-recovery replay bug: the query counter is process-lifetime, so after a
// crash and Recover it restarts at 0 and counter-only streams would replay
// the pre-crash RNG sequences verbatim. A recovered store has advanced its
// epoch past the original process's early queries' stamps, so the streams
// diverge; two runs repeat a stream only at an identical (counter, epoch)
// pair — identical store state — where determinism is exactly what is wanted.
// The mix is a splitmix64 finalizer (a bijection, so it adds no collisions of
// its own).
func QueryStream(qi uint64, epoch int64) uint64 {
	z := qi + 0x9e3779b97f4a7c15*uint64(epoch+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// The stripe mask is a uint64 bitmap; this fails to compile if the walk
// store ever grows past 64 counter stripes.
const _ uint64 = 1 << (walkstore.StripeCount - 1)

// PersonalizedTopK returns the k best personalized authorities for source —
// the paper's "top-k personalized page ranks" served online from the
// maintained store.
func (m *Maintainer) PersonalizedTopK(source graph.NodeID, k int) []topk.Item {
	return m.Personalized(source).TopK(k)
}

// Authority returns the personalized authority score of v relative to u
// from a fresh query.
func (m *Maintainer) Authority(u, v graph.NodeID) float64 {
	return m.Personalized(u).Authority(v)
}

func (m *Maintainer) personalized(source graph.NodeID, rng *rand.Rand) *Query {
	eps := m.cfg.Eps
	nWalks := m.cfg.queryWalks()
	q := &Query{
		auth: make(map[graph.NodeID]int64),
		hub:  make(map[graph.NodeID]int64),
	}
	q.stats.Source = source
	q.stats.Walks = nWalks
	q.stats.StartEpoch = m.walks.Epoch()
	q.stats.StripeMask = 1 << uint(walkstore.StripeOf(source))

	sess := m.soc.NewSession()
	stored := len(m.walks.OwnedSided(source, walkstore.SideForward))
	// Stitching cursors: ids[k] lists a node's stored segments for one
	// pending direction (read once per query, so the list is a per-node
	// snapshot), used[k] how many this query has consumed.
	ids := make(map[sideKey][]walkstore.SegmentID)
	used := make(map[sideKey]int)

	for w := 0; w < nWalks; w++ {
		cur := source
		dir := walk.Forward
		q.hub[source]++
		q.hubTotal++
		for {
			// Every node whose state this iteration may read — its stored
			// segment list, or its adjacency through a bare step — lands in
			// the read footprint. Spliced path nodes are added below.
			q.stats.StripeMask |= 1 << uint(walkstore.StripeOf(cur))
			k := sideKey{cur, walkstore.Side(dir)}
			seg, ok := ids[k]
			if !ok {
				seg = m.walks.OwnedSided(cur, walkstore.Side(dir))
				ids[k] = seg
			}
			if n := used[k]; n < len(seg) {
				// Splice: the stored segment is a full sample of the walk's
				// remainder (it ended in a reset or a dead end), so it
				// finishes this walk with zero store calls. The path read is
				// coherent even mid-storm: Path slices are stable snapshots.
				used[k] = n + 1
				p := m.walks.Path(seg[n])
				for i := 1; i < len(p); i++ {
					q.stats.StripeMask |= 1 << uint(walkstore.StripeOf(p[i]))
					if walkstore.Side(dir).PendingAt(i) == walkstore.SideBackward {
						q.auth[p[i]]++
						q.authTotal++
					} else {
						q.hub[p[i]]++
						q.hubTotal++
					}
				}
				q.stats.StitchedSegments++
				q.stats.StitchedSteps += int64(len(p) - 1)
				q.stats.Steps += int64(len(p) - 1)
				break
			}
			// Bare step: one Social Store round trip, tallied by the query's
			// own session.
			if dir == walk.Forward {
				if rng.Float64() < eps {
					break
				}
				next, ok := sess.RandomOutNeighbor(cur, rng)
				q.stats.BareSteps++
				if !ok {
					break
				}
				cur = next
				q.auth[cur]++
				q.authTotal++
			} else {
				next, ok := sess.RandomInNeighbor(cur, rng)
				q.stats.BareSteps++
				if !ok {
					break
				}
				cur = next
				q.hub[cur]++
				q.hubTotal++
			}
			q.stats.Steps++
			dir = 1 - dir
		}
	}

	sess.CountFetch() // the query's result fetch against the store
	q.stats.StoreCalls = sess.Snapshot().Reads
	q.stats.Theorem8Bound = Theorem8Bound(nWalks, stored, eps)
	q.stats.EndEpoch = m.walks.Epoch()
	return q
}
