// Package salsa implements the paper's personalized second half (Sections
// 2.3, 4, and 5): an incremental SALSA maintainer over the same walk-segment
// store and Social Store as the PageRank maintainer, plus the personalized
// query layer whose round-trip cost Theorem 8 bounds.
//
// # Stored state
//
// Every node owns 2R alternating eps-reset walk segments (walk.Salsa): R
// starting with a forward step (the node acting as a hub) and R starting
// backward (the node acting as an authority). Segments live in a
// walkstore.Store with a per-segment side tag; because alternation is strict,
// a visit's pending step direction is its side XOR its position parity, and
// the store indexes visits by that pending direction. Visits pending a
// backward step ARE the authority-side visits, visits pending a forward step
// the hub-side ones, so the global SALSA score estimates — AuthorityAll,
// HubAll — are two counter-table reads, exactly like the PageRank
// maintainer's X_v/TotalVisits estimator.
//
// # Incremental maintenance
//
// An arriving edge (u, v) perturbs stored walks in two independent ways,
// each the paper's Section 2.2 reroute rule transplanted to one side of the
// bipartite alternation:
//
//   - forward phase: u's out-degree rose to d, so every stored forward step
//     from u switches to the new edge with probability 1/d (first out-edge:
//     forward-pending terminals at u revive with probability 1-eps);
//   - backward phase: v's in-degree rose to d', so every stored backward
//     step from v switches to u with probability 1/d' (first in-edge:
//     backward-pending terminals at v revive with probability 1 — there is
//     no reset coin before a backward step).
//
// A switched or revived segment keeps its prefix and regrows an alternating
// tail through the call-accounted Social Store (walk.AppendContinueSalsa).
// Both phases use the lossless fast path
// (docs/DESIGN.md#3-the-lossless-wv-fast-path): one coin against (1-1/d)^k
// with the exact sided candidate count k decides whether anything changes,
// and on heads the first switch position is drawn truncated-geometrically,
// so SlowNoops == 0 is an invariant. The backward phase excludes positions
// the forward phase just regenerated — those steps were sampled on the graph
// that already contains the new edge.
//
// Each phase enumerates its candidates from the walk store's
// pending-position index (one (segment, position) hit per stored step of
// the phase's direction at the endpoint, in the canonical ascending order
// first-switch indices are drawn over), so a slow path costs O(hits)
// instead of walking every visitor's full path; Config.LegacyScan keeps the
// pre-index full-path enumeration alive for the bitwise-equivalence test
// and the benchmark comparison — see
// docs/DESIGN.md#7-the-pending-position-index.
//
// Updates run serialized by default or concurrently with
// Config.UpdateWorkers > 1: an arrival locks its (source, target) endpoint
// stripe pair in index order — out-degree moves only on arrivals from the
// source and in-degree only on arrivals to the target, so both degree reads
// stay exact — and each repair phase freezes its segments under SegmentID
// stripe locks (re-reading the index under the freeze so every hit is
// exact), retrying against the frozen enumeration when cross-stripe
// interference moved a counter. Per-seed reproducibility relaxes to
// distributional equivalence, argued in
// docs/DESIGN.md#6-concurrency-model.
//
// Deletions run the sided reverse reroute rule
// (docs/DESIGN.md#10-deletions--windows): removing a copy of (u, v)
// captures each stored forward step u -> v at u and each stored backward
// step v -> u at v with probability 1/c over the pre-removal multiplicity,
// re-steps captures through a surviving out-edge of u (forward) or in-edge
// of v (backward), and truncates when none survive — the asymmetric
// revival law in reverse. The backward phase runs second and excludes the
// positions the forward phase just regenerated; both hold the same
// endpoint stripe pair as arrivals, so the multiplicity and degree reads
// stay exact under parallel churn, and the arrival observer fires after a
// deletion's effects exactly as after an arrival's.
//
// # Personalized queries
//
// Personalized(source) runs QueryWalks alternating walks from the source,
// splicing stored segments: a walk at node w pending direction dir consumes
// one of w's unused stored dir-side segments and — by memorylessness of the
// reset law — finishes right there, for zero round trips; only when w's
// segments are exhausted does it take bare single steps through
// socialstore. Each stored segment is used at most once per query, keeping
// the walks independent. Queries are read-mostly and run concurrently with
// updates and each other: spliced paths are the store's stable arena
// slices, per-node segment lists are per-query snapshots, the store's
// mutation epoch is stamped into QueryStats, and the measured store calls
// come from a per-query socialstore.Session — so StoreCalls == BareSteps
// and the Theorem8Bound ceiling
// (docs/DESIGN.md#4-the-theorem-8-accounting-model) are asserted even under
// a live parallel storm.
//
// Each query draws its RNG from a PCG stream derived by QueryStream from
// the process-local query counter and the store's mutation epoch — so
// streams never repeat across a crash/Recover boundary (the counter alone
// would replay pre-crash sequences) — and PersonalizedStream replays any
// recorded stream bitwise against an unchanged store. QueryStats also
// records the query's read footprint over the store's counter stripes
// (StripeMask), the invalidation key the internal/serve result cache is
// built on (docs/DESIGN.md#9-the-serving-tier); SetArrivalObserver is the
// hook that tier uses to see arrivals whose repair never touched the walk
// store.
//
// Index writes are phase-batched (docs/DESIGN.md#11-batching--compaction):
// each repair phase samples its tails inline — the coin sequence is
// bitwise the sequential one — but coalesces the resulting mutations into
// one walkstore.ReplaceTailBatch per phase, and the parallel path
// pre-groups each arrival batch by source stripe. Config.UnbatchedWrites
// keeps the per-call path as the equivalence oracle, and
// Config.CompactEvery checks the arena between batches and compacts when
// at least a quarter of it is garbage (walkstore.Store.MaybeCompact);
// both are proven bitwise invisible by the fixed-seed batch tests.
package salsa
