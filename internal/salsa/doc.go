// Package salsa implements the paper's personalized second half (Sections
// 2.3, 4, and 5): an incremental SALSA maintainer over the same walk-segment
// store and Social Store as the PageRank maintainer, plus the personalized
// query layer whose round-trip cost Theorem 8 bounds.
//
// # Stored state
//
// Every node owns 2R alternating eps-reset walk segments (walk.Salsa): R
// starting with a forward step (the node acting as a hub) and R starting
// backward (the node acting as an authority). Segments live in a
// walkstore.Store with a per-segment side tag; because alternation is strict,
// a visit's pending step direction is its side XOR its position parity, and
// the store indexes visits by that pending direction. Visits pending a
// backward step ARE the authority-side visits, visits pending a forward step
// the hub-side ones, so the global SALSA score estimates — AuthorityAll,
// HubAll — are two counter-table reads, exactly like the PageRank
// maintainer's X_v/TotalVisits estimator.
//
// # Incremental maintenance
//
// An arriving edge (u, v) perturbs stored walks in two independent ways,
// each the paper's Section 2.2 reroute rule transplanted to one side of the
// bipartite alternation:
//
//   - forward phase: u's out-degree rose to d, so every stored forward step
//     from u switches to the new edge with probability 1/d (first out-edge:
//     forward-pending terminals at u revive with probability 1-eps);
//   - backward phase: v's in-degree rose to d', so every stored backward
//     step from v switches to u with probability 1/d' (first in-edge:
//     backward-pending terminals at v revive with probability 1 — there is
//     no reset coin before a backward step).
//
// A switched or revived segment keeps its prefix and regrows an alternating
// tail through the call-accounted Social Store (walk.AppendContinueSalsa).
// Both phases use the PageRank maintainer's lossless fast path: one coin
// against (1-1/d)^k with the exact sided candidate count k decides whether
// anything changes, and on heads the first switch position is drawn
// truncated-geometrically, so the fast path never alters the estimate
// distribution and SlowNoops == 0 is an invariant. The backward phase
// excludes positions the forward phase just regenerated — those steps were
// sampled on the graph that already contains the new edge.
//
// # Personalized queries
//
// Personalized(source) runs QueryWalks alternating walks from the source,
// splicing stored segments: a walk at node w pending direction dir consumes
// one of w's unused stored dir-side segments and — by memorylessness of the
// reset law — finishes right there, for zero round trips; only when w's
// segments are exhausted does it take bare single steps through
// socialstore. Each stored segment is used at most once per query, keeping
// the walks independent. The measured store calls per query are reported in
// QueryStats next to the Theorem8Bound accounting ceiling, and tests assert
// measured <= bound.
package salsa
