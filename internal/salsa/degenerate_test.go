package salsa

import (
	"math"
	"testing"

	"fastppr/internal/graph"
)

// checkFinite fails on any NaN/Inf in a score map — the failure mode a
// zero-total division would produce.
func checkFinite(t *testing.T, name string, scores map[graph.NodeID]float64) {
	t.Helper()
	for v, x := range scores {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("%s[%d]=%v", name, v, x)
		}
	}
}

// TestDegenerateStoreQueries sweeps the whole query surface against the two
// degenerate stores the total==0 guards exist for: a maintainer that was
// never bootstrapped (store empty, graph populated) and a bootstrapped
// all-dangling graph (every stored segment is a single node). Every call
// must return finite, sensible values — no panic, no NaN, no silent zero
// where a defined score exists.
func TestDegenerateStoreQueries(t *testing.T) {
	const n = 5
	mkGraph := func() *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		return g
	}
	cases := []struct {
		name      string
		bootstrap bool
		// wantScore is the expected global estimate of a live node: 0 on an
		// empty store (nothing stored, nothing to normalize), 1/n on the
		// all-dangling bootstrap (every node stores R single-node segments
		// per side, so each side's mass splits evenly).
		wantScore float64
	}{
		{name: "never-bootstrapped", bootstrap: false, wantScore: 0},
		{name: "all-dangling", bootstrap: true, wantScore: 1.0 / n},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mt, _ := newMaintainer(mkGraph(), Config{Eps: 0.3, R: 4, QueryWalks: 32, Seed: 7})
			if tc.bootstrap {
				mt.Bootstrap()
			}
			for v := graph.NodeID(0); v < n; v++ {
				if got := mt.AuthorityEstimate(v); got != tc.wantScore {
					t.Fatalf("AuthorityEstimate(%d)=%v want %v", v, got, tc.wantScore)
				}
				if got := mt.HubEstimate(v); got != tc.wantScore {
					t.Fatalf("HubEstimate(%d)=%v want %v", v, got, tc.wantScore)
				}
			}
			// Unknown node: defined, zero, not NaN.
			if got := mt.AuthorityEstimate(999); got != 0 {
				t.Fatalf("AuthorityEstimate(unknown)=%v", got)
			}
			auth, hub := mt.AuthorityAll(), mt.HubAll()
			checkFinite(t, "AuthorityAll", auth)
			checkFinite(t, "HubAll", hub)
			wantLen := 0
			if tc.bootstrap {
				wantLen = n
			}
			if len(auth) != wantLen || len(hub) != wantLen {
				t.Fatalf("AuthorityAll/HubAll sizes %d/%d, want %d", len(auth), len(hub), wantLen)
			}
			// k far beyond the live node count must truncate, not pad or panic.
			top := mt.TopKAuthorities(10 * n)
			if len(top) != wantLen {
				t.Fatalf("TopKAuthorities(%d) returned %d items, want %d", 10*n, len(top), wantLen)
			}
			for _, it := range top {
				if math.IsNaN(it.Score) {
					t.Fatalf("TopKAuthorities NaN score for node %d", it.Node)
				}
			}

			q := mt.Personalized(0)
			st := q.Stats()
			if st.StoreCalls != st.BareSteps {
				t.Fatalf("query call accounting drifted: %+v", st)
			}
			if got := q.Authority(0); got != 0 {
				// No walk can take a backward step on an edgeless graph, so
				// every personalized authority score is a defined zero.
				t.Fatalf("Authority(0)=%v on edgeless graph", got)
			}
			// The source is hub-visited by every walk, so its personalized
			// hub score must be a real positive fraction, not a silent zero.
			if got := q.Hub(0); got != 1 {
				t.Fatalf("Hub(source)=%v want 1 (only hub visits are the source's own)", got)
			}
			checkFinite(t, "AuthorityAll(query)", q.AuthorityAll())
			if got := q.TopK(3 * n); len(got) != 0 {
				t.Fatalf("personalized TopK on edgeless graph=%v", got)
			}
			if got := mt.Authority(0, 1); got != 0 {
				t.Fatalf("Authority(0,1)=%v", got)
			}
			if err := mt.Store().Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
