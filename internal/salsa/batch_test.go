package salsa

import (
	"math/rand/v2"
	"sync"
	"testing"

	"fastppr/internal/gen"
	"fastppr/internal/graph"
)

// This file pins the batching-era guarantees at the maintainer level: the
// phase-batched index writes and the epoch-keyed arena compaction must both
// be bitwise invisible to a fixed-seed serialized run, and compaction must
// survive a parallel storm racing personalized queries under -race.

// churnRun drives a fixed-seed serialized churn storm (arrivals + deletions)
// through a fresh maintainer with the given config knobs and returns the
// final estimate vectors and counters, validating the store each round.
func churnRun(t *testing.T, cfg Config) (auth, hub map[graph.NodeID]float64, cnt Counters) {
	t.Helper()
	const n = 60
	rounds, batch := 6, 100
	if testing.Short() {
		rounds, batch = 3, 50
	}
	cfg.Eps, cfg.R, cfg.Workers, cfg.Seed = 0.2, 8, 1, 301
	mt, _ := newMaintainer(nodeGraph(n), cfg)
	mt.Bootstrap()
	rng := rand.New(rand.NewPCG(302, 0))
	for round := 0; round < rounds; round++ {
		events := gen.PowerLawChurnStream(n, batch, 0.9, 0.35, rng)
		mt.ApplyEvents(events)
		validateAll(t, mt)
	}
	return mt.AuthorityAll(), mt.HubAll(), mt.Counters()
}

func requireRunsEqual(t *testing.T, label string, authA, authB, hubA, hubB map[graph.NodeID]float64, cntA, cntB Counters) {
	t.Helper()
	if cntA != cntB {
		t.Fatalf("%s: counters diverged:\nA %+v\nB %+v", label, cntA, cntB)
	}
	if cntA.SlowNoops != 0 {
		t.Fatalf("%s: SlowNoops=%d, want 0", label, cntA.SlowNoops)
	}
	for name, pair := range map[string][2]map[graph.NodeID]float64{
		"authority": {authA, authB},
		"hub":       {hubA, hubB},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s: %s vectors differ in size: %d vs %d", label, name, len(a), len(b))
		}
		for v, x := range b {
			if a[v] != x {
				t.Fatalf("%s: %s[%d]=%v vs %v", label, name, v, a[v], x)
			}
		}
	}
}

// TestBatchedWritesMatchUnbatched is the equivalence proof for the deferred
// write path: a fixed-seed serialized churn storm must produce bitwise
// identical estimates and counters whether every redirect/truncation goes
// through an immediate ReplaceTail (UnbatchedWrites) or is coalesced into
// one ReplaceTailBatch per repair phase — the default. Tails are sampled
// inline in both modes, so the coin sequences are the same stream.
func TestBatchedWritesMatchUnbatched(t *testing.T) {
	authB, hubB, cntB := churnRun(t, Config{})
	authU, hubU, cntU := churnRun(t, Config{UnbatchedWrites: true})
	requireRunsEqual(t, "batched vs unbatched", authB, authU, hubB, hubU, cntB, cntU)

	// The batched path must also stay bitwise equal to the legacy full-path
	// scan, closing the triangle: batch == sequential == legacy enumeration.
	authL, hubL, cntL := churnRun(t, Config{LegacyScan: true})
	requireRunsEqual(t, "batched vs legacy scan", authB, authL, hubB, hubL, cntB, cntL)
}

// TestCompactEveryBitwise pins compaction's no-logical-state contract
// end-to-end: the same fixed-seed serialized storm with CompactEvery firing
// every few updates must be bitwise identical to the run that never
// compacts, while actually shrinking the arena. validateAll runs every
// round, so Validate and ValidateSteps are checked after many compactions.
func TestCompactEveryBitwise(t *testing.T) {
	auth0, hub0, cnt0 := churnRun(t, Config{})
	authC, hubC, cntC := churnRun(t, Config{CompactEvery: 3})
	requireRunsEqual(t, "CompactEvery=3 vs off", auth0, authC, hub0, hubC, cnt0, cntC)

	// The trigger must actually reclaim: checking every mutation
	// (CompactEvery=1) compacts whenever the garbage fraction crosses the
	// worthwhile threshold, so the final arena must be strictly smaller than
	// the never-compacting run's and its garbage ratio bounded near that
	// threshold.
	const n = 60
	run := func(every int) (live, total int64) {
		mt, _ := newMaintainer(nodeGraph(n), Config{Eps: 0.2, R: 8, Workers: 1, Seed: 301, CompactEvery: every})
		mt.Bootstrap()
		rng := rand.New(rand.NewPCG(302, 0))
		mt.ApplyEvents(gen.PowerLawChurnStream(n, 100, 0.9, 0.35, rng))
		validateAll(t, mt)
		return mt.Store().ArenaStats()
	}
	live0, total0 := run(0)
	liveC, totalC := run(1)
	if liveC != live0 {
		t.Fatalf("live slots diverged: %d vs %d", liveC, live0)
	}
	if totalC >= total0 {
		t.Fatalf("CompactEvery=1 arena (%d) not smaller than never-compacting (%d)", totalC, total0)
	}
	if g := float64(totalC-liveC) / float64(totalC); g > 0.3 {
		t.Fatalf("CompactEvery=1 left %.0f%% garbage, want <= 30%%", 100*g)
	}
}

// TestCompactRacesQueriesAndStorm is the -race stress the ISSUE names:
// arena compactions (both the maintainer's CompactEvery trigger inside a
// parallel storm and an external Compact loop) race personalized queries
// chasing stored paths. Queries must stay well-formed throughout and the
// store must validate afterwards.
func TestCompactRacesQueriesAndStorm(t *testing.T) {
	n, q, storm := 150, 400, 1500
	if testing.Short() {
		n, q, storm = 90, 200, 500
	}
	rng := rand.New(rand.NewPCG(311, 0))
	base := gen.PreferentialAttachment(n, 5, rng)
	mt, _ := newMaintainer(base, Config{
		Eps: 0.2, R: 6, UpdateWorkers: 4, Seed: 312, QueryWalks: q, CompactEvery: 7,
	})
	mt.Bootstrap()

	events := gen.PowerLawChurnStream(n, storm, 0.9, 0.3, rng)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // external compactor, racing the CompactEvery trigger
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			// Only rewrite the arena when churn has actually left garbage;
			// a hot loop of full-arena copies would just starve the storm.
			if live, total := mt.Store().ArenaStats(); total > live {
				mt.Store().Compact()
			}
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qrng := rand.New(rand.NewPCG(313, uint64(i)))
			for {
				select {
				case <-done:
					return
				default:
				}
				src := graph.NodeID(qrng.IntN(n))
				res := mt.Personalized(src)
				var sum float64
				for _, s := range res.AuthorityAll() {
					sum += s
				}
				if len(res.AuthorityAll()) > 0 && (sum < 0.999999 || sum > 1.000001) {
					t.Errorf("source %d: authority scores sum to %v under compacting storm", src, sum)
					return
				}
			}
		}(i)
	}
	mt.ApplyEvents(events)
	close(done)
	wg.Wait()
	validateAll(t, mt)
	c := mt.Counters()
	if c.SlowNoops != 0 {
		t.Fatalf("compacting storm recorded %d no-op slow paths", c.SlowNoops)
	}
	if c.Queries == 0 {
		t.Fatal("no queries completed during the storm")
	}
}
