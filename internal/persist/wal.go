package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

// WAL record kinds. Add/ReplaceTail/Remove journal segment mutations (one
// record per walkstore epoch tick); Commit is an application-level marker
// carrying an edge cursor and an opaque state blob (the maintainers store
// their serialized update-RNG state there) so a storm can resume
// deterministically from any durable prefix. RemoveEdge is a graph-level
// marker — the walk store holds no adjacency, so edge deletions leave no
// mutation record of their own when they repair nothing; journaling them
// explicitly lets recovery prove which deletions were durable.
const (
	recAdd byte = iota + 1
	recReplaceTail
	recRemove
	recCommit
	recRemoveEdge
)

// maxPayload caps a decoded record's declared payload size; a frame claiming
// more is treated like any other failed frame (torn tail or corruption,
// depending on what follows).
const maxPayload = 1 << 30

// Rec is one decoded WAL record. Seq is the store epoch after the mutation
// (for Commit and RemoveEdge records: the epoch of the last mutation before
// them — neither advances the store epoch by itself).
type Rec struct {
	Seq    int64
	Kind   byte
	ID     walkstore.SegmentID
	Side   walkstore.Side
	Keep   int
	Path   []graph.NodeID // add path, or replacement tail
	Cursor int64          // commit only
	State  []byte         // commit only
	Edge   graph.Edge     // remove-edge only
}

// SyncPolicy selects when the WAL is fsynced.
type SyncPolicy int

const (
	// SyncNone never fsyncs on the append path (the OS decides; Close still
	// syncs). A kill -9 loses only user-space buffered records — recovery
	// stays correct from whatever prefix reached the file.
	SyncNone SyncPolicy = iota
	// SyncEveryRecord flushes and fsyncs after every record: no committed
	// record is ever lost, at one fsync per mutation.
	SyncEveryRecord
	// SyncEveryN flushes and fsyncs once per Config.SyncEveryN records.
	SyncEveryN
	// SyncInterval flushes and fsyncs on a timer (Config.SyncInterval).
	SyncInterval
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncEveryRecord:
		return "record"
	case SyncEveryN:
		return "every-n"
	case SyncInterval:
		return "interval"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// wal owns the append side of the log file. Appends come from two places:
// the walkstore mutation hook (under the store's segment lock) and Commit
// markers (from the application thread); mu serializes them, and nests
// strictly inside the store's segment lock — wal methods never call back
// into the store.
type wal struct {
	mu       sync.Mutex
	f        File
	bw       *bufio.Writer
	seq      int64 // store epoch after the last mutation record
	records  int64
	bytes    int64
	unsynced int
	err      error // sticky: first append/sync failure stops the log loudly
	cfg      Config

	timerStop chan struct{}
	timerDone chan struct{}
}

func openWAL(cfg Config, path string, seq int64) (*wal, error) {
	f, err := cfg.openFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &wal{f: f, bw: bufio.NewWriter(f), seq: seq, cfg: cfg}
	if cfg.Policy == SyncInterval {
		iv := cfg.SyncInterval
		if iv <= 0 {
			iv = 100 * time.Millisecond
		}
		w.timerStop = make(chan struct{})
		w.timerDone = make(chan struct{})
		go func() {
			t := time.NewTicker(iv)
			defer t.Stop()
			defer close(w.timerDone)
			for {
				select {
				case <-w.timerStop:
					return
				case <-t.C:
					w.mu.Lock()
					w.syncLocked()
					w.mu.Unlock()
				}
			}
		}()
	}
	return w, nil
}

// appendRec frames, writes, and policy-syncs one record. Errors are sticky:
// after the first failure every subsequent append is a loud no-op, so a full
// disk stops journaling without corrupting the tail (recovery then truncates
// whatever partial frame made it out).
func (w *wal) appendRec(r Rec) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if r.Kind == recCommit || r.Kind == recRemoveEdge {
		r.Seq = w.seq // epoch of the last mutation before this marker
	}
	payload := encodeRec(r)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("persist: wal append: %w", err)
		return w.err
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = fmt.Errorf("persist: wal append: %w", err)
		return w.err
	}
	w.records++
	w.bytes += int64(8 + len(payload))
	w.unsynced++
	if r.Kind != recCommit && r.Kind != recRemoveEdge {
		w.seq = r.Seq
	}
	switch w.cfg.Policy {
	case SyncEveryRecord:
		w.syncLocked()
	case SyncEveryN:
		n := w.cfg.SyncEveryN
		if n <= 0 {
			n = 64
		}
		if w.unsynced >= n {
			w.syncLocked()
		}
	}
	return w.err
}

func (w *wal) syncLocked() {
	if w.err != nil || w.unsynced == 0 {
		return
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("persist: wal flush: %w", err)
		return
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("persist: wal fsync: %w", err)
		return
	}
	w.unsynced = 0
}

func (w *wal) close() error {
	if w.timerStop != nil {
		close(w.timerStop)
		<-w.timerDone
		w.timerStop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncLocked()
	err := w.err
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func encodeRec(r Rec) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Seq))
	b = append(b, r.Kind)
	switch r.Kind {
	case recAdd:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.ID))
		b = append(b, byte(int8(r.Side)))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Path)))
		for _, v := range r.Path {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	case recReplaceTail:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.ID))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Keep))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Path)))
		for _, v := range r.Path {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	case recRemove:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.ID))
	case recCommit:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Cursor))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.State)))
		b = append(b, r.State...)
	case recRemoveEdge:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Edge.From))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Edge.To))
	default:
		panic(fmt.Sprintf("persist: encoding unknown record kind %d", r.Kind))
	}
	return b
}

func decodeRec(payload []byte) (Rec, error) {
	var r Rec
	rd := byteReader{b: payload}
	r.Seq = int64(rd.u64())
	r.Kind = rd.u8()
	switch r.Kind {
	case recAdd:
		r.ID = walkstore.SegmentID(rd.u64())
		r.Side = walkstore.Side(int8(rd.u8()))
		r.Path = rd.nodes(rd.u32())
	case recReplaceTail:
		r.ID = walkstore.SegmentID(rd.u64())
		r.Keep = int(rd.u32())
		r.Path = rd.nodes(rd.u32())
	case recRemove:
		r.ID = walkstore.SegmentID(rd.u64())
	case recCommit:
		r.Cursor = int64(rd.u64())
		n := rd.u32()
		r.State = append([]byte(nil), rd.bytes(int(n))...)
	case recRemoveEdge:
		r.Edge.From = graph.NodeID(rd.u64())
		r.Edge.To = graph.NodeID(rd.u64())
	default:
		return r, fmt.Errorf("unknown record kind %d", r.Kind)
	}
	if rd.err != nil {
		return r, rd.err
	}
	if len(rd.b) != rd.off {
		return r, fmt.Errorf("record kind %d has %d trailing payload bytes", r.Kind, len(rd.b)-rd.off)
	}
	return r, nil
}

// byteReader is a bounds-checked little-endian cursor; the first overrun
// latches err and zero-fills subsequent reads.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("record payload truncated at offset %d", r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *byteReader) u8() byte {
	if s := r.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (r *byteReader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *byteReader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (r *byteReader) bytes(n int) []byte { return r.take(n) }

func (r *byteReader) nodes(n uint32) []graph.NodeID {
	if r.err != nil {
		return nil
	}
	if int64(n)*8 > int64(len(r.b)-r.off) {
		r.err = fmt.Errorf("record declares %d nodes past payload end", n)
		return nil
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(r.u64())
	}
	return out
}

// readWAL decodes the log at path. A frame that fails — header cut off at
// EOF, declared payload running past EOF, or CRC mismatch — is a torn tail
// if nothing but zero bytes (a crashed preallocation) or nothing at all
// follows it: the records before it are returned and tornBytes reports how
// much the caller should truncate. A failed frame followed by non-zero data
// is mid-file corruption and fails loudly with ErrCorrupt — recovery never
// silently skips over a damaged committed record. A missing file is an
// empty log.
func readWAL(path string) (recs []Rec, tornBytes int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	off := 0
	for off < len(buf) {
		rest := buf[off:]
		if len(rest) < 8 {
			return recs, int64(len(rest)), nil // header cut off at EOF: torn
		}
		plen := int(binary.LittleEndian.Uint32(rest[0:4]))
		want := binary.LittleEndian.Uint32(rest[4:8])
		if plen > maxPayload || 8+plen > len(rest) {
			return recs, int64(len(rest)), nil // payload runs past EOF: torn
		}
		payload := rest[8 : 8+plen]
		if plen == 0 || crc32.ChecksumIEEE(payload) != want {
			// A failed frame whose declared extent is fully in the file (an
			// empty payload is never valid — crc32 of nothing is 0, so a
			// zero-filled preallocated region parses as an endless "valid"
			// zero frame without this guard). It is a torn tail if nothing
			// but zero bytes follow it; anything else after it means a
			// damaged record sits before intact data, which is corruption,
			// not a crash artifact.
			for _, c := range rest[8+plen:] {
				if c != 0 {
					return nil, 0, fmt.Errorf("%w: %s: damaged record at offset %d followed by non-zero data", ErrCorrupt, path, off)
				}
			}
			return recs, int64(len(rest)), nil
		}
		r, derr := decodeRec(payload)
		if derr != nil {
			// The frame's CRC matched, so this is not a torn write: the log
			// holds a record this build cannot interpret. Fail loudly.
			return nil, 0, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, path, off, derr)
		}
		recs = append(recs, r)
		off += 8 + plen
	}
	return recs, 0, nil
}
