// Package persist makes a walk store durable: a write-ahead log journals
// every segment mutation as it happens, and epoch-stamped snapshots roll the
// log up so recovery time stays bounded. See docs/DESIGN.md#8-durability--recovery.
//
// The WAL hangs off the store's MutationLog hook, so it sees the same
// serialized mutation order the store's epoch counts; each record carries
// that epoch as its sequence number, which is what lets recovery stitch a
// snapshot (stamped with the epoch it was dumped at) to the log suffix past
// it. Records are length-prefixed and CRC-framed: a crash mid-append leaves
// a torn tail that recovery truncates, while a damaged record in front of
// intact data fails loudly with ErrCorrupt — the log is never silently
// skipped over. Snapshots are written to a temp file and renamed into place,
// so a crashed checkpoint never leaves a partial file under a snapshot name.
//
// Commit markers make recovery transactional for deterministic appliers: the
// application journals a cursor plus an opaque state blob (the maintainers
// put their serialized update-RNG there), and Open discards any mutations
// after the last durable marker, handing back the cursor and state so the
// caller redoes exactly the uncommitted work — bitwise identical to a run
// that never crashed, under any fsync policy.
//
// Edge deletions get their own graph-level record: the store holds no
// adjacency, and a deletion whose repair perturbs no stored segment would
// otherwise leave no trace in the log. LogRemoveEdge journals a remove-edge
// marker (replayed as a store no-op); recovery hands back the committed
// markers since the last checkpoint as RecoveryInfo.RemovedEdges so an
// externally rebuilt op stream can be cross-checked against what the log
// says was deleted — docs/DESIGN.md#10-deletions--windows.
//
// Batched writes journal transparently: walkstore.ReplaceTailBatch logs
// one record per non-noop entry in batch order, so replay is the
// sequential execution; arena compaction logs nothing at all — it moves
// bytes, not logical state — so recovery after any number of compactions
// replays the same journal into the identical store
// (docs/DESIGN.md#11-batching--compaction).
//
// Fsync cadence is configurable (every record, every N, on a timer, or
// never); the fault-injection plan in this package scripts short writes,
// flipped bytes, and ENOSPC against the same File seam the real files go
// through, and the crash harness in cmd/benchwalk kill -9s a live churn
// storm (arrivals and deletions) and checks recovery end to end.
package persist
