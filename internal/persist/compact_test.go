package persist

import (
	"testing"

	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

// TestCompactionTransparentToWAL pins the durability contract of the
// batching era: ReplaceTailBatch journals one WAL record per entry in batch
// order (so replay is the sequential execution), and Compact writes nothing
// — it rewrites arena bytes only, so a crash at any point after a compaction
// recovers the identical logical store from the pre-compaction journal.
func TestCompactionTransparentToWAL(t *testing.T) {
	script := func(t *testing.T, s *walkstore.Store, compact bool) {
		t.Helper()
		a := s.AddSided([]graph.NodeID{1, 2, 3}, walkstore.SideForward)
		b := s.AddSided([]graph.NodeID{2, 3}, walkstore.SideBackward)
		c := s.Add([]graph.NodeID{5, 1})
		if compact {
			s.Compact() // nothing dead yet: no-op
		}
		s.ReplaceTailBatch([]walkstore.TailMutation{
			{ID: a, Keep: 1, NewTail: []graph.NodeID{7, 8}},
			{ID: b, Keep: 2, NewTail: nil}, // no-op entry: logs nothing
			{ID: c, Keep: 1, NewTail: []graph.NodeID{3}},
			{ID: a, Keep: 2, NewTail: []graph.NodeID{9}}, // same segment twice
		})
		if compact {
			s.Compact() // reclaims the batch's relocation garbage
		}
		s.Remove(b)
		s.ReplaceTail(c, 1, []graph.NodeID{2, 2})
		if compact {
			s.Compact()
		}
	}

	dir := t.TempDir()
	// Abandon without Close: recovery sees exactly what the WAL pushed, and
	// SyncEveryRecord pushes every record.
	_, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	script(t, s, true)
	liveBefore, totalBefore := s.ArenaStats()
	if liveBefore != totalBefore {
		t.Fatalf("script's final Compact left garbage: live=%d total=%d", liveBefore, totalBefore)
	}

	m2, s2, info := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	defer m2.Close()
	// 3 adds + 3 batch non-noops + 1 remove + 1 replace = 8 records; the
	// batch's no-op entry and the three Compact calls journal nothing.
	if info.Replayed != 8 {
		t.Errorf("replayed %d records, want 8", info.Replayed)
	}

	want := walkstore.New()
	script(t, want, false) // reference never compacts
	equalStores(t, s2, want)
}
