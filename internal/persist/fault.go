package persist

import (
	"sync"
	"syscall"
)

// FaultPlan scripts write failures for durability tests. Wrap the files a
// Config.OpenFile hook returns with WrapFile and the wrapper counts bytes
// across all writes, then misbehaves at the scripted point. The zero value
// (with FailAfter 0 meaning "immediately") fails the first write with
// ENOSPC; set FailAfter to let a prefix through first.
type FaultPlan struct {
	mu      sync.Mutex
	written int64

	// FailAfter is how many bytes to let through before the fault fires.
	FailAfter int64
	// Err is the error writes return once the fault fires (default ENOSPC).
	Err error
	// ShortWrite, when set, makes the faulting write persist the bytes that
	// fit under FailAfter and report success before failing the NEXT write —
	// a torn frame, the way a full disk or a crash mid-write() leaves one.
	ShortWrite bool
	// FlipByte, when >= 0, flips the low bit of the byte at that global
	// offset instead of failing: silent media corruption. Writes all succeed.
	FlipByte int64
}

// NewFaultPlan returns a plan that fails with ENOSPC after n bytes.
func NewFaultPlan(n int64) *FaultPlan {
	return &FaultPlan{FailAfter: n, FlipByte: -1}
}

// WrapFile interposes the plan on one file. Several files may share a plan;
// the byte budget is global across them (like a filesystem running out of
// space is).
func (p *FaultPlan) WrapFile(f File) File { return &faultFile{f: f, p: p} }

type faultFile struct {
	f File
	p *FaultPlan
}

func (ff *faultFile) Write(b []byte) (int, error) {
	p := ff.p
	p.mu.Lock()
	defer p.mu.Unlock()
	failErr := p.Err
	if failErr == nil {
		failErr = syscall.ENOSPC
	}
	if p.FlipByte >= 0 {
		if off := p.FlipByte - p.written; off >= 0 && off < int64(len(b)) {
			mutated := append([]byte(nil), b...)
			mutated[off] ^= 1
			b = mutated
		}
		n, err := ff.f.Write(b)
		p.written += int64(n)
		return n, err
	}
	remain := p.FailAfter - p.written
	if remain <= 0 {
		return 0, failErr
	}
	if int64(len(b)) > remain {
		if !p.ShortWrite {
			return 0, failErr
		}
		n, err := ff.f.Write(b[:remain])
		p.written += int64(n)
		if err != nil {
			return n, err
		}
		// The syscall contract allows a short write; report it as success
		// for the bytes that landed and fail the next attempt.
		p.FailAfter = p.written
		p.ShortWrite = false
		return n, nil
	}
	n, err := ff.f.Write(b)
	p.written += int64(n)
	return n, err
}

func (ff *faultFile) Sync() error  { return ff.f.Sync() }
func (ff *faultFile) Close() error { return ff.f.Close() }
