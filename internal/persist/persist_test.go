package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

// applyOps replays the shared mutation script, ops[0:upTo], against a store.
// Each op is one epoch tick, so a store after applyOps(s, k) sits at epoch k.
func applyOps(t *testing.T, s *walkstore.Store, upTo int) {
	t.Helper()
	var ids []walkstore.SegmentID
	step := func(i int) {
		switch i {
		case 0:
			ids = append(ids, s.AddSided([]graph.NodeID{1, 2, 3}, walkstore.SideForward))
		case 1:
			ids = append(ids, s.AddSided([]graph.NodeID{2, 3}, walkstore.SideBackward))
		case 2:
			ids = append(ids, s.Add([]graph.NodeID{5}))
		case 3:
			s.ReplaceTail(ids[0], 1, []graph.NodeID{7, 8})
		case 4:
			s.Remove(ids[1])
		case 5:
			ids = append(ids, s.AddSided([]graph.NodeID{3, 1}, walkstore.SideForward))
		default:
			t.Fatalf("no op %d in the script", i)
		}
	}
	for i := 0; i < upTo; i++ {
		step(i)
	}
	if got := s.Epoch(); got != int64(upTo) {
		t.Fatalf("script reached epoch %d, want %d", got, upTo)
	}
}

const scriptLen = 6

// reference builds an unpersisted store holding ops[0:upTo].
func reference(t *testing.T, upTo int) *walkstore.Store {
	t.Helper()
	s := walkstore.New()
	applyOps(t, s, upTo)
	return s
}

func equalStores(t *testing.T, got, want *walkstore.Store) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("recovered store fails Validate: %v", err)
	}
	if g, w := got.Epoch(), want.Epoch(); g != w {
		t.Errorf("epoch = %d, want %d", g, w)
	}
	if g, w := got.TotalVisits(), want.TotalVisits(); g != w {
		t.Errorf("total visits = %d, want %d", g, w)
	}
	if g, w := got.NumSegments(), want.NumSegments(); g != w {
		t.Errorf("live segments = %d, want %d", g, w)
	}
	if g, w := got.VisitCounts(), want.VisitCounts(); !reflect.DeepEqual(g, w) {
		t.Errorf("visit counts = %v, want %v", g, w)
	}
	for _, v := range []graph.NodeID{1, 2, 3, 5, 7, 8} {
		if g, w := got.OwnedBy(v), want.OwnedBy(v); !reflect.DeepEqual(g, w) {
			t.Errorf("OwnedBy(%d) = %v, want %v", v, g, w)
		}
		for _, dir := range []walkstore.Side{walkstore.SideForward, walkstore.SideBackward} {
			if g, w := got.PendingPositions(v, dir), want.PendingPositions(v, dir); !reflect.DeepEqual(g, w) {
				t.Errorf("PendingPositions(%d, %d) = %v, want %v", v, dir, g, w)
			}
		}
	}
	// Dead slots count too: the next assigned ID must match bitwise, or the
	// pending-position enumeration the maintainers sample over would shift.
	if g, w := got.Add([]graph.NodeID{9}), want.Add([]graph.NodeID{9}); g != w {
		t.Errorf("next segment ID after recovery = %d, want %d", g, w)
	}
}

func mustOpen(t *testing.T, cfg Config) (*Manager, *walkstore.Store, RecoveryInfo) {
	t.Helper()
	m, s, info, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", cfg.Dir, err)
	}
	return m, s, info
}

func TestCloseReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, s, _ := mustOpen(t, Config{Dir: dir})
	applyOps(t, s, scriptLen)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m2, s2, info := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	// Close fsynced the full WAL, so nothing is torn and nothing replays
	// twice.
	if info.TornBytes != 0 || info.Discarded != 0 {
		t.Errorf("clean reopen reports torn=%d discarded=%d", info.TornBytes, info.Discarded)
	}
	equalStores(t, s2, reference(t, scriptLen))
}

func TestAbandonedWALRecovers(t *testing.T) {
	// A kill -9 keeps whatever the WAL pushed to the OS; SyncEveryRecord
	// pushes everything, so abandoning the manager without Close loses
	// nothing.
	dir := t.TempDir()
	_, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	applyOps(t, s, scriptLen)

	m2, s2, info := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	defer m2.Close()
	if info.Replayed != scriptLen {
		t.Errorf("replayed %d records, want %d", info.Replayed, scriptLen)
	}
	equalStores(t, s2, reference(t, scriptLen))
}

// wipeManagers drops the extra segment equalStores adds, by copying a dir
// into a fresh one so each torn-tail variant starts from the same bytes.
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// frameOffsets parses the WAL framing and returns each frame's start offset.
func frameOffsets(t *testing.T, buf []byte) []int {
	t.Helper()
	var offs []int
	off := 0
	for off < len(buf) {
		offs = append(offs, off)
		plen := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 8 + plen
	}
	if off != len(buf) {
		t.Fatalf("WAL does not parse into whole frames (ended at %d of %d)", off, len(buf))
	}
	return offs
}

// seedDir builds a directory whose WAL holds the full script, then abandons
// it (no Close), returning the dir and the WAL bytes.
func seedDir(t *testing.T) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	_, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	applyOps(t, s, scriptLen)
	buf, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return dir, buf
}

func TestTornTailTruncated(t *testing.T) {
	dir, buf := seedDir(t)
	offs := frameOffsets(t, buf)
	last := offs[len(offs)-1]
	for _, cut := range []int{last + 3, last + 8 + 5} { // mid-header, mid-payload
		d := cloneDir(t, dir)
		if err := os.WriteFile(filepath.Join(d, "wal.log"), buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m, s, info := mustOpen(t, Config{Dir: d})
		if info.Replayed != scriptLen-1 {
			t.Errorf("cut at %d: replayed %d, want %d", cut, info.Replayed, scriptLen-1)
		}
		if want := int64(cut - last); info.TornBytes != want {
			t.Errorf("cut at %d: torn bytes %d, want %d", cut, info.TornBytes, want)
		}
		equalStores(t, s, reference(t, scriptLen-1))
		m.Close()
	}
}

func TestZeroFillTailTruncated(t *testing.T) {
	// A crash after the filesystem extended the file but before the data hit
	// it leaves trailing zeros; they must read as a torn tail, not as frames
	// (crc32("") == 0 would otherwise validate an empty frame) and not as
	// corruption.
	dir, buf := seedDir(t)
	d := cloneDir(t, dir)
	if err := os.WriteFile(filepath.Join(d, "wal.log"), append(buf, make([]byte, 64)...), 0o644); err != nil {
		t.Fatal(err)
	}
	m, s, info := mustOpen(t, Config{Dir: d})
	defer m.Close()
	if info.Replayed != scriptLen || info.TornBytes != 64 {
		t.Errorf("replayed=%d torn=%d, want %d and 64", info.Replayed, info.TornBytes, scriptLen)
	}
	equalStores(t, s, reference(t, scriptLen))
}

func TestMidFileCorruptionIsLoud(t *testing.T) {
	dir, buf := seedDir(t)
	offs := frameOffsets(t, buf)
	d := cloneDir(t, dir)
	mut := append([]byte(nil), buf...)
	mut[offs[0]+8+2] ^= 0xFF // payload byte of the first frame; later frames intact
	if err := os.WriteFile(filepath.Join(d, "wal.log"), mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := Open(Config{Dir: d})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-file damage = %v, want ErrCorrupt", err)
	}
}

func TestCorruptSnapshotIsLoud(t *testing.T) {
	dir := t.TempDir()
	m, s, _ := mustOpen(t, Config{Dir: dir})
	applyOps(t, s, scriptLen)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Roll the WAL into a snapshot so the snapshot is the only state.
	m, _, _ = mustOpen(t, Config{Dir: dir})
	m.Close()
	path, _, ok, err := newestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("no snapshot after checkpoint: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := append([]byte(nil), buf...)
	flip[len(flip)/2] ^= 1
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over flipped snapshot byte = %v, want ErrCorrupt", err)
	}

	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over truncated snapshot = %v, want ErrCorrupt", err)
	}
}

func TestFaultPlanFlipByteCorruptsSnapshot(t *testing.T) {
	// Flip one bit while the snapshot is being written: the checkpoint
	// succeeds (the fault is silent), and the next Open must refuse the file.
	dir := t.TempDir()
	plan := &FaultPlan{FlipByte: 20}
	cfg := Config{Dir: dir, OpenFile: func(path string, flag int, perm os.FileMode) (File, error) {
		f, err := os.OpenFile(path, flag, perm)
		if err != nil {
			return nil, err
		}
		if strings.Contains(path, snapSuffix) {
			return plan.WrapFile(f), nil
		}
		return f, nil
	}}
	m, _, _ := mustOpen(t, cfg)
	m.Close()
	if _, _, _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over bit-flipped snapshot = %v, want ErrCorrupt", err)
	}
}

func walFaultConfig(dir string, plan *FaultPlan) Config {
	return Config{Dir: dir, Policy: SyncEveryRecord,
		OpenFile: func(path string, flag int, perm os.FileMode) (File, error) {
			f, err := os.OpenFile(path, flag, perm)
			if err != nil {
				return nil, err
			}
			if filepath.Base(path) == "wal.log" {
				return plan.WrapFile(f), nil
			}
			return f, nil
		}}
}

func TestENOSPCStopsJournalingLoudly(t *testing.T) {
	dir := t.TempDir()
	plan := NewFaultPlan(64) // first record (54B frame) fits, second does not
	m, s, _ := mustOpen(t, walFaultConfig(dir, plan))
	applyOps(t, s, scriptLen)
	if err := m.Err(); err == nil {
		t.Fatal("WAL writes past the fault budget reported no error")
	} else if !errors.Is(err, os.ErrInvalid) && !strings.Contains(err.Error(), "no space") {
		t.Logf("sticky error (any loud error is acceptable): %v", err)
	}
	// The in-memory store is unharmed.
	if err := s.Validate(); err != nil {
		t.Fatalf("store fails Validate after WAL fault: %v", err)
	}
	m.Close()

	// Recovery picks up exactly the prefix that reached the file.
	m2, s2, info := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	if info.Replayed != 1 {
		t.Errorf("replayed %d records, want the 1 that fit", info.Replayed)
	}
	equalStores(t, s2, reference(t, 1))
}

func TestShortWriteLeavesTruncatableTorn(t *testing.T) {
	dir := t.TempDir()
	plan := &FaultPlan{FailAfter: 60, ShortWrite: true, FlipByte: -1}
	m, s, _ := mustOpen(t, walFaultConfig(dir, plan))
	applyOps(t, s, scriptLen)
	if m.Err() == nil {
		t.Fatal("short write reported no error")
	}
	m.Close()

	m2, s2, info := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	if info.Replayed != 1 || info.TornBytes == 0 {
		t.Errorf("replayed=%d torn=%d, want 1 replayed and a torn tail", info.Replayed, info.TornBytes)
	}
	equalStores(t, s2, reference(t, 1))
}

func TestCommitMarkerDiscardsUncommittedSuffix(t *testing.T) {
	dir := t.TempDir()
	state := []byte{0xAB, 0xCD, 0x01}
	m, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	applyOps(t, s, 3)
	if err := m.Commit(2, state); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	applyOps2 := func() { // ops 3..5 on top, uncommitted
		s.ReplaceTail(walkstore.SegmentID(0), 1, []graph.NodeID{7, 8})
		s.Remove(walkstore.SegmentID(1))
		s.AddSided([]graph.NodeID{3, 1}, walkstore.SideForward)
	}
	applyOps2()
	// Abandon without Close: the marker at cursor 2 is the last durable word.

	m2, s2, info := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	defer m2.Close()
	if info.Cursor != 2 || !bytes.Equal(info.State, state) {
		t.Errorf("recovered cursor=%d state=%x, want 2 and %x", info.Cursor, info.State, state)
	}
	if info.Replayed != 3 || info.Discarded != 3 {
		t.Errorf("replayed=%d discarded=%d, want 3 and 3", info.Replayed, info.Discarded)
	}
	equalStores(t, s2, reference(t, 3))
}

func TestCommitBeforeAnyWorkMakesRunTransactional(t *testing.T) {
	// Commit(-1, state) before doing anything declares transactional intent:
	// if the process dies before its first real commit becomes durable, the
	// mutations in the WAL are an uncommitted suffix and must be discarded —
	// NOT replayed as plain persistence would — or the application's redo
	// from cursor -1 (i.e. from the start) would double-apply them.
	dir := t.TempDir()
	state := []byte{0x42}
	m, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	if err := m.Commit(-1, state); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := m.Checkpoint(); err != nil { // marker survives only via the snapshot
		t.Fatalf("Checkpoint: %v", err)
	}
	applyOps(t, s, 4)
	// Abandon without Close or further Commit.

	m2, s2, info := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	defer m2.Close()
	if !info.Committed || info.Cursor != -1 || !bytes.Equal(info.State, state) {
		t.Errorf("recovered committed=%v cursor=%d state=%x, want true, -1, %x",
			info.Committed, info.Cursor, info.State, state)
	}
	if info.Replayed != 0 || info.Discarded != 4 {
		t.Errorf("replayed=%d discarded=%d, want 0 and 4", info.Replayed, info.Discarded)
	}
	equalStores(t, s2, reference(t, 0))
}

func TestReplaySkipsRecordsCoveredBySnapshot(t *testing.T) {
	// The crash window between a checkpoint's snapshot rename and its WAL
	// truncation leaves a snapshot at epoch E alongside a WAL whose records
	// start below E; replay must skip those by sequence number.
	dir, _ := seedDir(t) // WAL holds seq 1..6
	ref3 := reference(t, 3)
	d, err := ref3.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeSnapshot(Config{}, dir, d, false, -1, nil); err != nil { // snapshot at epoch 3
		t.Fatal(err)
	}
	m, s, info := mustOpen(t, Config{Dir: dir})
	defer m.Close()
	if info.SnapshotEpoch != 3 || info.Replayed != 3 {
		t.Errorf("snapshotEpoch=%d replayed=%d, want 3 and 3", info.SnapshotEpoch, info.Replayed)
	}
	equalStores(t, s, reference(t, scriptLen))
}

func TestCheckpointBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	m, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	applyOps(t, s, 3)
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := m.Stats()
	if st.WALRecords != 0 {
		t.Errorf("WAL holds %d records after checkpoint, want 0", st.WALRecords)
	}
	s.AddSided([]graph.NodeID{3, 1}, walkstore.SideForward)
	if st := m.Stats(); st.WALRecords != 1 {
		t.Errorf("WAL holds %d records after post-checkpoint add, want 1", st.WALRecords)
	}
	m.Close()
	m2, s2, info := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	if info.SnapshotEpoch != 3 || info.Replayed != 1 {
		t.Errorf("snapshotEpoch=%d replayed=%d, want 3 and 1", info.SnapshotEpoch, info.Replayed)
	}
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	if g, w := s2.Epoch(), int64(4); g != w {
		t.Errorf("epoch = %d, want %d", g, w)
	}
}

func TestDumpRequiresQuiescenceDoc(t *testing.T) {
	// Checkpoint surfaces walkstore.ErrConcurrentMutation from Dump; the
	// quiescent path must NOT trip it.
	dir := t.TempDir()
	m, s, _ := mustOpen(t, Config{Dir: dir})
	defer m.Close()
	applyOps(t, s, scriptLen)
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("quiescent Checkpoint: %v", err)
	}
}

func TestCheckpointPreservesCommitCursor(t *testing.T) {
	// A checkpoint truncates the WAL — including its commit markers. The
	// latest marker is re-embedded in the snapshot, so a crash in the window
	// before the next Commit still recovers the right cursor and discards
	// the uncommitted mutations that followed the checkpoint.
	dir := t.TempDir()
	m, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	applyOps(t, s, 3)
	if err := m.Commit(2, []byte{0x07}); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.AddSided([]graph.NodeID{3, 1}, walkstore.SideForward) // uncommitted
	// Crash: abandon without Close.

	m2, s2, info := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	if info.Cursor != 2 || !bytes.Equal(info.State, []byte{0x07}) {
		t.Errorf("cursor=%d state=%x, want 2 and 07", info.Cursor, info.State)
	}
	if info.Discarded != 1 {
		t.Errorf("discarded %d records, want the 1 uncommitted add", info.Discarded)
	}
	equalStores(t, s2, reference(t, 3))
}
