package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"fastppr/internal/walkstore"
)

// Snapshot file layout (little-endian):
//
//	magic "FPSNAP1\n"
//	epoch i64 | totalVisits i64 | sidedTotals[2] i64
//	hasCommit u8 | cursor i64 | stateLen u32 | state bytes
//	numSegs u64
//	per segment slot: u8 live; live slots add i8 side, u32 n, n × u64 nodes
//	crc32 u32 over everything before it
//
// hasCommit/cursor/state embed the latest commit marker at checkpoint time
// (hasCommit 0 when the application never committed), so truncating the WAL
// at a checkpoint cannot lose the transactional resume point: recovery reads
// it from the snapshot and lets any later WAL marker override it. hasCommit
// is a separate flag because cursor -1 is itself a legal committed value
// ("nothing done yet"), distinct from never having committed at all.
//
// Files are named snap-<epoch 16-hex-digits>.wsnap and written via temp file
// + rename + directory fsync, so a crashed checkpoint is never visible under
// a snapshot name: the newest snap-* file is always a fully written one.
const (
	snapMagic  = "FPSNAP1\n"
	snapSuffix = ".wsnap"
	snapPrefix = "snap-"
)

func snapName(epoch int64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, uint64(epoch), snapSuffix)
}

// snapEpoch parses the epoch out of a snapshot file name, reporting ok=false
// for names that are not snapshots (temp files, strangers).
func snapEpoch(name string) (int64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	e, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return int64(e), true
}

// writeSnapshot persists a store dump into dir, durably: temp file, fsync,
// rename to the final epoch-stamped name, fsync the directory. On any error
// the temp file is removed and no snap-* name ever points at partial data.
func writeSnapshot(cfg Config, dir string, d *walkstore.Dump, hasCommit bool, cursor int64, state []byte) (bytes int64, err error) {
	final := filepath.Join(dir, snapName(d.Epoch))
	tmp := final + ".tmp"
	f, err := cfg.openFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	buf := encodeSnapshot(d, hasCommit, cursor, state)
	if _, err = f.Write(buf); err != nil {
		return 0, fmt.Errorf("persist: snapshot write: %w", err)
	}
	if err = f.Sync(); err != nil {
		return 0, fmt.Errorf("persist: snapshot fsync: %w", err)
	}
	if err = f.Close(); err != nil {
		return 0, fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err = os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("persist: snapshot rename: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

func encodeSnapshot(d *walkstore.Dump, hasCommit bool, cursor int64, state []byte) []byte {
	size := len(snapMagic) + 5*8 + 1 + 4 + len(state) + 8 + 4
	for _, sd := range d.Segs {
		size++
		if sd.Live {
			size += 1 + 4 + 8*len(sd.Path)
		}
	}
	b := make([]byte, 0, size)
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint64(b, uint64(d.Epoch))
	b = binary.LittleEndian.AppendUint64(b, uint64(d.TotalVisits))
	b = binary.LittleEndian.AppendUint64(b, uint64(d.SidedTotals[0]))
	b = binary.LittleEndian.AppendUint64(b, uint64(d.SidedTotals[1]))
	if hasCommit {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(cursor))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(state)))
	b = append(b, state...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(d.Segs)))
	for _, sd := range d.Segs {
		if !sd.Live {
			b = append(b, 0)
			continue
		}
		b = append(b, 1, byte(int8(sd.Side)))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sd.Path)))
		for _, v := range sd.Path {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// loadSnapshot reads and verifies one snapshot file. Every failure — short
// file, bad magic, CRC mismatch, malformed segment table — is ErrCorrupt:
// the newest snapshot name is by construction a completed write, so damage
// here is real and must stop recovery loudly rather than silently serving a
// partial store.
func loadSnapshot(path string) (d *walkstore.Dump, hasCommit bool, cursor int64, state []byte, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, false, -1, nil, err
	}
	if len(buf) < len(snapMagic)+6*8+1+4+4 || string(buf[:len(snapMagic)]) != snapMagic {
		return nil, false, -1, nil, fmt.Errorf("%w: %s: not a snapshot file", ErrCorrupt, path)
	}
	body, crcb := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcb) {
		return nil, false, -1, nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	rd := byteReader{b: body, off: len(snapMagic)}
	d = &walkstore.Dump{
		Epoch:       int64(rd.u64()),
		TotalVisits: int64(rd.u64()),
	}
	d.SidedTotals[0] = int64(rd.u64())
	d.SidedTotals[1] = int64(rd.u64())
	switch flag := rd.u8(); flag {
	case 0:
	case 1:
		hasCommit = true
	default:
		return nil, false, -1, nil, fmt.Errorf("%w: %s: invalid commit flag %d", ErrCorrupt, path, flag)
	}
	cursor = int64(rd.u64())
	state = append([]byte(nil), rd.bytes(int(rd.u32()))...)
	numSegs := rd.u64()
	if numSegs > uint64(len(body)) { // each slot costs at least one byte
		return nil, false, -1, nil, fmt.Errorf("%w: %s: segment count %d exceeds file size", ErrCorrupt, path, numSegs)
	}
	d.Segs = make([]walkstore.SegmentDump, numSegs)
	for i := range d.Segs {
		switch live := rd.u8(); live {
		case 0:
		case 1:
			side := walkstore.Side(int8(rd.u8()))
			d.Segs[i] = walkstore.SegmentDump{Live: true, Side: side, Path: rd.nodes(rd.u32())}
		default:
			return nil, false, -1, nil, fmt.Errorf("%w: %s: segment %d has invalid live flag %d", ErrCorrupt, path, i, live)
		}
	}
	if rd.err != nil {
		return nil, false, -1, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, rd.err)
	}
	if rd.off != len(body) {
		return nil, false, -1, nil, fmt.Errorf("%w: %s: %d trailing bytes after segment table", ErrCorrupt, path, len(body)-rd.off)
	}
	return d, hasCommit, cursor, state, nil
}

// newestSnapshot returns the path and epoch of the highest-epoch snapshot in
// dir, or ok=false when none exists.
func newestSnapshot(dir string) (path string, epoch int64, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, false, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if _, isSnap := snapEpoch(e.Name()); isSnap {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", 0, false, nil
	}
	sort.Strings(names) // epoch is fixed-width hex, so name order is epoch order
	best := names[len(names)-1]
	epoch, _ = snapEpoch(best)
	return filepath.Join(dir, best), epoch, true, nil
}

// removeOldSnapshots deletes every snapshot in dir with an epoch below keep.
// Best-effort: a stale snapshot is wasted disk, not a correctness problem
// (recovery always picks the newest), so errors are ignored.
func removeOldSnapshots(dir string, keep int64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if epoch, isSnap := snapEpoch(e.Name()); isSnap && epoch < keep {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	if err := df.Sync(); err != nil {
		return fmt.Errorf("persist: dir fsync: %w", err)
	}
	return nil
}
