package persist

import (
	"reflect"
	"testing"

	"fastppr/internal/graph"
)

// TestRemoveEdgeRoundTrip pins the graph-level deletion marker: remove-edge
// records interleaved with store mutations come back in log order, do not
// count as replayed mutations, and leave the recovered store untouched.
func TestRemoveEdgeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	applyOps(t, s, 3)
	if err := m.LogRemoveEdge(10, 11); err != nil {
		t.Fatal(err)
	}
	if err := m.LogRemoveEdge(12, 13); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(41, []byte("state")); err != nil {
		t.Fatal(err)
	}

	m2, s2, info := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	defer m2.Close()
	want := []graph.Edge{{From: 10, To: 11}, {From: 12, To: 13}}
	if !reflect.DeepEqual(info.RemovedEdges, want) {
		t.Fatalf("RemovedEdges=%v, want %v", info.RemovedEdges, want)
	}
	if info.Replayed != 3 {
		t.Fatalf("Replayed=%d, want 3 (markers are not mutations)", info.Replayed)
	}
	if !info.Committed || info.Cursor != 41 || string(info.State) != "state" {
		t.Fatalf("commit marker lost: %+v", info)
	}
	equalStores(t, s2, reference(t, 3))
}

// TestRemoveEdgeOutsideCommitDropped: a marker after the last commit belongs
// to work the application never learned was durable; recovery must not report
// it (the op will be redone from Cursor, logging it again).
func TestRemoveEdgeOutsideCommitDropped(t *testing.T) {
	dir := t.TempDir()
	m, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	applyOps(t, s, 2)
	if err := m.LogRemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(7, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.LogRemoveEdge(3, 4); err != nil { // uncommitted
		t.Fatal(err)
	}

	m2, _, info := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	defer m2.Close()
	want := []graph.Edge{{From: 1, To: 2}}
	if !reflect.DeepEqual(info.RemovedEdges, want) {
		t.Fatalf("RemovedEdges=%v, want only the committed %v", info.RemovedEdges, want)
	}
}

// TestCheckpointDropsRemoveEdgeMarkers: a checkpoint rolls the WAL into a
// snapshot and truncates it, so markers only ever describe the window since
// the last checkpoint.
func TestCheckpointDropsRemoveEdgeMarkers(t *testing.T) {
	dir := t.TempDir()
	m, s, _ := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	applyOps(t, s, 2)
	if err := m.LogRemoveEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	m2, s2, info := mustOpen(t, Config{Dir: dir, Policy: SyncEveryRecord})
	defer m2.Close()
	if len(info.RemovedEdges) != 0 {
		t.Fatalf("RemovedEdges=%v survived a checkpoint", info.RemovedEdges)
	}
	if !info.Committed || info.Cursor != 1 {
		t.Fatalf("snapshot-embedded commit lost: %+v", info)
	}
	equalStores(t, s2, reference(t, 2))
}
