package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fastppr/internal/graph"
	"fastppr/internal/walkstore"
)

// ErrCorrupt marks durable state that recovery refuses to load: a WAL record
// damaged in front of intact data, or a snapshot that fails its checksum or
// parse. Test with errors.Is. Torn WAL tails are NOT corruption — they are
// the expected artifact of a crash mid-write and are truncated silently.
var ErrCorrupt = errors.New("persist: corrupt durable state")

// File is the write-side file surface the WAL and snapshot writers need;
// *os.File satisfies it, and the fault-injection wrapper in fault.go
// implements it over scripted failures.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// Config parameterizes a durable store directory.
type Config struct {
	// Dir holds the WAL (wal.log) and snapshots (snap-*.wsnap). Created if
	// missing.
	Dir string
	// Policy selects the WAL fsync cadence; see the SyncPolicy constants.
	Policy SyncPolicy
	// SyncEveryN is the record cadence under SyncEveryN (default 64).
	SyncEveryN int
	// SyncInterval is the timer cadence under SyncInterval (default 100ms).
	SyncInterval time.Duration
	// OpenFile optionally intercepts creation of the WAL and snapshot files
	// so tests can inject write faults (see WrapFile); nil uses the OS.
	OpenFile func(path string, flag int, perm os.FileMode) (File, error)
}

func (c Config) openFile(path string, flag int, perm os.FileMode) (File, error) {
	if c.OpenFile != nil {
		return c.OpenFile(path, flag, perm)
	}
	return os.OpenFile(path, flag, perm)
}

// PolicyString renders the effective fsync policy for reports.
func (c Config) PolicyString() string {
	switch c.Policy {
	case SyncEveryN:
		n := c.SyncEveryN
		if n <= 0 {
			n = 64
		}
		return fmt.Sprintf("batch:%d", n)
	case SyncInterval:
		iv := c.SyncInterval
		if iv <= 0 {
			iv = 100 * time.Millisecond
		}
		return fmt.Sprintf("interval:%s", iv)
	}
	return c.Policy.String()
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// SnapshotEpoch is the epoch of the snapshot recovery started from
	// (0 when the directory held none).
	SnapshotEpoch int64
	// Replayed counts WAL mutation records applied on top of the snapshot.
	Replayed int
	// Discarded counts valid mutation records dropped because they sit
	// after the last commit marker: an uncommitted suffix whose work the
	// application will redo deterministically from Cursor.
	Discarded int
	// TornBytes is the length of the truncated torn WAL tail, if any.
	TornBytes int64
	// Committed reports whether any commit marker has ever been durable in
	// this directory (in the WAL or embedded in the snapshot). Cursor and
	// State are the last such marker's payload; Cursor -1 with Committed true
	// means the application committed before doing any work. Cursor is also
	// -1 when Committed is false, but then State is meaningless.
	Committed bool
	Cursor    int64
	State     []byte
	// RemovedEdges lists the remove-edge markers recovered from the WAL
	// within the committed cut, in log order: the edge deletions proven
	// durable since the last checkpoint. Deletions are graph-level — replay
	// applies only their store-side repairs — so callers rebuilding the
	// graph from an external op stream use this list to cross-check that the
	// rebuilt stream agrees with what the log committed.
	RemovedEdges []graph.Edge
	// Elapsed is the wall-clock recovery time (load + replay + the fresh
	// checkpoint Open finishes with).
	Elapsed time.Duration
}

// Manager owns one durable store directory: it journals every mutation of
// its walkstore into the WAL and rolls the log into epoch-stamped snapshots
// on Checkpoint. One Manager per directory; the store must only be mutated
// by callers that obtained it from Open (journaling is attached to the store
// via its MutationLog hook).
type Manager struct {
	cfg   Config
	store *walkstore.Store

	mu sync.Mutex // serializes Commit/Checkpoint/Close against each other
	w  *wal
	// Latest commit marker, re-embedded into every snapshot so a checkpoint's
	// WAL truncation cannot lose the transactional resume point. everCommitted
	// distinguishes "committed with cursor -1" from "never committed".
	everCommitted bool
	lastCursor    int64
	lastState     []byte
}

// walLogger adapts the WAL to the walkstore.MutationLog hook. Calls arrive
// inside the store's segment-lock critical section; each bumps the logger's
// seq mirror of the store epoch and appends one record. Append errors are
// sticky in the WAL (the hook cannot return them); callers poll Manager.Err.
type walLogger struct{ w *wal }

func (l walLogger) LogAdd(id walkstore.SegmentID, side walkstore.Side, path []graph.NodeID) {
	l.w.appendRec(Rec{Seq: l.w.nextSeq(), Kind: recAdd, ID: id, Side: side, Path: path})
}

func (l walLogger) LogReplaceTail(id walkstore.SegmentID, keep int, tail []graph.NodeID) {
	l.w.appendRec(Rec{Seq: l.w.nextSeq(), Kind: recReplaceTail, ID: id, Keep: keep, Path: tail})
}

func (l walLogger) LogRemove(id walkstore.SegmentID) {
	l.w.appendRec(Rec{Seq: l.w.nextSeq(), Kind: recRemove, ID: id})
}

// nextSeq returns the seq for the mutation record about to be appended. The
// hook calls are serialized by the store's segment lock, so the unsynchron-
// ized read of w.seq (updated under w.mu in appendRec) cannot race another
// mutation record; commit markers never change seq.
func (w *wal) nextSeq() int64 { return w.seq + 1 }

// Open recovers the directory's durable state and returns a live manager
// over the recovered store: it loads the newest snapshot (a corrupt one
// fails loudly — the temp-file+rename protocol guarantees the newest named
// snapshot was completely written, so damage is never shrugged off by
// falling back to an older one), replays WAL records past the snapshot's
// epoch, truncating a torn tail and — when the log carries commit markers —
// discarding the uncommitted suffix, then finishes with a fresh checkpoint
// so the WAL restarts empty and bounds the next recovery. An empty or
// missing directory yields an empty store.
func Open(cfg Config) (*Manager, *walkstore.Store, RecoveryInfo, error) {
	t0 := time.Now()
	info := RecoveryInfo{Cursor: -1}
	if cfg.Dir == "" {
		return nil, nil, info, errors.New("persist: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, info, err
	}

	var store *walkstore.Store
	if path, epoch, ok, err := newestSnapshot(cfg.Dir); err != nil {
		return nil, nil, info, err
	} else if ok {
		d, snapHasCommit, snapCursor, snapState, err := loadSnapshot(path)
		if err != nil {
			return nil, nil, info, err
		}
		if d.Epoch != epoch {
			return nil, nil, info, fmt.Errorf("%w: %s: file named for epoch %d but stamped %d", ErrCorrupt, path, epoch, d.Epoch)
		}
		store, err = walkstore.Restore(d)
		if err != nil {
			return nil, nil, info, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		info.SnapshotEpoch = epoch
		info.Committed, info.Cursor, info.State = snapHasCommit, snapCursor, snapState
	} else {
		store = walkstore.New()
	}

	walPath := filepath.Join(cfg.Dir, "wal.log")
	recs, tornBytes, err := readWAL(walPath)
	if err != nil {
		return nil, nil, info, err
	}
	info.TornBytes = tornBytes

	// Transactional cut: once the application has ever committed (a marker
	// in the WAL, or one embedded in the snapshot), mutations after the last
	// marker belong to work it never learned was durable; replaying them
	// would double-apply that work when it is redone from Cursor. With no
	// commit anywhere the caller is using plain persistence and every valid
	// record counts.
	cut := len(recs)
	marker := -1
	for i, r := range recs {
		if r.Kind == recCommit {
			info.Committed, info.Cursor, info.State = true, r.Cursor, r.State
			marker = i
		}
	}
	if marker >= 0 {
		cut = marker
	} else if info.Committed {
		cut = 0 // snapshot-embedded marker, none since: the whole WAL is uncommitted
	}
	if err := replay(store, recs[:cut], info.SnapshotEpoch); err != nil {
		return nil, nil, info, err
	}
	for i, r := range recs {
		if r.Kind == recCommit {
			continue
		}
		if r.Kind == recRemoveEdge {
			if i < cut {
				info.RemovedEdges = append(info.RemovedEdges, r.Edge)
			}
			continue
		}
		if i >= cut {
			info.Discarded++
		} else if r.Seq > info.SnapshotEpoch {
			info.Replayed++
		}
	}

	m := &Manager{cfg: cfg, store: store, everCommitted: info.Committed, lastCursor: info.Cursor, lastState: info.State}
	if err := m.checkpointLocked(); err != nil {
		return nil, nil, info, err
	}
	info.Elapsed = time.Since(t0)
	return m, store, info, nil
}

// replay applies the committed mutation records with seq > snapEpoch to the
// store, asserting that every record lands exactly where the live run put it
// (same assigned ID, same epoch). The store API panics on impossible
// requests (unknown segment, keep out of range); replay converts those to
// ErrCorrupt instead of crashing recovery.
func replay(store *walkstore.Store, recs []Rec, snapEpoch int64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: wal replay: %v", ErrCorrupt, p)
		}
	}()
	for _, r := range recs {
		if r.Kind == recCommit || r.Kind == recRemoveEdge || r.Seq <= snapEpoch {
			continue
		}
		switch r.Kind {
		case recAdd:
			ids := store.AddBatchSided([][]graph.NodeID{r.Path}, r.Side)
			if ids[0] != r.ID {
				return fmt.Errorf("%w: wal replay assigned segment %d to a record logged as %d", ErrCorrupt, ids[0], r.ID)
			}
		case recReplaceTail:
			store.ReplaceTail(r.ID, r.Keep, r.Path)
		case recRemove:
			store.Remove(r.ID)
		}
		if got := store.Epoch(); got != r.Seq {
			return fmt.Errorf("%w: wal replay reached epoch %d, record logged seq %d", ErrCorrupt, got, r.Seq)
		}
	}
	return nil
}

// Store returns the managed walk store.
func (m *Manager) Store() *walkstore.Store { return m.store }

// Err returns the WAL's sticky write error, if any. Once set, journaling has
// stopped: the in-memory store keeps working, but the durable state is
// frozen at the error point and a Checkpoint onto healthy storage is the way
// back to durability.
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w == nil {
		return nil
	}
	m.w.mu.Lock()
	defer m.w.mu.Unlock()
	return m.w.err
}

// Stats reports the live WAL's size.
type Stats struct {
	WALRecords int64
	WALBytes   int64
	Epoch      int64
}

func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w == nil {
		return Stats{}
	}
	m.w.mu.Lock()
	defer m.w.mu.Unlock()
	return Stats{WALRecords: m.w.records, WALBytes: m.w.bytes, Epoch: m.w.seq}
}

// Commit appends a commit marker — cursor plus an opaque state blob (say, a
// serialized RNG) — and syncs it per the configured policy. After recovery
// the last durable marker's payload comes back in RecoveryInfo, and every
// mutation after it has been discarded, so resuming work at cursor+1 with
// the restored state replays history bitwise.
func (m *Manager) Commit(cursor int64, state []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w == nil {
		return errors.New("persist: Commit on closed manager")
	}
	m.everCommitted = true
	m.lastCursor = cursor
	m.lastState = append([]byte(nil), state...)
	// Seq is stamped inside appendRec under the WAL lock (the epoch of the
	// last mutation the marker covers).
	return m.w.appendRec(Rec{Kind: recCommit, Cursor: cursor, State: state})
}

// LogRemoveEdge journals one graph-level edge deletion. The walk store holds
// no adjacency, so a deletion whose repair touches no segment would otherwise
// leave no durable trace; the marker makes every applied deletion provable at
// recovery (RecoveryInfo.RemovedEdges). Call it after the deletion's store
// repairs and before the covering Commit, so the marker sits inside the same
// committed cut as its repair records.
func (m *Manager) LogRemoveEdge(from, to graph.NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w == nil {
		return errors.New("persist: LogRemoveEdge on closed manager")
	}
	return m.w.appendRec(Rec{Kind: recRemoveEdge, Edge: graph.Edge{From: from, To: to}})
}

// Checkpoint rolls the WAL into a fresh snapshot: dump the store (fails with
// walkstore.ErrConcurrentMutation unless quiescent — checkpoint from the
// same thread as mutations, or pause them), write the snapshot durably,
// truncate the WAL, drop older snapshots. Crash-safe at every step: before
// the rename recovery uses the old snapshot + full WAL; between rename and
// truncation it uses the new snapshot and skips the old records by epoch;
// after truncation the old snapshot is garbage.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointLocked()
}

func (m *Manager) checkpointLocked() error {
	d, err := m.store.Dump()
	if err != nil {
		return err
	}
	if m.w != nil {
		// The dump ran at quiescence, so no mutation record can be in flight
		// between it and here; a seq mismatch means a mutator raced the
		// checkpoint after all, and proceeding would truncate its records.
		m.w.mu.Lock()
		seq := m.w.seq
		m.w.mu.Unlock()
		if seq != d.Epoch {
			return fmt.Errorf("persist: checkpoint raced a mutation (wal at seq %d, store at epoch %d)", seq, d.Epoch)
		}
	}
	if _, err := writeSnapshot(m.cfg, m.cfg.Dir, d, m.everCommitted, m.lastCursor, m.lastState); err != nil {
		return err
	}
	// Swap in a truncated WAL. Detach the logger first so a (misbehaving)
	// concurrent mutator cannot write into the closing file.
	m.store.SetMutationLog(nil)
	if m.w != nil {
		if err := m.w.close(); err != nil {
			return err
		}
		m.w = nil
	}
	w, err := openWAL(m.cfg, filepath.Join(m.cfg.Dir, "wal.log"), d.Epoch)
	if err != nil {
		return err
	}
	m.w = w
	m.store.SetMutationLog(walLogger{w: w})
	removeOldSnapshots(m.cfg.Dir, d.Epoch)
	return nil
}

// SnapshotBytes returns the size of the newest snapshot on disk (0 if none),
// for reports.
func (m *Manager) SnapshotBytes() int64 {
	path, _, ok, err := newestSnapshot(m.cfg.Dir)
	if err != nil || !ok {
		return 0
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Close detaches journaling, flushes and fsyncs the WAL, and closes it. The
// store stays usable in memory; its subsequent mutations are no longer
// journaled.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.store.SetMutationLog(nil)
	if m.w == nil {
		return nil
	}
	err := m.w.close()
	m.w = nil
	return err
}
