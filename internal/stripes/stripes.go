package stripes

import "sync"

// Hash spreads a key over the stripe space with Fibonacci hashing — the same
// multiplier the graph shards and the social store use, extracted here so
// every striped layer agrees on what "well spread" means.
func Hash(key uint64) uint64 {
	return key * 0x9e3779b97f4a7c15
}

// MutexSet is a fixed, power-of-two-sized array of mutexes addressed by
// hashed key. It is the striping primitive shared by the walk engine and both
// incremental maintainers: lock the stripe of a key to serialize all work
// keyed there, while unrelated keys proceed in parallel.
type MutexSet struct {
	mus  []sync.Mutex
	mask uint64
}

// NewMutexSet returns a set of at least n stripes, rounded up to a power of
// two so stripe selection is a mask, not a division.
func NewMutexSet(n int) *MutexSet {
	size := 1
	for size < n {
		size <<= 1
	}
	return &MutexSet{mus: make([]sync.Mutex, size), mask: uint64(size - 1)}
}

// Len returns the number of stripes.
func (s *MutexSet) Len() int { return len(s.mus) }

// Index returns the stripe index of key.
func (s *MutexSet) Index(key uint64) int {
	return int((Hash(key) >> 32) & s.mask)
}

// Of returns the mutex striping key.
func (s *MutexSet) Of(key uint64) *sync.Mutex {
	return &s.mus[s.Index(key)]
}

// Lock locks stripe i.
func (s *MutexSet) Lock(i int) { s.mus[i].Lock() }

// Unlock unlocks stripe i.
func (s *MutexSet) Unlock(i int) { s.mus[i].Unlock() }

// LockPair locks the stripes of two keys in index order, skipping the
// duplicate when both keys land on one stripe. Ordered acquisition is what
// makes holding two stripes deadlock-free; the SALSA maintainer uses it to
// serialize on an arrival's source and target at once.
func (s *MutexSet) LockPair(a, b uint64) (i, j int) {
	i, j = s.Index(a), s.Index(b)
	if i > j {
		i, j = j, i
	}
	s.mus[i].Lock()
	if j != i {
		s.mus[j].Lock()
	}
	return i, j
}

// UnlockPair releases the stripes returned by LockPair.
func (s *MutexSet) UnlockPair(i, j int) {
	if j != i {
		s.mus[j].Unlock()
	}
	s.mus[i].Unlock()
}

// LockSet locks every stripe index in idx, which must be sorted ascending
// and duplicate-free (CollectIndices produces exactly that). Acquiring in
// ascending order across all callers is the deadlock-freedom argument for
// freezing a whole set of segments at once.
func (s *MutexSet) LockSet(idx []int) {
	for _, i := range idx {
		s.mus[i].Lock()
	}
}

// UnlockSet releases the stripes locked by LockSet.
func (s *MutexSet) UnlockSet(idx []int) {
	for k := len(idx) - 1; k >= 0; k-- {
		s.mus[idx[k]].Unlock()
	}
}

// LockKeys collects the sorted, deduplicated stripe indices of keys into
// buf, locks them, and returns the held index set for UnlockSet — the
// freeze-a-segment-set operation both maintainers' repair scans are built
// on.
func (s *MutexSet) LockKeys(keys []uint64, buf []int) []int {
	buf = s.CollectIndices(keys, buf)
	s.LockSet(buf)
	return buf
}

// CollectIndices appends the sorted, deduplicated stripe indices of keys to
// buf (reset first) and returns it — the ordered lock set LockSet consumes.
// The dedup runs over a bitmapless insertion sort because lock sets are
// small; callers reuse buf across arrivals to stay allocation-free.
func (s *MutexSet) CollectIndices(keys []uint64, buf []int) []int {
	buf = buf[:0]
	for _, k := range keys {
		i := s.Index(k)
		lo := 0
		hi := len(buf)
		for lo < hi {
			mid := (lo + hi) / 2
			if buf[mid] < i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(buf) && buf[lo] == i {
			continue
		}
		buf = append(buf, 0)
		copy(buf[lo+1:], buf[lo:])
		buf[lo] = i
	}
	return buf
}
