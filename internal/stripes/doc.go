// Package stripes is the shared lock-striping helper behind every concurrent
// layer of the system: the hash that spreads keys over stripes, a
// power-of-two mutex set addressed by key, and the ordered multi-lock
// acquisition (pairs and sorted sets) whose fixed ascending order is the
// deadlock-freedom argument for the maintainers' parallel update paths.
//
// The engine stripes reroutes by SegmentID, the PageRank maintainer
// serializes arrivals by source stripe, and the SALSA maintainer locks the
// (source, target) stripe pair — all through this one primitive, so the lock
// order documented in docs/DESIGN.md#6-concurrency-model is enforced by
// construction rather than by convention.
package stripes
