package stripes

import (
	"slices"
	"sync"
	"testing"
)

func TestNewMutexSetRoundsUp(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{1, 1}, {2, 2}, {3, 4}, {500, 512}, {512, 512}} {
		if got := NewMutexSet(tc.n).Len(); got != tc.want {
			t.Fatalf("NewMutexSet(%d).Len()=%d want %d", tc.n, got, tc.want)
		}
	}
}

func TestIndexInRangeAndStable(t *testing.T) {
	s := NewMutexSet(64)
	for k := uint64(0); k < 10_000; k++ {
		i := s.Index(k)
		if i < 0 || i >= s.Len() {
			t.Fatalf("Index(%d)=%d out of range", k, i)
		}
		if j := s.Index(k); j != i {
			t.Fatalf("Index(%d) unstable: %d then %d", k, i, j)
		}
	}
}

func TestCollectIndicesSortedDeduped(t *testing.T) {
	s := NewMutexSet(8)
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i % 37)
	}
	idx := s.CollectIndices(keys, nil)
	if !slices.IsSorted(idx) {
		t.Fatalf("indices not sorted: %v", idx)
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate index %d in %v", i, idx)
		}
		seen[i] = true
	}
	// Every key's stripe must be present.
	for _, k := range keys {
		if !seen[s.Index(k)] {
			t.Fatalf("stripe of key %d missing from %v", k, idx)
		}
	}
	// Buffer reuse starts from empty.
	idx2 := s.CollectIndices(keys[:1], idx)
	if len(idx2) != 1 || idx2[0] != s.Index(keys[0]) {
		t.Fatalf("reused buffer not reset: %v", idx2)
	}
}

// TestLockSetMutualExclusion drives many goroutines through overlapping
// ordered lock sets under -race; a counter per stripe catches any failure of
// mutual exclusion.
func TestLockSetMutualExclusion(t *testing.T) {
	s := NewMutexSet(16)
	counters := make([]int, s.Len())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []int
			for iter := 0; iter < 500; iter++ {
				keys := []uint64{uint64(w + iter), uint64(iter), uint64(w * iter)}
				buf = s.CollectIndices(keys, buf)
				s.LockSet(buf)
				for _, i := range buf {
					counters[i]++
				}
				s.UnlockSet(buf)
			}
		}(w)
	}
	wg.Wait()
}

func TestLockPairSameStripe(t *testing.T) {
	s := NewMutexSet(4)
	// Find two keys on the same stripe.
	var a, b uint64
	found := false
	for b = 1; b < 1000 && !found; b++ {
		if s.Index(a) == s.Index(b) {
			found = true
		}
	}
	if !found {
		t.Skip("no collision found")
	}
	b--
	i, j := s.LockPair(a, b)
	if i != j {
		t.Fatalf("LockPair on colliding keys returned distinct stripes %d,%d", i, j)
	}
	s.UnlockPair(i, j) // must not double-unlock
	// Relockable afterwards.
	i, j = s.LockPair(a, b)
	s.UnlockPair(i, j)
}
