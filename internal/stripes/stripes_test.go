package stripes

import (
	"slices"
	"sync"
	"testing"
)

func TestNewMutexSetRoundsUp(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{1, 1}, {2, 2}, {3, 4}, {500, 512}, {512, 512}} {
		if got := NewMutexSet(tc.n).Len(); got != tc.want {
			t.Fatalf("NewMutexSet(%d).Len()=%d want %d", tc.n, got, tc.want)
		}
	}
}

func TestIndexInRangeAndStable(t *testing.T) {
	s := NewMutexSet(64)
	for k := uint64(0); k < 10_000; k++ {
		i := s.Index(k)
		if i < 0 || i >= s.Len() {
			t.Fatalf("Index(%d)=%d out of range", k, i)
		}
		if j := s.Index(k); j != i {
			t.Fatalf("Index(%d) unstable: %d then %d", k, i, j)
		}
	}
}

func TestCollectIndicesSortedDeduped(t *testing.T) {
	s := NewMutexSet(8)
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i % 37)
	}
	idx := s.CollectIndices(keys, nil)
	if !slices.IsSorted(idx) {
		t.Fatalf("indices not sorted: %v", idx)
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate index %d in %v", i, idx)
		}
		seen[i] = true
	}
	// Every key's stripe must be present.
	for _, k := range keys {
		if !seen[s.Index(k)] {
			t.Fatalf("stripe of key %d missing from %v", k, idx)
		}
	}
	// Buffer reuse starts from empty.
	idx2 := s.CollectIndices(keys[:1], idx)
	if len(idx2) != 1 || idx2[0] != s.Index(keys[0]) {
		t.Fatalf("reused buffer not reset: %v", idx2)
	}
}

// TestLockSetMutualExclusion drives many goroutines through overlapping
// ordered lock sets under -race; a counter per stripe catches any failure of
// mutual exclusion.
func TestLockSetMutualExclusion(t *testing.T) {
	s := NewMutexSet(16)
	counters := make([]int, s.Len())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []int
			for iter := 0; iter < 500; iter++ {
				keys := []uint64{uint64(w + iter), uint64(iter), uint64(w * iter)}
				buf = s.CollectIndices(keys, buf)
				s.LockSet(buf)
				for _, i := range buf {
					counters[i]++
				}
				s.UnlockSet(buf)
			}
		}(w)
	}
	wg.Wait()
}

func TestLockPairSameStripe(t *testing.T) {
	s := NewMutexSet(4)
	// Find two keys on the same stripe.
	var a, b uint64
	found := false
	for b = 1; b < 1000 && !found; b++ {
		if s.Index(a) == s.Index(b) {
			found = true
		}
	}
	if !found {
		t.Skip("no collision found")
	}
	b--
	i, j := s.LockPair(a, b)
	if i != j {
		t.Fatalf("LockPair on colliding keys returned distinct stripes %d,%d", i, j)
	}
	s.UnlockPair(i, j) // must not double-unlock
	// Relockable afterwards.
	i, j = s.LockPair(a, b)
	s.UnlockPair(i, j)
}

// TestLockKeysEmpty: an empty key slice is a legal degenerate freeze — no
// stripes collected, no locks taken, and the set stays fully usable.
func TestLockKeysEmpty(t *testing.T) {
	s := NewMutexSet(8)
	idx := s.LockKeys(nil, nil)
	if len(idx) != 0 {
		t.Fatalf("LockKeys(nil) collected stripes: %v", idx)
	}
	s.UnlockSet(idx) // must be a no-op, not a panic
	// Nothing may be left held.
	for i := range s.mus {
		if !s.mus[i].TryLock() {
			t.Fatalf("stripe %d left locked after empty LockKeys/UnlockSet", i)
		}
		s.mus[i].Unlock()
	}
	// Same through LockSet directly.
	s.LockSet(nil)
	s.UnlockSet(nil)
}

// TestLockKeysAllColliding: keys that all hash to one stripe must collapse
// to a single acquisition (no self-deadlock) that actually excludes.
func TestLockKeysAllColliding(t *testing.T) {
	s := NewMutexSet(4)
	keys := make([]uint64, 32)
	want := s.Index(0)
	n := 0
	for k := uint64(0); n < len(keys); k++ {
		if s.Index(k) == want {
			keys[n] = k
			n++
		}
	}
	idx := s.LockKeys(keys, nil)
	if len(idx) != 1 || idx[0] != want {
		t.Fatalf("LockKeys over colliding keys = %v, want [%d]", idx, want)
	}
	if s.mus[want].TryLock() {
		t.Fatal("colliding stripe not actually held after LockKeys")
	}
	s.UnlockSet(idx)
	if !s.mus[want].TryLock() {
		t.Fatal("colliding stripe still held after UnlockSet")
	}
	s.mus[want].Unlock()
}

// TestLockKeysReusedBuf: a reused buffer arriving non-empty (stale indices
// from a previous freeze) must be reset, not merged into the new set.
func TestLockKeysReusedBuf(t *testing.T) {
	s := NewMutexSet(16)
	stale := s.LockKeys([]uint64{1, 2, 3, 4, 5}, nil)
	s.UnlockSet(stale)
	if len(stale) == 0 {
		t.Fatal("setup produced no stale indices")
	}
	fresh := s.CollectIndices([]uint64{100}, nil)
	got := s.LockKeys([]uint64{100}, stale)
	if !slices.Equal(got, fresh) {
		t.Fatalf("LockKeys with stale buf = %v, want %v", got, fresh)
	}
	// Only the fresh stripe may be held: every other stripe must TryLock.
	for i := range s.mus {
		if i == fresh[0] {
			if s.mus[i].TryLock() {
				t.Fatalf("stripe %d should be held", i)
			}
			continue
		}
		if !s.mus[i].TryLock() {
			t.Fatalf("stale stripe %d locked by buffer reuse", i)
		}
		s.mus[i].Unlock()
	}
	s.UnlockSet(got)
}
